#include "frontend/parser.h"

#include <gtest/gtest.h>

#include "ir/interpreter.h"
#include "ipda/ipda.h"
#include "support/check.h"

namespace osel::frontend {
namespace {

constexpr char kSaxpy[] = R"(
# y = 2.5*x + y over n elements
kernel saxpy(n) {
  array x[n] : f32 to;
  array y[n] : f32 tofrom;
  parallel for i in 0..n {
    y[i] = 2.5 * x[i] + y[i];
  }
}
)";

constexpr char kGemm[] = R"(
kernel gemm(n) {
  array A[n][n] : f32 to;
  array B[n][n] : f32 to;
  array C[n][n] : f32 tofrom;
  parallel for i in 0..n, j in 0..n {
    acc = C[i][j] * 1.2;
    for k in 0..n {
      acc = acc + 1.5 * A[i][k] * B[k][j];
    }
    C[i][j] = acc;
  }
}
)";

constexpr char kGuarded[] = R"(
kernel stddev_guard(n) {
  array s[n] : f32 tofrom;
  parallel for j in 0..n {
    v = sqrt(s[j] / n);
    if (v <= 0.1) {
      v = 1.0;
    } else {
      v = v * 2.0;
    }
    s[j] = v;
  }
}
)";

TEST(Parser, SaxpyStructure) {
  const auto kernels = parseKernels(kSaxpy);
  ASSERT_EQ(kernels.size(), 1u);
  const ir::TargetRegion& region = kernels[0];
  EXPECT_EQ(region.name, "saxpy");
  ASSERT_EQ(region.params.size(), 1u);
  EXPECT_EQ(region.params[0], "n");
  ASSERT_EQ(region.arrays.size(), 2u);
  EXPECT_EQ(region.arrays[0].transfer, ir::Transfer::To);
  EXPECT_EQ(region.arrays[1].transfer, ir::Transfer::ToFrom);
  ASSERT_EQ(region.parallelDims.size(), 1u);
  EXPECT_EQ(region.parallelDims[0].var, "i");
  EXPECT_NO_THROW(region.verify());
}

TEST(Parser, SaxpyExecutesCorrectly) {
  const ir::TargetRegion region = parseKernels(kSaxpy)[0];
  const symbolic::Bindings bindings{{"n", 32}};
  ir::ArrayStore store = ir::allocateArrays(region, bindings);
  for (int i = 0; i < 32; ++i) {
    store["x"][static_cast<std::size_t>(i)] = i;
    store["y"][static_cast<std::size_t>(i)] = 100.0;
  }
  ir::CompiledRegion(region, bindings).runAll(store);
  for (int i = 0; i < 32; ++i)
    EXPECT_DOUBLE_EQ(store["y"][static_cast<std::size_t>(i)], 2.5 * i + 100.0);
}

TEST(Parser, GemmMatchesHandBuiltSemantics) {
  const ir::TargetRegion region = parseKernels(kGemm)[0];
  const symbolic::Bindings bindings{{"n", 12}};
  ir::ArrayStore store = ir::allocateArrays(region, bindings);
  auto at = [](int r, int c) { return static_cast<std::size_t>(r * 12 + c); };
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      store["A"][at(i, j)] = 0.5 * i + j;
      store["B"][at(i, j)] = i - 0.25 * j;
      store["C"][at(i, j)] = 1.0;
    }
  }
  const std::vector<double> cBefore = store["C"];
  ir::CompiledRegion(region, bindings).runAll(store);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      double expect = cBefore[at(i, j)] * 1.2;
      for (int k = 0; k < 12; ++k)
        expect += 1.5 * store["A"][at(i, k)] * store["B"][at(k, j)];
      EXPECT_NEAR(store["C"][at(i, j)], expect, 1e-9);
    }
  }
}

TEST(Parser, GemmIpdaStridesMatchExpectation) {
  const ir::TargetRegion region = parseKernels(kGemm)[0];
  const ipda::Analysis analysis = ipda::Analysis::analyze(region);
  // Sites: C read (coalesced), A (uniform in j), B (coalesced), C store.
  const auto counts = analysis.classifySites({{"n", 512}});
  EXPECT_EQ(counts.coalesced, 3);
  EXPECT_EQ(counts.uniform, 1);
}

TEST(Parser, GuardedKernelParsesIfElseAndMathCalls) {
  const ir::TargetRegion region = parseKernels(kGuarded)[0];
  int branches = 0;
  int loops = 0;
  ir::forEachStmt(region.body, [&](const ir::Stmt& stmt) {
    if (stmt.kind() == ir::Stmt::Kind::If) ++branches;
    if (stmt.kind() == ir::Stmt::Kind::SeqLoop) ++loops;
  });
  EXPECT_EQ(branches, 1);
  EXPECT_EQ(loops, 0);

  // Functional check: below-eps entries become 1, others double.
  const symbolic::Bindings bindings{{"n", 4}};
  ir::ArrayStore store = ir::allocateArrays(region, bindings);
  store["s"] = {0.0, 4.0, 16.0, 64.0};  // v = sqrt(s/4) = 0, 1, 2, 4
  ir::CompiledRegion(region, bindings).runAll(store);
  EXPECT_DOUBLE_EQ(store["s"][0], 1.0);
  EXPECT_DOUBLE_EQ(store["s"][1], 2.0);
  EXPECT_DOUBLE_EQ(store["s"][2], 4.0);
  EXPECT_DOUBLE_EQ(store["s"][3], 8.0);
}

TEST(Parser, MultipleKernelsInOneSource) {
  const std::string source = std::string(kSaxpy) + kGemm;
  const auto kernels = parseKernels(source);
  ASSERT_EQ(kernels.size(), 2u);
  EXPECT_EQ(kernels[0].name, "saxpy");
  EXPECT_EQ(kernels[1].name, "gemm");
}

TEST(Parser, ParameterUsedAsDataOperandBecomesIndexCast) {
  const auto kernels = parseKernels(R"(
kernel meanlike(n) {
  array d[n] : f32 to;
  array m[n] : f32 from;
  parallel for j in 0..n {
    m[j] = d[j] / n;
  }
})");
  const symbolic::Bindings bindings{{"n", 8}};
  ir::ArrayStore store = ir::allocateArrays(kernels[0], bindings);
  for (auto& v : store["d"]) v = 16.0;
  ir::CompiledRegion(kernels[0], bindings).runAll(store);
  for (const double v : store["m"]) EXPECT_DOUBLE_EQ(v, 2.0);
}

TEST(Parser, TriangularLoopBounds) {
  const auto kernels = parseKernels(R"(
kernel tri(n) {
  array A[n][n] : f32 to;
  array y[n] : f32 from;
  parallel for j1 in 0..n {
    acc = 0.0;
    for j2 in j1 + 1..n {
      acc = acc + A[j1][j2];
    }
    y[j1] = acc;
  }
})");
  const ir::Stmt& loop = kernels[0].body[1];
  ASSERT_EQ(loop.kind(), ir::Stmt::Kind::SeqLoop);
  EXPECT_EQ(loop.lowerBound(),
            symbolic::Expr::symbol("j1") + symbolic::Expr::constant(1));
}

// ---- Error reporting ---------------------------------------------------------

TEST(ParserErrors, UndeclaredArray) {
  EXPECT_THROW((void)parseKernels(R"(
kernel bad(n) {
  array y[n] : f32 from;
  parallel for i in 0..n { y[i] = ghost[i]; }
})"),
               support::PreconditionError);
}

TEST(ParserErrors, ArrayWithoutSubscripts) {
  EXPECT_THROW((void)parseKernels(R"(
kernel bad(n) {
  array y[n] : f32 from;
  parallel for i in 0..n { y[i] = y; }
})"),
               support::PreconditionError);
}

TEST(ParserErrors, NonZeroParallelLowerBound) {
  EXPECT_THROW((void)parseKernels(R"(
kernel bad(n) {
  array y[n] : f32 from;
  parallel for i in 1..n { y[i] = 0.0; }
})"),
               support::PreconditionError);
}

TEST(ParserErrors, OutOfScopeIndexSymbol) {
  EXPECT_THROW((void)parseKernels(R"(
kernel bad(n) {
  array y[n] : f32 from;
  parallel for i in 0..n { y[q] = 0.0; }
})"),
               support::PreconditionError);
}

TEST(ParserErrors, MissingSemicolonMentionsLocation) {
  try {
    (void)parseKernels(R"(
kernel bad(n) {
  array y[n] : f32 from;
  parallel for i in 0..n { y[i] = 0.0 }
})");
    FAIL() << "expected parse error";
  } catch (const support::PreconditionError& error) {
    EXPECT_NE(std::string(error.what()).find("line 4"), std::string::npos)
        << error.what();
  }
}

TEST(ParserErrors, EmptyInput) {
  EXPECT_THROW((void)parseKernels(""), support::PreconditionError);
}

TEST(ParserErrors, ReadOfUnassignedLocal) {
  EXPECT_THROW((void)parseKernels(R"(
kernel bad(n) {
  array y[n] : f32 from;
  parallel for i in 0..n { y[i] = acc; }
})"),
               support::PreconditionError);
}

TEST(Parser, FileLoading) {
  EXPECT_THROW((void)parseKernelFile("/nonexistent/kernels.osel"),
               support::PreconditionError);
}

}  // namespace
}  // namespace osel::frontend

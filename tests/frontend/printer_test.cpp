#include "frontend/printer.h"

#include <gtest/gtest.h>

#include "frontend/parser.h"
#include "ipda/ipda.h"
#include "ir/interpreter.h"
#include "polybench/polybench.h"

namespace osel::frontend {
namespace {

/// Round-trip semantic check: print -> parse -> same execution + strides.
void expectRoundTrip(const ir::TargetRegion& region,
                     const symbolic::Bindings& bindings) {
  const std::string source = printKernel(region);
  SCOPED_TRACE(source);
  const auto reparsed = parseKernels(source);
  ASSERT_EQ(reparsed.size(), 1u);
  const ir::TargetRegion& again = reparsed[0];
  EXPECT_EQ(again.name, region.name);
  EXPECT_EQ(again.params, region.params);
  ASSERT_EQ(again.arrays.size(), region.arrays.size());
  for (std::size_t i = 0; i < region.arrays.size(); ++i) {
    EXPECT_EQ(again.arrays[i].name, region.arrays[i].name);
    EXPECT_EQ(again.arrays[i].elementType, region.arrays[i].elementType);
    EXPECT_EQ(again.arrays[i].transfer, region.arrays[i].transfer);
    EXPECT_EQ(again.arrays[i].extents, region.arrays[i].extents);
  }

  // IPDA strides identical.
  const auto before = ipda::Analysis::analyze(region);
  const auto after = ipda::Analysis::analyze(again);
  ASSERT_EQ(before.records().size(), after.records().size());
  for (std::size_t i = 0; i < before.records().size(); ++i)
    EXPECT_EQ(before.records()[i].stride, after.records()[i].stride) << i;

  // Execution identical on deterministic inputs.
  ir::ArrayStore a = ir::allocateArrays(region, bindings);
  ir::ArrayStore b = ir::allocateArrays(again, bindings);
  std::size_t salt = 1;
  for (auto& [name, data] : a) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double v = static_cast<double>((i * salt + 5) % 101) / 101.0 + 0.01;
      data[i] = v;
      b.at(name)[i] = v;
    }
    ++salt;
  }
  ir::CompiledRegion(region, bindings).runAll(a);
  ir::CompiledRegion(again, bindings).runAll(b);
  for (const auto& [name, expected] : a) EXPECT_EQ(b.at(name), expected) << name;
}

class PrinterRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(PrinterRoundTrip, EveryPolybenchKernelRoundTrips) {
  const polybench::Benchmark& benchmark = polybench::benchmarkByName(GetParam());
  const std::int64_t n = benchmark.name() == "3DCONV" ? 12 : 16;
  for (const ir::TargetRegion& kernel : benchmark.kernels()) {
    SCOPED_TRACE(kernel.name);
    expectRoundTrip(kernel, benchmark.bindings(n));
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PrinterRoundTrip,
                         ::testing::Values("GEMM", "MVT", "3MM", "2MM", "ATAX",
                                           "BICG", "2DCONV", "3DCONV", "COVAR",
                                           "GESUMMV", "SYR2K", "SYRK", "CORR"));

TEST(Printer, OutputLooksLikeTheLanguage) {
  const ir::TargetRegion& gemm = polybench::benchmarkByName("GEMM").kernels()[0];
  const std::string source = printKernel(gemm);
  EXPECT_NE(source.find("kernel gemm_k1(n) {"), std::string::npos);
  EXPECT_NE(source.find("array A[n][n] : f32 to;"), std::string::npos);
  EXPECT_NE(source.find("parallel for i in 0..n, j in 0..n {"),
            std::string::npos);
  EXPECT_NE(source.find("for k in 0..n {"), std::string::npos);
}

TEST(Printer, NegativeAndFractionalLiteralsRoundTrip) {
  const auto kernels = parseKernels(R"(
kernel lits(n) {
  array y[n] : f64 from;
  parallel for i in 0..n {
    y[i] = (-0.30000000000000004) * 3.0 + 0.125;
  }
})");
  expectRoundTrip(kernels[0], {{"n", 8}});
}

}  // namespace
}  // namespace osel::frontend

// Cross-validation: Polybench kernels written in the kernel language must
// be indistinguishable — to the interpreter, to IPDA, and to the whole
// compile-time analysis — from the builder-constructed versions the suite
// ships. This pins the frontend's semantics to the IR's.
#include <gtest/gtest.h>

#include <array>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "ipda/ipda.h"
#include "ir/interpreter.h"
#include "polybench/polybench.h"
#include "runtime/selector.h"

namespace osel::frontend {
namespace {

constexpr char kGemmSource[] = R"(
kernel gemm_k1(n) {
  array A[n][n] : f32 to;
  array B[n][n] : f32 to;
  array C[n][n] : f32 tofrom;
  parallel for i in 0..n, j in 0..n {
    acc = C[i][j] * 1.2;
    for k in 0..n {
      acc = acc + 1.5 * A[i][k] * B[k][j];
    }
    C[i][j] = acc;
  }
}
)";

constexpr char kAtaxSource[] = R"(
kernel atax_k1(n) {
  array A[n][n] : f32 to;
  array x[n] : f32 to;
  array tmp[n] : f32 from;
  parallel for i in 0..n {
    acc = 0.0;
    for j in 0..n {
      acc = acc + A[i][j] * x[j];
    }
    tmp[i] = acc;
  }
}
kernel atax_k2(n) {
  array A[n][n] : f32 to;
  array tmp[n] : f32 to;
  array y[n] : f32 from;
  parallel for j in 0..n {
    acc = 0.0;
    for i in 0..n {
      acc = acc + A[i][j] * tmp[i];
    }
    y[j] = acc;
  }
}
)";

void expectSameAnalyses(const ir::TargetRegion& parsed,
                        const ir::TargetRegion& built,
                        const symbolic::Bindings& bindings) {
  // IPDA: same strides per site.
  const ipda::Analysis parsedIpda = ipda::Analysis::analyze(parsed);
  const ipda::Analysis builtIpda = ipda::Analysis::analyze(built);
  ASSERT_EQ(parsedIpda.records().size(), builtIpda.records().size());
  for (std::size_t i = 0; i < parsedIpda.records().size(); ++i) {
    EXPECT_EQ(parsedIpda.records()[i].stride, builtIpda.records()[i].stride) << i;
    EXPECT_EQ(parsedIpda.records()[i].site.isStore,
              builtIpda.records()[i].site.isStore)
        << i;
  }
  // Full compile-time attributes.
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const pad::RegionAttributes a = compiler::analyzeRegion(parsed, models);
  const pad::RegionAttributes b = compiler::analyzeRegion(built, models);
  EXPECT_DOUBLE_EQ(a.compInstsPerIter, b.compInstsPerIter);
  EXPECT_DOUBLE_EQ(a.loadInstsPerIter, b.loadInstsPerIter);
  EXPECT_DOUBLE_EQ(a.storeInstsPerIter, b.storeInstsPerIter);
  EXPECT_DOUBLE_EQ(a.machineCyclesPerIter.at("POWER9"),
                   b.machineCyclesPerIter.at("POWER9"));
  EXPECT_EQ(a.flatTripCount.evaluate(bindings),
            b.flatTripCount.evaluate(bindings));
  EXPECT_EQ(a.bytesToDevice.evaluate(bindings),
            b.bytesToDevice.evaluate(bindings));
  EXPECT_EQ(a.bytesFromDevice.evaluate(bindings),
            b.bytesFromDevice.evaluate(bindings));
}

void expectSameExecution(const ir::TargetRegion& parsed,
                         const ir::TargetRegion& built,
                         const symbolic::Bindings& bindings) {
  ir::ArrayStore parsedStore = ir::allocateArrays(parsed, bindings);
  ir::ArrayStore builtStore = ir::allocateArrays(built, bindings);
  std::size_t salt = 1;
  for (auto& [name, data] : parsedStore) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double v = static_cast<double>((i * salt + 3) % 257) / 257.0;
      data[i] = v;
      builtStore.at(name)[i] = v;
    }
    ++salt;
  }
  ir::CompiledRegion(parsed, bindings).runAll(parsedStore);
  ir::CompiledRegion(built, bindings).runAll(builtStore);
  for (const auto& [name, expected] : builtStore)
    EXPECT_EQ(parsedStore.at(name), expected) << name;
}

TEST(FrontendPolybench, GemmEquivalentToBuiltinKernel) {
  const ir::TargetRegion parsed = parseKernels(kGemmSource)[0];
  const ir::TargetRegion& built =
      polybench::benchmarkByName("GEMM").kernels()[0];
  const symbolic::Bindings bindings{{"n", 24}};
  expectSameAnalyses(parsed, built, bindings);
  expectSameExecution(parsed, built, bindings);
}

TEST(FrontendPolybench, AtaxKernelsEquivalentToBuiltins) {
  const auto parsed = parseKernels(kAtaxSource);
  const auto& builtins = polybench::benchmarkByName("ATAX").kernels();
  ASSERT_EQ(parsed.size(), 2u);
  const symbolic::Bindings bindings{{"n", 32}};
  for (std::size_t k = 0; k < 2; ++k) {
    SCOPED_TRACE(parsed[k].name);
    expectSameAnalyses(parsed[k], builtins[k], bindings);
  }
}

TEST(FrontendPolybench, ParsedKernelDrivesSelectorIdentically) {
  const ir::TargetRegion parsed = parseKernels(kGemmSource)[0];
  const ir::TargetRegion& built =
      polybench::benchmarkByName("GEMM").kernels()[0];
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const runtime::OffloadSelector selector{runtime::SelectorConfig{}};
  const symbolic::Bindings bindings{{"n", 1100}};
  const auto a = selector.decide(
      runtime::RegionHandle(compiler::analyzeRegion(parsed, models)), bindings);
  const auto b = selector.decide(
      runtime::RegionHandle(compiler::analyzeRegion(built, models)), bindings);
  EXPECT_EQ(a.device, b.device);
  EXPECT_DOUBLE_EQ(a.cpu.seconds, b.cpu.seconds);
  EXPECT_DOUBLE_EQ(a.gpu.totalSeconds, b.gpu.totalSeconds);
}

}  // namespace
}  // namespace osel::frontend

#include "frontend/lexer.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace osel::frontend {
namespace {

std::vector<Token> lex(const std::string& source) { return tokenize(source); }

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_TRUE(tokens[0].is(TokenKind::EndOfInput));
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto tokens = lex("kernel my_kernel acc f32");
  EXPECT_TRUE(tokens[0].is(TokenKind::Keyword, "kernel"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Identifier, "my_kernel"));
  EXPECT_TRUE(tokens[2].is(TokenKind::Identifier, "acc"));
  EXPECT_TRUE(tokens[3].is(TokenKind::Keyword, "f32"));
}

TEST(Lexer, IntegerAndFloatLiterals) {
  const auto tokens = lex("42 1.5 2e3 7.25e-2");
  EXPECT_TRUE(tokens[0].is(TokenKind::Integer, "42"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Float, "1.5"));
  EXPECT_TRUE(tokens[2].is(TokenKind::Float, "2e3"));
  EXPECT_TRUE(tokens[3].is(TokenKind::Float, "7.25e-2"));
}

TEST(Lexer, RangeOperatorVsFloatDot) {
  // "0..n" must lex as Integer '..' Identifier, not a float.
  const auto tokens = lex("0..n");
  EXPECT_TRUE(tokens[0].is(TokenKind::Integer, "0"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Punct, ".."));
  EXPECT_TRUE(tokens[2].is(TokenKind::Identifier, "n"));
}

TEST(Lexer, ComparisonOperators) {
  const auto tokens = lex("< <= > >= == !=");
  const char* expected[] = {"<", "<=", ">", ">=", "==", "!="};
  for (int i = 0; i < 6; ++i)
    EXPECT_TRUE(tokens[static_cast<std::size_t>(i)].is(TokenKind::Punct,
                                                       expected[i]));
}

TEST(Lexer, CommentsIgnoredToEndOfLine) {
  const auto tokens = lex("a # the rest is noise [ } 1.2.3\nb");
  EXPECT_TRUE(tokens[0].is(TokenKind::Identifier, "a"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Identifier, "b"));
  EXPECT_TRUE(tokens[2].is(TokenKind::EndOfInput));
}

TEST(Lexer, TracksLineAndColumn) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, DigitLeadingIdentifiers) {
  // Polybench kernel names like "3mm_k1" are identifiers; exponent-shaped
  // tokens stay floats.
  const auto tokens = lex("3mm_k1 2e3 2e3x");
  EXPECT_TRUE(tokens[0].is(TokenKind::Identifier, "3mm_k1"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Float, "2e3"));
  // "2e3x": the exponent consumes digits, then 'x' is a fresh identifier.
  EXPECT_TRUE(tokens[2].is(TokenKind::Float, "2e3"));
  EXPECT_TRUE(tokens[3].is(TokenKind::Identifier, "x"));
}

TEST(Lexer, RejectsStrayCharacters) {
  EXPECT_THROW((void)lex("a $ b"), support::PreconditionError);
}

TEST(Lexer, DanglingExponentBecomesIdentifier) {
  // With digit-leading identifiers allowed, "2e+" is the identifier "2e"
  // followed by '+', not a malformed float.
  const auto tokens = lex("2e+");
  EXPECT_TRUE(tokens[0].is(TokenKind::Identifier, "2e"));
  EXPECT_TRUE(tokens[1].is(TokenKind::Punct, "+"));
}

TEST(Lexer, PunctuationInventory) {
  const auto tokens = lex("( ) { } [ ] , ; : = + - * /");
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i)
    EXPECT_TRUE(tokens[i].is(TokenKind::Punct)) << i;
}

}  // namespace
}  // namespace osel::frontend

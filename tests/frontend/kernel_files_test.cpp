// The shipped .osel example files must parse, verify, execute, and
// round-trip through the printer. Guards the files themselves (they are
// user-facing documentation) as well as the toolchain.
#include <gtest/gtest.h>

#include <filesystem>

#include "frontend/parser.h"
#include "frontend/printer.h"
#include "ir/interpreter.h"

namespace osel::frontend {
namespace {

std::filesystem::path kernelDir() {
  // Tests run from the build tree; the kernels live in the source tree.
  for (std::filesystem::path dir = std::filesystem::current_path();
       dir.has_parent_path(); dir = dir.parent_path()) {
    const std::filesystem::path candidate = dir / "examples" / "kernels";
    if (std::filesystem::exists(candidate)) return candidate;
    if (dir == dir.root_path()) break;
  }
  return {};
}

class KernelFiles : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelFiles, ParsesExecutesAndRoundTrips) {
  const std::filesystem::path dir = kernelDir();
  if (dir.empty()) GTEST_SKIP() << "examples/kernels not found from cwd";
  const std::string path = (dir / GetParam()).string();
  const auto kernels = parseKernelFile(path);
  ASSERT_FALSE(kernels.empty());
  for (const ir::TargetRegion& kernel : kernels) {
    SCOPED_TRACE(kernel.name);
    EXPECT_NO_THROW(kernel.verify());

    // Executes on small inputs.
    symbolic::Bindings bindings;
    for (const std::string& param : kernel.params) bindings[param] = 16;
    ir::ArrayStore store = ir::allocateArrays(kernel, bindings);
    std::size_t salt = 1;
    for (auto& [name, data] : store) {
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<double>((i + salt) % 31) / 31.0;
      ++salt;
    }
    EXPECT_NO_THROW(ir::CompiledRegion(kernel, bindings).runAll(store));

    // Round-trips through the printer.
    const auto again = parseKernels(printKernel(kernel));
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].name, kernel.name);
    EXPECT_EQ(again[0].arrays.size(), kernel.arrays.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Shipped, KernelFiles,
                         ::testing::Values("saxpy.osel", "jacobi2d.osel",
                                           "dot_chain.osel"));

}  // namespace
}  // namespace osel::frontend

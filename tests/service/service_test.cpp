// The oseld server end to end over real sockets: lifecycle storms,
// handshake negotiation, socket-vs-in-process decision equivalence
// (bit-identical on the wire-stable subset), admission shed, concurrent
// clients racing registerRegion, and the HTTP metrics endpoint. Labelled
// test_service; the tsan preset runs this binary under ThreadSanitizer.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/batch.h"
#include "service/client.h"
#include "service/server.h"

namespace osel::service {
namespace {

using namespace osel::ir;

TargetRegion streamKernel(const std::string& name) {
  return RegionBuilder(name)
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

std::vector<TargetRegion> testRegions() {
  std::vector<TargetRegion> regions;
  regions.push_back(streamKernel("stream"));
  regions.push_back(streamKernel("stream_b"));
  return regions;
}

pad::AttributeDatabase makeDatabase() {
  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  return compiler::compileAll(testRegions(), hosts);
}

/// A unique Unix socket path per test instance (paths are global state).
std::string freshSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/osel_service_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TestServer {
  explicit TestServer(ServiceOptions options = {}) {
    if (options.socketPath.empty()) options.socketPath = freshSocketPath();
    server = std::make_unique<Server>(makeDatabase(),
                                      runtime::RuntimeOptions{}, options);
    for (TargetRegion& region : testRegions()) {
      server->registerRegion(std::move(region));
    }
  }
  std::unique_ptr<Server> server;
};

void expectWireIdentical(const runtime::Decision& socket,
                         const runtime::Decision& local) {
  EXPECT_EQ(socket.device, local.device);
  EXPECT_EQ(socket.valid, local.valid);
  EXPECT_EQ(socket.diagnostic, local.diagnostic);
  // Bit-identical doubles, not EXPECT_DOUBLE_EQ: the acceptance criterion.
  EXPECT_EQ(std::memcmp(&socket.cpu.seconds, &local.cpu.seconds,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&socket.gpu.totalSeconds, &local.gpu.totalSeconds,
                        sizeof(double)),
            0);
}

TEST(Service, StartStopStorm) {
  TestServer fixture;
  Server& server = *fixture.server;
  for (int cycle = 0; cycle < 5; ++cycle) {
    server.start();
    EXPECT_TRUE(server.running());
    // Odd cycles exercise stop-with-a-live-connection.
    if (cycle % 2 == 1) {
      Client client = Client::connect(server.options().socketPath);
      client.ping();
    }
    server.stop();
    EXPECT_FALSE(server.running());
  }
}

TEST(Service, HandshakeNegotiatesVersionAndFeatures) {
  TestServer fixture;
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);
  EXPECT_EQ(client.version(), kProtocolVersion);
  EXPECT_EQ(client.featureBits(),
            kFeatureBatch | kFeatureStats | kFeaturePrometheus |
                kFeatureTraceContext | kFeatureSlowLog);
  EXPECT_EQ(client.maxFrameBytes(), fixture.server->options().maxFrameBytes);
  client.ping();
}

TEST(Service, FutureOnlyClientIsRefusedWithUnsupportedVersion) {
  TestServer fixture;
  fixture.server->start();
  Socket raw = connectUnix(fixture.server->options().socketPath);
  HelloFrame hello;
  hello.versionMin = 99;
  hello.versionMax = 120;
  std::string out;
  encodeHello(out, hello);
  sendAll(raw, out);

  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  char buffer[4096];
  for (;;) {
    if (decoder.next(header, payload)) break;
    const std::size_t got = recvSome(raw, buffer, sizeof(buffer));
    ASSERT_GT(got, 0u) << "server closed without answering";
    decoder.append(buffer, got);
  }
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  EXPECT_EQ(parseError(payload).code, WireCode::UnsupportedVersion);
}

TEST(Service, FirstFrameMustBeHello) {
  TestServer fixture;
  fixture.server->start();
  Socket raw = connectUnix(fixture.server->options().socketPath);
  std::string out;
  encodePing(out);
  sendAll(raw, out);
  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  char buffer[4096];
  for (;;) {
    if (decoder.next(header, payload)) break;
    const std::size_t got = recvSome(raw, buffer, sizeof(buffer));
    ASSERT_GT(got, 0u) << "server closed without answering";
    decoder.append(buffer, got);
  }
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  EXPECT_EQ(parseError(payload).code, WireCode::ExpectedHello);
}

TEST(Service, DecideMatchesInProcessBitIdentical) {
  TestServer fixture;
  fixture.server->start();
  // The reference runtime: same database, same options, in-process.
  runtime::TargetRuntime local(makeDatabase(), runtime::RuntimeOptions{});
  for (TargetRegion& region : testRegions()) {
    local.registerRegion(std::move(region));
  }

  Client client = Client::connect(fixture.server->options().socketPath);
  for (const std::int64_t n : {16, 96, 512, 2048}) {
    const symbolic::Bindings bindings{{"n", n}};
    expectWireIdentical(client.decide("stream", bindings),
                        local.decide("stream", bindings));
  }
  // Unknown region: the runtime degrades (valid=false, PadLookup text) and
  // the degradation crosses the wire identically.
  const symbolic::Bindings bindings{{"n", 64}};
  const runtime::Decision remote = client.decide("nonesuch", bindings);
  const runtime::Decision reference = local.decide("nonesuch", bindings);
  EXPECT_FALSE(remote.valid);
  expectWireIdentical(remote, reference);
}

TEST(Service, DecideBatchMatchesInProcessBitIdentical) {
  TestServer fixture;
  fixture.server->start();
  runtime::TargetRuntime local(makeDatabase(), runtime::RuntimeOptions{});
  for (TargetRegion& region : testRegions()) {
    local.registerRegion(std::move(region));
  }

  const std::vector<std::int64_t> sizes{16, 64, 96, 256, 512, 1024, 2048, 37};
  const auto rows = static_cast<std::uint32_t>(sizes.size());
  const std::vector<std::string_view> slots{"n"};

  Client client = Client::connect(fixture.server->options().socketPath);
  std::vector<runtime::Decision> remote;
  client.decideBatch("stream", slots, rows, sizes, remote);

  std::vector<symbolic::Bindings> bindings(sizes.size());
  std::vector<runtime::DecideRequest> requests(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    bindings[i]["n"] = sizes[i];
    requests[i] = {"stream", &bindings[i]};
  }
  std::vector<runtime::Decision> reference(sizes.size());
  local.decideBatch(requests, reference);

  ASSERT_EQ(remote.size(), reference.size());
  for (std::size_t i = 0; i < remote.size(); ++i) {
    expectWireIdentical(remote[i], reference[i]);
  }
}

TEST(Service, MalformedFrameKeepsTheConnectionUsable) {
  TestServer fixture;
  fixture.server->start();
  const std::string path = fixture.server->options().socketPath;
  Socket raw = connectUnix(path);
  std::string out;
  encodeHello(out, HelloFrame{});
  sendAll(raw, out);

  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  char buffer[8192];
  const auto readFrame = [&] {
    for (;;) {
      if (decoder.next(header, payload)) return;
      const std::size_t got = recvSome(raw, buffer, sizeof(buffer));
      ASSERT_GT(got, 0u) << "server closed unexpectedly";
      decoder.append(buffer, got);
    }
  };
  readFrame();
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::HelloAck));

  // A DecideRequest whose payload is garbage: answered BadFrame, but the
  // frame boundary held, so the next (valid) frame still works.
  out.clear();
  FrameHeader bad;
  bad.length = 4;
  bad.type = static_cast<std::uint16_t>(FrameType::DecideRequest);
  out.append(reinterpret_cast<const char*>(&bad), sizeof(bad));
  out.append("oops", 4);
  encodePing(out);
  sendAll(raw, out);
  readFrame();
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  EXPECT_EQ(parseError(payload).code, WireCode::BadFrame);
  readFrame();
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Pong));
}

TEST(Service, QueueOverflowShedsWithAnErrorFrame) {
  ServiceOptions options;
  options.workerThreads = 1;
  options.maxPendingConnections = 1;
  TestServer fixture(options);
  fixture.server->start();
  const std::string path = fixture.server->options().socketPath;

  // Occupy the only worker with a live, handshaken connection.
  Client held = Client::connect(path);
  held.ping();

  // Fill the one queue slot, give the accept loop time to enqueue it.
  Socket queued = connectUnix(path);
  for (int spin = 0; spin < 200 && fixture.server->connectionsAccepted() < 2;
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // The next connection must be shed: Error{Shed}, then close.
  Socket shedConnection = connectUnix(path);
  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  char buffer[4096];
  for (;;) {
    if (decoder.next(header, payload)) break;
    const std::size_t got =
        recvSome(shedConnection, buffer, sizeof(buffer));
    ASSERT_GT(got, 0u) << "shed connection closed without an Error frame";
    decoder.append(buffer, got);
  }
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  EXPECT_EQ(parseError(payload).code, WireCode::Shed);
  EXPECT_GE(fixture.server->connectionsShed(), 1u);
}

TEST(Service, ConcurrentClientsRaceRegisterRegion) {
  ServiceOptions options;
  options.workerThreads = 4;
  TestServer fixture(options);
  fixture.server->start();
  const std::string path = fixture.server->options().socketPath;

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      try {
        Client client = Client::connect(path);
        const std::vector<std::string_view> slots{"n"};
        std::vector<runtime::Decision> decisions;
        for (int i = 0; i < 50; ++i) {
          const symbolic::Bindings bindings{{"n", 64 + t * 16 + i}};
          (void)client.decide("stream", bindings);
          const std::vector<std::int64_t> sizes{32, 64 + i, 128};
          client.decideBatch("stream_b", slots, 3, sizes, decisions);
        }
      } catch (const std::exception&) {
        failed.store(true);
      }
    });
  }
  // Meanwhile, re-register regions: the RCU registry republishes snapshots
  // under live wire traffic.
  for (int i = 0; i < 25; ++i) {
    fixture.server->registerRegion(streamKernel("stream"));
    fixture.server->registerRegion(streamKernel("stream_b"));
  }
  for (std::thread& thread : clients) thread.join();
  EXPECT_FALSE(failed.load());
}

TEST(Service, StatsOverTheSocket) {
  TestServer fixture;
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);
  (void)client.decide("stream", {{"n", 128}});
  const std::string summary = client.stats(StatsFormat::Summary);
  EXPECT_FALSE(summary.empty());
  const std::string prom = client.stats(StatsFormat::Prometheus);
  EXPECT_NE(prom.find("osel_"), std::string::npos);
  EXPECT_NE(prom.find("service_decisions"), std::string::npos);
}

TEST(Service, TcpTransportAndMetricsEndpoint) {
  ServiceOptions options;
  options.tcpPort = 0;      // pick free ports: parallel ctest safe
  options.metricsPort = 0;
  TestServer fixture(options);
  fixture.server->start();

  Client client = Client::connectPort(fixture.server->tcpPort());
  client.ping();
  (void)client.decide("stream", {{"n", 256}});

  Socket scrape = connectTcp(fixture.server->metricsPort());
  sendAll(scrape, "GET /metrics HTTP/1.0\r\n\r\n");
  std::string response;
  char buffer[8192];
  for (;;) {
    const std::size_t got = recvSome(scrape, buffer, sizeof(buffer));
    if (got == 0) break;
    response.append(buffer, got);
  }
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("osel_service_decisions"), std::string::npos);

  Socket wrongPath = connectTcp(fixture.server->metricsPort());
  sendAll(wrongPath, "GET /nope HTTP/1.0\r\n\r\n");
  response.clear();
  for (;;) {
    const std::size_t got = recvSome(wrongPath, buffer, sizeof(buffer));
    if (got == 0) break;
    response.append(buffer, got);
  }
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST(Service, BindingFreeBatchRowsFallBackToScalarFrames) {
  // A row-carrying DecideBatch with zero slots is forbidden on the wire
  // (the server could not bound rowCount), so the client sends such rows
  // as scalar frames — and the decisions still match in-process.
  TestServer fixture;
  fixture.server->start();
  runtime::TargetRuntime local(makeDatabase(), runtime::RuntimeOptions{});
  for (TargetRegion& region : testRegions()) {
    local.registerRegion(std::move(region));
  }

  Client client = Client::connect(fixture.server->options().socketPath);
  std::vector<runtime::Decision> remote;
  client.decideBatch("stream", {}, 3, {}, remote);
  ASSERT_EQ(remote.size(), 3u);
  const runtime::Decision reference = local.decide("stream", {});
  for (const runtime::Decision& decision : remote) {
    expectWireIdentical(decision, reference);
  }
}

TEST(Service, RawZeroSlotBatchClaimingRowsIsAnsweredBadFrame) {
  TestServer fixture;
  fixture.server->start();
  Socket raw = connectUnix(fixture.server->options().socketPath);
  std::string out;
  encodeHello(out, HelloFrame{});
  // Hand-build the hostile frame the encoder refuses to produce: 0 slots,
  // a 4-billion rowCount, and no value bytes to bound it.
  FrameHeader hostile;
  hostile.length = sizeof(DecideBatchFrame);
  hostile.type = static_cast<std::uint16_t>(FrameType::DecideBatch);
  DecideBatchFrame batch;
  batch.slotCount = 0;
  batch.rowCount = 0xFFFFFFFFu;
  out.append(reinterpret_cast<const char*>(&hostile), sizeof(hostile));
  out.append(reinterpret_cast<const char*>(&batch), sizeof(batch));
  sendAll(raw, out);

  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  char buffer[4096];
  const auto readFrame = [&] {
    for (;;) {
      if (decoder.next(header, payload)) return;
      const std::size_t got = recvSome(raw, buffer, sizeof(buffer));
      ASSERT_GT(got, 0u) << "server closed unexpectedly";
      decoder.append(buffer, got);
    }
  };
  readFrame();
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::HelloAck));
  readFrame();
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  EXPECT_EQ(parseError(payload).code, WireCode::BadFrame);
}

TEST(Service, BatchReplyLargerThanTheNegotiatedLimitStillParses) {
  // DecisionBatch replies amplify ~8 request bytes per row into 40+, so a
  // legal request can produce a reply past HelloAck::maxFrameBytes. The
  // limit binds the request direction only; the client must parse this.
  ServiceOptions options;
  options.maxFrameBytes = 16 * 1024;
  TestServer fixture(options);
  fixture.server->start();
  runtime::TargetRuntime local(makeDatabase(), runtime::RuntimeOptions{});
  for (TargetRegion& region : testRegions()) {
    local.registerRegion(std::move(region));
  }

  const std::uint32_t rows = 1000;  // ~8 KB request, ~40 KB reply
  std::vector<std::int64_t> sizes(rows);
  for (std::uint32_t i = 0; i < rows; ++i) sizes[i] = 16 + (i % 512);
  const std::vector<std::string_view> slots{"n"};

  Client client = Client::connect(fixture.server->options().socketPath);
  std::vector<runtime::Decision> remote;
  client.decideBatch("stream", slots, rows, sizes, remote);
  ASSERT_EQ(remote.size(), rows);

  std::vector<symbolic::Bindings> bindings(rows);
  std::vector<runtime::DecideRequest> requests(rows);
  for (std::uint32_t i = 0; i < rows; ++i) {
    bindings[i]["n"] = sizes[i];
    requests[i] = {"stream", &bindings[i]};
  }
  std::vector<runtime::Decision> reference(rows);
  local.decideBatch(requests, reference);
  for (std::uint32_t i = 0; i < rows; ++i) {
    expectWireIdentical(remote[i], reference[i]);
  }

  // The flip side: a request frame the server would refuse is rejected
  // client-side with FrameTooLarge before any bytes hit the wire, and the
  // connection stays usable.
  const std::uint32_t tooMany = 3000;  // ~24 KB of values > 16 KB limit
  std::vector<std::int64_t> big(tooMany, 64);
  try {
    client.decideBatch("stream", slots, tooMany, big, remote);
    FAIL() << "oversized request frame was sent";
  } catch (const CodecError& error) {
    EXPECT_EQ(error.wireCode(), WireCode::FrameTooLarge);
  }
  client.ping();
  expectWireIdentical(client.decide("stream", {{"n", 64}}),
                      local.decide("stream", {{"n", 64}}));
}

TEST(Service, StalledMetricsScraperDoesNotStarveTheNextScrape) {
  ServiceOptions options;
  options.metricsPort = 0;
  options.metricsRecvTimeoutMillis = 100;
  TestServer fixture(options);
  fixture.server->start();

  // A scraper that connects and sends nothing ties up the serial metrics
  // thread only until the recv timeout drops it...
  Socket stalled = connectTcp(fixture.server->metricsPort());

  // ...so a well-behaved scrape right behind it must still be answered.
  Socket scrape = connectTcp(fixture.server->metricsPort());
  sendAll(scrape, "GET /metrics HTTP/1.0\r\n\r\n");
  std::string response;
  char buffer[8192];
  for (;;) {
    const std::size_t got = recvSome(scrape, buffer, sizeof(buffer));
    if (got == 0) break;
    response.append(buffer, got);
  }
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("osel_service_connections"), std::string::npos);
}

TEST(Service, StopUnblocksAStalledMetricsScraper) {
  // With a long recv timeout, stop() must still return promptly: accepted
  // metrics connections are registered in the active-fd set it sweeps
  // with shutdown(2). Before that registration this join hung forever.
  ServiceOptions options;
  options.metricsPort = 0;
  options.metricsRecvTimeoutMillis = 60'000;
  TestServer fixture(options);
  fixture.server->start();

  Socket stalled = connectTcp(fixture.server->metricsPort());
  // Give the metrics thread time to accept and park in recv().
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  fixture.server->stop();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(seconds, 10.0) << "stop() waited on a stalled scraper";
}

}  // namespace
}  // namespace osel::service

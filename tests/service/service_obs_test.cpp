// Request-scoped observability of the oseld service, end to end over real
// sockets: the negotiation-downgrade matrix (a client that never asks for
// kFeatureTraceContext sees frames byte-identical to the pre-trace-context
// layouts, pinned against hand-assembled golden bytes), trace-context echo
// on every reply, trace blocks on post-handshake errors, the per-stage
// latency histograms accounting for >= 99% of request wall time, the
// slow-request capture ring served as JSONL over the SlowLog RPC, and the
// stage/drop-counter series in the Prometheus exposition. Labelled
// test_service_obs; the tsan preset runs this binary under ThreadSanitizer
// and the asan-ubsan-service-obs preset under ASan/UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/server.h"

namespace osel::service {
namespace {

using namespace osel::ir;

/// The pre-trace-context feature set an old client requests.
constexpr std::uint32_t kLegacyFeatures =
    kFeatureBatch | kFeatureStats | kFeaturePrometheus;

TargetRegion streamKernel(const std::string& name) {
  return RegionBuilder(name)
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

std::vector<TargetRegion> testRegions() {
  std::vector<TargetRegion> regions;
  regions.push_back(streamKernel("stream"));
  regions.push_back(streamKernel("stream_b"));
  return regions;
}

pad::AttributeDatabase makeDatabase() {
  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  return compiler::compileAll(testRegions(), hosts);
}

/// A unique Unix socket path per test instance (paths are global state).
std::string freshSocketPath() {
  static std::atomic<int> counter{0};
  return "/tmp/osel_service_obs_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

struct TestServer {
  explicit TestServer(ServiceOptions options = {}) {
    if (options.socketPath.empty()) options.socketPath = freshSocketPath();
    server = std::make_unique<Server>(makeDatabase(),
                                      runtime::RuntimeOptions{}, options);
    for (TargetRegion& region : testRegions()) {
      server->registerRegion(std::move(region));
    }
  }
  std::unique_ptr<Server> server;
};

// --- Golden-byte assembly (the pre-trace-context v1 layouts) --------------
// Hand-built from the osel_abi.h struct definitions alone, so a codec
// change that silently perturbs the feature-off wire layout fails here even
// if encode and parse drift together.

template <typename T>
void appendPod(std::string& out, const T& value) {
  const char* bytes = reinterpret_cast<const char*>(&value);
  out.append(bytes, sizeof(T));
}

void appendHeader(std::string& out, FrameType type, std::uint32_t length) {
  FrameHeader header;
  header.length = length;
  header.type = static_cast<std::uint16_t>(type);
  appendPod(out, header);
}

std::string goldenDecideRequest(std::uint64_t requestId,
                                std::string_view region,
                                std::string_view symbol, std::int64_t value) {
  std::string out;
  const auto length = static_cast<std::uint32_t>(
      sizeof(DecideRequestFrame) + region.size() + sizeof(std::uint32_t) +
      sizeof(std::int64_t) + symbol.size());
  appendHeader(out, FrameType::DecideRequest, length);
  DecideRequestFrame fixed;
  fixed.requestId = requestId;
  fixed.regionNameBytes = static_cast<std::uint32_t>(region.size());
  fixed.bindingCount = 1;
  appendPod(out, fixed);
  out.append(region);
  appendPod(out, static_cast<std::uint32_t>(symbol.size()));
  appendPod(out, value);
  out.append(symbol);
  return out;
}

runtime::Decision sampleDecision() {
  runtime::Decision decision;
  decision.device = runtime::Device::Gpu;
  decision.valid = true;
  decision.diagnostic = "all models agree";
  decision.cpu.seconds = 0.125;
  decision.gpu.totalSeconds = 0.03125;
  decision.overheadSeconds = 1.5e-7;
  return decision;
}

std::string goldenDecision(std::uint64_t requestId,
                           const runtime::Decision& decision) {
  std::string out;
  const auto length = static_cast<std::uint32_t>(sizeof(DecisionRecord) +
                                                 decision.diagnostic.size());
  appendHeader(out, FrameType::Decision, length);
  DecisionRecord record;
  record.requestId = requestId;
  record.cpuSeconds = decision.cpu.seconds;
  record.gpuSeconds = decision.gpu.totalSeconds;
  record.overheadSeconds = decision.overheadSeconds;
  record.device = decision.device == runtime::Device::Gpu ? 1 : 0;
  record.valid = decision.valid ? 1 : 0;
  record.diagnosticBytes =
      static_cast<std::uint32_t>(decision.diagnostic.size());
  appendPod(out, record);
  out.append(decision.diagnostic);
  return out;
}

std::string goldenDecideBatch(std::uint64_t requestId, std::string_view region,
                              std::string_view slot,
                              std::span<const std::int64_t> values) {
  std::string out;
  const auto length = static_cast<std::uint32_t>(
      sizeof(DecideBatchFrame) + region.size() + sizeof(std::uint32_t) +
      slot.size() + values.size() * sizeof(std::int64_t));
  appendHeader(out, FrameType::DecideBatch, length);
  DecideBatchFrame fixed;
  fixed.requestId = requestId;
  fixed.regionNameBytes = static_cast<std::uint32_t>(region.size());
  fixed.slotCount = 1;
  fixed.rowCount = static_cast<std::uint32_t>(values.size());
  appendPod(out, fixed);
  out.append(region);
  appendPod(out, static_cast<std::uint32_t>(slot.size()));
  out.append(slot);
  for (const std::int64_t value : values) appendPod(out, value);
  return out;
}

std::string goldenError(WireCode code, std::string_view message) {
  std::string out;
  const auto length =
      static_cast<std::uint32_t>(sizeof(ErrorFrame) + message.size());
  appendHeader(out, FrameType::Error, length);
  ErrorFrame fixed;
  fixed.wireCode = static_cast<std::uint32_t>(code);
  fixed.messageBytes = static_cast<std::uint32_t>(message.size());
  appendPod(out, fixed);
  out.append(message);
  return out;
}

/// Reads one complete frame from a raw socket.
FrameHeader readOneFrame(const Socket& socket, FrameDecoder& decoder,
                         std::string& payload) {
  FrameHeader header;
  char buffer[64 * 1024];
  for (;;) {
    if (decoder.next(header, payload)) return header;
    const std::size_t got = recvSome(socket, buffer, sizeof(buffer));
    EXPECT_GT(got, 0u) << "server closed without answering";
    if (got == 0) return header;
    decoder.append(buffer, got);
  }
}

TEST(ServiceObsWire, FeatureOffEncodersMatchHandAssembledGoldenBytes) {
  // The downgrade contract's foundation: every trace-capable encoder with
  // trace == nullptr must produce exactly the bytes the v1 protocol carried
  // before the feature existed.
  std::string encoded;
  encodeDecideRequest(encoded, 7, "stream", symbolic::Bindings{{"n", 96}});
  EXPECT_EQ(encoded, goldenDecideRequest(7, "stream", "n", 96));

  const runtime::Decision decision = sampleDecision();
  encoded.clear();
  encodeDecision(encoded, 7, decision);
  EXPECT_EQ(encoded, goldenDecision(7, decision));

  const std::vector<std::int64_t> values{16, 64, 512};
  const std::vector<std::string_view> slots{"n"};
  encoded.clear();
  encodeDecideBatch(encoded, 11, "stream", slots,
                    static_cast<std::uint32_t>(values.size()), values);
  EXPECT_EQ(encoded, goldenDecideBatch(11, "stream", "n", values));

  encoded.clear();
  encodeError(encoded, WireCode::UnknownType, "oseld: unknown frame type 42");
  EXPECT_EQ(encoded,
            goldenError(WireCode::UnknownType, "oseld: unknown frame type 42"));
}

TEST(ServiceObsWire, LegacyClientNegotiatesDownAndSeesPreTraceReplies) {
  TestServer fixture;
  fixture.server->start();

  // Raw socket so the request bytes themselves are the hand-assembled
  // pre-trace-context layout — what a binary built before this feature
  // actually sends.
  Socket raw = connectUnix(fixture.server->options().socketPath);
  HelloFrame hello;
  hello.featureBits = kLegacyFeatures;
  std::string out;
  encodeHello(out, hello);
  sendAll(raw, out);

  FrameDecoder decoder;
  std::string payload;
  FrameHeader header = readOneFrame(raw, decoder, payload);
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::HelloAck));
  const HelloAckFrame ack = parseHelloAck(payload);
  // Granted = requested ∩ supported: no trace or slow-log bit sneaks in.
  EXPECT_EQ(ack.featureBits, kLegacyFeatures);

  sendAll(raw, goldenDecideRequest(1, "stream", "n", 96));
  header = readOneFrame(raw, decoder, payload);
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Decision));
  DecisionView view;
  parseDecision(payload, view, /*traceContext=*/false);
  EXPECT_EQ(view.requestId, 1u);
  EXPECT_FALSE(view.hasTrace);
  EXPECT_TRUE(view.decision.valid);
  // The reply must carry no trace block: under the traced layout the same
  // payload is malformed, which pins its byte-identity to the old frames.
  DecisionView traced;
  EXPECT_THROW(parseDecision(payload, traced, /*traceContext=*/true),
               CodecError);

  // Post-handshake errors on a downgraded connection stay pre-trace too.
  FrameHeader junk;
  junk.length = 0;
  junk.type = 99;
  out.assign(reinterpret_cast<const char*>(&junk), sizeof(junk));
  sendAll(raw, out);
  header = readOneFrame(raw, decoder, payload);
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  const ErrorView error = parseError(payload, /*traceContext=*/false);
  EXPECT_EQ(error.code, WireCode::UnknownType);
  EXPECT_FALSE(error.hasTrace);
  EXPECT_THROW((void)parseError(payload, /*traceContext=*/true), CodecError);
}

TEST(ServiceObs, TraceContextEchoesOnEveryReply) {
  TestServer fixture;
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);
  ASSERT_TRUE(client.traceContextGranted());
  ASSERT_NE(client.featureBits() & kFeatureSlowLog, 0u);

  // Client::decide verifies the echoed trace id internally and throws on a
  // mismatch, so surviving these calls is the assertion.
  TraceContextBlock trace;
  trace.traceId = 0x1122334455667788ull;
  trace.flags = kTraceFlagSampled;
  const symbolic::Bindings bindings{{"n", 96}};
  EXPECT_TRUE(client.decide("stream", bindings, &trace).valid);

  const std::vector<std::int64_t> sizes{16, 64, 512};
  const std::vector<std::string_view> slots{"n"};
  std::vector<runtime::Decision> decisions;
  trace.traceId = 0x99aabbccddeeff00ull;
  trace.flags = 0;
  client.decideBatch("stream", slots,
                     static_cast<std::uint32_t>(sizes.size()), sizes,
                     decisions, &trace);
  EXPECT_EQ(decisions.size(), sizes.size());

  // No caller-provided block: the client attaches (and the server echoes) a
  // zeroed one — the layouts are per-connection, never per-frame.
  EXPECT_TRUE(client.decide("stream", bindings).valid);
}

TEST(ServiceObs, PostHandshakeErrorsCarryTraceBlockOnTraceConnections) {
  TestServer fixture;
  fixture.server->start();
  Socket raw = connectUnix(fixture.server->options().socketPath);
  HelloFrame hello;
  hello.featureBits = Client::kDefaultFeatureRequest;
  std::string out;
  encodeHello(out, hello);
  sendAll(raw, out);

  FrameDecoder decoder;
  std::string payload;
  FrameHeader header = readOneFrame(raw, decoder, payload);
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::HelloAck));
  ASSERT_NE(parseHelloAck(payload).featureBits & kFeatureTraceContext, 0u);

  // An unknown frame type never parsed far enough to learn a trace id, but
  // the reply still carries the (zeroed) block: layouts are negotiation
  // state, not request state.
  FrameHeader junk;
  junk.length = 0;
  junk.type = 99;
  out.assign(reinterpret_cast<const char*>(&junk), sizeof(junk));
  sendAll(raw, out);
  header = readOneFrame(raw, decoder, payload);
  ASSERT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Error));
  const ErrorView error = parseError(payload, /*traceContext=*/true);
  EXPECT_EQ(error.code, WireCode::UnknownType);
  EXPECT_TRUE(error.hasTrace);
  EXPECT_EQ(error.trace.traceId, 0u);
  EXPECT_THROW((void)parseError(payload, /*traceContext=*/false), CodecError);
}

const obs::Histogram::Stats* findHistogram(
    const obs::MetricsRegistry::Snapshot& snapshot, std::string_view name) {
  for (const auto& entry : snapshot.histograms) {
    if (entry.name == name) return &entry.stats;
  }
  return nullptr;
}

TEST(ServiceObs, StageHistogramsAccountForRequestWallTime) {
  TestServer fixture;
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);

  const std::vector<std::int64_t> sizes{16, 64, 96, 512};
  for (int i = 0; i < 200; ++i) {
    const symbolic::Bindings bindings{{"n", sizes[i % sizes.size()]}};
    (void)client.decide("stream", bindings);
  }
  const std::vector<std::string_view> slots{"n"};
  std::vector<runtime::Decision> decisions;
  for (int i = 0; i < 20; ++i) {
    client.decideBatch("stream", slots,
                       static_cast<std::uint32_t>(sizes.size()), sizes,
                       decisions);
  }

  // The worker records request_s/send_s after the flush that unblocked the
  // client; one more round-trip on the same (serially served) connection
  // guarantees those records landed before the snapshot.
  client.ping();

  const obs::MetricsRegistry::Snapshot snapshot =
      fixture.server->session().metrics().snapshot();
  const obs::Histogram::Stats* decode =
      findHistogram(snapshot, "service.decode_s");
  const obs::Histogram::Stats* decide =
      findHistogram(snapshot, "service.decide_s");
  const obs::Histogram::Stats* encode =
      findHistogram(snapshot, "service.encode_s");
  const obs::Histogram::Stats* send = findHistogram(snapshot, "service.send_s");
  const obs::Histogram::Stats* request =
      findHistogram(snapshot, "service.request_s");
  ASSERT_NE(decode, nullptr);
  ASSERT_NE(decide, nullptr);
  ASSERT_NE(encode, nullptr);
  ASSERT_NE(send, nullptr);
  ASSERT_NE(request, nullptr);

  // One sample per decide-carrying frame in every stage histogram.
  EXPECT_EQ(request->count, 220u);
  EXPECT_EQ(decode->count, 220u);
  EXPECT_EQ(decide->count, 220u);
  EXPECT_EQ(encode->count, 220u);
  EXPECT_EQ(send->count, 220u);

  // The acceptance criterion: the named stages account for >= 99% of the
  // total request wall time. For a request-reply client the stage spans
  // tile the wall exactly, so the only slack allowed here is double
  // rounding in the ns -> seconds conversion.
  const double stages = decode->sum + decide->sum + encode->sum + send->sum;
  ASSERT_GT(request->sum, 0.0);
  const double ratio = stages / request->sum;
  EXPECT_GE(ratio, 0.99) << "unattributed service time: stages " << stages
                         << "s vs wall " << request->sum << "s";
  EXPECT_LE(ratio, 1.0 + 1e-6);
}

TEST(ServiceObs, SlowLogServesThresholdCapturesAsJsonl) {
  ServiceOptions options;
  options.slowThresholdSeconds = 1e-9;  // everything is slow
  options.slowRingCapacity = 8;
  TestServer fixture(options);
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);

  TraceContextBlock trace;
  trace.traceId = 9876543210123456789ull;
  const symbolic::Bindings bindings{{"n", 96}};
  (void)client.decide("stream", bindings, &trace);
  (void)client.decide("stream_b", bindings);

  const std::string jsonl = client.slowLog();
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_NE(jsonl.find("\"region\":\"stream\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"region\":\"stream_b\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"cause\":\"threshold\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace_id\":9876543210123456789"), std::string::npos);
  for (const char* key :
       {"\"decode_ns\":", "\"decide_ns\":", "\"encode_ns\":", "\"send_ns\":",
        "\"wall_ns\":", "\"state_epoch\":", "\"client_id\":", "\"rows\":"}) {
    EXPECT_NE(jsonl.find(key), std::string::npos) << key;
  }

  // maxRecords trims to the newest records.
  const std::string newest = client.slowLog(1);
  EXPECT_EQ(std::count(newest.begin(), newest.end(), '\n'), 1);
  EXPECT_NE(newest.find("\"region\":\"stream_b\""), std::string::npos);
}

TEST(ServiceObs, ClientSampledRequestsAreCapturedWithThresholdOff) {
  ServiceOptions options;
  options.slowThresholdSeconds = 0.0;  // threshold capture disabled
  TestServer fixture(options);
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);

  const symbolic::Bindings bindings{{"n", 96}};
  (void)client.decide("stream", bindings);  // unsampled: not captured
  TraceContextBlock trace;
  trace.traceId = 42;
  trace.flags = kTraceFlagSampled;
  (void)client.decide("stream", bindings, &trace);

  const std::string jsonl = client.slowLog();
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);
  EXPECT_NE(jsonl.find("\"cause\":\"sampled\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"trace_id\":42"), std::string::npos);
}

TEST(ServiceObs, PrometheusExposesStageSeriesAndDropCounters) {
  TestServer fixture;
  fixture.server->start();
  Client client = Client::connect(fixture.server->options().socketPath);
  const symbolic::Bindings bindings{{"n", 96}};
  (void)client.decide("stream", bindings);

  const std::string text = client.stats(StatsFormat::Prometheus);
  for (const char* series :
       {"osel_service_decode_s_bucket", "osel_service_decide_s_sum",
        "osel_service_encode_s_count", "osel_service_send_s_bucket",
        "osel_service_request_s_count", "osel_trace_dropped_total{ring=\"events\"}",
        "osel_trace_dropped_total{ring=\"explain\"}",
        "osel_trace_dropped_total{ring=\"slow\"}", "osel_slow_recorded_total"}) {
    EXPECT_NE(text.find(series), std::string::npos) << series;
  }
}

}  // namespace
}  // namespace osel::service

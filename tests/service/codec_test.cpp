// The wire codec: round trips for every frame type, stream reassembly, and
// the hostile-frame fuzz the decode side is hardened against — truncated
// tails, oversized length prefixes, bad magic/version, counts that do not
// add up, and random byte mutations. Malformed input must always surface
// as a typed CodecError, never UB or a crash.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "service/codec.h"

namespace osel::service {
namespace {

/// Splits `bytes` (one complete encoded frame) into header + payload.
std::string decodeOne(const std::string& bytes, FrameHeader& header) {
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  std::string payload;
  EXPECT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(decoder.pending(), 0u);
  return payload;
}

runtime::Decision sampleDecision() {
  runtime::Decision decision;
  decision.device = runtime::Device::Gpu;
  decision.valid = true;
  decision.diagnostic = "all models agree";
  decision.cpu.seconds = 0.125;
  decision.gpu.totalSeconds = 0.03125;
  decision.overheadSeconds = 1.5e-7;
  return decision;
}

TEST(Codec, HelloRoundTrip) {
  HelloFrame hello;
  hello.versionMin = 1;
  hello.versionMax = 3;
  hello.featureBits = kFeatureBatch | kFeaturePrometheus;
  std::string bytes;
  encodeHello(bytes, hello);
  FrameHeader header;
  const std::string payload = decodeOne(bytes, header);
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Hello));
  const HelloFrame parsed = parseHello(payload);
  EXPECT_EQ(parsed.magic, kMagic);
  EXPECT_EQ(parsed.versionMin, 1);
  EXPECT_EQ(parsed.versionMax, 3);
  EXPECT_EQ(parsed.featureBits, kFeatureBatch | kFeaturePrometheus);
}

TEST(Codec, HelloAckRoundTrip) {
  HelloAckFrame ack;
  ack.version = 1;
  ack.featureBits = kFeatureStats;
  ack.maxFrameBytes = 1u << 16;
  std::string bytes;
  encodeHelloAck(bytes, ack);
  FrameHeader header;
  const std::string payload = decodeOne(bytes, header);
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::HelloAck));
  const HelloAckFrame parsed = parseHelloAck(payload);
  EXPECT_EQ(parsed.version, 1);
  EXPECT_EQ(parsed.featureBits, kFeatureStats);
  EXPECT_EQ(parsed.maxFrameBytes, 1u << 16);
}

TEST(Codec, PingAndPongHaveEmptyPayloads) {
  std::string bytes;
  encodePing(bytes);
  encodePong(bytes);
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Ping));
  EXPECT_TRUE(payload.empty());
  ASSERT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Pong));
  EXPECT_TRUE(payload.empty());
}

TEST(Codec, DecideRequestRoundTrip) {
  const symbolic::Bindings bindings{{"m", 1024}, {"n", -7}, {"nk", 1}};
  std::string bytes;
  encodeDecideRequest(bytes, 42, "gemm_k1", bindings);
  FrameHeader header;
  const std::string payload = decodeOne(bytes, header);
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::DecideRequest));
  DecideRequestView view;
  parseDecideRequest(payload, view);
  EXPECT_EQ(view.requestId, 42u);
  EXPECT_EQ(view.region, "gemm_k1");
  ASSERT_EQ(view.bindings.size(), 3u);
  symbolic::Bindings rebuilt;
  for (const auto& binding : view.bindings) {
    rebuilt[std::string(binding.symbol)] = binding.value;
  }
  EXPECT_EQ(rebuilt, bindings);
}

TEST(Codec, DecideBatchRoundTripIsSlotMajor) {
  const std::vector<std::string_view> slots{"n", "m"};
  // Slot-major: all n values, then all m values.
  const std::vector<std::int64_t> values{10, 20, 30, 100, 200, 300};
  std::string bytes;
  encodeDecideBatch(bytes, 7, "atax_k1", slots, 3, values);
  FrameHeader header;
  const std::string payload = decodeOne(bytes, header);
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::DecideBatch));
  DecideBatchView view;
  parseDecideBatch(payload, view);
  EXPECT_EQ(view.requestId, 7u);
  EXPECT_EQ(view.region, "atax_k1");
  ASSERT_EQ(view.slots.size(), 2u);
  EXPECT_EQ(view.slots[0], "n");
  EXPECT_EQ(view.slots[1], "m");
  ASSERT_EQ(view.rows, 3u);
  EXPECT_EQ(view.value(0, 0), 10);
  EXPECT_EQ(view.value(0, 2), 30);
  EXPECT_EQ(view.value(1, 0), 100);
  EXPECT_EQ(view.value(1, 2), 300);
}

TEST(Codec, DecisionRoundTripPreservesBitExactDoubles) {
  const runtime::Decision decision = sampleDecision();
  std::string bytes;
  encodeDecision(bytes, 99, decision);
  FrameHeader header;
  const std::string payload = decodeOne(bytes, header);
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::Decision));
  DecisionView view;
  parseDecision(payload, view);
  EXPECT_EQ(view.requestId, 99u);
  EXPECT_EQ(view.decision.device, runtime::Device::Gpu);
  EXPECT_TRUE(view.decision.valid);
  EXPECT_EQ(view.decision.diagnostic, "all models agree");
  // Bit-exact, not approximately equal: the equivalence contract.
  EXPECT_EQ(std::memcmp(&view.decision.cpu.seconds, &decision.cpu.seconds,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&view.decision.gpu.totalSeconds,
                        &decision.gpu.totalSeconds, sizeof(double)),
            0);
}

TEST(Codec, DecisionBatchRoundTripEchoesSequentialIds) {
  std::vector<runtime::Decision> decisions(3, sampleDecision());
  decisions[1].device = runtime::Device::Cpu;
  decisions[1].diagnostic.clear();
  decisions[2].valid = false;
  decisions[2].diagnostic = "missing PAD entry";
  std::string bytes;
  encodeDecisionBatch(bytes, 1000, decisions);
  FrameHeader header;
  const std::string payload = decodeOne(bytes, header);
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::DecisionBatch));
  std::vector<DecisionView> views;
  parseDecisionBatch(payload, views);
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].requestId, 1000u);
  EXPECT_EQ(views[1].requestId, 1001u);
  EXPECT_EQ(views[2].requestId, 1002u);
  EXPECT_EQ(views[1].decision.device, runtime::Device::Cpu);
  EXPECT_TRUE(views[1].decision.diagnostic.empty());
  EXPECT_FALSE(views[2].decision.valid);
  EXPECT_EQ(views[2].decision.diagnostic, "missing PAD entry");
}

TEST(Codec, StatsAndErrorRoundTrip) {
  std::string bytes;
  encodeStatsRequest(bytes, StatsFormat::Prometheus);
  encodeStats(bytes, "osel_decisions_total 5\n");
  encodeError(bytes, WireCode::Shed, "queue full");
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(parseStatsRequest(payload).format,
            static_cast<std::uint32_t>(StatsFormat::Prometheus));
  ASSERT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(parseStats(payload), "osel_decisions_total 5\n");
  ASSERT_TRUE(decoder.next(header, payload));
  const ErrorView error = parseError(payload);
  EXPECT_EQ(error.code, WireCode::Shed);
  EXPECT_EQ(error.message, "queue full");
}

TEST(Codec, WireCodeMappingRoundTripsTheTaxonomy) {
  for (const ErrorCode code :
       {ErrorCode::Unknown, ErrorCode::Precondition, ErrorCode::Invariant,
        ErrorCode::TransientLaunch, ErrorCode::DeviceMemory,
        ErrorCode::DeviceLost, ErrorCode::PadLookup}) {
    EXPECT_EQ(errorCodeFor(wireCodeFor(code)), code);
  }
}

TEST(Codec, DecoderReassemblesAByteAtATimeStream) {
  const symbolic::Bindings bindings{{"n", 512}};
  std::string bytes;
  encodeDecideRequest(bytes, 1, "mvt_k1", bindings);
  encodePing(bytes);
  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  std::size_t frames = 0;
  for (const char byte : bytes) {
    decoder.append(&byte, 1);
    while (decoder.next(header, payload)) ++frames;
  }
  EXPECT_EQ(frames, 2u);
}

// --- Hostile frames -------------------------------------------------------

TEST(CodecHostile, OversizedLengthPrefixThrowsBeforeBuffering) {
  FrameHeader header;
  header.length = kDefaultMaxFrameBytes + 1;
  header.type = static_cast<std::uint16_t>(FrameType::DecideRequest);
  FrameDecoder decoder;  // default limit
  decoder.append(&header, sizeof(header));
  // Only the header arrived; the decoder must reject without waiting for
  // (or allocating) the advertised payload.
  FrameHeader out;
  std::string payload;
  try {
    (void)decoder.next(out, payload);
    FAIL() << "oversized length prefix was accepted";
  } catch (const CodecError& error) {
    EXPECT_EQ(error.wireCode(), WireCode::FrameTooLarge);
  }
}

TEST(CodecHostile, TightenedLimitAppliesToTheNextFrame) {
  std::string bytes;
  encodeStats(bytes, std::string(1024, 'x'));
  FrameDecoder decoder;
  decoder.setMaxFrameBytes(64);
  decoder.append(bytes.data(), bytes.size());
  FrameHeader header;
  std::string payload;
  EXPECT_THROW((void)decoder.next(header, payload), CodecError);
}

TEST(CodecHostile, EveryTruncationOfEveryFrameThrowsBadFrame) {
  const symbolic::Bindings bindings{{"n", 64}, {"m", 32}};
  const std::vector<std::string_view> slots{"n"};
  const std::vector<std::int64_t> values{1, 2};
  std::vector<std::string> payloads;
  {
    std::string bytes;
    encodeDecideRequest(bytes, 5, "gemm_k1", bindings);
    FrameHeader header;
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeDecideBatch(bytes, 5, "gemm_k1", slots, 2, values);
    FrameHeader header;
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeDecision(bytes, 5, sampleDecision());
    FrameHeader header;
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeDecisionBatch(bytes, 5, std::vector<runtime::Decision>(
                                      2, sampleDecision()));
    FrameHeader header;
    payloads.push_back(decodeOne(bytes, header));
  }

  for (std::size_t which = 0; which < payloads.size(); ++which) {
    const std::string& full = payloads[which];
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::string truncated = full.substr(0, cut);
      DecideRequestView request;
      DecideBatchView batch;
      DecisionView decision;
      std::vector<DecisionView> decisions;
      switch (which) {
        case 0:
          EXPECT_THROW(parseDecideRequest(truncated, request), CodecError)
              << "DecideRequest cut at " << cut;
          break;
        case 1:
          EXPECT_THROW(parseDecideBatch(truncated, batch), CodecError)
              << "DecideBatch cut at " << cut;
          break;
        case 2:
          EXPECT_THROW(parseDecision(truncated, decision), CodecError)
              << "Decision cut at " << cut;
          break;
        default:
          EXPECT_THROW(parseDecisionBatch(truncated, decisions), CodecError)
              << "DecisionBatch cut at " << cut;
          break;
      }
    }
  }
}

TEST(CodecHostile, TrailingJunkIsRejected) {
  std::string bytes;
  encodeDecideRequest(bytes, 5, "gemm_k1", {{"n", 64}});
  FrameHeader header;
  std::string payload = decodeOne(bytes, header);
  payload += '\0';
  DecideRequestView view;
  EXPECT_THROW(parseDecideRequest(payload, view), CodecError);
}

TEST(CodecHostile, BadMagicAndInvertedVersionRangeThrow) {
  HelloFrame hello;
  std::string bytes;
  encodeHello(bytes, hello);
  FrameHeader header;
  std::string payload = decodeOne(bytes, header);
  std::string badMagic = payload;
  badMagic[0] = 'X';
  EXPECT_THROW((void)parseHello(badMagic), CodecError);

  hello = HelloFrame{};
  hello.versionMin = 3;
  hello.versionMax = 1;  // inverted range
  bytes.clear();
  encodeHello(bytes, hello);
  payload = decodeOne(bytes, header);
  try {
    (void)parseHello(payload);
    FAIL() << "inverted version range was accepted";
  } catch (const CodecError& error) {
    EXPECT_EQ(error.wireCode(), WireCode::UnsupportedVersion);
  }
}

TEST(CodecHostile, CountsThatDoNotAddUpThrow) {
  // bindingCount far larger than the payload could carry (overflow bait).
  std::string payload(sizeof(DecideRequestFrame), '\0');
  DecideRequestFrame request;
  request.regionNameBytes = 0;
  request.bindingCount = 0x40000000u;
  std::memcpy(payload.data(), &request, sizeof(request));
  DecideRequestView requestView;
  EXPECT_THROW(parseDecideRequest(payload, requestView), CodecError);

  // slotCount * rowCount value block missing.
  payload.assign(sizeof(DecideBatchFrame), '\0');
  DecideBatchFrame batch;
  batch.regionNameBytes = 0;
  batch.slotCount = 0x20000000u;
  batch.rowCount = 8;
  std::memcpy(payload.data(), &batch, sizeof(batch));
  DecideBatchView batchView;
  EXPECT_THROW(parseDecideBatch(payload, batchView), CodecError);
}

TEST(CodecHostile, ZeroSlotBatchClaimingRowsThrows) {
  // With slotCount == 0 the value-matrix size check is vacuous (0 * rows
  // values == 0 remaining bytes), so without its own guard a 32-byte frame
  // could claim 4 billion rows and drive the server into rowCount-sized
  // allocations.
  std::string payload(sizeof(DecideBatchFrame), '\0');
  DecideBatchFrame batch;
  batch.regionNameBytes = 0;
  batch.slotCount = 0;
  batch.rowCount = 0xFFFFFFFFu;
  std::memcpy(payload.data(), &batch, sizeof(batch));
  DecideBatchView view;
  try {
    parseDecideBatch(payload, view);
    FAIL() << "zero-slot row-carrying batch was accepted";
  } catch (const CodecError& error) {
    EXPECT_EQ(error.wireCode(), WireCode::BadFrame);
  }

  // Zero slots with zero rows stays a legal (empty) batch.
  batch.rowCount = 0;
  std::memcpy(payload.data(), &batch, sizeof(batch));
  parseDecideBatch(payload, view);
  EXPECT_EQ(view.rows, 0u);
  EXPECT_TRUE(view.slots.empty());

  // The encoder enforces the same wire rule, so a buggy client fails fast
  // instead of producing a frame every server rejects.
  std::string bytes;
  EXPECT_THROW(encodeDecideBatch(bytes, 1, "stream", {}, 3, {}),
               std::logic_error);
}

TEST(CodecHostile, DeviceOutOfRangeThrows) {
  std::string bytes;
  encodeDecision(bytes, 5, sampleDecision());
  FrameHeader header;
  std::string payload = decodeOne(bytes, header);
  payload[offsetof(DecisionRecord, device)] = 2;
  DecisionView view;
  EXPECT_THROW(parseDecision(payload, view), CodecError);
}

TEST(CodecHostile, RandomMutationsNeverEscapeAsNonCodecErrors) {
  std::vector<std::string> seeds;
  {
    std::string bytes;
    encodeDecideRequest(bytes, 1, "gemm_k1", {{"n", 64}, {"m", 8}});
    FrameHeader header;
    seeds.push_back(decodeOne(bytes, header));
    bytes.clear();
    const std::vector<std::string_view> slots{"n", "m"};
    const std::vector<std::int64_t> values{1, 2, 3, 4};
    encodeDecideBatch(bytes, 1, "gemm_k1", slots, 2, values);
    seeds.push_back(decodeOne(bytes, header));
    bytes.clear();
    encodeDecisionBatch(bytes, 1,
                        std::vector<runtime::Decision>(2, sampleDecision()));
    seeds.push_back(decodeOne(bytes, header));
  }
  std::mt19937 rng(2019);  // deterministic: this is a regression corpus
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = seeds[rng() % seeds.size()];
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] =
          static_cast<char>(static_cast<unsigned char>(rng()));
    }
    DecideRequestView request;
    DecideBatchView batch;
    std::vector<DecisionView> decisions;
    try {
      parseDecideRequest(mutated, request);
    } catch (const CodecError&) {
    }
    try {
      parseDecideBatch(mutated, batch);
    } catch (const CodecError&) {
    }
    try {
      parseDecisionBatch(mutated, decisions);
    } catch (const CodecError&) {
    }
  }
}

TEST(CodecHostile, RandomGarbageStreamsNeverCrashTheDecoder) {
  std::mt19937 rng(7);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder(4096);
    FrameHeader header;
    std::string payload;
    std::string garbage(1 + rng() % 512, '\0');
    for (char& byte : garbage) {
      byte = static_cast<char>(static_cast<unsigned char>(rng()));
    }
    try {
      decoder.append(garbage.data(), garbage.size());
      while (decoder.next(header, payload)) {
      }
    } catch (const CodecError&) {
      // FrameTooLarge from a garbage length prefix: expected.
    }
  }
}

// --- Trace context --------------------------------------------------------
// The kFeatureTraceContext layouts are negotiation-dependent: with the
// feature granted every decide/decision/error frame carries a 16-byte
// TraceContextBlock after its fixed struct; without it the frames must stay
// byte-identical to the pre-feature layout. Both halves are fuzzed.

TraceContextBlock sampleTrace() {
  TraceContextBlock trace;
  trace.traceId = 0xABCDEF0123456789ull;
  trace.flags = kTraceFlagSampled;
  return trace;
}

TEST(CodecTrace, TraceBlockRoundTripsOnEveryDecideFrame) {
  const TraceContextBlock trace = sampleTrace();
  const symbolic::Bindings bindings{{"n", 64}};
  const std::vector<std::string_view> slots{"n"};
  const std::vector<std::int64_t> values{1, 2};
  FrameHeader header;

  std::string bytes;
  encodeDecideRequest(bytes, 5, "gemm_k1", bindings, &trace);
  DecideRequestView request;
  parseDecideRequest(decodeOne(bytes, header), request, true);
  EXPECT_TRUE(request.hasTrace);
  EXPECT_EQ(request.trace.traceId, trace.traceId);
  EXPECT_EQ(request.trace.flags, kTraceFlagSampled);
  EXPECT_EQ(request.region, "gemm_k1");
  ASSERT_EQ(request.bindings.size(), 1u);
  EXPECT_EQ(request.bindings[0].value, 64);

  bytes.clear();
  encodeDecideBatch(bytes, 5, "gemm_k1", slots, 2, values, &trace);
  DecideBatchView batch;
  parseDecideBatch(decodeOne(bytes, header), batch, true);
  EXPECT_TRUE(batch.hasTrace);
  EXPECT_EQ(batch.trace.traceId, trace.traceId);
  EXPECT_EQ(batch.value(0, 1), 2);

  bytes.clear();
  encodeDecision(bytes, 5, sampleDecision(), &trace);
  DecisionView decision;
  parseDecision(decodeOne(bytes, header), decision, true);
  EXPECT_TRUE(decision.hasTrace);
  EXPECT_EQ(decision.trace.traceId, trace.traceId);
  EXPECT_EQ(decision.decision.diagnostic, "all models agree");

  bytes.clear();
  encodeDecisionBatch(bytes, 1000,
                      std::vector<runtime::Decision>(2, sampleDecision()),
                      &trace);
  std::vector<DecisionView> views;
  parseDecisionBatch(decodeOne(bytes, header), views, true);
  ASSERT_EQ(views.size(), 2u);
  // One shared frame-level block, echoed into every row view.
  EXPECT_TRUE(views[0].hasTrace);
  EXPECT_TRUE(views[1].hasTrace);
  EXPECT_EQ(views[1].trace.traceId, trace.traceId);

  bytes.clear();
  encodeError(bytes, WireCode::Shed, "queue full", &trace);
  const ErrorView error = parseError(decodeOne(bytes, header), true);
  EXPECT_TRUE(error.hasTrace);
  EXPECT_EQ(error.trace.traceId, trace.traceId);
  EXPECT_EQ(error.message, "queue full");
}

TEST(CodecTrace, NegotiationMismatchIsRejectedBothWays) {
  // A trace-carrying frame parsed trace-off has 16 trailing bytes; a plain
  // frame parsed trace-on is 16 bytes short. Either way the peer is
  // half-speaking the feature and the parse must throw, never misread.
  const TraceContextBlock trace = sampleTrace();
  FrameHeader header;
  std::string bytes;
  encodeDecideRequest(bytes, 5, "gemm_k1", {{"n", 64}}, &trace);
  const std::string withTrace = decodeOne(bytes, header);
  bytes.clear();
  encodeDecideRequest(bytes, 5, "gemm_k1", {{"n", 64}});
  const std::string withoutTrace = decodeOne(bytes, header);

  DecideRequestView view;
  EXPECT_THROW(parseDecideRequest(withTrace, view, false), CodecError);
  EXPECT_THROW(parseDecideRequest(withoutTrace, view, true), CodecError);

  bytes.clear();
  encodeDecision(bytes, 5, sampleDecision(), &trace);
  const std::string decisionWith = decodeOne(bytes, header);
  bytes.clear();
  encodeDecision(bytes, 5, sampleDecision());
  const std::string decisionWithout = decodeOne(bytes, header);
  DecisionView decision;
  EXPECT_THROW(parseDecision(decisionWith, decision, false), CodecError);
  EXPECT_THROW(parseDecision(decisionWithout, decision, true), CodecError);
}

TEST(CodecTrace, EveryTruncationOfEveryTraceFrameThrowsBadFrame) {
  const TraceContextBlock trace = sampleTrace();
  const symbolic::Bindings bindings{{"n", 64}, {"m", 32}};
  const std::vector<std::string_view> slots{"n"};
  const std::vector<std::int64_t> values{1, 2};
  FrameHeader header;
  std::vector<std::string> payloads;
  {
    std::string bytes;
    encodeDecideRequest(bytes, 5, "gemm_k1", bindings, &trace);
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeDecideBatch(bytes, 5, "gemm_k1", slots, 2, values, &trace);
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeDecision(bytes, 5, sampleDecision(), &trace);
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeDecisionBatch(bytes, 5,
                        std::vector<runtime::Decision>(2, sampleDecision()),
                        &trace);
    payloads.push_back(decodeOne(bytes, header));
  }
  {
    std::string bytes;
    encodeError(bytes, WireCode::Shed, "queue full", &trace);
    payloads.push_back(decodeOne(bytes, header));
  }

  for (std::size_t which = 0; which < payloads.size(); ++which) {
    const std::string& full = payloads[which];
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      const std::string truncated = full.substr(0, cut);
      DecideRequestView request;
      DecideBatchView batch;
      DecisionView decision;
      std::vector<DecisionView> decisions;
      switch (which) {
        case 0:
          EXPECT_THROW(parseDecideRequest(truncated, request, true),
                       CodecError)
              << "traced DecideRequest cut at " << cut;
          break;
        case 1:
          EXPECT_THROW(parseDecideBatch(truncated, batch, true), CodecError)
              << "traced DecideBatch cut at " << cut;
          break;
        case 2:
          EXPECT_THROW(parseDecision(truncated, decision, true), CodecError)
              << "traced Decision cut at " << cut;
          break;
        case 3:
          EXPECT_THROW(parseDecisionBatch(truncated, decisions, true),
                       CodecError)
              << "traced DecisionBatch cut at " << cut;
          break;
        default:
          EXPECT_THROW((void)parseError(truncated, true), CodecError)
              << "traced Error cut at " << cut;
          break;
      }
    }
  }
}

TEST(CodecTrace, RandomMutationsOfTraceFramesNeverEscapeAsNonCodecErrors) {
  const TraceContextBlock trace = sampleTrace();
  std::vector<std::string> seeds;
  {
    std::string bytes;
    FrameHeader header;
    encodeDecideRequest(bytes, 1, "gemm_k1", {{"n", 64}, {"m", 8}}, &trace);
    seeds.push_back(decodeOne(bytes, header));
    bytes.clear();
    const std::vector<std::string_view> slots{"n", "m"};
    const std::vector<std::int64_t> values{1, 2, 3, 4};
    encodeDecideBatch(bytes, 1, "gemm_k1", slots, 2, values, &trace);
    seeds.push_back(decodeOne(bytes, header));
    bytes.clear();
    encodeDecisionBatch(bytes, 1,
                        std::vector<runtime::Decision>(2, sampleDecision()),
                        &trace);
    seeds.push_back(decodeOne(bytes, header));
  }
  std::mt19937 rng(2026);  // deterministic: this is a regression corpus
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = seeds[rng() % seeds.size()];
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int f = 0; f < flips; ++f) {
      mutated[rng() % mutated.size()] =
          static_cast<char>(static_cast<unsigned char>(rng()));
    }
    // Each mutant is parsed under both negotiation states: mutations must
    // surface as CodecError regardless of which layout the parser expects.
    for (const bool traced : {true, false}) {
      DecideRequestView request;
      DecideBatchView batch;
      std::vector<DecisionView> decisions;
      try {
        parseDecideRequest(mutated, request, traced);
      } catch (const CodecError&) {
      }
      try {
        parseDecideBatch(mutated, batch, traced);
      } catch (const CodecError&) {
      }
      try {
        parseDecisionBatch(mutated, decisions, traced);
      } catch (const CodecError&) {
      }
    }
  }
}

TEST(Codec, SlowLogRoundTrip) {
  std::string bytes;
  encodeSlowLogRequest(bytes, 16);
  encodeSlowLog(bytes, "{\"seq\":0}\n");
  FrameDecoder decoder;
  decoder.append(bytes.data(), bytes.size());
  FrameHeader header;
  std::string payload;
  ASSERT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(header.type,
            static_cast<std::uint16_t>(FrameType::SlowLogRequest));
  EXPECT_EQ(parseSlowLogRequest(payload).maxRecords, 16u);
  ASSERT_TRUE(decoder.next(header, payload));
  EXPECT_EQ(header.type, static_cast<std::uint16_t>(FrameType::SlowLog));
  EXPECT_EQ(parseSlowLog(payload), "{\"seq\":0}\n");
}

TEST(CodecHostile, TruncatedSlowLogRequestThrows) {
  std::string bytes;
  encodeSlowLogRequest(bytes, 3);
  FrameHeader header;
  const std::string full = decodeOne(bytes, header);
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_THROW((void)parseSlowLogRequest(full.substr(0, cut)), CodecError)
        << "SlowLogRequest cut at " << cut;
  }
  EXPECT_THROW((void)parseSlowLogRequest(full + '\0'), CodecError);
}

}  // namespace
}  // namespace osel::service

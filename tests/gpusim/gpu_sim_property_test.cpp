// Property tests for the ground-truth GPU simulator: determinism, scaling
// behaviour, and cross-consistency between the simulator's measured
// transaction statistics and IPDA's static stride classification.
#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/coalescer.h"
#include "gpusim/gpu_simulator.h"
#include "ipda/ipda.h"
#include "ir/builder.h"
#include "support/rng.h"

namespace osel::gpusim {
namespace {

using namespace osel::ir;

/// Random two-array kernel whose access strides vary with the seed: the
/// B read uses one of several index shapes.
TargetRegion randomKernel(std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  RegionBuilder b("random_" + std::to_string(seed));
  b.param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"));
  symbolic::Expr row = sym("i");
  symbolic::Expr col = sym("j");
  switch (rng.nextBelow(4)) {
    case 0:
      break;  // A[i][j], coalesced
    case 1:
      std::swap(row, col);  // A[j][i], strided
      break;
    case 2:
      col = sym("j") * 2;  // stride 2 (requires extent care: use n/2 range)
      b = RegionBuilder("random_" + std::to_string(seed));
      b.param("n")
          .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
          .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .parallelFor("j", sym("n") - sym("n") + cst(64));  // fixed 64
      col = sym("j") * 2;
      break;
    default:
      col = cst(0);  // uniform
      break;
  }
  b.statement(Stmt::store("B", {sym("i"), sym("j")},
                          read("A", {row, col}) + num(1.0)));
  return b.build();
}

class GpuSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpuSimProperty, SimulationIsDeterministic) {
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 192}};
  const GpuSimulator sim(GpuSimParams::teslaV100());
  ArrayStore storeA = allocateArrays(region, bindings);
  ArrayStore storeB = allocateArrays(region, bindings);
  const GpuSimResult a = sim.simulate(region, bindings, storeA);
  const GpuSimResult b = sim.simulate(region, bindings, storeB);
  EXPECT_DOUBLE_EQ(a.kernelSeconds, b.kernelSeconds);
  EXPECT_DOUBLE_EQ(a.totalSeconds, b.totalSeconds);
  EXPECT_EQ(a.sampledTransactions, b.sampledTransactions);
  EXPECT_DOUBLE_EQ(a.l1HitRate, b.l1HitRate);
}

TEST_P(GpuSimProperty, TransactionsMatchIpdaClassification) {
  // The simulator's average transactions per access must equal the
  // dynamic-count-weighted coalescer prediction from IPDA strides.
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 192}};
  const GpuSimParams params = GpuSimParams::teslaV100();
  ArrayStore store = allocateArrays(region, bindings);
  const GpuSimResult result =
      GpuSimulator(params).simulate(region, bindings, store);

  const ipda::Analysis analysis = ipda::Analysis::analyze(region);
  // Both sites execute once per parallel iteration here, so the unweighted
  // mean over sites is the expected value.
  double expected = 0.0;
  for (const auto& record : analysis.records()) {
    expected += transactionsForClassification(
        record.classify(bindings), static_cast<std::int64_t>(record.elementBytes),
        params.device.warpSize, params.memory.sectorBytes);
  }
  expected /= static_cast<double>(analysis.records().size());
  EXPECT_NEAR(result.avgTransactionsPerAccess, expected, 1e-9);
}

TEST_P(GpuSimProperty, LargerProblemsNeverFaster) {
  const TargetRegion region = randomKernel(GetParam());
  const GpuSimulator sim(GpuSimParams::teslaV100());
  double previous = 0.0;
  for (const std::int64_t n : {128, 256, 512}) {
    const symbolic::Bindings bindings{{"n", n}};
    ArrayStore store = allocateArrays(region, bindings);
    const double t = sim.simulate(region, bindings, store).totalSeconds;
    EXPECT_GE(t, previous * 0.95) << n;  // sampling jitter tolerance
    previous = t;
  }
}

TEST_P(GpuSimProperty, K80NeverBeatsV100OnTheseKernels) {
  // Uniformly better device parameters (bandwidth, link, SMs) must never
  // lose on these simple one-statement kernels.
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 256}};
  ArrayStore storeA = allocateArrays(region, bindings);
  ArrayStore storeB = allocateArrays(region, bindings);
  const double v100 = GpuSimulator(GpuSimParams::teslaV100())
                          .simulate(region, bindings, storeA)
                          .totalSeconds;
  const double k80 = GpuSimulator(GpuSimParams::teslaK80())
                         .simulate(region, bindings, storeB)
                         .totalSeconds;
  EXPECT_LT(v100, k80);
}

TEST_P(GpuSimProperty, ResultInvariantsHold) {
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 200}};
  ArrayStore store = allocateArrays(region, bindings);
  const GpuSimResult r =
      GpuSimulator(GpuSimParams::teslaV100()).simulate(region, bindings, store);
  EXPECT_TRUE(std::isfinite(r.totalSeconds));
  EXPECT_GE(r.kernelSeconds, 0.0);
  EXPECT_GE(r.transferSeconds, 0.0);
  EXPECT_NEAR(r.totalSeconds,
              r.kernelSeconds + r.transferSeconds + r.launchSeconds, 1e-12);
  EXPECT_GE(r.sampledTransactions, r.sampledMemAccesses);
  for (const double rate : {r.l1HitRate, r.l2HitRate, r.tlbHitRate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_NEAR(r.issueBoundFraction + r.latencyBoundFraction +
                  r.bandwidthBoundFraction,
              1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuSimProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace osel::gpusim

#include "gpusim/gpu_simulator.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace osel::gpusim {
namespace {

using namespace osel::ir;

/// Streaming kernel with selectable inner-dim parallelism: when `coalesced`,
/// both parallel dims map so adjacent threads read adjacent elements; when
/// not, only the outer dim is parallel and each thread strides a whole row.
TargetRegion streamKernel(bool coalesced) {
  RegionBuilder b(coalesced ? "stream_coalesced" : "stream_strided");
  b.param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From);
  if (coalesced) {
    b.parallelFor("i", sym("n"))
        .parallelFor("j", sym("n"))
        .statement(Stmt::store("B", {sym("i"), sym("j")},
                               read("A", {sym("i"), sym("j")}) * num(2.0)));
  } else {
    // Thread var is the *row* index i: A[i][j] is n elements apart between
    // adjacent threads -> fully uncoalesced.
    b.parallelFor("i", sym("n"))
        .statement(Stmt::seqLoop(
            "j", cst(0), sym("n"),
            {Stmt::store("B", {sym("i"), sym("j")},
                         read("A", {sym("i"), sym("j")}) * num(2.0))}));
  }
  return b.build();
}

GpuSimResult runSim(const GpuSimParams& params, const TargetRegion& region,
                    std::int64_t n) {
  const symbolic::Bindings bindings{{"n", n}};
  ArrayStore store = allocateArrays(region, bindings);
  return GpuSimulator(params).simulate(region, bindings, store);
}

TEST(GpuSimulator, GeometryMatchesRuntimePolicy) {
  const GpuSimResult r = runSim(GpuSimParams::teslaV100(), streamKernel(true), 256);
  EXPECT_EQ(r.threadsPerBlock, 128);
  EXPECT_EQ(r.blocks, 512);  // 256*256/128
  EXPECT_DOUBLE_EQ(r.ompRep, 1.0);
  EXPECT_GT(r.waves, 0);
}

TEST(GpuSimulator, OmpRepBeyondGridCap) {
  GpuSimParams params = GpuSimParams::teslaV100();
  params.device.maxGridBlocks = 64;
  const GpuSimResult r = runSim(params, streamKernel(true), 512);
  // 512*512 = 262144 iterations; grid 64*128 = 8192 threads -> 32 reps.
  EXPECT_EQ(r.blocks, 64);
  EXPECT_DOUBLE_EQ(r.ompRep, 32.0);
}

TEST(GpuSimulator, CoalescedBeatsStridedKernelTime) {
  const GpuSimParams params = GpuSimParams::teslaV100();
  const double coalesced =
      runSim(params, streamKernel(true), 1100).kernelSeconds;
  const double strided = runSim(params, streamKernel(false), 1100).kernelSeconds;
  EXPECT_GT(strided, 2.0 * coalesced);
}

TEST(GpuSimulator, TransactionStatsReflectCoalescing) {
  const GpuSimParams params = GpuSimParams::teslaV100();
  const GpuSimResult coalesced = runSim(params, streamKernel(true), 512);
  const GpuSimResult strided = runSim(params, streamKernel(false), 512);
  // Unit-stride f32: 4 sectors per warp access.
  EXPECT_NEAR(coalesced.avgTransactionsPerAccess, 4.0, 0.01);
  // Row-stride f32 (512*4B apart): fully serialized.
  EXPECT_NEAR(strided.avgTransactionsPerAccess, 32.0, 0.01);
}

TEST(GpuSimulator, MemoryBoundKernelFasterOnV100) {
  const TargetRegion kernel = streamKernel(true);
  const double v100 = runSim(GpuSimParams::teslaV100(), kernel, 1100).totalSeconds;
  const double k80 = runSim(GpuSimParams::teslaK80(), kernel, 1100).totalSeconds;
  EXPECT_GT(k80, 2.0 * v100);
}

TEST(GpuSimulator, TransferScalesWithBytes) {
  const GpuSimParams params = GpuSimParams::teslaV100();
  const double small = runSim(params, streamKernel(true), 256).transferSeconds;
  const double large = runSim(params, streamKernel(true), 2048).transferSeconds;
  // 64x the data; fixed DMA latency damps the ratio but growth must be
  // strongly superlinear in this range.
  EXPECT_GT(large, 10.0 * small);
}

TEST(GpuSimulator, KernelTimeGrowsWithProblemSize) {
  const GpuSimParams params = GpuSimParams::teslaV100();
  const double small = runSim(params, streamKernel(true), 256).kernelSeconds;
  const double large = runSim(params, streamKernel(true), 2048).kernelSeconds;
  EXPECT_GT(large, 10.0 * small);
}

TEST(GpuSimulator, TinyKernelDominatedByTransferAndLaunch) {
  const GpuSimResult r = runSim(GpuSimParams::teslaV100(), streamKernel(true), 16);
  EXPECT_GT(r.transferSeconds + r.launchSeconds, r.kernelSeconds);
  EXPECT_NEAR(r.totalSeconds,
              r.kernelSeconds + r.transferSeconds + r.launchSeconds, 1e-12);
}

TEST(GpuSimulator, HitRatesWithinBounds) {
  const GpuSimResult r = runSim(GpuSimParams::teslaV100(), streamKernel(false), 700);
  EXPECT_GE(r.l1HitRate, 0.0);
  EXPECT_LE(r.l1HitRate, 1.0);
  EXPECT_GE(r.l2HitRate, 0.0);
  EXPECT_LE(r.l2HitRate, 1.0);
  EXPECT_GT(r.sampledMemAccesses, 0u);
  EXPECT_GE(r.sampledTransactions, r.sampledMemAccesses);
}

TEST(GpuSimulator, BoundFractionsPartitionUnity) {
  const GpuSimResult r = runSim(GpuSimParams::teslaV100(), streamKernel(true), 512);
  const double total = r.issueBoundFraction + r.latencyBoundFraction +
                       r.bandwidthBoundFraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(GpuSimulator, DenserSamplingStaysClose) {
  // Sampling is an approximation; a 4x denser budget must agree within a
  // modest factor on a homogeneous kernel.
  GpuSimParams sparse = GpuSimParams::teslaV100();
  GpuSimParams dense = GpuSimParams::teslaV100();
  dense.sampling.warpsPerWave = 16;
  dense.sampling.repsPerThread = 16;
  dense.sampling.waves = 12;
  const TargetRegion kernel = streamKernel(true);
  const double sparseTime = runSim(sparse, kernel, 768).kernelSeconds;
  const double denseTime = runSim(dense, kernel, 768).kernelSeconds;
  EXPECT_LT(std::abs(sparseTime - denseTime) / denseTime, 0.35);
}

TEST(GpuSimulator, SampledThreadsProduceRealResults) {
  // The simulator executes sampled threads functionally on real data.
  const TargetRegion region = streamKernel(true);
  const symbolic::Bindings bindings{{"n", 256}};
  ArrayStore store = allocateArrays(region, bindings);
  for (auto& v : store["A"]) v = 3.0;
  (void)GpuSimulator(GpuSimParams::teslaV100()).simulate(region, bindings, store);
  // Thread 0 of block 0 is always sampled; B[0][0] = 2*A[0][0].
  EXPECT_DOUBLE_EQ(store["B"][0], 6.0);
}

TEST(GpuSimulator, DataDependentBranchesUseRealData) {
  // Guarded store kernel: only negative entries rewritten. Real data decide
  // the branch, unlike the model's 50% abstraction.
  const TargetRegion region =
      RegionBuilder("guarded")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("x", {sym("i")}), CmpOp::LT, num(0.0)},
              {Stmt::store("y", {sym("i")}, num(1.0))}))
          .build();
  const symbolic::Bindings bindings{{"n", 4096}};
  ArrayStore store = allocateArrays(region, bindings);
  GpuSimulator sim(GpuSimParams::teslaV100());
  // All positive: no stores -> fewer accesses than all-negative.
  for (auto& v : store["x"]) v = 1.0;
  const auto fewer = sim.simulate(region, bindings, store).sampledMemAccesses;
  for (auto& v : store["x"]) v = -1.0;
  const auto more = sim.simulate(region, bindings, store).sampledMemAccesses;
  EXPECT_GT(more, fewer);
}

TEST(GpuSimulator, TlbHitRateTracked) {
  // Streaming kernels walk pages sequentially: high TLB hit rate.
  const GpuSimResult streaming =
      runSim(GpuSimParams::teslaV100(), streamKernel(true), 1024);
  EXPECT_GT(streaming.tlbHitRate, 0.9);
  EXPECT_LE(streaming.tlbHitRate, 1.0);
}

TEST(GpuSimulator, TlbMissesSlowWidePageStrides) {
  // Same kernel, TLB disabled-vs-enabled comparison via the miss penalty.
  GpuSimParams noPenalty = GpuSimParams::teslaV100();
  noPenalty.memory.tlbMissCycles = 0.0;
  GpuSimParams heavy = GpuSimParams::teslaV100();
  heavy.memory.tlbMissCycles = 2000.0;
  heavy.memory.tlbEntries = 2;  // thrash
  const TargetRegion kernel = streamKernel(false);  // row-strided walker
  const double fast = runSim(noPenalty, kernel, 1400).kernelSeconds;
  const double slow = runSim(heavy, kernel, 1400).kernelSeconds;
  EXPECT_GT(slow, fast);
}

TEST(GpuSimulator, ToStringMentionsKeyStats) {
  const GpuSimResult r = runSim(GpuSimParams::teslaV100(), streamKernel(true), 256);
  const std::string text = r.toString();
  EXPECT_NE(text.find("GPU sim"), std::string::npos);
  EXPECT_NE(text.find("OMP_Rep"), std::string::npos);
  EXPECT_NE(text.find("L1"), std::string::npos);
}

}  // namespace
}  // namespace osel::gpusim

// Brute-force verification of the coalescer formula: for random strides,
// element sizes, warp sizes, and base offsets, the closed-form transaction
// count must match (or safely bound) the exact count of distinct sectors
// the warp's lanes touch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "gpusim/coalescer.h"
#include "support/rng.h"

namespace osel::gpusim {
namespace {

/// Exact distinct-sector count for lanes l*stride*elem .. covering elem
/// bytes each, at a given base offset.
int bruteForceSectors(std::int64_t strideElements, std::int64_t elementBytes,
                      int warpSize, int sectorBytes, std::int64_t baseBytes) {
  std::set<std::int64_t> sectors;
  for (int lane = 0; lane < warpSize; ++lane) {
    const std::int64_t first = baseBytes + lane * strideElements * elementBytes;
    for (std::int64_t b = 0; b < elementBytes; ++b)
      sectors.insert((first + b) / sectorBytes);
  }
  return static_cast<int>(sectors.size());
}

class CoalescerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoalescerProperty, FormulaMatchesBruteForceAtAlignedBase) {
  support::SplitMix64 rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t stride = static_cast<std::int64_t>(rng.nextBelow(40)) - 8;
    const std::int64_t elem = (rng.nextBelow(2) == 0) ? 4 : 8;
    const int warp = 32;
    const int sector = 32;
    const int predicted = transactionsForStride(stride, elem, warp, sector);
    // Aligned base, offset so negative strides stay at positive addresses
    // (integer division semantics).
    const std::int64_t base = 64LL * warp * elem;  // sector-aligned
    const int exact = bruteForceSectors(stride, elem, warp, sector, base);
    // The formula caps at warpSize and rounds the span up; it must never
    // under-count at an aligned base and never overshoot by more than one
    // sector (span rounding).
    EXPECT_GE(predicted + 1, exact)
        << "stride " << stride << " elem " << elem;
    EXPECT_LE(predicted, std::max(exact + 1, warp))
        << "stride " << stride << " elem " << elem;
    if (stride != 0 && std::abs(stride) * elem >= sector) {
      EXPECT_EQ(predicted, warp);  // fully serialized regime is exact
      EXPECT_EQ(exact, warp);
    }
  }
}

TEST_P(CoalescerProperty, MisalignedBaseAddsAtMostOneSector) {
  support::SplitMix64 rng(GetParam() ^ 0xA11A);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t stride = static_cast<std::int64_t>(rng.nextBelow(5));
    const std::int64_t elem = 4;
    const std::int64_t base =
        static_cast<std::int64_t>(rng.nextBelow(32) & ~3u);  // elem-aligned
    const int aligned = bruteForceSectors(stride, elem, 32, 32, 0);
    const int shifted = bruteForceSectors(stride, elem, 32, 32, base);
    EXPECT_LE(shifted, aligned + 1);
    EXPECT_GE(shifted, aligned);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoalescerProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace osel::gpusim

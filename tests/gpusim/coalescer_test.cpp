#include "gpusim/coalescer.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace osel::gpusim {
namespace {

TEST(Coalescer, BroadcastIsOneTransaction) {
  EXPECT_EQ(transactionsForStride(0, 8, 32, 32), 1);
  EXPECT_EQ(transactionsForStride(0, 4, 32, 32), 1);
}

TEST(Coalescer, UnitStrideF32) {
  // 32 lanes x 4B = 128B span = 4 sectors of 32B.
  EXPECT_EQ(transactionsForStride(1, 4, 32, 32), 4);
}

TEST(Coalescer, UnitStrideF64) {
  // 32 lanes x 8B = 256B span = 8 sectors.
  EXPECT_EQ(transactionsForStride(1, 8, 32, 32), 8);
}

TEST(Coalescer, NegativeUnitStrideSameAsPositive) {
  EXPECT_EQ(transactionsForStride(-1, 8, 32, 32),
            transactionsForStride(1, 8, 32, 32));
}

TEST(Coalescer, StrideTwoF32DoublesSpan) {
  // Stride 2 x 4B = 8B apart: span 252B -> 8 sectors.
  EXPECT_EQ(transactionsForStride(2, 4, 32, 32), 8);
}

TEST(Coalescer, WideStrideFullySerializes) {
  EXPECT_EQ(transactionsForStride(100, 8, 32, 32), 32);
  EXPECT_EQ(transactionsForStride(9600, 4, 32, 32), 32);
  // Stride whose byte distance exactly equals the sector size also
  // serializes: each lane starts a new sector.
  EXPECT_EQ(transactionsForStride(8, 4, 32, 32), 32);
}

TEST(Coalescer, MonotoneInStride) {
  int previous = 0;
  for (const std::int64_t stride : {0, 1, 2, 3, 4, 6, 8, 16, 64}) {
    const int t = transactionsForStride(stride, 4, 32, 32);
    EXPECT_GE(t, previous) << "stride " << stride;
    previous = t;
  }
}

TEST(Coalescer, CappedAtWarpSize) {
  for (const std::int64_t stride : {1, 5, 17, 1000000}) {
    EXPECT_LE(transactionsForStride(stride, 8, 32, 32), 32);
    EXPECT_GE(transactionsForStride(stride, 8, 32, 32), 1);
  }
}

TEST(Coalescer, SmallerWarpsFewerTransactions) {
  EXPECT_LT(transactionsForStride(1, 8, 8, 32), transactionsForStride(1, 8, 32, 32));
}

TEST(Coalescer, ClassificationDispatch) {
  ipda::Classification uniform{ipda::CoalescingClass::Uniform, 0};
  EXPECT_EQ(transactionsForClassification(uniform, 8, 32, 32), 1);

  ipda::Classification coalesced{ipda::CoalescingClass::Coalesced, 1};
  EXPECT_EQ(transactionsForClassification(coalesced, 8, 32, 32), 8);

  ipda::Classification strided{ipda::CoalescingClass::Strided, 9600};
  EXPECT_EQ(transactionsForClassification(strided, 8, 32, 32), 32);

  ipda::Classification irregular{};  // defaults to Irregular
  EXPECT_EQ(transactionsForClassification(irregular, 8, 32, 32), 32);
}

TEST(Coalescer, RejectsBadGeometry) {
  EXPECT_THROW((void)transactionsForStride(1, 0, 32, 32),
               support::PreconditionError);
  EXPECT_THROW((void)transactionsForStride(1, 8, 0, 32),
               support::PreconditionError);
  EXPECT_THROW((void)transactionsForStride(1, 8, 32, 0),
               support::PreconditionError);
}

}  // namespace
}  // namespace osel::gpusim

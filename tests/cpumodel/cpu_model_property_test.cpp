// Property tests for the Liao/Chapman CPU cost model: monotonicities and
// decompositions that must hold for any workload.
#include <gtest/gtest.h>

#include <cmath>

#include "cpumodel/cpu_model.h"
#include "support/rng.h"

namespace osel::cpumodel {
namespace {

CpuWorkload randomWorkload(support::SplitMix64& rng) {
  CpuWorkload w;
  w.machineCyclesPerIter = 1.0 + static_cast<double>(rng.nextBelow(100000));
  w.parallelTripCount = 1 + static_cast<std::int64_t>(rng.nextBelow(10000000));
  w.bytesTouchedPerIteration = static_cast<double>(rng.nextBelow(1 << 16));
  w.falseSharingRisk = rng.nextBelow(2) == 0;
  w.schedule =
      rng.nextBelow(2) == 0 ? ScheduleKind::Static : ScheduleKind::Dynamic;
  return w;
}

class CpuModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuModelProperty, TotalIsSumOfComponents) {
  support::SplitMix64 rng(GetParam());
  const CpuCostModel model(CpuModelParams::power9(), 16);
  const CpuPrediction p = model.predict(randomWorkload(rng));
  EXPECT_NEAR(p.totalCycles,
              p.forkJoinCycles + p.scheduleCycles + p.workCycles +
                  p.loopOverheadCycles + p.tlbCycles + p.falseSharingCycles,
              1e-6 * p.totalCycles + 1e-9);
  EXPECT_NEAR(p.seconds, p.totalCycles / 3.0e9, 1e-15);
}

TEST_P(CpuModelProperty, MonotoneInWorkPerIteration) {
  support::SplitMix64 rng(GetParam() ^ 0x1111);
  const CpuCostModel model(CpuModelParams::power9(), 8);
  CpuWorkload w = randomWorkload(rng);
  const double base = model.predict(w).seconds;
  w.machineCyclesPerIter *= 2.0;
  EXPECT_GE(model.predict(w).seconds, base);
}

TEST_P(CpuModelProperty, MonotoneInTripCount) {
  support::SplitMix64 rng(GetParam() ^ 0x2222);
  const CpuCostModel model(CpuModelParams::power9(), 8);
  CpuWorkload w = randomWorkload(rng);
  const double base = model.predict(w).seconds;
  w.parallelTripCount *= 4;
  EXPECT_GE(model.predict(w).seconds, base);
}

TEST_P(CpuModelProperty, MonotoneInFootprint) {
  support::SplitMix64 rng(GetParam() ^ 0x3333);
  const CpuCostModel model(CpuModelParams::power9(), 8);
  CpuWorkload w = randomWorkload(rng);
  const double base = model.predict(w).tlbCycles;
  w.bytesTouchedPerIteration = w.bytesTouchedPerIteration * 8.0 + 1024.0;
  EXPECT_GE(model.predict(w).tlbCycles, base);
}

TEST_P(CpuModelProperty, FalseSharingOnlyEverAdds) {
  support::SplitMix64 rng(GetParam() ^ 0x4444);
  const CpuCostModel model(CpuModelParams::power9(), 32);
  CpuWorkload w = randomWorkload(rng);
  w.falseSharingRisk = false;
  const double clean = model.predict(w).seconds;
  w.falseSharingRisk = true;
  EXPECT_GE(model.predict(w).seconds, clean);
}

TEST_P(CpuModelProperty, DynamicScheduleNeverCheaperThanStatic) {
  // In *this model* dynamic only adds dispatch transactions (the balance
  // benefit is a ground-truth effect the model does not see).
  support::SplitMix64 rng(GetParam() ^ 0x5555);
  const CpuCostModel model(CpuModelParams::power9(), 16);
  CpuWorkload w = randomWorkload(rng);
  w.schedule = ScheduleKind::Static;
  const double staticSec = model.predict(w).seconds;
  w.schedule = ScheduleKind::Dynamic;
  EXPECT_GE(model.predict(w).seconds, staticSec);
}

TEST_P(CpuModelProperty, PredictionsFiniteAndPositive) {
  support::SplitMix64 rng(GetParam() ^ 0x6666);
  for (const int threads : {1, 7, 44, 160, 1000}) {
    const CpuCostModel model(CpuModelParams::power8(), threads);
    const CpuPrediction p = model.predict(randomWorkload(rng));
    EXPECT_TRUE(std::isfinite(p.seconds)) << threads;
    EXPECT_GT(p.seconds, 0.0) << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuModelProperty,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace osel::cpumodel

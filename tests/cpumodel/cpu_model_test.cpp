#include "cpumodel/cpu_model.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace osel::cpumodel {
namespace {

using support::PreconditionError;

CpuWorkload basicWorkload() {
  CpuWorkload w;
  w.machineCyclesPerIter = 100.0;
  w.parallelTripCount = 160000;
  w.bytesTouchedPerIteration = 64.0;
  return w;
}

TEST(CpuModelParams, Power9MatchesPaperTableII) {
  const CpuModelParams p = CpuModelParams::power9();
  EXPECT_DOUBLE_EQ(p.frequencyHz, 3.0e9);
  EXPECT_EQ(p.tlbEntries, 1024);
  EXPECT_DOUBLE_EQ(p.tlbMissPenaltyCycles, 14.0);
  EXPECT_DOUBLE_EQ(p.loopOverheadPerIterCycles, 4.0);
  EXPECT_DOUBLE_EQ(p.parScheduleOverheadStaticCycles, 10154.0);
  EXPECT_DOUBLE_EQ(p.synchronizationOverheadCycles, 4000.0);
  EXPECT_DOUBLE_EQ(p.parStartupCycles, 3000.0);
}

TEST(CpuModelParams, Power8RunsSameClockWithCostlierRuntime) {
  const CpuModelParams p8 = CpuModelParams::power8();
  const CpuModelParams p9 = CpuModelParams::power9();
  EXPECT_DOUBLE_EQ(p8.frequencyHz, p9.frequencyHz);  // both 3000 MHz (§III)
  EXPECT_GT(p8.parScheduleOverheadStaticCycles,
            p9.parScheduleOverheadStaticCycles);
  EXPECT_GT(p8.synchronizationOverheadCycles, p9.synchronizationOverheadCycles);
}

TEST(CpuModelParams, EffectiveParallelismSaturatesAtSmtCeiling) {
  const CpuModelParams p = CpuModelParams::power9();
  EXPECT_DOUBLE_EQ(p.effectiveParallelism(1), 1.0);
  EXPECT_DOUBLE_EQ(p.effectiveParallelism(4), 4.0);
  EXPECT_DOUBLE_EQ(p.effectiveParallelism(20), 20.0);
  // 160 SMT threads on 20 cores do not run 160x faster.
  EXPECT_DOUBLE_EQ(p.effectiveParallelism(160), 20.0 * 2.2);
}

TEST(CpuCostModel, MoreThreadsFasterWhileWorkDominates) {
  CpuWorkload w = basicWorkload();
  w.machineCyclesPerIter = 5000.0;  // enough work to amortize fork costs
  double previous = 1e300;
  for (const int threads : {1, 2, 4, 8, 20, 44}) {
    const CpuPrediction prediction =
        CpuCostModel(CpuModelParams::power9(), threads).predict(w);
    EXPECT_LE(prediction.seconds, previous + 1e-12) << threads;
    previous = prediction.seconds;
  }
}

TEST(CpuCostModel, PerThreadOverheadPenalizesTinyKernels) {
  // Forking 160 threads for microseconds of work costs more than it buys —
  // the model now carries the EPCC per-thread component.
  CpuWorkload w;
  w.machineCyclesPerIter = 10.0;
  w.parallelTripCount = 2048;
  w.bytesTouchedPerIteration = 8.0;
  const double at20 =
      CpuCostModel(CpuModelParams::power9(), 20).predict(w).seconds;
  const double at160 =
      CpuCostModel(CpuModelParams::power9(), 160).predict(w).seconds;
  EXPECT_GT(at160, at20);
}

TEST(CpuCostModel, WorkScalesLinearlyInTripCount) {
  CpuWorkload w = basicWorkload();
  const CpuCostModel model(CpuModelParams::power9(), 4);
  const double small = model.predict(w).workCycles;
  w.parallelTripCount *= 10;
  const double large = model.predict(w).workCycles;
  EXPECT_NEAR(large / small, 10.0, 0.01);
}

TEST(CpuCostModel, FixedOverheadsIndependentOfWork) {
  CpuWorkload w = basicWorkload();
  const CpuCostModel model(CpuModelParams::power9(), 16);
  const CpuPrediction a = model.predict(w);
  w.machineCyclesPerIter *= 7;
  const CpuPrediction b = model.predict(w);
  EXPECT_DOUBLE_EQ(a.forkJoinCycles, b.forkJoinCycles);
  EXPECT_DOUBLE_EQ(a.scheduleCycles, b.scheduleCycles);
  // Table II base figures plus the per-thread EPCC component (16 threads).
  EXPECT_DOUBLE_EQ(a.forkJoinCycles, 3000.0 + 4000.0 + 16 * 3000.0);
  EXPECT_DOUBLE_EQ(a.scheduleCycles, 10154.0);
}

TEST(CpuCostModel, TinyKernelDominatedByOverheads) {
  // The crossover the selection framework exists to catch: a 16x16 kernel's
  // predicted time is almost all fork/schedule overhead.
  CpuWorkload w;
  w.machineCyclesPerIter = 50.0;
  w.parallelTripCount = 16;
  w.bytesTouchedPerIteration = 128.0;
  const CpuPrediction prediction =
      CpuCostModel(CpuModelParams::power9(), 160).predict(w);
  const double overhead = prediction.forkJoinCycles + prediction.scheduleCycles;
  EXPECT_GT(overhead / prediction.totalCycles, 0.9);
}

TEST(CpuCostModel, LargeKernelDominatedByWork) {
  CpuWorkload w;
  w.machineCyclesPerIter = 5000.0;  // long inner loop per parallel iter
  w.parallelTripCount = 9600 * 9600;
  w.bytesTouchedPerIteration = 64.0;
  const CpuPrediction prediction =
      CpuCostModel(CpuModelParams::power9(), 160).predict(w);
  EXPECT_GT(prediction.workCycles / prediction.totalCycles, 0.9);
}

TEST(CpuCostModel, TlbTermGrowsWithFootprint) {
  CpuWorkload w = basicWorkload();
  const CpuCostModel model(CpuModelParams::power9(), 4);
  w.bytesTouchedPerIteration = 8.0;
  const double smallTlb = model.predict(w).tlbCycles;
  w.bytesTouchedPerIteration = 64 * 1024.0;  // one page per iteration
  const double largeTlb = model.predict(w).tlbCycles;
  EXPECT_GT(largeTlb, smallTlb * 100);
}

TEST(CpuCostModel, TlbCapacityMissesBeyondReach) {
  // Footprint beyond 1024 pages pays capacity misses on top of cold misses.
  CpuWorkload w = basicWorkload();
  const CpuCostModel model(CpuModelParams::power9(), 1);
  w.parallelTripCount = 1;
  w.bytesTouchedPerIteration = 1024.0 * 64 * 1024;  // exactly TLB reach
  const double atReach = model.predict(w).tlbCycles;
  w.bytesTouchedPerIteration *= 2.0;  // double it
  const double beyondReach = model.predict(w).tlbCycles;
  // Beyond reach: 2048 cold + 1024 capacity = 3x the misses at reach.
  EXPECT_NEAR(beyondReach / atReach, 3.0, 0.01);
}

TEST(CpuCostModel, FalseSharingAddsPenaltyOnlyWhenFlagged) {
  CpuWorkload w = basicWorkload();
  const CpuCostModel model(CpuModelParams::power9(), 8);
  EXPECT_DOUBLE_EQ(model.predict(w).falseSharingCycles, 0.0);
  w.falseSharingRisk = true;
  EXPECT_GT(model.predict(w).falseSharingCycles, 0.0);
}

TEST(CpuCostModel, FalseSharingFreeOnSingleThread) {
  CpuWorkload w = basicWorkload();
  w.falseSharingRisk = true;
  const CpuPrediction prediction =
      CpuCostModel(CpuModelParams::power9(), 1).predict(w);
  EXPECT_DOUBLE_EQ(prediction.falseSharingCycles, 0.0);
}

TEST(CpuCostModel, DynamicScheduleCostsMoreThanStatic) {
  CpuWorkload w = basicWorkload();
  const CpuCostModel model(CpuModelParams::power9(), 8);
  const double staticCycles = model.predict(w).scheduleCycles;
  w.schedule = ScheduleKind::Dynamic;
  const double dynamicCycles = model.predict(w).scheduleCycles;
  EXPECT_GT(dynamicCycles, staticCycles);
}

TEST(CpuCostModel, SecondsConsistentWithCyclesAndFrequency) {
  const CpuWorkload w = basicWorkload();
  const CpuPrediction prediction =
      CpuCostModel(CpuModelParams::power9(), 4).predict(w);
  EXPECT_NEAR(prediction.seconds, prediction.totalCycles / 3.0e9, 1e-15);
  EXPECT_NEAR(prediction.totalCycles,
              prediction.forkJoinCycles + prediction.scheduleCycles +
                  prediction.workCycles + prediction.loopOverheadCycles +
                  prediction.tlbCycles + prediction.falseSharingCycles,
              1e-9);
}

TEST(CpuCostModel, RejectsInvalidInputs) {
  const CpuCostModel model(CpuModelParams::power9(), 4);
  CpuWorkload w = basicWorkload();
  w.parallelTripCount = 0;
  EXPECT_THROW((void)model.predict(w), PreconditionError);
  w = basicWorkload();
  w.machineCyclesPerIter = -1.0;
  EXPECT_THROW((void)model.predict(w), PreconditionError);
  EXPECT_THROW(CpuCostModel(CpuModelParams::power9(), 0), PreconditionError);
}

TEST(CpuCostModel, PredictionToStringMentionsComponents) {
  const CpuPrediction prediction =
      CpuCostModel(CpuModelParams::power9(), 4).predict(basicWorkload());
  const std::string text = prediction.toString();
  EXPECT_NE(text.find("work"), std::string::npos);
  EXPECT_NE(text.find("sched"), std::string::npos);
  EXPECT_NE(text.find("tlb"), std::string::npos);
}

}  // namespace
}  // namespace osel::cpumodel

// Property tests: random expression trees, checked against direct evaluation.
// The canonical polynomial representation must preserve semantics under
// construction, arithmetic, substitution, and differencing.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "support/rng.h"
#include "symbolic/expr.h"

namespace osel::symbolic {
namespace {

constexpr std::array<const char*, 4> kSymbols{"i", "j", "n", "max"};

/// A random expression together with an oracle evaluator (direct recursive
/// arithmetic, no canonicalization involved).
struct RandomExpr {
  Expr expr;
  // Oracle: evaluate the construction steps directly.
  std::int64_t oracle;
};

/// Builds a random expression of the given depth and evaluates the identical
/// arithmetic directly on values, independent of Expr's canonical form.
RandomExpr randomExpr(support::SplitMix64& rng, const Bindings& bindings, int depth) {
  if (depth == 0 || rng.nextBelow(4) == 0) {
    if (rng.nextBelow(2) == 0) {
      const auto value = static_cast<std::int64_t>(rng.nextBelow(21)) - 10;
      return {Expr::constant(value), value};
    }
    const char* name = kSymbols[rng.nextBelow(kSymbols.size())];
    return {Expr::symbol(name), bindings.at(name)};
  }
  const RandomExpr lhs = randomExpr(rng, bindings, depth - 1);
  const RandomExpr rhs = randomExpr(rng, bindings, depth - 1);
  switch (rng.nextBelow(3)) {
    case 0:
      return {lhs.expr + rhs.expr, lhs.oracle + rhs.oracle};
    case 1:
      return {lhs.expr - rhs.expr, lhs.oracle - rhs.oracle};
    default:
      return {lhs.expr * rhs.expr, lhs.oracle * rhs.oracle};
  }
}

Bindings randomBindings(support::SplitMix64& rng) {
  Bindings bindings;
  for (const char* name : kSymbols)
    bindings[name] = static_cast<std::int64_t>(rng.nextBelow(13)) - 6;
  return bindings;
}

class ExprProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExprProperty, CanonicalFormPreservesEvaluation) {
  support::SplitMix64 rng(GetParam());
  const Bindings bindings = randomBindings(rng);
  const RandomExpr sample = randomExpr(rng, bindings, 4);
  EXPECT_EQ(sample.expr.evaluate(bindings), sample.oracle)
      << sample.expr.toString();
}

TEST_P(ExprProperty, SubstitutionCommutesWithEvaluation) {
  support::SplitMix64 rng(GetParam() ^ 0xABCDEF);
  const Bindings bindings = randomBindings(rng);
  const RandomExpr sample = randomExpr(rng, bindings, 3);
  // Substituting j := i + 2 then evaluating must equal evaluating with
  // bindings where j = i + 2.
  const Expr substituted = sample.expr.substitute("j", Expr::symbol("i") + 2);
  Bindings rebound = bindings;
  rebound["j"] = bindings.at("i") + 2;
  EXPECT_EQ(substituted.evaluate(bindings), sample.expr.evaluate(rebound))
      << sample.expr.toString();
}

TEST_P(ExprProperty, DifferenceMatchesShiftedEvaluation) {
  support::SplitMix64 rng(GetParam() ^ 0x55AA55);
  const Bindings bindings = randomBindings(rng);
  const RandomExpr sample = randomExpr(rng, bindings, 3);
  const Expr difference = sample.expr.differenceIn("i");
  Bindings shifted = bindings;
  shifted["i"] = bindings.at("i") + 1;
  EXPECT_EQ(difference.evaluate(bindings),
            sample.expr.evaluate(shifted) - sample.expr.evaluate(bindings))
      << sample.expr.toString();
}

TEST_P(ExprProperty, AdditionCommutesAndAssociates) {
  support::SplitMix64 rng(GetParam() ^ 0x123123);
  const Bindings bindings = randomBindings(rng);
  const RandomExpr a = randomExpr(rng, bindings, 2);
  const RandomExpr b = randomExpr(rng, bindings, 2);
  const RandomExpr c = randomExpr(rng, bindings, 2);
  EXPECT_EQ(a.expr + b.expr, b.expr + a.expr);
  EXPECT_EQ((a.expr + b.expr) + c.expr, a.expr + (b.expr + c.expr));
  EXPECT_EQ(a.expr * b.expr, b.expr * a.expr);
  EXPECT_EQ((a.expr * b.expr) * c.expr, a.expr * (b.expr * c.expr));
}

TEST_P(ExprProperty, MultiplicationDistributesOverAddition) {
  support::SplitMix64 rng(GetParam() ^ 0x777777);
  const Bindings bindings = randomBindings(rng);
  const RandomExpr a = randomExpr(rng, bindings, 2);
  const RandomExpr b = randomExpr(rng, bindings, 2);
  const RandomExpr c = randomExpr(rng, bindings, 2);
  EXPECT_EQ(a.expr * (b.expr + c.expr), a.expr * b.expr + a.expr * c.expr);
}

TEST_P(ExprProperty, SubtractionOfSelfIsZero) {
  support::SplitMix64 rng(GetParam() ^ 0x999999);
  const Bindings bindings = randomBindings(rng);
  const RandomExpr a = randomExpr(rng, bindings, 3);
  EXPECT_EQ(a.expr - a.expr, Expr{});
}

TEST_P(ExprProperty, CoefficientTimesVarPlusRestReconstructs) {
  support::SplitMix64 rng(GetParam() ^ 0x31415926);
  const Bindings bindings = randomBindings(rng);
  // Build an expression affine in "i": coeff(i)*i + rest with random parts.
  const RandomExpr coeff = randomExpr(rng, bindings, 2);
  const RandomExpr rest = randomExpr(rng, bindings, 2);
  const Expr coeffNoI = coeff.expr.withoutSymbol("i");
  const Expr restNoI = rest.expr.withoutSymbol("i");
  const Expr affine = coeffNoI * Expr::symbol("i") + restNoI;
  EXPECT_EQ(affine.coefficientOf("i"), coeffNoI);
  EXPECT_EQ(affine.withoutSymbol("i"), restNoI);
  EXPECT_EQ(affine.coefficientOf("i") * Expr::symbol("i") + affine.withoutSymbol("i"),
            affine);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprProperty,
                         ::testing::Range<std::uint64_t>(1, 51));

}  // namespace
}  // namespace osel::symbolic

#include "symbolic/compiled_expr.h"

#include <gtest/gtest.h>

#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace osel::symbolic {
namespace {

TEST(CompiledExpr, EvaluatesConstant) {
  SlotMap slots;
  const CompiledExpr c(Expr::constant(42), slots);
  EXPECT_TRUE(c.isConstant());
  EXPECT_EQ(c.evaluate({}), 42);
}

TEST(CompiledExpr, EvaluatesPolynomial) {
  SlotMap slots;
  const Expr e = Expr::symbol("n") * Expr::symbol("i") + Expr::symbol("j") + 7;
  const CompiledExpr c(e, slots);
  std::vector<std::int64_t> values(slots.size());
  values[slots.lookup("n")] = 100;
  values[slots.lookup("i")] = 3;
  values[slots.lookup("j")] = 4;
  EXPECT_EQ(c.evaluate(values), 311);
  EXPECT_FALSE(c.isConstant());
}

TEST(CompiledExpr, SharedSlotMapAcrossExpressions) {
  SlotMap slots;
  const CompiledExpr a(Expr::symbol("x") + 1, slots);
  const CompiledExpr b(Expr::symbol("x") * 2, slots);
  std::vector<std::int64_t> values(slots.size());
  values[slots.lookup("x")] = 5;
  EXPECT_EQ(a.evaluate(values), 6);
  EXPECT_EQ(b.evaluate(values), 10);
  EXPECT_EQ(slots.size(), 1u);
}

TEST(SlotMap, LookupThrowsForUnknown) {
  SlotMap slots;
  EXPECT_THROW((void)slots.lookup("nope"), support::PreconditionError);
}

TEST(SlotMap, SlotOfIsIdempotent) {
  SlotMap slots;
  const std::size_t a = slots.slotOf("a");
  EXPECT_EQ(slots.slotOf("a"), a);
  EXPECT_EQ(slots.size(), 1u);
}

TEST(CompiledExpr, MatchesInterpretedEvaluationOnRandomExprs) {
  support::SplitMix64 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    // Random degree-<=3 polynomial over 3 symbols.
    Expr e;
    for (int term = 0; term < 5; ++term) {
      Expr monomial =
          Expr::constant(static_cast<std::int64_t>(rng.nextBelow(9)) - 4);
      const auto factors = rng.nextBelow(4);
      for (std::uint64_t f = 0; f < factors; ++f) {
        const char* names[] = {"a", "b", "c"};
        monomial *= Expr::symbol(names[rng.nextBelow(3)]);
      }
      e += monomial;
    }
    SlotMap slots;
    const CompiledExpr compiled(e, slots);
    Bindings bindings;
    std::vector<std::int64_t> values(slots.size() == 0 ? 1 : slots.size());
    for (const auto& name : e.freeSymbols()) {
      const auto v = static_cast<std::int64_t>(rng.nextBelow(15)) - 7;
      bindings[name] = v;
      values[slots.lookup(name)] = v;
    }
    EXPECT_EQ(compiled.evaluate(values), e.evaluate(bindings)) << e.toString();
  }
}

}  // namespace
}  // namespace osel::symbolic

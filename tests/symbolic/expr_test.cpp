#include "symbolic/expr.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace osel::symbolic {
namespace {

Expr S(const std::string& name) { return Expr::symbol(name); }
Expr C(std::int64_t v) { return Expr::constant(v); }

TEST(Expr, ZeroByDefault) {
  EXPECT_TRUE(Expr{}.isConstant());
  EXPECT_EQ(Expr{}.tryConstant().value(), 0);
  EXPECT_EQ(Expr{}.toString(), "0");
}

TEST(Expr, ConstantFolding) {
  EXPECT_EQ((C(2) + C(3)).tryConstant().value(), 5);
  EXPECT_EQ((C(2) * C(3)).tryConstant().value(), 6);
  EXPECT_EQ((C(2) - C(2)).tryConstant().value(), 0);
}

TEST(Expr, LikeTermCollection) {
  const Expr e = S("x") + S("x") + S("x");
  EXPECT_EQ(e, 3 * S("x"));
}

TEST(Expr, CancellationYieldsZero) {
  const Expr e = S("x") * S("y") - S("y") * S("x");
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.tryConstant().value(), 0);
}

TEST(Expr, PaperExampleStrideDerivation) {
  // Paper §IV.C: IPD_th(A[max * a]) with thread t accessing a = t:
  // [max]*1 - [max]*0 = [max].
  const Expr address = S("max") * S("a");
  const Expr atOne = address.substitute("a", C(1));
  const Expr atZero = address.substitute("a", C(0));
  EXPECT_EQ(atOne - atZero, S("max"));
}

TEST(Expr, DistributesMultiplication) {
  const Expr e = (S("x") + C(1)) * (S("x") - C(1));
  EXPECT_EQ(e, S("x") * S("x") - C(1));
}

TEST(Expr, EvaluateBindsSymbols) {
  const Expr e = S("n") * S("i") + S("j") + C(7);
  const Bindings bindings{{"n", 100}, {"i", 3}, {"j", 4}};
  EXPECT_EQ(e.evaluate(bindings), 311);
}

TEST(Expr, EvaluateThrowsOnUnbound) {
  const Expr e = S("n") + C(1);
  EXPECT_THROW((void)e.evaluate({}), support::PreconditionError);
}

TEST(Expr, EvaluateRealWithFractionalBindings) {
  const Expr e = S("n") * S("i") + S("j");
  const std::map<std::string, double> env{{"n", 10.0}, {"i", 2.5}, {"j", 0.5}};
  EXPECT_DOUBLE_EQ(e.evaluateReal(env), 25.5);
  EXPECT_DOUBLE_EQ(Expr{}.evaluateReal({}), 0.0);
  EXPECT_THROW((void)e.evaluateReal({{"n", 1.0}}), support::PreconditionError);
}

TEST(Expr, TryEvaluatePartialBinding) {
  const Expr e = S("n") * S("i");
  EXPECT_FALSE(e.tryEvaluate({{"n", 5}}).has_value());
  EXPECT_EQ(e.tryEvaluate({{"n", 5}, {"i", 2}}).value(), 10);
}

TEST(Expr, SubstituteAllLeavesUnboundSymbolic) {
  const Expr e = S("n") * S("i") + S("j");
  const Expr partial = e.substituteAll({{"n", 10}});
  EXPECT_EQ(partial, 10 * S("i") + S("j"));
}

TEST(Expr, FreeSymbols) {
  const Expr e = S("n") * S("i") + S("j") + C(5);
  const auto syms = e.freeSymbols();
  EXPECT_EQ(syms.size(), 3u);
  EXPECT_TRUE(syms.contains("n"));
  EXPECT_TRUE(syms.contains("i"));
  EXPECT_TRUE(syms.contains("j"));
}

TEST(Expr, References) {
  const Expr e = S("n") * S("i");
  EXPECT_TRUE(e.references("n"));
  EXPECT_FALSE(e.references("j"));
}

TEST(Expr, AffinityChecks) {
  const Expr affine = S("max") * S("i") + S("j") + C(3);
  EXPECT_TRUE(affine.isAffineIn({"i", "j"}));
  // i*j couples two loop vars -> not jointly affine.
  EXPECT_FALSE((S("i") * S("j")).isAffineIn({"i", "j"}));
  // i^2 -> not affine in i.
  EXPECT_FALSE((S("i") * S("i")).isAffineIn({"i"}));
  // max*i is affine in {i} even though max is symbolic.
  EXPECT_TRUE((S("max") * S("i")).isAffineIn({"i"}));
}

TEST(Expr, CoefficientOfSymbolicStride) {
  const Expr e = S("max") * S("i") + S("j") + C(5);
  EXPECT_EQ(e.coefficientOf("i"), S("max"));
  EXPECT_EQ(e.coefficientOf("j"), C(1));
  EXPECT_EQ(e.coefficientOf("k"), Expr{});
}

TEST(Expr, CoefficientOfRejectsHigherDegree) {
  const Expr e = S("i") * S("i");
  EXPECT_THROW((void)e.coefficientOf("i"), support::PreconditionError);
}

TEST(Expr, WithoutSymbolDropsTerms) {
  const Expr e = S("max") * S("i") + S("j") + C(5);
  EXPECT_EQ(e.withoutSymbol("i"), S("j") + C(5));
}

TEST(Expr, DifferenceInIsStrideForAffine) {
  const Expr rowMajor = S("n") * S("i") + S("j");
  EXPECT_EQ(rowMajor.differenceIn("j"), C(1));
  EXPECT_EQ(rowMajor.differenceIn("i"), S("n"));
}

TEST(Expr, DifferenceInQuadratic) {
  // d/di (i^2) with unit step: (i+1)^2 - i^2 = 2i + 1.
  const Expr e = S("i") * S("i");
  EXPECT_EQ(e.differenceIn("i"), 2 * S("i") + C(1));
}

TEST(Expr, Degree) {
  EXPECT_EQ(Expr{}.degree(), 0);
  EXPECT_EQ(C(5).degree(), 0);
  EXPECT_EQ(S("x").degree(), 1);
  EXPECT_EQ((S("x") * S("y") * S("x")).degree(), 3);
}

TEST(Expr, ToStringBracketsSymbols) {
  const Expr e = S("max") * S("a");
  EXPECT_EQ(e.toString(), "[a]*[max]");
}

TEST(Expr, ToStringNegativeLeading) {
  const Expr e = C(0) - S("x");
  EXPECT_EQ(e.toString(), "-[x]");
}

TEST(Expr, ToStringMixedSigns) {
  const Expr e = S("n") * S("i") - C(4);
  // Constant term sorts first in the canonical map (empty monomial).
  EXPECT_EQ(e.toString(), "-4 + [i]*[n]");
}

TEST(Expr, FromTermsRoundTrip) {
  const Expr e = 3 * S("a") * S("b") + 2 * S("c") - C(7);
  EXPECT_EQ(Expr::fromTerms(e.terms()), e);
}

TEST(Expr, SymbolRejectsEmptyName) {
  EXPECT_THROW((void)Expr::symbol(""), support::PreconditionError);
}

TEST(Expr, CompoundAssignmentOperators) {
  Expr e = S("x");
  e += S("x");
  EXPECT_EQ(e, 2 * S("x"));
  e -= S("x");
  EXPECT_EQ(e, S("x"));
  e *= S("y");
  EXPECT_EQ(e, S("x") * S("y"));
}

}  // namespace
}  // namespace osel::symbolic

// Coverage for the workload frontend layer: deterministic generation under
// each shape (uniform, Zipfian, bursty), Zipf head skew, bursty on/off
// pacing, the trace record/replay round trip (RFC-4180 quoting, comments,
// malformed-line rejection), and the replayer's cyclic iteration.
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/check.h"

namespace osel::workload {
namespace {

std::vector<Candidate> makeCandidates(std::size_t count) {
  std::vector<Candidate> candidates;
  for (std::size_t i = 0; i < count; ++i) {
    std::vector<symbolic::Bindings> choices;
    for (const std::int64_t n : {32, 64, 128}) {
      choices.push_back(symbolic::Bindings{{"n", n}});
    }
    candidates.push_back({"region" + std::to_string(i), choices});
  }
  return candidates;
}

TEST(WorkloadShape, ParsesAndPrintsAllShapes) {
  EXPECT_EQ(parseShape("uniform"), Shape::Uniform);
  EXPECT_EQ(parseShape("zipfian"), Shape::Zipfian);
  EXPECT_EQ(parseShape("bursty"), Shape::Bursty);
  EXPECT_EQ(toString(Shape::Uniform), "uniform");
  EXPECT_EQ(toString(Shape::Zipfian), "zipfian");
  EXPECT_EQ(toString(Shape::Bursty), "bursty");
  EXPECT_THROW(parseShape("poisson"), support::PreconditionError);
}

TEST(WorkloadGenerator, RejectsEmptyCandidateSets) {
  EXPECT_THROW(Generator(Shape::Uniform, {}, {}), support::PreconditionError);
  std::vector<Candidate> noChoices{{"region0", {}}};
  EXPECT_THROW(Generator(Shape::Uniform, noChoices, {}),
               support::PreconditionError);
}

TEST(WorkloadGenerator, SameSeedSameStreamDifferentSeedDiffers) {
  GeneratorOptions options;
  options.seed = 7;
  Generator a(Shape::Zipfian, makeCandidates(6), options);
  Generator b(Shape::Zipfian, makeCandidates(6), options);
  const std::vector<Item> streamA = a.take(200);
  const std::vector<Item> streamB = b.take(200);
  ASSERT_EQ(streamA.size(), streamB.size());
  for (std::size_t i = 0; i < streamA.size(); ++i) {
    EXPECT_EQ(streamA[i].region, streamB[i].region);
    EXPECT_EQ(streamA[i].bindings, streamB[i].bindings);
    EXPECT_EQ(streamA[i].gapSeconds, streamB[i].gapSeconds);
  }
  options.seed = 8;
  Generator c(Shape::Zipfian, makeCandidates(6), options);
  const std::vector<Item> streamC = c.take(200);
  bool anyDiffers = false;
  for (std::size_t i = 0; i < streamC.size(); ++i) {
    if (streamC[i].region != streamA[i].region ||
        streamC[i].bindings != streamA[i].bindings) {
      anyDiffers = true;
      break;
    }
  }
  EXPECT_TRUE(anyDiffers);
}

TEST(WorkloadGenerator, UniformTouchesEveryCandidateAndChoice) {
  Generator generator(Shape::Uniform, makeCandidates(4), {});
  std::map<std::string, int> regionCounts;
  std::map<std::int64_t, int> sizeCounts;
  for (const Item& item : generator.take(600)) {
    regionCounts[item.region]++;
    sizeCounts[item.bindings.at("n")]++;
    EXPECT_EQ(item.gapSeconds, 0.0);
  }
  EXPECT_EQ(regionCounts.size(), 4u);
  EXPECT_EQ(sizeCounts.size(), 3u);
  // Uniform: no candidate should hoard the stream (expected 150 each).
  for (const auto& [region, count] : regionCounts) {
    EXPECT_GT(count, 60) << region;
    EXPECT_LT(count, 300) << region;
  }
}

TEST(WorkloadGenerator, ZipfianSkewsTowardTheHead) {
  GeneratorOptions options;
  options.zipfExponent = 1.2;
  Generator generator(Shape::Zipfian, makeCandidates(8), options);
  std::map<std::string, int> counts;
  for (const Item& item : generator.take(2000)) counts[item.region]++;
  // Rank 1 gets p ∝ 1, rank 8 gets p ∝ 1/8^1.2 ≈ 0.082: the head must
  // dominate the tail by a wide margin.
  EXPECT_GT(counts["region0"], 4 * counts["region7"]);
  EXPECT_GT(counts["region0"], counts["region1"]);
}

TEST(WorkloadGenerator, BurstyPacesFirstItemOfEachBurst) {
  GeneratorOptions options;
  options.burstLength = 16;
  options.burstGapSeconds = 2.5e-3;
  Generator generator(Shape::Bursty, makeCandidates(3), options);
  const std::vector<Item> items = generator.take(64);
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i % 16 == 0) {
      EXPECT_EQ(items[i].gapSeconds, 2.5e-3) << "item " << i;
    } else {
      EXPECT_EQ(items[i].gapSeconds, 0.0) << "item " << i;
    }
  }
}

TEST(WorkloadTrace, RoundTripsItemsIncludingQuotedRegions) {
  std::vector<Item> items;
  items.push_back({"plain_region", symbolic::Bindings{{"n", 64}, {"m", -3}},
                   0.0});
  items.push_back({"needs,quoting", symbolic::Bindings{{"k", 7}}, 1.25e-3});
  items.push_back({"has\"quote", symbolic::Bindings{}, 0.5});
  const std::string text = serializeTrace(items);
  const std::vector<Item> parsed = parseTrace(text);
  ASSERT_EQ(parsed.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(parsed[i].region, items[i].region) << i;
    EXPECT_EQ(parsed[i].bindings, items[i].bindings) << i;
    EXPECT_DOUBLE_EQ(parsed[i].gapSeconds, items[i].gapSeconds) << i;
  }
}

TEST(WorkloadTrace, SkipsCommentsAndBlankLines) {
  const std::vector<Item> parsed = parseTrace(
      "# recorded by suite_batch_decide\n"
      "\n"
      "0,gemm_k1,n=64\n"
      "# trailing comment\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].region, "gemm_k1");
  EXPECT_EQ(parsed[0].bindings.at("n"), 64);
}

TEST(WorkloadTrace, RejectsMalformedLines) {
  EXPECT_THROW(parseTrace("notanumber,gemm_k1,n=64\n"),
               support::PreconditionError);
  EXPECT_THROW(parseTrace("0,,n=64\n"), support::PreconditionError);
  EXPECT_THROW(parseTrace("0,gemm_k1,n\n"), support::PreconditionError);
  EXPECT_THROW(parseTrace("0,gemm_k1,n=sixtyfour\n"),
               support::PreconditionError);
  EXPECT_THROW(parseTrace("0,\"unterminated,n=64\n"),
               support::PreconditionError);
}

TEST(WorkloadTrace, WritesAndReportsTheVersionedHeader) {
  std::vector<Item> items;
  items.push_back({"gemm_k1", symbolic::Bindings{{"n", 64}}, 0.0});
  const std::string text = serializeTrace(items, {.seed = 2019});
  EXPECT_EQ(text.rfind("#!osel-trace v1 seed=2019\n", 0), 0u)
      << "trace must open with the versioned header, got: " << text;
  TraceHeader header;
  const std::vector<Item> parsed = parseTrace(text, &header);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(header.version, kTraceFormatVersion);
  EXPECT_EQ(header.seed, 2019u);
}

TEST(WorkloadTrace, HeaderlessInputIsLegacyNotAnError) {
  TraceHeader header;
  const std::vector<Item> parsed = parseTrace("0,gemm_k1,n=64\n", &header);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(header.version, 0u) << "legacy traces report version 0";
}

TEST(WorkloadTrace, RejectsMismatchedHeaderVersions) {
  try {
    (void)parseTrace("#!osel-trace v99 seed=1\n0,gemm_k1,n=64\n");
    FAIL() << "v99 trace was accepted";
  } catch (const support::PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("v99"), std::string::npos) << what;
    EXPECT_NE(what.find("v1"), std::string::npos) << what;
  }
  EXPECT_THROW((void)parseTrace("#!osel-trace vNaN\n"),
               support::PreconditionError);
  // The replayer path enforces the same contract.
  EXPECT_THROW((void)TraceReplayer::fromText("#!osel-trace v2 seed=0\n"),
               support::PreconditionError);
}

TEST(WorkloadTrace, RejectsHeaderTrailingGarbage) {
  // A header that is not exactly `#!osel-trace v<N>[ seed=<M>]` is a hard
  // error — before the %n full-consumption check, 'sed=5' and 'seed=5junk'
  // were silently accepted with seed=0.
  for (const char* header :
       {"#!osel-trace v1 sed=5", "#!osel-trace v1 seed=5junk",
        "#!osel-trace v1 seed=", "#!osel-trace v1x",
        "#!osel-trace v1 seed=5 extra"}) {
    EXPECT_THROW((void)parseTrace(std::string(header) + "\n0,gemm_k1,n=64\n"),
                 support::PreconditionError)
        << header;
  }
  // A seedless versioned header stays legal; the seed defaults to 0.
  TraceHeader header;
  const std::vector<Item> parsed =
      parseTrace("#!osel-trace v1\n0,gemm_k1,n=64\n", &header);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(header.version, kTraceFormatVersion);
  EXPECT_EQ(header.seed, 0u);
}

TEST(WorkloadTrace, SerializeRefusesForeignVersions) {
  std::vector<Item> items;
  items.push_back({"gemm_k1", symbolic::Bindings{{"n", 64}}, 0.0});
  EXPECT_THROW((void)serializeTrace(items, {.version = 2, .seed = 0}),
               support::PreconditionError);
}

TEST(WorkloadTrace, ReplayerFromTextParsesAndCycles) {
  TraceReplayer replayer = TraceReplayer::fromText(
      "#!osel-trace v1 seed=7\n0,a,n=1\n0,b,n=2\n");
  EXPECT_EQ(replayer.size(), 2u);
  EXPECT_EQ(replayer.next().region, "a");
  EXPECT_EQ(replayer.next().region, "b");
  EXPECT_EQ(replayer.next().region, "a");
}

TEST(WorkloadTrace, ReplayerCyclesAndRejectsEmptyTraces) {
  EXPECT_THROW(TraceReplayer(std::vector<Item>{}), support::PreconditionError);
  std::vector<Item> items;
  items.push_back({"a", symbolic::Bindings{{"n", 1}}, 0.0});
  items.push_back({"b", symbolic::Bindings{{"n", 2}}, 0.0});
  TraceReplayer replayer(items);
  EXPECT_EQ(replayer.size(), 2u);
  EXPECT_EQ(replayer.next().region, "a");
  EXPECT_EQ(replayer.next().region, "b");
  EXPECT_EQ(replayer.next().region, "a");  // wraps
}

}  // namespace
}  // namespace osel::workload

// Property-style coverage for DeviceHealthTracker quarantine semantics:
// randomized seeded success/fatal/admit sequences checked against a plain
// reference model (breaker opens exactly at the threshold, re-probe
// consumes exactly one launch, quarantinesOpened monotone), plus the
// concurrent exactly-once-open and exactly-Q-blocked properties the atomic
// CAS design guarantees under racing callers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "runtime/launch_guard.h"

namespace osel::runtime {
namespace {

/// The obviously-correct single-threaded model of the breaker.
struct ReferenceTracker {
  explicit ReferenceTracker(HealthPolicy policy) : policy(policy) {}

  bool admitGpu() {
    if (remaining > 0) {
      remaining -= 1;
      return false;
    }
    return true;
  }
  void recordSuccess() { streak = 0; }
  bool recordFatal() {
    total += 1;
    streak += 1;
    if (streak >= policy.quarantineThreshold) {
      remaining = policy.quarantineLaunches;
      opened += 1;
      streak = 0;
      return true;
    }
    return false;
  }

  HealthPolicy policy;
  int streak = 0;
  int remaining = 0;
  int opened = 0;
  int total = 0;
};

TEST(HealthTrackerProperty, RandomSequencesMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    std::mt19937_64 rng(seed);
    const HealthPolicy policy{
        .quarantineThreshold = static_cast<int>(1 + rng() % 5),
        .quarantineLaunches = static_cast<int>(1 + rng() % 6)};
    DeviceHealthTracker tracker(policy);
    ReferenceTracker reference(policy);
    int lastOpened = 0;
    for (int step = 0; step < 500; ++step) {
      switch (rng() % 3) {
        case 0: {
          const bool expected = reference.admitGpu();
          ASSERT_EQ(tracker.admitGpu(), expected)
              << "seed " << seed << " step " << step;
          break;
        }
        case 1:
          reference.recordSuccess();
          tracker.recordGpuSuccess();
          break;
        default: {
          const bool expected = reference.recordFatal();
          ASSERT_EQ(tracker.recordGpuFatal(), expected)
              << "seed " << seed << " step " << step;
          break;
        }
      }
      ASSERT_EQ(tracker.consecutiveFatals(), reference.streak);
      ASSERT_EQ(tracker.quarantineRemaining(), reference.remaining);
      ASSERT_EQ(tracker.quarantinesOpened(), reference.opened);
      ASSERT_EQ(tracker.totalFatals(), reference.total);
      // quarantinesOpened is monotone.
      ASSERT_GE(tracker.quarantinesOpened(), lastOpened);
      lastOpened = tracker.quarantinesOpened();
    }
  }
}

TEST(HealthTrackerProperty, BreakerOpensExactlyAtThreshold) {
  const HealthPolicy policy{.quarantineThreshold = 4,
                            .quarantineLaunches = 8};
  DeviceHealthTracker tracker(policy);
  for (int i = 1; i < policy.quarantineThreshold; ++i) {
    EXPECT_FALSE(tracker.recordGpuFatal()) << "fatal " << i;
    EXPECT_FALSE(tracker.quarantined());
  }
  EXPECT_TRUE(tracker.recordGpuFatal());  // the threshold-th fatal opens
  EXPECT_TRUE(tracker.quarantined());
  EXPECT_EQ(tracker.quarantinesOpened(), 1);
  EXPECT_EQ(tracker.consecutiveFatals(), 0);  // streak resets on open
}

TEST(HealthTrackerProperty, ReProbeConsumesExactlyOneLaunch) {
  const HealthPolicy policy{.quarantineThreshold = 1,
                            .quarantineLaunches = 3};
  DeviceHealthTracker tracker(policy);
  ASSERT_TRUE(tracker.recordGpuFatal());
  // Exactly quarantineLaunches admits are blocked, each consuming one.
  for (int i = 0; i < policy.quarantineLaunches; ++i) {
    EXPECT_FALSE(tracker.admitGpu()) << "blocked admit " << i;
    EXPECT_EQ(tracker.quarantineRemaining(),
              policy.quarantineLaunches - 1 - i);
  }
  // The next launch is the re-probe: admitted, breaker closed.
  EXPECT_TRUE(tracker.admitGpu());
  EXPECT_FALSE(tracker.quarantined());
}

TEST(HealthTrackerProperty, ConcurrentFatalsOpenExactlyOnce) {
  // threshold T with exactly T racing fatals and no successes: the streak
  // must pass through T exactly once, so exactly one caller gets `true`.
  constexpr int kThreads = 8;
  const HealthPolicy policy{.quarantineThreshold = kThreads,
                            .quarantineLaunches = 100};
  DeviceHealthTracker tracker(policy);
  std::atomic<int> opens{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      if (tracker.recordGpuFatal()) opens.fetch_add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(opens.load(), 1);
  EXPECT_EQ(tracker.quarantinesOpened(), 1);
  EXPECT_EQ(tracker.totalFatals(), kThreads);
}

TEST(HealthTrackerProperty, ConcurrentAdmitsConsumeExactlyQuarantine) {
  // Q quarantined launches, N > Q racing admits: exactly Q are blocked.
  const HealthPolicy policy{.quarantineThreshold = 1,
                            .quarantineLaunches = 5};
  DeviceHealthTracker tracker(policy);
  ASSERT_TRUE(tracker.recordGpuFatal());
  constexpr int kAdmits = 16;
  std::atomic<int> blocked{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kAdmits; ++t) {
    workers.emplace_back([&] {
      if (!tracker.admitGpu()) blocked.fetch_add(1);
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(blocked.load(), policy.quarantineLaunches);
  EXPECT_FALSE(tracker.quarantined());
}

TEST(HealthTrackerProperty, ManyRoundsOfFatalsOpenOncePerRound) {
  // K*N fatals with no successes ⇒ exactly N openings, however the calls
  // interleave across threads.
  constexpr int kThreshold = 4;
  constexpr int kRounds = 6;
  const HealthPolicy policy{.quarantineThreshold = kThreshold,
                            .quarantineLaunches = 1};
  DeviceHealthTracker tracker(policy);
  std::atomic<int> opens{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreshold; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        if (tracker.recordGpuFatal()) opens.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(opens.load(), kRounds);
  EXPECT_EQ(tracker.quarantinesOpened(), kRounds);
  EXPECT_EQ(tracker.totalFatals(), kThreshold * kRounds);
}

}  // namespace
}  // namespace osel::runtime

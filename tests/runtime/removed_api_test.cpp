// The retired compatibility shims must STAY retired. The pre-redesign
// entry points — exact-signature decide(RegionAttributes, Bindings) /
// decide(CompiledRegionPlan, Bindings) overloads and the loose-argument
// TargetRuntime constructor — were [[deprecated]] forwarders for several
// releases and are now removed. These are compile-time checks that the
// removed signatures no longer exist, plus behavioral pins that the
// unified API the shims forwarded to still accepts the old argument types
// through the intended RegionHandle conversion path.
#include <gtest/gtest.h>

#include <array>
#include <type_traits>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/target_runtime.h"

namespace osel::runtime {
namespace {

using namespace osel::ir;

// The loose-argument constructor (database, SelectorConfig, CpuSimParams,
// int, GpuSimParams[, RuntimeOptions]) must not be constructible anymore —
// RuntimeOptions is the only configuration surface.
static_assert(!std::is_constructible_v<TargetRuntime, pad::AttributeDatabase,
                                       SelectorConfig, cpusim::CpuSimParams,
                                       int, gpusim::GpuSimParams>,
              "the loose-argument TargetRuntime constructor was removed; "
              "construct with TargetRuntime(database, RuntimeOptions)");
static_assert(!std::is_constructible_v<TargetRuntime, pad::AttributeDatabase,
                                       SelectorConfig, cpusim::CpuSimParams,
                                       int, gpusim::GpuSimParams,
                                       RuntimeOptions>,
              "the loose-argument TargetRuntime constructor was removed; "
              "construct with TargetRuntime(database, RuntimeOptions)");
static_assert(std::is_constructible_v<TargetRuntime, pad::AttributeDatabase,
                                      RuntimeOptions>,
              "the unified constructor must stay");

TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

pad::AttributeDatabase makeDatabase() {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{streamKernel()};
  return compiler::compileAll(regions, models);
}

void expectSameDecision(const Decision& a, const Decision& b) {
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.cpu.seconds, b.cpu.seconds);
  EXPECT_DOUBLE_EQ(a.gpu.totalSeconds, b.gpu.totalSeconds);
}

// Old call sites that passed RegionAttributes / CompiledRegionPlan by value
// still compile — but through the implicit RegionHandle conversion into the
// unified overload, not a shim. Pin that the conversion path decides
// identically to an explicit RegionHandle.
TEST(RemovedApi, AttributesConvertIntoUnifiedDecide) {
  const pad::AttributeDatabase db = makeDatabase();
  const OffloadSelector selector{SelectorConfig{}};
  const pad::RegionAttributes* attr = db.find("stream");
  ASSERT_NE(attr, nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  expectSameDecision(selector.decide(*attr, bindings),
                     selector.decide(RegionHandle(*attr), bindings));
}

TEST(RemovedApi, CompiledPlanConvertsIntoUnifiedDecide) {
  const pad::AttributeDatabase db = makeDatabase();
  const OffloadSelector selector{SelectorConfig{}};
  const pad::RegionAttributes* attr = db.find("stream");
  ASSERT_NE(attr, nullptr);
  const CompiledRegionPlan plan = selector.compile(*attr);
  const symbolic::Bindings bindings{{"n", 96}};
  expectSameDecision(selector.decide(plan, bindings),
                     selector.decide(RegionHandle(plan), bindings));
}

// What the loose-argument constructor used to assemble is expressible (and
// equivalent) through RuntimeOptions alone.
TEST(RemovedApi, RuntimeOptionsCoversTheLooseArguments) {
  SelectorConfig selectorConfig;
  selectorConfig.cpuThreads = 160;

  RuntimeOptions options;
  options.selector = selectorConfig;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.cpuSimThreads = 160;
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  TargetRuntime runtime(makeDatabase(), options);
  runtime.registerRegion(streamKernel());

  EXPECT_EQ(runtime.selector().config().cpuThreads, 160);
  const symbolic::Bindings bindings{{"n", 128}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(record.decision.valid);
}

}  // namespace
}  // namespace osel::runtime

// Equivalence and overhead pins for TargetRuntime::decideBatch: the SoA
// batch path must produce Decisions bit-identical to looped scalar decide()
// — same device, same diagnostics, same prediction fields down to the last
// mantissa bit — over the full Polybench region × size grid, including
// degenerate sizes, missing regions, unbound symbols, duplicate rows, and
// cache hit/miss interleavings. Also pins the steady-state zero-allocation
// guarantee of the batch path (own test binary: the counting operator new
// below must be the only replacement in the link).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "polybench/polybench.h"
#include "runtime/target_runtime.h"
#include "support/check.h"

// --- Global allocation counter ----------------------------------------------
// Replaces the global non-aligned new/delete for this test binary so the
// steady-state test below can assert decideBatch never touches the heap.
// Counting only; allocation behaviour is unchanged.

namespace {
std::atomic<std::uint64_t> gAllocations{0};

// noinline keeps GCC from tracking malloc/free provenance through the
// replaced operators and raising a spurious -Wmismatched-new-delete.
[[gnu::noinline]] void* countedAlloc(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] void countedFree(void* p) noexcept { std::free(p); }
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { countedFree(p); }
void operator delete[](void* p) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { countedFree(p); }

namespace osel::runtime {
namespace {

void expectSameBits(double batched, double scalar, const char* field) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(batched),
            std::bit_cast<std::uint64_t>(scalar))
      << field << ": batched=" << batched << " scalar=" << scalar;
}

/// Bit-identical equality of everything except overheadSeconds (wall time;
/// batch cache hits deliberately report the amortized batch cost).
void expectIdenticalDecisions(const Decision& batched, const Decision& scalar) {
  EXPECT_EQ(batched.device, scalar.device);
  EXPECT_EQ(batched.valid, scalar.valid);
  EXPECT_EQ(batched.diagnostic, scalar.diagnostic);

  expectSameBits(batched.cpu.forkJoinCycles, scalar.cpu.forkJoinCycles,
                 "cpu.forkJoinCycles");
  expectSameBits(batched.cpu.scheduleCycles, scalar.cpu.scheduleCycles,
                 "cpu.scheduleCycles");
  expectSameBits(batched.cpu.workCycles, scalar.cpu.workCycles,
                 "cpu.workCycles");
  expectSameBits(batched.cpu.loopOverheadCycles, scalar.cpu.loopOverheadCycles,
                 "cpu.loopOverheadCycles");
  expectSameBits(batched.cpu.tlbCycles, scalar.cpu.tlbCycles, "cpu.tlbCycles");
  expectSameBits(batched.cpu.falseSharingCycles, scalar.cpu.falseSharingCycles,
                 "cpu.falseSharingCycles");
  expectSameBits(batched.cpu.totalCycles, scalar.cpu.totalCycles,
                 "cpu.totalCycles");
  expectSameBits(batched.cpu.seconds, scalar.cpu.seconds, "cpu.seconds");

  EXPECT_EQ(batched.gpu.threadsPerBlock, scalar.gpu.threadsPerBlock);
  EXPECT_EQ(batched.gpu.blocks, scalar.gpu.blocks);
  expectSameBits(batched.gpu.ompRep, scalar.gpu.ompRep, "gpu.ompRep");
  expectSameBits(batched.gpu.rep, scalar.gpu.rep, "gpu.rep");
  EXPECT_EQ(batched.gpu.activeSms, scalar.gpu.activeSms);
  expectSameBits(batched.gpu.activeWarpsPerSm, scalar.gpu.activeWarpsPerSm,
                 "gpu.activeWarpsPerSm");
  expectSameBits(batched.gpu.memCycles, scalar.gpu.memCycles, "gpu.memCycles");
  expectSameBits(batched.gpu.compCycles, scalar.gpu.compCycles,
                 "gpu.compCycles");
  expectSameBits(batched.gpu.mwpWithoutBw, scalar.gpu.mwpWithoutBw,
                 "gpu.mwpWithoutBw");
  expectSameBits(batched.gpu.mwpPeakBw, scalar.gpu.mwpPeakBw, "gpu.mwpPeakBw");
  expectSameBits(batched.gpu.mwp, scalar.gpu.mwp, "gpu.mwp");
  expectSameBits(batched.gpu.cwp, scalar.gpu.cwp, "gpu.cwp");
  EXPECT_EQ(batched.gpu.execCase, scalar.gpu.execCase);
  expectSameBits(batched.gpu.kernelCycles, scalar.gpu.kernelCycles,
                 "gpu.kernelCycles");
  expectSameBits(batched.gpu.kernelSeconds, scalar.gpu.kernelSeconds,
                 "gpu.kernelSeconds");
  expectSameBits(batched.gpu.transferSeconds, scalar.gpu.transferSeconds,
                 "gpu.transferSeconds");
  expectSameBits(batched.gpu.launchSeconds, scalar.gpu.launchSeconds,
                 "gpu.launchSeconds");
  expectSameBits(batched.gpu.totalSeconds, scalar.gpu.totalSeconds,
                 "gpu.totalSeconds");
}

/// One runtime over every Polybench kernel. `scalarTwin()` is constructed
/// identically; both see each key for the first time in the same test, so
/// batch misses compare against scalar misses and batch hits against
/// decisions memoized from identical inputs.
TargetRuntime makeSuiteRuntime() {
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      regions.push_back(kernel);
    }
  }
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  RuntimeOptions options;
  options.selector.cpuThreads = 160;
  TargetRuntime runtime(compiler::compileAll(regions, models), options);
  for (ir::TargetRegion& region : regions) {
    runtime.registerRegion(std::move(region));
  }
  return runtime;
}

TargetRuntime& batchRuntime() {
  static TargetRuntime runtime = makeSuiteRuntime();
  return runtime;
}

TargetRuntime& scalarTwin() {
  static TargetRuntime runtime = makeSuiteRuntime();
  return runtime;
}

/// Runs `requests` through decideBatch on the shared batch runtime and
/// through looped scalar decide() on the twin, then asserts row-by-row
/// bit-identity.
void expectBatchMatchesScalar(const std::vector<DecideRequest>& requests) {
  std::vector<Decision> batched(requests.size());
  batchRuntime().decideBatch(requests, batched);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i) + " region '" +
                 std::string(requests[i].region) + "'");
    const Decision scalar = scalarTwin().decide(
        std::string(requests[i].region), *requests[i].bindings);
    expectIdenticalDecisions(batched[i], scalar);
  }
}

TEST(BatchDecide, MatchesScalarOverPolybenchGrid) {
  // Every suite kernel at several sizes, shuffled so the batch spans many
  // region groups in non-sorted order: first pass is all cache misses (SoA
  // evaluation vs decideCompiled), second pass all hits (bulk findMany vs
  // scalar find).
  std::vector<symbolic::Bindings> bindings;
  std::vector<std::string> names;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const std::int64_t n : {3, 7, 32, 256, 1100}) {
      for (const ir::TargetRegion& kernel : benchmark.kernels()) {
        names.push_back(kernel.name);
        bindings.push_back(benchmark.bindings(n));
      }
    }
  }
  std::vector<DecideRequest> requests(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    // Stride through the list so adjacent rows rarely share a region.
    const std::size_t j = (i * 17) % names.size();
    requests[i] = {names[j], &bindings[j]};
  }
  expectBatchMatchesScalar(requests);  // miss path
  expectBatchMatchesScalar(requests);  // hit path
}

TEST(BatchDecide, MatchesScalarOnDegenerateSizes) {
  // n < 3 collapses trip counts toward zero and drives the models into
  // degenerate/non-finite territory; the batch path must reproduce the
  // scalar bits (including NaN payloads) and diagnostics exactly.
  std::vector<symbolic::Bindings> bindings;
  std::vector<std::string> names;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    // Benchmark::bindings refuses sizes its kernels cannot execute, but
    // decide() only models — force every parameter to the degenerate value.
    const symbolic::Bindings shape = benchmark.bindings(8);
    for (const std::int64_t n : {0, 1, 2}) {
      symbolic::Bindings degenerate;
      for (const auto& [symbol, value] : shape) {
        (void)value;
        degenerate[symbol] = n;
      }
      for (const ir::TargetRegion& kernel : benchmark.kernels()) {
        names.push_back(kernel.name);
        bindings.push_back(degenerate);
      }
    }
  }
  std::vector<DecideRequest> requests(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    requests[i] = {names[i], &bindings[i]};
  }
  expectBatchMatchesScalar(requests);
}

TEST(BatchDecide, MatchesScalarOnMissingRegionsAndUnboundSymbols) {
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const std::string known = gemm.kernels()[0].name;
  const symbolic::Bindings bound = gemm.bindings(64);
  const symbolic::Bindings empty;                     // unbound "n"
  const symbolic::Bindings wrongSymbol{{"m", 64}};    // still unbound "n"
  const std::string missing = "no_such_region";
  const std::string nearMiss = "gemm_k9";  // close to a real name
  const std::vector<DecideRequest> requests{
      {known, &bound},        {missing, &bound},  {known, &empty},
      {nearMiss, &bound},     {known, &wrongSymbol}, {missing, &empty},
      {known, &bound},
  };
  expectBatchMatchesScalar(requests);
}

TEST(BatchDecide, MatchesScalarUnderCacheInterleavingsAndDuplicates) {
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const polybench::Benchmark& mvt = polybench::benchmarkByName("MVT");
  const std::string gemmK = gemm.kernels()[0].name;
  const std::string mvtK0 = mvt.kernels()[0].name;
  const std::string mvtK1 = mvt.kernels()[1].name;
  const symbolic::Bindings warm = gemm.bindings(48);
  const symbolic::Bindings cold = gemm.bindings(49);
  const symbolic::Bindings mvtWarm = mvt.bindings(48);
  const symbolic::Bindings mvtCold = mvt.bindings(49);
  // Warm one key per region in BOTH runtimes so the batch interleaves
  // in-cache rows, fresh rows, and duplicates of each within one group.
  (void)batchRuntime().decide(gemmK, warm);
  (void)scalarTwin().decide(gemmK, warm);
  (void)batchRuntime().decide(mvtK0, mvtWarm);
  (void)scalarTwin().decide(mvtK0, mvtWarm);
  const std::vector<DecideRequest> requests{
      {gemmK, &warm}, {gemmK, &cold}, {gemmK, &warm}, {gemmK, &cold},
      {mvtK0, &mvtWarm}, {mvtK0, &mvtCold}, {mvtK1, &mvtWarm},
      {mvtK0, &mvtWarm}, {gemmK, &cold},
  };
  expectBatchMatchesScalar(requests);
}

TEST(BatchDecide, CacheStatsInvariantHolds) {
  // Drive the bulk findMany/insertMany path directly (each test runs in its
  // own process, so stats cannot be inherited from earlier tests): one batch
  // of fresh keys (all misses), then the same batch again (all hits).
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const std::string region = gemm.kernels()[0].name;
  const symbolic::Bindings a = gemm.bindings(201);
  const symbolic::Bindings b = gemm.bindings(202);
  const std::vector<DecideRequest> requests{
      {region, &a}, {region, &b}, {region, &a}};
  std::vector<Decision> out(requests.size());
  batchRuntime().decideBatch(requests, out);
  batchRuntime().decideBatch(requests, out);
  const DecisionCache::Stats stats = batchRuntime().decisionCacheStats(region);
  EXPECT_GT(stats.lookups, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(BatchDecide, EmptyBatchIsANoOp) {
  std::vector<Decision> out;
  batchRuntime().decideBatch({}, out);
  EXPECT_TRUE(out.empty());
}

TEST(BatchDecide, RejectsUndersizedOutputSpan) {
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const symbolic::Bindings bindings = gemm.bindings(32);
  const std::vector<DecideRequest> requests{
      {gemm.kernels()[0].name, &bindings},
      {gemm.kernels()[0].name, &bindings},
  };
  std::vector<Decision> out(1);
  EXPECT_THROW(batchRuntime().decideBatch(requests, out),
               support::PreconditionError);
}

TEST(BatchDecide, SteadyStateBatchDoesNotAllocate) {
  // Mixed regions and sizes, all previously decided: the second call runs
  // the grouped cache-hit path end to end with zero heap traffic (arena
  // vectors and the per-thread scratch are sized by the first call).
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const polybench::Benchmark& mvt = polybench::benchmarkByName("MVT");
  std::vector<std::string> names;
  std::vector<symbolic::Bindings> bindings;
  for (const std::int64_t n : {96, 128, 192, 256}) {
    names.push_back(gemm.kernels()[0].name);
    bindings.push_back(gemm.bindings(n));
    names.push_back(mvt.kernels()[0].name);
    bindings.push_back(mvt.bindings(n));
  }
  std::vector<DecideRequest> requests(64);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    requests[i] = {names[i % names.size()], &bindings[i % bindings.size()]};
  }
  std::vector<Decision> out(requests.size());
  batchRuntime().decideBatch(requests, out);  // warm caches + arena
  const std::uint64_t before = gAllocations.load(std::memory_order_relaxed);
  batchRuntime().decideBatch(requests, out);
  const std::uint64_t after = gAllocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "steady-state decideBatch allocated " << (after - before) << " times";
  for (const Decision& decision : out) EXPECT_TRUE(decision.valid);
}

}  // namespace
}  // namespace osel::runtime

// Concurrency stress coverage for the sharded runtime (run under the tsan
// preset: `ctest --preset tsan`): registration storms, decide storms, mixed
// register+decide traffic, fault injection under concurrent launches, and
// the admission controller's shed/drain/quiesce semantics. Thread counts
// stay modest — the point is interleaving coverage under TSan, not load.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "runtime/admission.h"
#include "runtime/target_runtime.h"
#include "support/check.h"
#include "support/faultinject.h"

namespace osel::runtime {
namespace {

using namespace osel::ir;
using support::FaultKind;
using support::faultInjector;
namespace faultpoints = support::faultpoints;

constexpr int kThreads = 4;

TargetRegion makeKernel(const std::string& name) {
  return RegionBuilder(name)
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

/// Compiles `names` into one PAD and registers every kernel.
TargetRuntime makeRuntime(const std::vector<std::string>& names,
                          RuntimeOptions options = {}) {
  std::vector<TargetRegion> regions;
  regions.reserve(names.size());
  for (const std::string& name : names) regions.push_back(makeKernel(name));
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  TargetRuntime runtime(compiler::compileAll(regions, models), options);
  for (TargetRegion& region : regions) runtime.registerRegion(std::move(region));
  return runtime;
}

void runThreads(int count, const std::function<void(int)>& body) {
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(count));
  for (int t = 0; t < count; ++t) workers.emplace_back(body, t);
  for (std::thread& worker : workers) worker.join();
}

// --- Decide storm -----------------------------------------------------------

TEST(RuntimeConcurrency, DecideStormOverSharedRegion) {
  TargetRuntime runtime = makeRuntime({"storm"});
  constexpr int kIterations = 300;
  std::atomic<int> invalid{0};
  runThreads(kThreads, [&](int t) {
    for (int i = 0; i < kIterations; ++i) {
      // A few distinct sizes so the storm mixes cache hits and misses.
      const symbolic::Bindings bindings{{"n", 64 + 32 * ((t + i) % 3)}};
      const Decision decision = runtime.decide("storm", bindings);
      if (!decision.valid) invalid.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_EQ(invalid.load(), 0);
  const DecisionCache::Stats stats = runtime.decisionCacheStats("storm");
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  // At most one miss per distinct key per racing thread; virtually all
  // traffic hits.
  EXPECT_GT(stats.hits, stats.lookups / 2);
}

TEST(RuntimeConcurrency, DecideStormAcrossShards) {
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) names.push_back("region" + std::to_string(i));
  TargetRuntime runtime = makeRuntime(names);
  constexpr int kIterations = 200;
  runThreads(kThreads, [&](int t) {
    const symbolic::Bindings bindings{{"n", 96}};
    for (int i = 0; i < kIterations; ++i) {
      const Decision decision =
          runtime.decide(names[(t + i) % names.size()], bindings);
      ASSERT_TRUE(decision.valid);
    }
  });
}

// --- Registration storm -----------------------------------------------------

TEST(RuntimeConcurrency, RegistrationStorm) {
  // Pre-compile a PAD holding every name, then register all regions from
  // racing threads (distinct names and same-name re-registrations).
  std::vector<std::string> names;
  for (int i = 0; i < 2 * kThreads; ++i) {
    names.push_back("reg" + std::to_string(i));
  }
  std::vector<TargetRegion> regions;
  for (const std::string& name : names) regions.push_back(makeKernel(name));
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  RuntimeOptions options;
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  // PAD holds every name up front; no region is registered yet.
  TargetRuntime runtime(compiler::compileAll(regions, models), options);
  runThreads(kThreads, [&](int t) {
    for (int round = 0; round < 20; ++round) {
      // Two names per thread plus one shared name everyone re-registers.
      runtime.registerRegion(makeKernel(names[2 * t]));
      runtime.registerRegion(makeKernel(names[2 * t + 1]));
      runtime.registerRegion(makeKernel(names[0]));
    }
  });
  for (const std::string& name : names) {
    EXPECT_TRUE(runtime.hasRegion(name)) << name;
    EXPECT_NE(runtime.plan(name), nullptr) << name;
  }
}

// --- Mixed register + decide ------------------------------------------------

TEST(RuntimeConcurrency, MixedRegisterAndDecideStorm) {
  TargetRuntime runtime = makeRuntime({"mixed"});
  const symbolic::Bindings bindings{{"n", 96}};
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Continuous re-registration: each publish swaps a fresh snapshot,
    // plan, and cache under the readers.
    for (int i = 0; i < 60; ++i) runtime.registerRegion(makeKernel("mixed"));
    stop.store(true, std::memory_order_release);
  });
  runThreads(kThreads, [&](int) {
    while (!stop.load(std::memory_order_acquire)) {
      const Decision decision = runtime.decide("mixed", bindings);
      ASSERT_TRUE(decision.valid);
    }
    // A few more decides after the writer quits: the final snapshot serves.
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(runtime.decide("mixed", bindings).valid);
    }
  });
  writer.join();
  EXPECT_NE(runtime.plan("mixed"), nullptr);
}

TEST(RuntimeConcurrency, InvalidateRacesDecides) {
  TargetRuntime runtime = makeRuntime({"epoch"});
  const symbolic::Bindings bindings{{"n", 96}};
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    for (int i = 0; i < 200; ++i) runtime.invalidateDecisionCaches();
    stop.store(true, std::memory_order_release);
  });
  runThreads(kThreads, [&](int) {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(runtime.decide("epoch", bindings).valid);
    }
  });
  invalidator.join();
  const DecisionCache::Stats stats = runtime.decisionCacheStats("epoch");
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(RuntimeConcurrency, BatchDecideRacesRegistrationAndInvalidation) {
  // The batch fast path under the full churn mix: worker threads issue
  // decideBatch over two regions and three sizes (hit/miss interleavings)
  // while one thread re-registers a region (registry snapshot swaps drop
  // the plan the batch may be holding) and another sweeps the decision
  // caches (epoch bumps race the bulk insertMany). Everything must stay
  // valid, and the bulk cache API must keep the stats invariant.
  TargetRuntime runtime = makeRuntime({"batcha", "batchb"});
  constexpr std::size_t kBatch = 16;
  std::atomic<bool> stop{false};
  std::thread registrar([&] {
    for (int i = 0; i < 60; ++i) runtime.registerRegion(makeKernel("batcha"));
  });
  std::thread invalidator([&] {
    for (int i = 0; i < 200; ++i) runtime.invalidateDecisionCaches();
    stop.store(true, std::memory_order_release);
  });
  runThreads(kThreads, [&](int t) {
    const std::array<std::string, 2> names{"batcha", "batchb"};
    std::array<symbolic::Bindings, 3> sizes;
    for (int s = 0; s < 3; ++s) {
      sizes[static_cast<std::size_t>(s)] =
          symbolic::Bindings{{"n", 64 + 32 * s}};
    }
    std::array<DecideRequest, kBatch> requests;
    std::array<Decision, kBatch> out;
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      for (std::size_t j = 0; j < kBatch; ++j) {
        const std::size_t pick = static_cast<std::size_t>(t + round) + j;
        requests[j] = {names[pick % names.size()],
                       &sizes[pick % sizes.size()]};
      }
      runtime.decideBatch(requests, out);
      for (const Decision& decision : out) ASSERT_TRUE(decision.valid);
      ++round;
    }
  });
  registrar.join();
  invalidator.join();
  for (const char* name : {"batcha", "batchb"}) {
    const DecisionCache::Stats stats = runtime.decisionCacheStats(name);
    EXPECT_EQ(stats.hits + stats.misses, stats.lookups) << name;
  }
}

// --- Fault injection under concurrency --------------------------------------

class ConcurrentFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { faultInjector().disarmAll(); }
};

TEST_F(ConcurrentFaultTest, BreakerUnderConcurrentFatalLaunches) {
  RuntimeOptions options;
  options.health.quarantineThreshold = 3;
  options.health.quarantineLaunches = 4;
  options.retry.maxAttempts = 1;
  TargetRuntime runtime = makeRuntime({"faulty"}, options);
  faultInjector().arm(faultpoints::kGpuLaunch,
                      {.kind = FaultKind::DeviceLost, .probability = 1.0});
  const symbolic::Bindings bindings{{"n", 64}};
  const TargetRegion kernel = makeKernel("faulty");
  constexpr int kLaunchesPerThread = 25;
  runThreads(kThreads, [&](int) {
    // Per-thread store: the simulators write into the arrays.
    ArrayStore store = allocateArrays(kernel, bindings);
    for (int i = 0; i < kLaunchesPerThread; ++i) {
      const LaunchRecord record =
          runtime.launch("faulty", bindings, store, Policy::AlwaysGpu);
      // Every GPU attempt faults fatally; the CPU fallback always lands.
      ASSERT_EQ(record.chosen, Device::Cpu);
      ASSERT_NE(record.fallbackReason, FallbackReason::None);
    }
  });
  const DeviceHealthTracker& health = runtime.gpuHealth();
  EXPECT_GT(health.quarantinesOpened(), 0);
  EXPECT_GT(health.totalFatals(), 0);
  // Fatals recorded = launches that actually probed the GPU (the rest were
  // blocked by the open breaker); together they cover every launch.
  const std::vector<LaunchRecord> log = runtime.logSnapshot();
  ASSERT_EQ(log.size(),
            static_cast<std::size_t>(kThreads) * kLaunchesPerThread);
  int quarantineBlocked = 0;
  for (const LaunchRecord& record : log) {
    if (record.fallbackReason == FallbackReason::Quarantined) {
      ++quarantineBlocked;
    }
  }
  EXPECT_EQ(quarantineBlocked + health.totalFatals(),
            static_cast<int>(log.size()));
}

// --- Admission control ------------------------------------------------------

TEST(AdmissionControllerTest, BudgetShedsDeterministically) {
  AdmissionController controller({.maxInFlight = 1});
  EXPECT_EQ(controller.enter(), AdmissionOutcome::Admitted);
  EXPECT_EQ(controller.enter(), AdmissionOutcome::Shed);
  EXPECT_EQ(controller.inFlight(), 2u);  // shed launches hold their slot
  controller.exit();
  controller.exit();
  EXPECT_EQ(controller.enter(), AdmissionOutcome::Admitted);
  controller.exit();
  EXPECT_EQ(controller.admitted(), 2u);
  EXPECT_EQ(controller.shed(), 1u);
}

TEST(AdmissionControllerTest, DrainRefusesResumeReadmits) {
  AdmissionController controller;
  controller.drain();
  EXPECT_EQ(controller.enter(), AdmissionOutcome::Refused);
  EXPECT_EQ(controller.inFlight(), 0u);  // refused never entered
  controller.resume();
  EXPECT_EQ(controller.enter(), AdmissionOutcome::Admitted);
  controller.exit();
  EXPECT_EQ(controller.refused(), 1u);
}

TEST(AdmissionControllerTest, DeadlineChargesLedger) {
  AdmissionController controller({.launchDeadlineSeconds = 1e-3});
  EXPECT_FALSE(controller.charge(5e-4));
  EXPECT_TRUE(controller.charge(2e-3));
  EXPECT_EQ(controller.deadlineMisses(), 1u);
  EXPECT_DOUBLE_EQ(controller.chargedSeconds(), 2.5e-3);
}

TEST(AdmissionControllerTest, QuiesceWaitsForInFlight) {
  AdmissionController controller;
  ASSERT_EQ(controller.enter(), AdmissionOutcome::Admitted);
  std::atomic<bool> quiesced{false};
  std::thread waiter([&] {
    controller.quiesce();
    quiesced.store(true, std::memory_order_release);
  });
  // The waiter must block while one launch is in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(quiesced.load(std::memory_order_acquire));
  controller.exit();
  waiter.join();
  EXPECT_TRUE(quiesced.load(std::memory_order_acquire));
}

TEST(RuntimeConcurrency, ShedLaunchesDegradeToSafeDefault) {
  RuntimeOptions options;
  options.admission.maxInFlight = 1;
  TargetRuntime runtime = makeRuntime({"shed"}, options);
  const symbolic::Bindings bindings{{"n", 96}};
  const TargetRegion kernel = makeKernel("shed");
  runThreads(kThreads, [&](int) {
    ArrayStore store = allocateArrays(kernel, bindings);
    for (int i = 0; i < 30; ++i) {
      (void)runtime.launch("shed", bindings, store, Policy::ModelGuided);
    }
  });
  const std::vector<LaunchRecord> log = runtime.logSnapshot();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kThreads) * 30);
  // With a budget of one and four racing threads, overlap must have shed
  // some launches; every shed record degraded to the safe default and says
  // so in the fallback column.
  std::size_t shedCount = 0;
  for (const LaunchRecord& record : log) {
    if (!record.shed) continue;
    ++shedCount;
    EXPECT_EQ(record.preferred, runtime.selector().config().safeDefaultDevice);
    EXPECT_EQ(record.fallbackReason, FallbackReason::Shed);
    EXPECT_FALSE(record.decision.valid);
    EXPECT_FALSE(record.decisionCompiled);
  }
  EXPECT_GT(shedCount, 0u);
  EXPECT_EQ(runtime.admission().shed(), shedCount);
  // The CSV carries the shed flag (last column).
  const std::string csv = renderLogCsv(log);
  EXPECT_NE(csv.find(",shed\n"), std::string::npos);
  EXPECT_NE(csv.find(",1\n"), std::string::npos);
}

TEST(RuntimeConcurrency, DrainQuiesceStopsIntake) {
  TargetRuntime runtime = makeRuntime({"drainme"});
  const symbolic::Bindings bindings{{"n", 64}};
  const TargetRegion kernel = makeKernel("drainme");
  ArrayStore store = allocateArrays(kernel, bindings);
  (void)runtime.launch("drainme", bindings, store, Policy::ModelGuided);
  runtime.drain();
  EXPECT_THROW(
      (void)runtime.launch("drainme", bindings, store, Policy::ModelGuided),
      support::PreconditionError);
  runtime.quiesce();  // nothing in flight: returns immediately
  EXPECT_EQ(runtime.admission().refused(), 1u);
  runtime.resume();
  const LaunchRecord record =
      runtime.launch("drainme", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.shed);
}

}  // namespace
}  // namespace osel::runtime

// The [[deprecated]] compatibility shims: each pre-redesign entry point
// must keep compiling (with a warning, silenced here) and must behave
// exactly like the unified API it forwards to. One test per shim.
#include <gtest/gtest.h>

#include <array>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/target_runtime.h"

// These tests exist to exercise the deprecated entry points.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace osel::runtime {
namespace {

using namespace osel::ir;

TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

pad::AttributeDatabase makeDatabase() {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{streamKernel()};
  return compiler::compileAll(regions, models);
}

void expectSameDecision(const Decision& a, const Decision& b) {
  EXPECT_EQ(a.device, b.device);
  EXPECT_EQ(a.valid, b.valid);
  EXPECT_DOUBLE_EQ(a.cpu.seconds, b.cpu.seconds);
  EXPECT_DOUBLE_EQ(a.gpu.totalSeconds, b.gpu.totalSeconds);
}

TEST(DeprecatedApi, DecideOnAttributesMatchesRegionHandle) {
  const pad::AttributeDatabase db = makeDatabase();
  const OffloadSelector selector{SelectorConfig{}};
  const pad::RegionAttributes* attr = db.find("stream");
  ASSERT_NE(attr, nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  expectSameDecision(selector.decide(*attr, bindings),
                     selector.decide(RegionHandle(*attr), bindings));
}

TEST(DeprecatedApi, DecideOnCompiledPlanMatchesRegionHandle) {
  const pad::AttributeDatabase db = makeDatabase();
  const OffloadSelector selector{SelectorConfig{}};
  const pad::RegionAttributes* attr = db.find("stream");
  ASSERT_NE(attr, nullptr);
  const CompiledRegionPlan plan = selector.compile(*attr);
  const symbolic::Bindings bindings{{"n", 96}};
  expectSameDecision(selector.decide(plan, bindings),
                     selector.decide(RegionHandle(plan), bindings));
}

TEST(DeprecatedApi, LooseArgumentConstructorMatchesRuntimeOptions) {
  SelectorConfig selectorConfig;
  selectorConfig.cpuThreads = 160;

  RuntimeOptions options;
  options.selector = selectorConfig;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  TargetRuntime modern(makeDatabase(), options);
  modern.registerRegion(streamKernel());

  TargetRuntime legacy(makeDatabase(), selectorConfig,
                       cpusim::CpuSimParams::power9(), 160,
                       gpusim::GpuSimParams::teslaV100());
  legacy.registerRegion(streamKernel());

  EXPECT_EQ(legacy.selector().config().cpuThreads, 160);
  const symbolic::Bindings bindings{{"n", 128}};
  ArrayStore modernStore = allocateArrays(streamKernel(), bindings);
  ArrayStore legacyStore = allocateArrays(streamKernel(), bindings);
  const LaunchRecord a =
      modern.launch("stream", bindings, modernStore, Policy::ModelGuided);
  const LaunchRecord b =
      legacy.launch("stream", bindings, legacyStore, Policy::ModelGuided);
  EXPECT_EQ(a.chosen, b.chosen);
  expectSameDecision(a.decision, b.decision);
  EXPECT_DOUBLE_EQ(a.actualSeconds, b.actualSeconds);
}

}  // namespace
}  // namespace osel::runtime

// Selection-policy layer (runtime/policy): the seam contract end to end.
//
//   * kind names parse/print round-trip and unknowns are rejected,
//   * ModelCompare is the *extracted* status quo — bit-identical decisions
//     (device, validity, diagnostic, prediction doubles) against the
//     default devirtualized rule over the full Polybench grid, on the
//     compiled path, the interpreted oracle, and decideBatch,
//   * a Calibrated refit bumps stateEpoch and the runtime's DecisionCache
//     stops serving pre-refit decisions — single-threaded and under a
//     concurrent refit storm (the tsan preset runs this binary),
//   * Hysteresis dead-band stickiness and flip-epoch semantics,
//   * EpsilonGreedy probe streams are deterministic in (seed, region,
//     index) and hit the configured rate; probed decisions are uncacheable,
//   * DriftDetector::resetRegion re-arms state but keeps history counters,
//   * the closed loop: a mid-run host slowdown (the simulated CPU loses
//     cores) must latch a drift alarm, trigger a Calibrated refit through
//     the launch feedback channel, and surface in the session's status.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "obs/trace.h"
#include "polybench/polybench.h"
#include "runtime/policy/policy.h"
#include "runtime/target_runtime.h"

namespace osel {
namespace {

using namespace osel::ir;
namespace policy = osel::runtime::policy;

TargetRegion gemmKernel() {
  return RegionBuilder("gemm")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F32, {sym("n"), sym("n")}, Transfer::ToFrom)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc",
                        local("acc") + read("A", {sym("i"), sym("k")}) *
                                           read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

/// Elementwise kernel for tests that want a second, cheap region shape.
TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

/// `cpuSimThreads` sets the *simulated* host's concurrency; the selector
/// always predicts against the full 160-thread host, so a lower value
/// models a degraded environment (throttling, a noisy neighbor stealing
/// cores) the analytical model knows nothing about.
runtime::TargetRuntime makeRuntime(
    const TargetRegion& region,
    std::shared_ptr<policy::SelectionPolicy> selectionPolicy,
    obs::TraceSession* session = nullptr, int cpuSimThreads = 160) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{region};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  runtime::RuntimeOptions options;
  options.selector.cpuThreads = 160;
  options.selector.policy = std::move(selectionPolicy);
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.cpuSimThreads = cpuSimThreads;
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  options.trace = session;
  runtime::TargetRuntime rt(std::move(db), options);
  rt.registerRegion(region);
  return rt;
}

/// Exact bit equality, so NaN == NaN when the bit patterns match — the
/// contract is "same code ran", not "answers are close".
bool bitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expectBitIdentical(const runtime::Decision& a, const runtime::Decision& b,
                        const std::string& context) {
  EXPECT_EQ(a.device, b.device) << context;
  EXPECT_EQ(a.valid, b.valid) << context;
  EXPECT_EQ(a.probe, b.probe) << context;
  EXPECT_EQ(a.diagnostic, b.diagnostic) << context;
  EXPECT_PRED2(bitEqual, a.cpu.seconds, b.cpu.seconds) << context;
  EXPECT_PRED2(bitEqual, a.cpu.totalCycles, b.cpu.totalCycles) << context;
  EXPECT_PRED2(bitEqual, a.gpu.totalSeconds, b.gpu.totalSeconds) << context;
  EXPECT_PRED2(bitEqual, a.gpu.kernelCycles, b.gpu.kernelCycles) << context;
}

TEST(PolicyKinds, NamesRoundTripAndUnknownsRejected) {
  const std::array<policy::PolicyKind, 4> kinds{
      policy::PolicyKind::ModelCompare, policy::PolicyKind::Calibrated,
      policy::PolicyKind::Hysteresis, policy::PolicyKind::EpsilonGreedy};
  for (const policy::PolicyKind kind : kinds) {
    const std::string_view name = policy::toString(kind);
    const auto parsed = policy::parsePolicyKind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
    // Every accepted name is in the CLI error-message list.
    EXPECT_NE(policy::policyKindNames().find(name), std::string::npos);
    // makePolicy honors the kind and reports the same name.
    policy::PolicyOptions options;
    options.kind = kind;
    const auto made = policy::makePolicy(options);
    ASSERT_NE(made, nullptr);
    EXPECT_EQ(made->kind(), kind);
    EXPECT_EQ(made->name(), name);
  }
  EXPECT_FALSE(policy::parsePolicyKind("oracle").has_value());
  EXPECT_FALSE(policy::parsePolicyKind("ModelCompare").has_value());
  EXPECT_FALSE(policy::parsePolicyKind("").has_value());
}

TEST(PolicyKinds, StatelessDefaults) {
  const auto modelCompare = policy::makePolicy();
  EXPECT_EQ(modelCompare->kind(), policy::PolicyKind::ModelCompare);
  EXPECT_EQ(modelCompare->stateEpoch(), 0u);
  EXPECT_EQ(modelCompare->refits(), 0u);
  EXPECT_TRUE(modelCompare->cacheable());
  EXPECT_TRUE(modelCompare->calibrationReport().empty());
  // Feedback on a stateless policy never refits.
  EXPECT_FALSE(
      modelCompare->observe({"r", runtime::Device::Gpu, 1.0, 100.0, true}));
  EXPECT_EQ(modelCompare->stateEpoch(), 0u);
}

// The acceptance criterion for the extraction: an explicit ModelCompare
// policy decides bit-identically to the default (devirtualized) rule over
// the whole Polybench grid — compiled path, interpreted oracle, and batch.
TEST(ModelCompareExtraction, BitIdenticalOverPolybenchGrid) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  std::vector<TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const TargetRegion& kernel : benchmark.kernels())
      regions.push_back(kernel);
  }
  const pad::AttributeDatabase db = compiler::compileAll(regions, models);

  runtime::SelectorConfig seedConfig;  // policy unset: the seed rule
  const runtime::OffloadSelector seed(seedConfig);
  runtime::SelectorConfig extractedConfig;
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::ModelCompare;
  extractedConfig.policy = policy::makePolicy(options);
  const runtime::OffloadSelector extracted(extractedConfig);

  // 3 is the smallest n every suite kernel accepts; 9600 is the largest
  // Fig. 6-7 size. The ends exercise degenerate-geometry and deep-offload
  // decisions, the middle the crossover band.
  const std::array<std::int64_t, 6> sizes{3, 4, 16, 100, 1100, 9600};
  std::vector<symbolic::Bindings> allBindings;
  std::vector<std::string> regionNames;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const std::int64_t n : sizes) {
      const symbolic::Bindings bindings = benchmark.bindings(n);
      for (const TargetRegion& kernel : benchmark.kernels()) {
        const pad::RegionAttributes& attr = db.at(kernel.name);
        const std::string context =
            kernel.name + " n=" + std::to_string(n);
        // Compiled fast path.
        const runtime::CompiledRegionPlan seedPlan = seed.compile(attr);
        const runtime::CompiledRegionPlan extractedPlan =
            extracted.compile(attr);
        expectBitIdentical(
            seed.decide(runtime::RegionHandle(seedPlan), bindings),
            extracted.decide(runtime::RegionHandle(extractedPlan), bindings),
            context + " [compiled]");
        // Interpreted oracle walk.
        expectBitIdentical(
            seed.decide(runtime::RegionHandle(attr), bindings),
            extracted.decide(runtime::RegionHandle(attr), bindings),
            context + " [interpreted]");
        regionNames.push_back(kernel.name);
        allBindings.push_back(bindings);
      }
    }
  }

  // decideBatch over the identical request stream: one runtime per rule.
  runtime::RuntimeOptions seedRt;
  seedRt.selector = seedConfig;
  runtime::RuntimeOptions extractedRt;
  extractedRt.selector = extractedConfig;
  runtime::TargetRuntime seedRuntime(compiler::compileAll(regions, models),
                                     seedRt);
  runtime::TargetRuntime extractedRuntime(
      compiler::compileAll(regions, models), extractedRt);
  for (const TargetRegion& region : regions) {
    seedRuntime.registerRegion(region);
    extractedRuntime.registerRegion(region);
  }
  std::vector<runtime::DecideRequest> requests;
  for (std::size_t i = 0; i < allBindings.size(); ++i) {
    requests.push_back({regionNames[i], &allBindings[i]});
  }
  std::vector<runtime::Decision> seedOut(requests.size());
  std::vector<runtime::Decision> extractedOut(requests.size());
  seedRuntime.decideBatch(requests, seedOut);
  extractedRuntime.decideBatch(requests, extractedOut);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    expectBitIdentical(seedOut[i], extractedOut[i],
                       regionNames[i] + " [batch row " + std::to_string(i) +
                           "]");
  }
}

TEST(CalibratedPolicy, RefitBumpsEpochAndCacheDropsStaleDecisions) {
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::Calibrated;
  options.calibrationMinSamples = 1;
  const auto calibrated = policy::makePolicy(options);
  obs::TraceSession session;
  runtime::TargetRuntime rt = makeRuntime(gemmKernel(), calibrated, &session);
  const symbolic::Bindings bindings{{"n", 4096}};

  // Healthy factors: large GEMM offloads (the seed rule's answer).
  const runtime::Decision first = rt.decide("gemm", bindings);
  EXPECT_EQ(first.device, runtime::Device::Gpu);
  EXPECT_EQ(session.metrics().counter("decision.compiled").value(), 1u);
  const runtime::Decision second = rt.decide("gemm", bindings);
  EXPECT_EQ(second.device, runtime::Device::Gpu);
  EXPECT_EQ(session.metrics().counter("decision.cache_hit").value(), 1u);

  // A latched drift alarm plus one sample (minSamples=1) refits: the GPU
  // "really" ran 1000x its prediction, so the corrected model must flip
  // the region back to the CPU.
  EXPECT_TRUE(
      calibrated->observe({"gemm", runtime::Device::Gpu, 1.0, 1000.0, true}));
  EXPECT_EQ(calibrated->stateEpoch(), 1u);
  EXPECT_EQ(calibrated->refits(), 1u);

  // The epoch bump must invalidate the cached pre-refit decision: this
  // decide recomputes (compiled counter advances, cache_hit does not) and
  // lands on the corrected device.
  const runtime::Decision third = rt.decide("gemm", bindings);
  EXPECT_EQ(third.device, runtime::Device::Cpu);
  EXPECT_EQ(session.metrics().counter("decision.compiled").value(), 2u);
  EXPECT_EQ(session.metrics().counter("decision.cache_hit").value(), 1u);

  // The post-refit decision memoizes under the new epoch.
  const runtime::Decision fourth = rt.decide("gemm", bindings);
  EXPECT_EQ(fourth.device, runtime::Device::Cpu);
  EXPECT_EQ(session.metrics().counter("decision.cache_hit").value(), 2u);

  const std::vector<policy::CalibrationFactor> report =
      calibrated->calibrationReport();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].region, "gemm");
  EXPECT_DOUBLE_EQ(report[0].gpuFactor, 1000.0);
  EXPECT_EQ(report[0].refits, 1u);
  EXPECT_EQ(report[0].pendingSamples, 0u);  // the refit consumed the window
}

// The tsan preset's target: concurrent deciders racing a refit storm. Every
// refit bumps the epoch, so deciders continuously re-derive against fresh
// calibration; after the storm settles the cache must serve the final
// calibration's answer, not any stale intermediate.
TEST(CalibratedPolicy, ConcurrentRefitStormKeepsCacheCoherent) {
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::Calibrated;
  options.calibrationMinSamples = 1;
  const auto calibrated = policy::makePolicy(options);
  runtime::TargetRuntime rt = makeRuntime(gemmKernel(), calibrated);
  const symbolic::Bindings bindings{{"n", 4096}};

  constexpr int kDeciders = 4;
  constexpr int kDecidesEach = 200;
  constexpr int kRefitsEach = 50;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kDeciders + 2);
  for (int t = 0; t < kDeciders; ++t) {
    threads.emplace_back([&] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kDecidesEach; ++i) {
        const runtime::Decision decision = rt.decide("gemm", bindings);
        EXPECT_TRUE(decision.valid);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kRefitsEach; ++i) {
        // Alternate between "GPU is terrible" and "GPU is fine" so the
        // preferred device actually flips back and forth under the race.
        const double actual = (i % 2 == t % 2) ? 1000.0 : 1.0;
        (void)calibrated->observe(
            {"gemm", runtime::Device::Gpu, 1.0, actual, /*alarmRaised=*/true});
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(calibrated->refits(), 2u * kRefitsEach);
  EXPECT_EQ(calibrated->stateEpoch(), calibrated->refits());

  // Settle on a known calibration, then the cache must serve its answer.
  EXPECT_TRUE(
      calibrated->observe({"gemm", runtime::Device::Gpu, 1.0, 1000.0, true}));
  EXPECT_EQ(rt.decide("gemm", bindings).device, runtime::Device::Cpu);
  EXPECT_TRUE(
      calibrated->observe({"gemm", runtime::Device::Gpu, 1000.0, 1.0, true}));
  EXPECT_EQ(rt.decide("gemm", bindings).device, runtime::Device::Gpu);
}

TEST(HysteresisPolicy, DeadBandSticksAndFlipsBumpEpoch) {
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::Hysteresis;
  options.hysteresisBand = 0.10;
  const auto hysteresis = policy::makePolicy(options);

  // In-band before any decisive sample: the raw compare breaks the tie and
  // must NOT seed the memory (a band-interior sample is not decisive).
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 0.95}).device, runtime::Device::Gpu);
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 1.05}).device, runtime::Device::Cpu);
  EXPECT_EQ(hysteresis->stateEpoch(), 0u);

  // Decisive GPU win (0.80 * 1.1 < 1.0): remembered, epoch bumps.
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 0.80}).device, runtime::Device::Gpu);
  EXPECT_EQ(hysteresis->stateEpoch(), 1u);
  // Now the same in-band inputs stick with the remembered side.
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 1.05}).device, runtime::Device::Gpu);
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 0.95}).device, runtime::Device::Gpu);
  EXPECT_EQ(hysteresis->stateEpoch(), 1u);  // sticking is not a flip

  // Decisive CPU win flips the memory and bumps the epoch again.
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 2.0}).device, runtime::Device::Cpu);
  EXPECT_EQ(hysteresis->stateEpoch(), 2u);
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 0.95}).device, runtime::Device::Cpu);
  // Re-confirming the same decisive side is not a flip.
  EXPECT_EQ(hysteresis->choose({"r", 1.0, 2.0}).device, runtime::Device::Cpu);
  EXPECT_EQ(hysteresis->stateEpoch(), 2u);

  // Regions are independent: "s" starts from scratch.
  EXPECT_EQ(hysteresis->choose({"s", 1.0, 1.05}).device, runtime::Device::Cpu);
  EXPECT_TRUE(hysteresis->cacheable());
}

TEST(EpsilonGreedyPolicy, DeterministicStreamsAndProbeRate) {
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::EpsilonGreedy;
  options.epsilon = 0.05;
  options.seed = 42;
  const auto a = policy::makePolicy(options);
  const auto b = policy::makePolicy(options);
  options.seed = 43;
  const auto other = policy::makePolicy(options);

  EXPECT_FALSE(a->cacheable());  // a cached probe would replay forever

  constexpr int kDraws = 2000;
  int probes = 0;
  bool seedsDiverge = false;
  for (int i = 0; i < kDraws; ++i) {
    const policy::PolicyInputs inputs{"r", 1.0, 0.5};  // GPU exploits
    const policy::PolicyChoice fromA = a->choose(inputs);
    const policy::PolicyChoice fromB = b->choose(inputs);
    // Same (seed, region, index) => identical stream, draw by draw.
    EXPECT_EQ(fromA.device, fromB.device) << "draw " << i;
    EXPECT_EQ(fromA.probe, fromB.probe) << "draw " << i;
    // A probe is exactly "picked the predicted-slower device".
    EXPECT_EQ(fromA.probe, fromA.device == runtime::Device::Cpu);
    if (fromA.probe) ++probes;
    if (other->choose(inputs).probe != fromA.probe) seedsDiverge = true;
  }
  // ~epsilon of draws probe (binomial, kDraws=2000, p=0.05 => ~100 +/- 10).
  EXPECT_GT(probes, kDraws * 0.02);
  EXPECT_LT(probes, kDraws * 0.10);
  EXPECT_TRUE(seedsDiverge) << "different seeds produced identical streams";
}

TEST(EpsilonGreedyPolicy, ZeroEpsilonNeverProbes) {
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::EpsilonGreedy;
  options.epsilon = 0.0;
  const auto greedy = policy::makePolicy(options);
  for (int i = 0; i < 100; ++i) {
    const policy::PolicyChoice choice = greedy->choose({"r", 1.0, 0.5});
    EXPECT_EQ(choice.device, runtime::Device::Gpu);
    EXPECT_FALSE(choice.probe);
  }
}

TEST(DriftDetectorReset, ResetRegionReArmsButKeepsHistory) {
  obs::DriftOptions options;
  options.baselineSamples = 2;
  options.cusumSlack = 0.0;
  options.cusumThreshold = 0.5;
  obs::DriftDetector detector(options);

  // Establish a low baseline, then sustained excess error latches an alarm.
  (void)detector.recordError("r", 0.1);
  (void)detector.recordError("r", 0.1);
  (void)detector.recordError("other", 0.1);
  bool alarmed = false;
  for (int i = 0; i < 4 && !alarmed; ++i) {
    alarmed = detector.recordError("r", 1.0).alarm;
  }
  ASSERT_TRUE(alarmed);
  detector.recordComparison("r", /*mispredicted=*/true);

  auto statsFor = [&](std::string_view region) {
    for (const obs::RegionDriftStats& stats : detector.stats()) {
      if (stats.region == region) return stats;
    }
    return obs::RegionDriftStats{};
  };
  EXPECT_TRUE(statsFor("r").alarming);
  EXPECT_EQ(statsFor("r").alarms, 1u);

  detector.resetRegion("r");
  const obs::RegionDriftStats after = statsFor("r");
  // Re-armed: the sample stream restarts from scratch...
  EXPECT_EQ(after.samples, 0u);
  EXPECT_DOUBLE_EQ(after.cusum, 0.0);
  EXPECT_FALSE(after.alarming);
  // ...but the monotonic history survives ("latched, then reset").
  EXPECT_EQ(after.alarms, 1u);
  EXPECT_EQ(after.comparisons, 1u);
  EXPECT_EQ(after.mispredictions, 1u);
  // Other regions are untouched; unknown regions are a no-op.
  EXPECT_EQ(statsFor("other").samples, 1u);
  detector.resetRegion("never-seen");
}

// The whole loop in one test: healthy launches arm the drift baseline, a
// host slowdown (the simulated CPU loses most of its cores mid-run while
// the model keeps predicting the 160-thread host; same session and policy)
// latches the CUSUM alarm, the launch feedback channel delivers it to the
// Calibrated policy, the refit fires, and every surface shows it — the
// policy.refit counter, the trace instant, the session's policy status,
// and the drift stats' latched-then-reset shape.
TEST(FeedbackLoop, DriftAlarmTriggersRefitThroughLaunchPath) {
  obs::TraceSession session;
  policy::PolicyOptions options;
  options.kind = policy::PolicyKind::Calibrated;
  const auto calibrated = policy::makePolicy(options);

  // The real Polybench GEMM at test size: the models were calibrated for
  // it, so the healthy-phase error (the drift baseline) is low enough that
  // a genuine slowdown is distinguishable. (A hand-built region with a
  // large healthy error would saturate: |pred-act|/act tops out near 1.0
  // when the actual grows, so a high baseline can never alarm.)
  const polybench::Benchmark* gemm = nullptr;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    if (benchmark.name() == "GEMM") gemm = &benchmark;
  }
  ASSERT_NE(gemm, nullptr);
  const std::string region = gemm->kernels().front().name;
  const symbolic::Bindings bindings =
      gemm->bindings(gemm->size(polybench::Mode::Test));

  {
    // Phase 1: matched models and simulators; 4 Oracle launches feed 8
    // error samples — exactly the drift baseline window. GEMM is compute-
    // bound on the host, so losing cores (phase 2) moves its actual time
    // the way the thread-blind model cannot predict.
    runtime::TargetRuntime healthy =
        makeRuntime(gemm->kernels().front(), calibrated, &session);
    ir::ArrayStore store = gemm->allocate(bindings);
    polybench::initializeInputs(*gemm, bindings, store);
    for (int i = 0; i < 4; ++i) {
      (void)healthy.launch(region, bindings, store, runtime::Policy::Oracle);
    }
  }
  EXPECT_EQ(calibrated->refits(), 0u);

  {
    // Phase 2: the simulated host collapses to 4 usable threads while the
    // model keeps predicting all 160 — same session, same policy, so the
    // baseline learned in phase 1 is what the shifted errors alarm
    // against.
    runtime::TargetRuntime shifted = makeRuntime(
        gemm->kernels().front(), calibrated, &session, /*cpuSimThreads=*/4);
    ir::ArrayStore store = gemm->allocate(bindings);
    polybench::initializeInputs(*gemm, bindings, store);
    for (int i = 0; i < 6; ++i) {
      (void)shifted.launch(region, bindings, store, runtime::Policy::Oracle);
    }
  }

  // The refit fired through the launch path (not a hand-fed observe).
  EXPECT_GE(calibrated->refits(), 1u);
  EXPECT_EQ(calibrated->stateEpoch(), calibrated->refits());
  EXPECT_GE(session.metrics().counter("policy.refit").value(),
            calibrated->refits());

  // The trace narrates it.
  bool sawRefitInstant = false;
  for (const obs::TraceEvent& event : session.snapshot()) {
    if (std::string_view(event.name) == "policy.refit") sawRefitInstant = true;
  }
  EXPECT_TRUE(sawRefitInstant);

  // The session's policy status carries the live calibration.
  const obs::PolicyStatus status = session.policyStatus();
  EXPECT_EQ(status.name, "calibrated");
  EXPECT_TRUE(status.calibrated);
  EXPECT_GE(status.refits, 1u);
  ASSERT_FALSE(status.factors.empty());
  EXPECT_EQ(status.factors[0].region, region);
  // The CPU really ran far slower than its prediction, so the refit
  // correction must scale its predictions up (well above the healthy-phase
  // error level).
  EXPECT_GT(status.factors[0].cpuFactor, 1.5);

  // Drift state shows latched-then-reset: the alarm transitioned, the
  // refit re-armed the region, and nothing is latched now.
  bool sawResetShape = false;
  for (const obs::RegionDriftStats& stats : session.driftStats()) {
    if (stats.region == region && stats.alarms > 0 && !stats.alarming) {
      sawResetShape = true;
    }
  }
  EXPECT_TRUE(sawResetShape);
}

}  // namespace
}  // namespace osel

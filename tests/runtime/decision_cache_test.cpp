// DecisionCache unit coverage (hit/miss counters, LRU eviction, refresh,
// disabled capacity, clear) plus TargetRuntime integration: repeated
// launches memoize, re-registration and explicit invalidation drop the
// memoized decisions, and the LaunchRecord/CSV telemetry reports the path.
#include "runtime/decision_cache.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/target_runtime.h"

namespace osel::runtime {
namespace {

using namespace osel::ir;

Decision makeDecision(double cpuSeconds) {
  Decision decision;
  decision.device = Device::Gpu;
  decision.cpu.seconds = cpuSeconds;
  decision.gpu.totalSeconds = cpuSeconds / 2.0;
  return decision;
}

std::array<std::int64_t, 2> key(std::int64_t a, std::int64_t b) {
  return {a, b};
}

TEST(DecisionCache, HitAndMissCounters) {
  DecisionCache cache(4);
  const auto k = key(9600, 3);
  EXPECT_EQ(cache.find(0b11, k), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.insert(0b11, k, makeDecision(1.0));
  EXPECT_EQ(cache.stats().insertions, 1u);
  const Decision* hit = cache.find(0b11, k);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->cpu.seconds, 1.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Same values under a different bound mask is a different key.
  EXPECT_EQ(cache.find(0b01, k), nullptr);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(DecisionCache, LruEvictionAtCapacity) {
  DecisionCache cache(2);
  cache.insert(0b1, key(1, 0), makeDecision(1.0));
  cache.insert(0b1, key(2, 0), makeDecision(2.0));
  ASSERT_NE(cache.find(0b1, key(1, 0)), nullptr);  // refresh entry 1
  cache.insert(0b1, key(3, 0), makeDecision(3.0));  // evicts entry 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find(0b1, key(2, 0)), nullptr);
  EXPECT_NE(cache.find(0b1, key(1, 0)), nullptr);
  EXPECT_NE(cache.find(0b1, key(3, 0)), nullptr);
}

TEST(DecisionCache, InsertRefreshesExistingKey) {
  DecisionCache cache(2);
  cache.insert(0b1, key(7, 0), makeDecision(1.0));
  cache.insert(0b1, key(7, 0), makeDecision(5.0));
  EXPECT_EQ(cache.size(), 1u);
  const Decision* hit = cache.find(0b1, key(7, 0));
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->cpu.seconds, 5.0);
}

TEST(DecisionCache, CapacityZeroDisablesStorage) {
  DecisionCache cache(0);
  cache.insert(0b1, key(1, 0), makeDecision(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(0b1, key(1, 0)), nullptr);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(DecisionCache, ClearDropsEntriesKeepsCounters) {
  DecisionCache cache(4);
  cache.insert(0b1, key(1, 0), makeDecision(1.0));
  ASSERT_NE(cache.find(0b1, key(1, 0)), nullptr);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find(0b1, key(1, 0)), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(DecisionCache, HashDistinguishesMasksAndValues) {
  const auto k = key(9600, 3);
  EXPECT_NE(DecisionCache::hashKey(0b11, k), DecisionCache::hashKey(0b01, k));
  EXPECT_NE(DecisionCache::hashKey(0b11, k),
            DecisionCache::hashKey(0b11, key(9601, 3)));
}

// --- TargetRuntime integration ----------------------------------------------

TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

TargetRuntime makeRuntime(RuntimeOptions options = {},
                          SelectorConfig config = {}) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{streamKernel()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  config.cpuThreads = 160;
  options.selector = config;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  TargetRuntime runtime(std::move(db), options);
  runtime.registerRegion(streamKernel());
  return runtime;
}

TEST(TargetRuntimeDecisionCache, RepeatedLaunchHitsCache) {
  TargetRuntime runtime = makeRuntime();
  ASSERT_NE(runtime.plan("stream"), nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord first =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(first.decisionCompiled);
  EXPECT_FALSE(first.decisionCacheHit);
  const LaunchRecord second =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(second.decisionCompiled);
  EXPECT_TRUE(second.decisionCacheHit);
  // The memoized decision is the same decision.
  EXPECT_EQ(second.decision.device, first.decision.device);
  EXPECT_EQ(second.decision.cpu.seconds, first.decision.cpu.seconds);
  EXPECT_EQ(second.decision.gpu.totalSeconds, first.decision.gpu.totalSeconds);
  const DecisionCache::Stats stats = runtime.decisionCacheStats("stream");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Different bindings are a different key.
  const symbolic::Bindings other{{"n", 128}};
  ArrayStore otherStore = allocateArrays(streamKernel(), other);
  const LaunchRecord third =
      runtime.launch("stream", other, otherStore, Policy::ModelGuided);
  EXPECT_FALSE(third.decisionCacheHit);
}

TEST(TargetRuntimeDecisionCache, InvalidateDropsMemoizedDecisions) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 1u);
  runtime.invalidateDecisionCaches();
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.decisionCacheHit);
  // Counters survive invalidation.
  EXPECT_EQ(runtime.decisionCacheStats("stream").misses, 2u);
}

TEST(TargetRuntimeDecisionCache, ReRegistrationReplacesPlanAndCache) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 1u);
  runtime.registerRegion(streamKernel());
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 0u);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.decisionCacheHit);
}

TEST(TargetRuntimeDecisionCache, DisabledCacheNeverHits) {
  RuntimeOptions options;
  options.decisionCacheEnabled = false;
  TargetRuntime runtime = makeRuntime(options);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(record.decisionCompiled);
  EXPECT_FALSE(record.decisionCacheHit);
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 0u);
}

TEST(TargetRuntimeDecisionCache, InterpretedModeHasNoPlan) {
  SelectorConfig config;
  config.useCompiledPlans = false;
  TargetRuntime runtime = makeRuntime({}, config);
  EXPECT_EQ(runtime.plan("stream"), nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.decisionCompiled);
  EXPECT_FALSE(record.decisionCacheHit);
  EXPECT_EQ(record.decision.device, record.chosen);
}

TEST(TargetRuntimeDecisionCache, CsvReportsDecisionPathColumns) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  const std::string csv = renderLogCsv(runtime.log());
  EXPECT_NE(csv.find("decision_path,decision_cache"), std::string::npos);
  EXPECT_NE(csv.find(",compiled,miss"), std::string::npos);
  EXPECT_NE(csv.find(",compiled,hit"), std::string::npos);
}

}  // namespace
}  // namespace osel::runtime

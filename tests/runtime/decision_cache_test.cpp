// DecisionCache unit coverage (hit/miss counters, LRU eviction, refresh,
// disabled capacity, clear) plus TargetRuntime integration: repeated
// launches memoize, re-registration and explicit invalidation drop the
// memoized decisions, and the LaunchRecord/CSV telemetry reports the path.
#include "runtime/decision_cache.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "runtime/target_runtime.h"

namespace osel::runtime {
namespace {

using namespace osel::ir;

Decision makeDecision(double cpuSeconds) {
  Decision decision;
  decision.device = Device::Gpu;
  decision.cpu.seconds = cpuSeconds;
  decision.gpu.totalSeconds = cpuSeconds / 2.0;
  return decision;
}

std::array<std::int64_t, 2> key(std::int64_t a, std::int64_t b) {
  return {a, b};
}

TEST(DecisionCache, HitAndMissCounters) {
  DecisionCache cache(4);
  const auto k = key(9600, 3);
  Decision out;
  EXPECT_FALSE(cache.find(0b11, k, out));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().lookups, 1u);
  cache.insert(0b11, k, makeDecision(1.0));
  EXPECT_EQ(cache.stats().insertions, 1u);
  ASSERT_TRUE(cache.find(0b11, k, out));
  EXPECT_DOUBLE_EQ(out.cpu.seconds, 1.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  // Same values under a different bound mask is a different key.
  EXPECT_FALSE(cache.find(0b01, k, out));
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().lookups, 3u);
}

TEST(DecisionCache, LruEvictionAtCapacity) {
  DecisionCache cache(2);
  Decision out;
  cache.insert(0b1, key(1, 0), makeDecision(1.0));
  cache.insert(0b1, key(2, 0), makeDecision(2.0));
  ASSERT_TRUE(cache.find(0b1, key(1, 0), out));  // refresh entry 1
  cache.insert(0b1, key(3, 0), makeDecision(3.0));  // evicts entry 2
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.find(0b1, key(2, 0), out));
  EXPECT_TRUE(cache.find(0b1, key(1, 0), out));
  EXPECT_TRUE(cache.find(0b1, key(3, 0), out));
}

TEST(DecisionCache, InsertRefreshesExistingKey) {
  DecisionCache cache(2);
  Decision out;
  cache.insert(0b1, key(7, 0), makeDecision(1.0));
  cache.insert(0b1, key(7, 0), makeDecision(5.0));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.find(0b1, key(7, 0), out));
  EXPECT_DOUBLE_EQ(out.cpu.seconds, 5.0);
}

TEST(DecisionCache, CapacityZeroDisablesStorage) {
  DecisionCache cache(0);
  Decision out;
  cache.insert(0b1, key(1, 0), makeDecision(1.0));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(0b1, key(1, 0), out));
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(DecisionCache, ClearDropsEntriesKeepsCounters) {
  DecisionCache cache(4);
  Decision out;
  cache.insert(0b1, key(1, 0), makeDecision(1.0));
  ASSERT_TRUE(cache.find(0b1, key(1, 0), out));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(0b1, key(1, 0), out));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
  EXPECT_EQ(cache.stats().lookups, 2u);
}

TEST(DecisionCache, EpochAdvanceDropsEntriesLazily) {
  DecisionCache cache(4);
  Decision out;
  cache.insert(0b1, key(1, 0), makeDecision(1.0), /*epoch=*/0);
  ASSERT_TRUE(cache.find(0b1, key(1, 0), out, /*epoch=*/0));
  // The first access under a newer epoch clears the stale entries.
  EXPECT_FALSE(cache.find(0b1, key(1, 0), out, /*epoch=*/1));
  EXPECT_EQ(cache.size(), 0u);
  // Counters survive the epoch bump.
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // Inserting under the new epoch works normally.
  cache.insert(0b1, key(1, 0), makeDecision(2.0), /*epoch=*/1);
  ASSERT_TRUE(cache.find(0b1, key(1, 0), out, /*epoch=*/1));
  EXPECT_DOUBLE_EQ(out.cpu.seconds, 2.0);
}

// Satellite regression: 8 threads hammer one cache; the atomic Stats must
// never lose or tear a count — after joining, hits + misses == lookups and
// the totals match the per-thread work exactly.
TEST(DecisionCache, ConcurrentStatsAreCoherent) {
  DecisionCache cache(8);
  constexpr int kThreads = 8;
  constexpr int kIterations = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&cache, t] {
      Decision out;
      for (int i = 0; i < kIterations; ++i) {
        // A handful of shared keys (cross-thread hits) plus per-thread keys
        // (misses + insertions + evictions under the small capacity).
        const auto shared = key(i % 4, 0);
        if (!cache.find(0b1, shared, out)) {
          cache.insert(0b1, shared, makeDecision(1.0));
        }
        const auto mine = key(100 + t, i % 16);
        if (!cache.find(0b1, mine, out)) {
          cache.insert(0b1, mine, makeDecision(2.0));
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const DecisionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kThreads) * kIterations * 2);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_LE(cache.size(), 8u);
}

TEST(DecisionCache, HashDistinguishesMasksAndValues) {
  const auto k = key(9600, 3);
  EXPECT_NE(DecisionCache::hashKey(0b11, k), DecisionCache::hashKey(0b01, k));
  EXPECT_NE(DecisionCache::hashKey(0b11, k),
            DecisionCache::hashKey(0b11, key(9601, 3)));
}

// --- TargetRuntime integration ----------------------------------------------

TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

TargetRuntime makeRuntime(RuntimeOptions options = {},
                          SelectorConfig config = {}) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{streamKernel()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  config.cpuThreads = 160;
  options.selector = config;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  TargetRuntime runtime(std::move(db), options);
  runtime.registerRegion(streamKernel());
  return runtime;
}

TEST(TargetRuntimeDecisionCache, RepeatedLaunchHitsCache) {
  TargetRuntime runtime = makeRuntime();
  ASSERT_NE(runtime.plan("stream"), nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord first =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(first.decisionCompiled);
  EXPECT_FALSE(first.decisionCacheHit);
  const LaunchRecord second =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(second.decisionCompiled);
  EXPECT_TRUE(second.decisionCacheHit);
  // The memoized decision is the same decision.
  EXPECT_EQ(second.decision.device, first.decision.device);
  EXPECT_EQ(second.decision.cpu.seconds, first.decision.cpu.seconds);
  EXPECT_EQ(second.decision.gpu.totalSeconds, first.decision.gpu.totalSeconds);
  const DecisionCache::Stats stats = runtime.decisionCacheStats("stream");
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Different bindings are a different key.
  const symbolic::Bindings other{{"n", 128}};
  ArrayStore otherStore = allocateArrays(streamKernel(), other);
  const LaunchRecord third =
      runtime.launch("stream", other, otherStore, Policy::ModelGuided);
  EXPECT_FALSE(third.decisionCacheHit);
}

TEST(TargetRuntimeDecisionCache, InvalidateDropsMemoizedDecisions) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 1u);
  runtime.invalidateDecisionCaches();
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.decisionCacheHit);
  // Counters survive invalidation.
  EXPECT_EQ(runtime.decisionCacheStats("stream").misses, 2u);
}

TEST(TargetRuntimeDecisionCache, ReRegistrationReplacesPlanAndCache) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 1u);
  runtime.registerRegion(streamKernel());
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 0u);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.decisionCacheHit);
}

TEST(TargetRuntimeDecisionCache, DisabledCacheNeverHits) {
  RuntimeOptions options;
  options.decisionCacheEnabled = false;
  TargetRuntime runtime = makeRuntime(options);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_TRUE(record.decisionCompiled);
  EXPECT_FALSE(record.decisionCacheHit);
  EXPECT_EQ(runtime.decisionCacheStats("stream").hits, 0u);
}

TEST(TargetRuntimeDecisionCache, InterpretedModeHasNoPlan) {
  SelectorConfig config;
  config.useCompiledPlans = false;
  TargetRuntime runtime = makeRuntime({}, config);
  EXPECT_EQ(runtime.plan("stream"), nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_FALSE(record.decisionCompiled);
  EXPECT_FALSE(record.decisionCacheHit);
  EXPECT_EQ(record.decision.device, record.chosen);
}

TEST(TargetRuntimeDecisionCache, CsvReportsDecisionPathColumns) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  const std::string csv = renderLogCsv(runtime.log());
  EXPECT_NE(csv.find("decision_path,decision_cache"), std::string::npos);
  EXPECT_NE(csv.find(",compiled,miss"), std::string::npos);
  EXPECT_NE(csv.find(",compiled,hit"), std::string::npos);
}

}  // namespace
}  // namespace osel::runtime

// Equivalence suite for compiled decision plans: the compiled fast path
// must produce Decisions bit-identical to the interpreted symbolic walk —
// same device, same diagnostics, same prediction fields down to the last
// mantissa bit — for every Polybench region over a grid of sizes, under
// randomized bindings (including missing symbols), and on degenerate plans.
// Also pins the zero-heap-allocation guarantee of the compiled decide().
#include "runtime/compiled_plan.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "compiler/compiler.h"
#include "obs/explain.h"
#include "polybench/polybench.h"
#include "runtime/selector.h"
#include "support/rng.h"

// --- Global allocation counter ----------------------------------------------
// Replaces the global non-aligned new/delete for this test binary so the
// zero-allocation test below can assert that the compiled decide() never
// touches the heap. Counting only; allocation behaviour is unchanged.

namespace {
std::atomic<std::uint64_t> gAllocations{0};

// noinline keeps GCC from tracking malloc/free provenance through the
// replaced operators and raising a spurious -Wmismatched-new-delete.
[[gnu::noinline]] void* countedAlloc(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] void countedFree(void* p) noexcept { std::free(p); }
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { countedFree(p); }
void operator delete[](void* p) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { countedFree(p); }

namespace osel::runtime {
namespace {

void expectSameBits(double compiled, double interpreted, const char* field) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(compiled),
            std::bit_cast<std::uint64_t>(interpreted))
      << field << ": compiled=" << compiled << " interpreted=" << interpreted;
}

/// Bit-identical equality of everything except overheadSeconds (wall time).
void expectIdenticalDecisions(const Decision& compiled,
                              const Decision& interpreted) {
  EXPECT_EQ(compiled.device, interpreted.device);
  EXPECT_EQ(compiled.valid, interpreted.valid);
  EXPECT_EQ(compiled.diagnostic, interpreted.diagnostic);

  expectSameBits(compiled.cpu.forkJoinCycles, interpreted.cpu.forkJoinCycles,
                 "cpu.forkJoinCycles");
  expectSameBits(compiled.cpu.scheduleCycles, interpreted.cpu.scheduleCycles,
                 "cpu.scheduleCycles");
  expectSameBits(compiled.cpu.workCycles, interpreted.cpu.workCycles,
                 "cpu.workCycles");
  expectSameBits(compiled.cpu.loopOverheadCycles,
                 interpreted.cpu.loopOverheadCycles, "cpu.loopOverheadCycles");
  expectSameBits(compiled.cpu.tlbCycles, interpreted.cpu.tlbCycles,
                 "cpu.tlbCycles");
  expectSameBits(compiled.cpu.falseSharingCycles,
                 interpreted.cpu.falseSharingCycles, "cpu.falseSharingCycles");
  expectSameBits(compiled.cpu.totalCycles, interpreted.cpu.totalCycles,
                 "cpu.totalCycles");
  expectSameBits(compiled.cpu.seconds, interpreted.cpu.seconds, "cpu.seconds");

  EXPECT_EQ(compiled.gpu.threadsPerBlock, interpreted.gpu.threadsPerBlock);
  EXPECT_EQ(compiled.gpu.blocks, interpreted.gpu.blocks);
  expectSameBits(compiled.gpu.ompRep, interpreted.gpu.ompRep, "gpu.ompRep");
  expectSameBits(compiled.gpu.rep, interpreted.gpu.rep, "gpu.rep");
  EXPECT_EQ(compiled.gpu.activeSms, interpreted.gpu.activeSms);
  expectSameBits(compiled.gpu.activeWarpsPerSm, interpreted.gpu.activeWarpsPerSm,
                 "gpu.activeWarpsPerSm");
  expectSameBits(compiled.gpu.memCycles, interpreted.gpu.memCycles,
                 "gpu.memCycles");
  expectSameBits(compiled.gpu.compCycles, interpreted.gpu.compCycles,
                 "gpu.compCycles");
  expectSameBits(compiled.gpu.mwpWithoutBw, interpreted.gpu.mwpWithoutBw,
                 "gpu.mwpWithoutBw");
  expectSameBits(compiled.gpu.mwpPeakBw, interpreted.gpu.mwpPeakBw,
                 "gpu.mwpPeakBw");
  expectSameBits(compiled.gpu.mwp, interpreted.gpu.mwp, "gpu.mwp");
  expectSameBits(compiled.gpu.cwp, interpreted.gpu.cwp, "gpu.cwp");
  EXPECT_EQ(compiled.gpu.execCase, interpreted.gpu.execCase);
  expectSameBits(compiled.gpu.kernelCycles, interpreted.gpu.kernelCycles,
                 "gpu.kernelCycles");
  expectSameBits(compiled.gpu.kernelSeconds, interpreted.gpu.kernelSeconds,
                 "gpu.kernelSeconds");
  expectSameBits(compiled.gpu.transferSeconds, interpreted.gpu.transferSeconds,
                 "gpu.transferSeconds");
  expectSameBits(compiled.gpu.launchSeconds, interpreted.gpu.launchSeconds,
                 "gpu.launchSeconds");
  expectSameBits(compiled.gpu.totalSeconds, interpreted.gpu.totalSeconds,
                 "gpu.totalSeconds");
}

/// Bit-identical equality of two DecisionExplain records' model terms and
/// outcome fields. `path`, `seq`, `atNs`, and `overheadSeconds` are outside
/// the contract: the first is *supposed* to differ between the two decide
/// paths and the rest are wall-clock/ring bookkeeping.
void expectIdenticalExplains(const obs::DecisionExplain& compiled,
                             const obs::DecisionExplain& interpreted) {
  EXPECT_EQ(compiled.regionView(), interpreted.regionView());
  EXPECT_EQ(compiled.valid, interpreted.valid);
  EXPECT_EQ(compiled.chosenGpu, interpreted.chosenGpu);
  expectSameBits(compiled.predictedSpeedup, interpreted.predictedSpeedup,
                 "explain.predictedSpeedup");

  expectSameBits(compiled.cpu.machineCyclesPerIter,
                 interpreted.cpu.machineCyclesPerIter,
                 "explain.cpu.machineCyclesPerIter");
  expectSameBits(compiled.cpu.tripCount, interpreted.cpu.tripCount,
                 "explain.cpu.tripCount");
  expectSameBits(compiled.cpu.forkJoinCycles, interpreted.cpu.forkJoinCycles,
                 "explain.cpu.forkJoinCycles");
  expectSameBits(compiled.cpu.scheduleCycles, interpreted.cpu.scheduleCycles,
                 "explain.cpu.scheduleCycles");
  expectSameBits(compiled.cpu.workCycles, interpreted.cpu.workCycles,
                 "explain.cpu.workCycles");
  expectSameBits(compiled.cpu.loopOverheadCycles,
                 interpreted.cpu.loopOverheadCycles,
                 "explain.cpu.loopOverheadCycles");
  expectSameBits(compiled.cpu.tlbCycles, interpreted.cpu.tlbCycles,
                 "explain.cpu.tlbCycles");
  expectSameBits(compiled.cpu.falseSharingCycles,
                 interpreted.cpu.falseSharingCycles,
                 "explain.cpu.falseSharingCycles");
  expectSameBits(compiled.cpu.totalCycles, interpreted.cpu.totalCycles,
                 "explain.cpu.totalCycles");
  expectSameBits(compiled.cpu.seconds, interpreted.cpu.seconds,
                 "explain.cpu.seconds");

  expectSameBits(compiled.gpu.ompRep, interpreted.gpu.ompRep,
                 "explain.gpu.ompRep");
  expectSameBits(compiled.gpu.mwp, interpreted.gpu.mwp, "explain.gpu.mwp");
  expectSameBits(compiled.gpu.cwp, interpreted.gpu.cwp, "explain.gpu.cwp");
  expectSameBits(compiled.gpu.memCycles, interpreted.gpu.memCycles,
                 "explain.gpu.memCycles");
  expectSameBits(compiled.gpu.compCycles, interpreted.gpu.compCycles,
                 "explain.gpu.compCycles");
  expectSameBits(compiled.gpu.activeWarpsPerSm,
                 interpreted.gpu.activeWarpsPerSm,
                 "explain.gpu.activeWarpsPerSm");
  expectSameBits(compiled.gpu.coalMemInsts, interpreted.gpu.coalMemInsts,
                 "explain.gpu.coalMemInsts");
  expectSameBits(compiled.gpu.uncoalMemInsts, interpreted.gpu.uncoalMemInsts,
                 "explain.gpu.uncoalMemInsts");
  expectSameBits(compiled.gpu.coalescedFraction,
                 interpreted.gpu.coalescedFraction,
                 "explain.gpu.coalescedFraction");
  expectSameBits(compiled.gpu.bytesToDevice, interpreted.gpu.bytesToDevice,
                 "explain.gpu.bytesToDevice");
  expectSameBits(compiled.gpu.bytesFromDevice, interpreted.gpu.bytesFromDevice,
                 "explain.gpu.bytesFromDevice");
  expectSameBits(compiled.gpu.kernelSeconds, interpreted.gpu.kernelSeconds,
                 "explain.gpu.kernelSeconds");
  expectSameBits(compiled.gpu.transferSeconds, interpreted.gpu.transferSeconds,
                 "explain.gpu.transferSeconds");
  expectSameBits(compiled.gpu.launchSeconds, interpreted.gpu.launchSeconds,
                 "explain.gpu.launchSeconds");
  expectSameBits(compiled.gpu.totalSeconds, interpreted.gpu.totalSeconds,
                 "explain.gpu.totalSeconds");
  EXPECT_EQ(compiled.gpu.execCase, interpreted.gpu.execCase);
}

const std::array<mca::MachineModel, 1>& hostModels() {
  static const std::array<mca::MachineModel, 1> models{
      mca::MachineModel::power9()};
  return models;
}

TEST(CompiledPlanEquivalence, EveryPolybenchRegionOverSizeGrid) {
  const OffloadSelector selector{SelectorConfig{}};
  const std::array<std::int64_t, 6> sizes{1, 2, 16, 100, 1100, 9600};
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      const pad::RegionAttributes attr =
          compiler::analyzeRegion(kernel, hostModels());
      const CompiledRegionPlan plan = selector.compile(attr);
      EXPECT_TRUE(plan.fastPathUsable()) << kernel.name;
      for (const std::int64_t n : sizes) {
        SCOPED_TRACE(kernel.name + " n=" + std::to_string(n));
        // Built directly (Benchmark::bindings refuses n < 3): tiny sizes
        // exercise degenerate predictions, which must also match exactly.
        const symbolic::Bindings bindings{{"n", n}};
        expectIdenticalDecisions(selector.decide(RegionHandle(plan), bindings),
                                 selector.decide(RegionHandle(attr), bindings));
      }
    }
  }
}

TEST(CompiledPlanEquivalence, ExplainRecordsMatchOverRegionAndSizeGrid) {
  // The forensics contract (ISSUE 5): both decide paths must fill the
  // DecisionExplain sink with bit-identical model terms for every Polybench
  // region over the size grid. Path/seq/atNs/overheadSeconds differ by
  // design; everything else must not.
  const OffloadSelector selector{SelectorConfig{}};
  const std::array<std::int64_t, 6> sizes{1, 2, 16, 100, 1100, 9600};
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      const pad::RegionAttributes attr =
          compiler::analyzeRegion(kernel, hostModels());
      const CompiledRegionPlan plan = selector.compile(attr);
      for (const std::int64_t n : sizes) {
        SCOPED_TRACE(kernel.name + " n=" + std::to_string(n));
        const symbolic::Bindings bindings{{"n", n}};
        obs::DecisionExplain compiled;
        obs::DecisionExplain interpreted;
        (void)selector.decide(RegionHandle(plan), bindings, &compiled);
        (void)selector.decide(RegionHandle(attr), bindings, &interpreted);
        // Tiny sizes make some models throw: then BOTH paths must report
        // Degenerate. Otherwise each reports its own path truthfully.
        EXPECT_EQ(compiled.path == obs::DecisionPath::Degenerate,
                  interpreted.path == obs::DecisionPath::Degenerate);
        if (compiled.path != obs::DecisionPath::Degenerate) {
          EXPECT_EQ(compiled.path, obs::DecisionPath::Compiled);
          EXPECT_EQ(interpreted.path, obs::DecisionPath::Interpreted);
        }
        expectIdenticalExplains(compiled, interpreted);
      }
    }
  }
}

TEST(CompiledPlanEquivalence, ExplainRecordsMatchOnDegenerateBindings) {
  // Missing required symbol: the compiled path falls back to the
  // interpreted walk (and says so in `path`); the term fields must still
  // agree bit for bit with the pure interpreted decide.
  const OffloadSelector selector{SelectorConfig{}};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const pad::RegionAttributes attr =
      compiler::analyzeRegion(gemm.kernels()[0], hostModels());
  const CompiledRegionPlan plan = selector.compile(attr);
  obs::DecisionExplain compiled;
  obs::DecisionExplain interpreted;
  const symbolic::Bindings empty;
  (void)selector.decide(RegionHandle(plan), empty, &compiled);
  (void)selector.decide(RegionHandle(attr), empty, &interpreted);
  EXPECT_EQ(compiled.path, interpreted.path);
  expectIdenticalExplains(compiled, interpreted);
}

TEST(CompiledPlanEquivalence, RandomizedBindingsFuzz) {
  const OffloadSelector selector{SelectorConfig{}};
  support::SplitMix64 rng(0xC0DEC0DEULL);
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      const pad::RegionAttributes attr =
          compiler::analyzeRegion(kernel, hostModels());
      const CompiledRegionPlan plan = selector.compile(attr);
      for (int round = 0; round < 8; ++round) {
        const auto n = static_cast<std::int64_t>(1 + rng.nextBelow(20000));
        symbolic::Bindings bindings{{"n", n}};
        // Every fourth round, drop a binding: both paths must degrade to
        // the same safe default with the same diagnostic text.
        if (round % 4 == 3 && !bindings.empty()) {
          bindings.erase(bindings.begin());
        }
        SCOPED_TRACE(kernel.name + " round=" + std::to_string(round) +
                     " n=" + std::to_string(n));
        expectIdenticalDecisions(selector.decide(RegionHandle(plan), bindings),
                                 selector.decide(RegionHandle(attr), bindings));
      }
    }
  }
}

TEST(CompiledPlanEquivalence, UnusablePlanFallsBackToInterpretedWalk) {
  // An MCA host entry the PAD does not carry makes the fast path unusable;
  // decide(plan) must route through the interpreted walk and reproduce its
  // degenerate decision byte for byte.
  SelectorConfig config;
  config.mcaModelName = "POWER11";
  const OffloadSelector selector{config};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const pad::RegionAttributes attr =
      compiler::analyzeRegion(gemm.kernels()[0], hostModels());
  const CompiledRegionPlan plan = selector.compile(attr);
  EXPECT_FALSE(plan.fastPathUsable());
  const symbolic::Bindings bindings = gemm.bindings(128);
  const Decision compiled = selector.decide(RegionHandle(plan), bindings);
  const Decision interpreted = selector.decide(RegionHandle(attr), bindings);
  EXPECT_FALSE(compiled.valid);
  expectIdenticalDecisions(compiled, interpreted);
}

TEST(CompiledPlan, LoweringPreResolvesConstantStridesAndSlots) {
  const OffloadSelector selector{SelectorConfig{}};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const pad::RegionAttributes attr =
      compiler::analyzeRegion(gemm.kernels()[0], hostModels());
  const CompiledRegionPlan plan = selector.compile(attr);
  ASSERT_TRUE(plan.fastPathUsable());
  // GEMM's strides are compile-time constants: all pre-classified.
  EXPECT_EQ(plan.preResolvedStrideCount(), attr.strides.size());
  // One runtime symbol ("n") across trip count and transfer expressions.
  EXPECT_EQ(plan.slotCount(), 1u);
  EXPECT_LE(plan.slotCount(), CompiledRegionPlan::kMaxSlots);
}

TEST(CompiledPlan, BindSlotsReportsMissingRequiredSymbols) {
  const OffloadSelector selector{SelectorConfig{}};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const CompiledRegionPlan plan = selector.compile(
      compiler::analyzeRegion(gemm.kernels()[0], hostModels()));
  std::array<std::int64_t, CompiledRegionPlan::kMaxSlots> storage{};
  const std::span<std::int64_t> values(storage.data(), plan.slotCount());
  std::uint64_t boundMask = 0;
  EXPECT_FALSE(plan.bindSlots(symbolic::Bindings{}, values, boundMask));
  EXPECT_EQ(boundMask, 0u);
  EXPECT_TRUE(plan.bindSlots(gemm.bindings(256), values, boundMask));
  EXPECT_NE(boundMask, 0u);
  EXPECT_EQ(values[0], 256);
}

TEST(CompiledPlanPerf, CompiledDecideIsAllocationFree) {
  const OffloadSelector selector{SelectorConfig{}};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const CompiledRegionPlan plan = selector.compile(
      compiler::analyzeRegion(gemm.kernels()[0], hostModels()));
  ASSERT_TRUE(plan.fastPathUsable());
  const symbolic::Bindings bindings = gemm.bindings(9600);
  double sink = 0.0;
  sink += selector.decide(RegionHandle(plan), bindings).cpu.seconds;  // warm-up
  const std::uint64_t before = gAllocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 64; ++i) {
    sink += selector.decide(RegionHandle(plan), bindings).cpu.seconds;
  }
  const std::uint64_t after = gAllocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(sink, 0.0);
}

}  // namespace
}  // namespace osel::runtime

#include "runtime/selector.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <limits>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/check.h"
#include "support/faultinject.h"

namespace osel::runtime {
namespace {

using namespace osel::ir;

TargetRegion gemmKernel() {
  return RegionBuilder("gemm")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F32, {sym("n"), sym("n")}, Transfer::ToFrom)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}) *
                                                  read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

/// The paper's §IV.C example: store stride [max], resolved only at runtime.
TargetRegion paperExample() {
  return RegionBuilder("paper_example")
      .param("max")
      .array("A", ScalarType::F32, {sym("max") * sym("max")}, Transfer::ToFrom)
      .parallelFor("a", sym("max"))
      .statement(Stmt::store("A", {sym("max") * sym("a")},
                             read("A", {sym("max") * sym("a")}) + num(1.0)))
      .build();
}

pad::RegionAttributes attributesFor(const TargetRegion& region) {
  const std::array<mca::MachineModel, 2> models{mca::MachineModel::power9(),
                                                mca::MachineModel::power8()};
  return compiler::analyzeRegion(region, models);
}

TEST(OffloadSelector, CpuWorkloadPullsMcaCyclesForConfiguredHost) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  SelectorConfig config;
  config.mcaModelName = "POWER9";
  const OffloadSelector selector(config);
  const cpumodel::CpuWorkload workload =
      selector.cpuWorkload(attr, {{"n", 1100}});
  EXPECT_DOUBLE_EQ(workload.machineCyclesPerIter,
                   attr.machineCyclesPerIter.at("POWER9"));
  EXPECT_EQ(workload.parallelTripCount, 1100 * 1100);
}

TEST(OffloadSelector, MissingMcaModelThrows) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  SelectorConfig config;
  config.mcaModelName = "XEON";  // never analyzed
  const OffloadSelector selector(config);
  EXPECT_THROW((void)selector.cpuWorkload(attr, {{"n", 100}}),
               support::PreconditionError);
}

TEST(OffloadSelector, GpuWorkloadSplitsCoalescedUncoalesced) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const OffloadSelector selector(SelectorConfig{});
  const gpumodel::GpuWorkload workload = selector.gpuWorkload(attr, {{"n", 1100}});
  // A[i][k] (uniform, 128x) + B[k][j] (coalesced, 128x) + C store (1x) are
  // all "coalesced" in the binary split.
  EXPECT_DOUBLE_EQ(workload.coalMemInstsPerThread, 257.0);
  EXPECT_DOUBLE_EQ(workload.uncoalMemInstsPerThread, 0.0);
  EXPECT_EQ(workload.bytesToDevice, 3LL * 1100 * 1100 * 4);
}

TEST(OffloadSelector, RuntimeValueFlipsCoalescingSplit) {
  // The hybrid payoff: the same PAD entry classifies differently under
  // different runtime bindings.
  const pad::RegionAttributes attr = attributesFor(paperExample());
  const OffloadSelector selector(SelectorConfig{});
  const gpumodel::GpuWorkload wide = selector.gpuWorkload(attr, {{"max", 4096}});
  EXPECT_GT(wide.uncoalMemInstsPerThread, 0.0);
  EXPECT_DOUBLE_EQ(wide.coalMemInstsPerThread, 0.0);
  const gpumodel::GpuWorkload degenerate =
      selector.gpuWorkload(attr, {{"max", 1}});
  EXPECT_DOUBLE_EQ(degenerate.uncoalMemInstsPerThread, 0.0);
  EXPECT_GT(degenerate.coalMemInstsPerThread, 0.0);
}

TEST(OffloadSelector, FalseSharingFlagFromStoreStride) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const OffloadSelector selector(SelectorConfig{});
  // C store stride 1 x 4B << 128B line -> adjacent iterations share lines.
  EXPECT_TRUE(selector.cpuWorkload(attr, {{"n", 100}}).falseSharingRisk);
  // The paper example at max=4096: stride 16 KiB -> no false sharing.
  const pad::RegionAttributes wide = attributesFor(paperExample());
  EXPECT_FALSE(selector.cpuWorkload(wide, {{"max", 4096}}).falseSharingRisk);
}

TEST(OffloadSelector, LargeGemmPrefersGpuSmallPrefersCpu) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const OffloadSelector bigHost(SelectorConfig{});
  const Decision large = bigHost.decide(RegionHandle(attr), {{"n", 4096}});
  EXPECT_EQ(large.device, Device::Gpu);
  // At 160 threads even tiny kernels lose to the fork cost, so the
  // CPU-stays case needs a modest host configuration (the paper's 4-thread
  // scenario, Figs. 6-7).
  SelectorConfig smallHost;
  smallHost.cpuThreads = 4;
  const Decision tiny = OffloadSelector(smallHost).decide(RegionHandle(attr), {{"n", 16}});
  EXPECT_EQ(tiny.device, Device::Cpu);
}

TEST(OffloadSelector, DecisionOverheadIsMicroseconds) {
  // §IV.D: evaluating two closed-form models must be negligible.
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const OffloadSelector selector(SelectorConfig{});
  const Decision decision = selector.decide(RegionHandle(attr), {{"n", 1100}});
  EXPECT_LT(decision.overheadSeconds, 1e-3);
}

TEST(OffloadSelector, PredictedSpeedupConsistent) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const OffloadSelector selector(SelectorConfig{});
  const Decision decision = selector.decide(RegionHandle(attr), {{"n", 1100}});
  EXPECT_NEAR(decision.predictedSpeedup(),
              decision.cpu.seconds / decision.gpu.totalSeconds, 1e-12);
  if (decision.predictedSpeedup() > 1.0) {
    EXPECT_EQ(decision.device, Device::Gpu);
  } else {
    EXPECT_EQ(decision.device, Device::Cpu);
  }
}

TEST(OffloadSelector, ValidDecisionsCarryNoDiagnostic) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const Decision decision =
      OffloadSelector(SelectorConfig{}).decide(RegionHandle(attr), {{"n", 1100}});
  EXPECT_TRUE(decision.valid);
  EXPECT_TRUE(decision.diagnostic.empty());
}

TEST(OffloadSelector, ModelFaultDegradesToSafeDefault) {
  const pad::RegionAttributes attr = attributesFor(gemmKernel());
  const support::ScopedFault fault(support::faultpoints::kSelectorDecide,
                                   {.kind = support::FaultKind::DeviceLost});
  SelectorConfig config;
  config.safeDefaultDevice = Device::Gpu;  // non-default, to prove it is used
  const Decision decision = OffloadSelector(config).decide(RegionHandle(attr), {{"n", 1100}});
  EXPECT_FALSE(decision.valid);
  EXPECT_EQ(decision.device, Device::Gpu);
  EXPECT_FALSE(decision.diagnostic.empty());
  EXPECT_TRUE(std::isnan(decision.predictedSpeedup()));
}

TEST(DecisionSpeedup, NonFinitePredictionsYieldNaN) {
  Decision decision;
  decision.cpu.seconds = 1.0;
  decision.gpu.totalSeconds = 0.0;
  EXPECT_TRUE(std::isnan(decision.predictedSpeedup()));
  decision.gpu.totalSeconds = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(decision.predictedSpeedup()));
  decision.gpu.totalSeconds = 2.0;
  decision.cpu.seconds = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isnan(decision.predictedSpeedup()));
  decision.cpu.seconds = 4.0;
  EXPECT_DOUBLE_EQ(decision.predictedSpeedup(), 2.0);
}

TEST(OffloadSelector, DeviceNames) {
  EXPECT_EQ(toString(Device::Cpu), "CPU");
  EXPECT_EQ(toString(Device::Gpu), "GPU");
}

}  // namespace
}  // namespace osel::runtime

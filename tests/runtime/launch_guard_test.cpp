// LaunchGuard in isolation, against scripted measure functions: error
// classification, retry/backoff accounting, CPU fallback, and the
// DeviceHealthTracker circuit breaker.
#include "runtime/launch_guard.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/faultinject.h"

namespace osel::runtime {
namespace {

using support::DeviceLostError;
using support::DeviceMemoryError;
using support::TransientLaunchError;

TEST(ClassifyLaunchError, MapsTheTaxonomy) {
  EXPECT_EQ(classifyLaunchError(TransientLaunchError("GPU", "x")),
            ErrorClass::Transient);
  EXPECT_EQ(classifyLaunchError(DeviceMemoryError("GPU", "x")),
            ErrorClass::Fatal);
  EXPECT_EQ(classifyLaunchError(DeviceLostError("GPU", "x")),
            ErrorClass::Fatal);
  EXPECT_EQ(classifyLaunchError(support::PreconditionError("x")),
            ErrorClass::ModelInput);
  EXPECT_EQ(classifyLaunchError(std::runtime_error("x")), ErrorClass::Fatal);
}

TEST(RetryPolicy, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy policy;
  policy.backoffBaseSeconds = 1e-4;
  policy.backoffMultiplier = 2.0;
  policy.backoffCapSeconds = 3e-4;
  EXPECT_DOUBLE_EQ(policy.backoffBeforeAttempt(1), 0.0);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeAttempt(2), 1e-4);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeAttempt(3), 2e-4);
  EXPECT_DOUBLE_EQ(policy.backoffBeforeAttempt(4), 3e-4);  // capped (4e-4)
  EXPECT_DOUBLE_EQ(policy.backoffBeforeAttempt(5), 3e-4);
}

TEST(LaunchGuard, HealthyPathIsOneAttemptNoBackoff) {
  const LaunchGuard guard;
  const GuardedExecution out =
      guard.execute(Device::Gpu, [](Device) { return 1.5; });
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.executed, Device::Gpu);
  EXPECT_DOUBLE_EQ(out.seconds, 1.5);
  EXPECT_EQ(out.attemptCount(), 1);
  EXPECT_EQ(out.fallback, FallbackReason::None);
  EXPECT_DOUBLE_EQ(out.totalBackoffSeconds, 0.0);
  EXPECT_FALSE(out.gpuFatal);
}

TEST(LaunchGuard, TransientFailuresRetryThenSucceed) {
  RetryPolicy policy;
  policy.maxAttempts = 3;
  const LaunchGuard guard(policy);
  int calls = 0;
  const GuardedExecution out = guard.execute(Device::Gpu, [&](Device) {
    if (++calls < 3) throw TransientLaunchError("GPU", "hiccup");
    return 2.0;
  });
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.executed, Device::Gpu);
  EXPECT_EQ(out.attemptCount(), 3);
  EXPECT_EQ(out.fallback, FallbackReason::None);
  EXPECT_EQ(out.attempts[0].errorClass, ErrorClass::Transient);
  EXPECT_EQ(out.attempts[1].errorClass, ErrorClass::Transient);
  EXPECT_TRUE(out.attempts[2].succeeded);
  // Backoff before attempts 2 and 3.
  EXPECT_DOUBLE_EQ(out.totalBackoffSeconds, policy.backoffBeforeAttempt(2) +
                                                policy.backoffBeforeAttempt(3));
  EXPECT_FALSE(out.gpuFatal);
}

TEST(LaunchGuard, TransientExhaustionFallsBackToCpu) {
  RetryPolicy policy;
  policy.maxAttempts = 2;
  const LaunchGuard guard(policy);
  const GuardedExecution out = guard.execute(Device::Gpu, [](Device device) {
    if (device == Device::Gpu) throw TransientLaunchError("GPU", "hiccup");
    return 4.0;
  });
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.executed, Device::Cpu);
  EXPECT_DOUBLE_EQ(out.seconds, 4.0);
  EXPECT_EQ(out.fallback, FallbackReason::TransientExhausted);
  EXPECT_EQ(out.attemptCount(), 3);  // 2 GPU + 1 CPU
  EXPECT_FALSE(out.gpuFatal);       // exhaustion is not a fatal device error
}

TEST(LaunchGuard, FatalErrorSkipsRetriesAndFallsBack) {
  RetryPolicy policy;
  policy.maxAttempts = 5;
  const LaunchGuard guard(policy);
  int gpuCalls = 0;
  const GuardedExecution out = guard.execute(Device::Gpu, [&](Device device) {
    if (device == Device::Gpu) {
      ++gpuCalls;
      throw DeviceMemoryError("GPU", "out of device memory");
    }
    return 3.0;
  });
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(gpuCalls, 1);  // fatal => no retry
  EXPECT_EQ(out.executed, Device::Cpu);
  EXPECT_EQ(out.fallback, FallbackReason::FatalError);
  EXPECT_TRUE(out.gpuFatal);
  EXPECT_NE(out.fallbackDetail.find("out of device memory"), std::string::npos);
}

TEST(LaunchGuard, ModelInputErrorIsNotRetried) {
  const LaunchGuard guard;
  int gpuCalls = 0;
  const GuardedExecution out = guard.execute(Device::Gpu, [&](Device device) {
    if (device == Device::Gpu) {
      ++gpuCalls;
      throw support::PreconditionError("bad PAD entry");
    }
    return 1.0;
  });
  EXPECT_EQ(gpuCalls, 1);
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.executed, Device::Cpu);
  EXPECT_EQ(out.attempts[0].errorClass, ErrorClass::ModelInput);
}

TEST(LaunchGuard, FallbackDisabledReportsFailure) {
  const LaunchGuard guard;
  const GuardedExecution out = guard.execute(
      Device::Gpu, [](Device) -> double { throw DeviceLostError("GPU", "gone"); },
      /*allowFallback=*/false);
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.fallback, FallbackReason::FatalError);
  EXPECT_TRUE(out.gpuFatal);
  EXPECT_EQ(out.attemptCount(), 1);
}

TEST(LaunchGuard, CpuFailureHasNoFurtherFallback) {
  RetryPolicy policy;
  policy.maxAttempts = 2;
  const LaunchGuard guard(policy);
  const GuardedExecution out = guard.execute(Device::Cpu, [](Device) -> double {
    throw TransientLaunchError("CPU", "host hiccup");
  });
  EXPECT_FALSE(out.succeeded);
  EXPECT_EQ(out.attemptCount(), 2);  // retried, then reported
  EXPECT_EQ(out.fallback, FallbackReason::TransientExhausted);
}

TEST(LaunchGuard, CpuFallbackItselfRetriesTransients) {
  const LaunchGuard guard;
  int cpuCalls = 0;
  const GuardedExecution out = guard.execute(Device::Gpu, [&](Device device) {
    if (device == Device::Gpu) throw DeviceLostError("GPU", "gone");
    if (++cpuCalls < 2) throw TransientLaunchError("CPU", "host hiccup");
    return 6.0;
  });
  EXPECT_TRUE(out.succeeded);
  EXPECT_EQ(out.executed, Device::Cpu);
  EXPECT_EQ(out.attemptCount(), 3);  // 1 GPU fatal + 2 CPU
  EXPECT_EQ(out.fallback, FallbackReason::FatalError);
}

TEST(LaunchGuard, RejectsMalformedPolicy) {
  RetryPolicy zeroAttempts;
  zeroAttempts.maxAttempts = 0;
  EXPECT_THROW(LaunchGuard{zeroAttempts}, support::PreconditionError);
  RetryPolicy shrinkingBackoff;
  shrinkingBackoff.backoffMultiplier = 0.5;
  EXPECT_THROW(LaunchGuard{shrinkingBackoff}, support::PreconditionError);
}

TEST(DeviceHealthTracker, OpensAfterThresholdAndReleasesAfterQuarantine) {
  HealthPolicy policy;
  policy.quarantineThreshold = 2;
  policy.quarantineLaunches = 3;
  DeviceHealthTracker health(policy);
  EXPECT_TRUE(health.admitGpu());
  health.recordGpuFatal();
  EXPECT_FALSE(health.quarantined());
  health.recordGpuFatal();  // second consecutive fatal opens the breaker
  EXPECT_TRUE(health.quarantined());
  EXPECT_EQ(health.quarantinesOpened(), 1);
  // Three launches are refused while the breaker drains...
  EXPECT_FALSE(health.admitGpu());
  EXPECT_FALSE(health.admitGpu());
  EXPECT_FALSE(health.admitGpu());
  // ...then the next launch probes the device again.
  EXPECT_FALSE(health.quarantined());
  EXPECT_TRUE(health.admitGpu());
}

TEST(DeviceHealthTracker, SuccessResetsTheFatalStreak) {
  HealthPolicy policy;
  policy.quarantineThreshold = 2;
  DeviceHealthTracker health(policy);
  health.recordGpuFatal();
  health.recordGpuSuccess();
  health.recordGpuFatal();
  EXPECT_FALSE(health.quarantined());  // never two *consecutive* fatals
  EXPECT_EQ(health.consecutiveFatals(), 1);
  EXPECT_EQ(health.totalFatals(), 2);
}

TEST(DeviceHealthTracker, RejectsMalformedPolicy) {
  HealthPolicy zeroThreshold;
  zeroThreshold.quarantineThreshold = 0;
  EXPECT_THROW(DeviceHealthTracker{zeroThreshold}, support::PreconditionError);
  HealthPolicy zeroLaunches;
  zeroLaunches.quarantineLaunches = 0;
  EXPECT_THROW(DeviceHealthTracker{zeroLaunches}, support::PreconditionError);
}

TEST(LaunchGuardStrings, EnumNames) {
  EXPECT_EQ(toString(ErrorClass::None), "none");
  EXPECT_EQ(toString(ErrorClass::Transient), "transient");
  EXPECT_EQ(toString(ErrorClass::Fatal), "fatal");
  EXPECT_EQ(toString(ErrorClass::ModelInput), "model-input");
  EXPECT_EQ(toString(FallbackReason::None), "none");
  EXPECT_EQ(toString(FallbackReason::TransientExhausted),
            "transient-exhausted");
  EXPECT_EQ(toString(FallbackReason::FatalError), "fatal-error");
  EXPECT_EQ(toString(FallbackReason::Quarantined), "quarantined");
  EXPECT_EQ(toString(FallbackReason::InvalidDecision), "invalid-decision");
}

}  // namespace
}  // namespace osel::runtime

#include "runtime/target_runtime.h"

#include <gtest/gtest.h>

#include <array>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "support/check.h"

namespace osel::runtime {
namespace {

using namespace osel::ir;

TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

TargetRuntime makeRuntime() {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{streamKernel()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  RuntimeOptions options;
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  TargetRuntime runtime(std::move(db), options);
  runtime.registerRegion(streamKernel());
  return runtime;
}

TEST(TargetRuntime, RegistrationAndLookup) {
  TargetRuntime runtime = makeRuntime();
  EXPECT_TRUE(runtime.hasRegion("stream"));
  EXPECT_FALSE(runtime.hasRegion("ghost"));
}

TEST(TargetRuntime, LaunchUnregisteredRegionThrows) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  EXPECT_THROW((void)runtime.launch("ghost", bindings, store,
                                    Policy::AlwaysGpu),
               support::PreconditionError);
}

TEST(TargetRuntime, FixedPoliciesRunTheNamedDevice) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 128}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord cpu =
      runtime.launch("stream", bindings, store, Policy::AlwaysCpu);
  EXPECT_EQ(cpu.chosen, Device::Cpu);
  EXPECT_TRUE(cpu.cpuMeasured);
  EXPECT_FALSE(cpu.gpuMeasured);
  EXPECT_GT(cpu.actualSeconds, 0.0);
  const LaunchRecord gpu =
      runtime.launch("stream", bindings, store, Policy::AlwaysGpu);
  EXPECT_EQ(gpu.chosen, Device::Gpu);
  EXPECT_TRUE(gpu.gpuMeasured);
  EXPECT_FALSE(gpu.cpuMeasured);
}

TEST(TargetRuntime, ModelGuidedFollowsSelector) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 256}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::ModelGuided);
  EXPECT_EQ(record.chosen, record.decision.device);
  EXPECT_GT(record.actualSeconds, 0.0);
}

TEST(TargetRuntime, OracleMeasuresBothAndPicksWinner) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 256}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const LaunchRecord record =
      runtime.launch("stream", bindings, store, Policy::Oracle);
  EXPECT_TRUE(record.cpuMeasured);
  EXPECT_TRUE(record.gpuMeasured);
  EXPECT_LE(record.actualSeconds,
            std::min(record.actualCpuSeconds, record.actualGpuSeconds) + 1e-15);
  if (record.actualGpuSeconds < record.actualCpuSeconds) {
    EXPECT_EQ(record.chosen, Device::Gpu);
  } else {
    EXPECT_EQ(record.chosen, Device::Cpu);
  }
}

TEST(TargetRuntime, OracleNeverWorseThanFixedPolicies) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 200}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const double oracle =
      runtime.launch("stream", bindings, store, Policy::Oracle).actualSeconds;
  const double cpu =
      runtime.launch("stream", bindings, store, Policy::AlwaysCpu).actualSeconds;
  const double gpu =
      runtime.launch("stream", bindings, store, Policy::AlwaysGpu).actualSeconds;
  EXPECT_LE(oracle, cpu + 1e-15);
  EXPECT_LE(oracle, gpu + 1e-15);
}

TEST(TargetRuntime, LaunchLogAccumulates) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::AlwaysCpu);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  ASSERT_EQ(runtime.log().size(), 2u);
  EXPECT_EQ(runtime.log()[0].policy, Policy::AlwaysCpu);
  EXPECT_EQ(runtime.log()[1].policy, Policy::ModelGuided);
  runtime.clearLog();
  EXPECT_TRUE(runtime.log().empty());
}

TEST(TargetRuntime, MeasureMatchesDeviceSimulators) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 128}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  const double cpu = runtime.measure("stream", bindings, store, Device::Cpu);
  const double gpu = runtime.measure("stream", bindings, store, Device::Gpu);
  EXPECT_GT(cpu, 0.0);
  EXPECT_GT(gpu, 0.0);
}

TEST(TargetRuntime, LogCsvExport) {
  TargetRuntime runtime = makeRuntime();
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)runtime.launch("stream", bindings, store, Policy::ModelGuided);
  (void)runtime.launch("stream", bindings, store, Policy::Oracle);
  const std::string csv = renderLogCsv(runtime.log());
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("region,policy,chosen"), std::string::npos);
  EXPECT_NE(csv.find("stream,model-guided,"), std::string::npos);
  EXPECT_NE(csv.find("stream,oracle,"), std::string::npos);
  // Oracle rows carry both measured times (no empty cells at the end).
  const std::size_t oracleRow = csv.find("stream,oracle,");
  const std::string tail = csv.substr(oracleRow);
  EXPECT_EQ(tail.find(",,"), std::string::npos);
}

TEST(TargetRuntime, LogCsvEmptyLogIsHeaderOnly) {
  const std::string csv = renderLogCsv({});
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 1);
}

TEST(TargetRuntime, LogCsvQuotesHostileRegionNames) {
  // Region names are caller-controlled; RFC-4180 quoting keeps a name with
  // commas/quotes/newlines from shearing its row.
  LaunchRecord record;
  record.regionName = "evil,\"name\"\nk1";
  record.policy = Policy::AlwaysCpu;
  record.chosen = Device::Cpu;
  const std::string csv = renderLogCsv(std::array{record});
  EXPECT_NE(csv.find("\"evil,\"\"name\"\"\nk1\",always-cpu,CPU,"),
            std::string::npos)
      << csv;
  // The embedded newline lives inside quotes: header + one (wrapped) row.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  // A benign name stays unquoted.
  record.regionName = "stream";
  EXPECT_NE(renderLogCsv(std::array{record}).find("\nstream,always-cpu,"),
            std::string::npos);
}

TEST(TargetRuntime, PolicyNames) {
  EXPECT_EQ(toString(Policy::AlwaysCpu), "always-cpu");
  EXPECT_EQ(toString(Policy::AlwaysGpu), "always-gpu");
  EXPECT_EQ(toString(Policy::ModelGuided), "model-guided");
  EXPECT_EQ(toString(Policy::Oracle), "oracle");
}

}  // namespace
}  // namespace osel::runtime

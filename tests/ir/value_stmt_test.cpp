#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/stmt.h"
#include "ir/value.h"
#include "support/check.h"

namespace osel::ir {
namespace {

using support::PreconditionError;

TEST(Value, ConstantAccessors) {
  const Value v = num(3.5);
  EXPECT_EQ(v.kind(), Value::Kind::Constant);
  EXPECT_DOUBLE_EQ(v.constantLiteral(), 3.5);
  EXPECT_THROW((void)v.localName(), PreconditionError);
}

TEST(Value, LocalAccessors) {
  const Value v = local("acc");
  EXPECT_EQ(v.kind(), Value::Kind::Local);
  EXPECT_EQ(v.localName(), "acc");
  EXPECT_THROW((void)v.constantLiteral(), PreconditionError);
}

TEST(Value, ArrayReadAccessors) {
  const Value v = read("A", {sym("i"), sym("j")});
  EXPECT_EQ(v.kind(), Value::Kind::ArrayRead);
  EXPECT_EQ(v.arrayName(), "A");
  EXPECT_EQ(v.indices().size(), 2u);
  EXPECT_EQ(v.indices()[0], sym("i"));
}

TEST(Value, ArrayReadRejectsEmptyIndices) {
  EXPECT_THROW((void)Value::arrayRead("A", {}), PreconditionError);
}

TEST(Value, OperatorSugarBuildsBinaryTree) {
  const Value v = num(1.0) + num(2.0) * num(3.0);
  EXPECT_EQ(v.kind(), Value::Kind::Binary);
  EXPECT_EQ(v.binOp(), BinOp::Add);
  EXPECT_EQ(v.rhs().binOp(), BinOp::Mul);
}

TEST(Value, UnaryAccessors) {
  const Value v = Value::unary(UnOp::Sqrt, num(4.0));
  EXPECT_EQ(v.kind(), Value::Kind::Unary);
  EXPECT_EQ(v.unOp(), UnOp::Sqrt);
  EXPECT_EQ(v.operand().kind(), Value::Kind::Constant);
}

TEST(Value, IndexCastAccessors) {
  const Value v = asValue(sym("n") - 1);
  EXPECT_EQ(v.kind(), Value::Kind::IndexCast);
  EXPECT_EQ(v.indexExpr(), sym("n") - 1);
}

TEST(Value, ToStringReadable) {
  const Value v = read("A", {sym("i")}) * local("x");
  EXPECT_EQ(v.toString(), "(A[[i]] * x)");
}

TEST(Condition, ToString) {
  const Condition c{local("s"), CmpOp::LE, num(0.1)};
  EXPECT_EQ(c.toString(), "s <= 0.1");
}

TEST(Stmt, AssignAccessors) {
  const Stmt s = Stmt::assign("acc", num(0.0));
  EXPECT_EQ(s.kind(), Stmt::Kind::Assign);
  EXPECT_EQ(s.targetName(), "acc");
  EXPECT_EQ(s.value().kind(), Value::Kind::Constant);
  EXPECT_THROW((void)s.loopVar(), PreconditionError);
}

TEST(Stmt, StoreAccessors) {
  const Stmt s = Stmt::store("C", {sym("i"), sym("j")}, num(1.0));
  EXPECT_EQ(s.kind(), Stmt::Kind::Store);
  EXPECT_EQ(s.targetName(), "C");
  EXPECT_EQ(s.storeIndices().size(), 2u);
}

TEST(Stmt, SeqLoopAccessors) {
  const Stmt s = Stmt::seqLoop("k", cst(0), sym("n"), {Stmt::assign("a", num(1.0))});
  EXPECT_EQ(s.kind(), Stmt::Kind::SeqLoop);
  EXPECT_EQ(s.loopVar(), "k");
  EXPECT_EQ(s.lowerBound(), cst(0));
  EXPECT_EQ(s.upperBound(), sym("n"));
  EXPECT_EQ(s.loopBody().size(), 1u);
  EXPECT_THROW((void)s.targetName(), PreconditionError);
}

TEST(Stmt, IfAccessors) {
  const Stmt s = Stmt::ifStmt(Condition{local("x"), CmpOp::GT, num(0.0)},
                              {Stmt::assign("y", num(1.0))},
                              {Stmt::assign("y", num(-1.0))});
  EXPECT_EQ(s.kind(), Stmt::Kind::If);
  EXPECT_EQ(s.thenBody().size(), 1u);
  EXPECT_EQ(s.elseBody().size(), 1u);
  EXPECT_EQ(s.condition().op, CmpOp::GT);
}

TEST(Stmt, ToStringNestedStructure) {
  const Stmt s = Stmt::seqLoop(
      "k", cst(0), sym("n"),
      {Stmt::ifStmt(Condition{local("x"), CmpOp::LT, num(1.0)},
                    {Stmt::assign("x", num(1.0))})});
  // x must be "assigned" for toString only — structure test, not verify.
  const std::string text = s.toString();
  EXPECT_NE(text.find("for (k = 0; k < [n]; ++k) {"), std::string::npos);
  EXPECT_NE(text.find("if (x < 1) {"), std::string::npos);
}

TEST(Stmt, RejectsEmptyNames) {
  EXPECT_THROW((void)Stmt::assign("", num(0.0)), PreconditionError);
  EXPECT_THROW((void)Stmt::store("", {cst(0)}, num(0.0)), PreconditionError);
  EXPECT_THROW((void)Stmt::seqLoop("", cst(0), cst(1), {}), PreconditionError);
}

}  // namespace
}  // namespace osel::ir

#include "ir/interpreter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ir/builder.h"
#include "support/check.h"

namespace osel::ir {
namespace {

using support::PreconditionError;

TargetRegion vectorAdd() {
  return RegionBuilder("vadd")
      .param("n")
      .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
      .array("y", ScalarType::F64, {sym("n")}, Transfer::To)
      .array("z", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("z", {sym("i")},
                             read("x", {sym("i")}) + read("y", {sym("i")})))
      .build();
}

TEST(Interpreter, VectorAddMatchesReference) {
  const TargetRegion region = vectorAdd();
  const symbolic::Bindings b{{"n", 64}};
  ArrayStore store = allocateArrays(region, b);
  for (int i = 0; i < 64; ++i) {
    store["x"][static_cast<std::size_t>(i)] = i;
    store["y"][static_cast<std::size_t>(i)] = 100 - i;
  }
  CompiledRegion compiled(region, b);
  compiled.runAll(store);
  for (int i = 0; i < 64; ++i)
    EXPECT_DOUBLE_EQ(store["z"][static_cast<std::size_t>(i)], 100.0);
}

TEST(Interpreter, MatmulMatchesNaiveReference) {
  const int n = 12;
  const TargetRegion region =
      RegionBuilder("matmul")
          .param("n")
          .array("A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
          .array("B", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
          .array("C", ScalarType::F64, {sym("n"), sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .parallelFor("j", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              {Stmt::assign("acc",
                            local("acc") + read("A", {sym("i"), sym("k")}) *
                                               read("B", {sym("k"), sym("j")}))}))
          .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
          .build();
  const symbolic::Bindings b{{"n", n}};
  ArrayStore store = allocateArrays(region, b);
  auto at = [n](int r, int c) { return static_cast<std::size_t>(r * n + c); };
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      store["A"][at(i, j)] = 0.25 * i + j;
      store["B"][at(i, j)] = i - 0.5 * j;
    }
  }
  CompiledRegion compiled(region, b);
  compiled.runAll(store);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      double expect = 0.0;
      for (int k = 0; k < n; ++k)
        expect += store["A"][at(i, k)] * store["B"][at(k, j)];
      EXPECT_NEAR(store["C"][at(i, j)], expect, 1e-9);
    }
  }
}

TEST(Interpreter, ConditionalSelectsBranchFromData) {
  // y[i] = (x[i] <= 0.5) ? 1 : -1, mirroring CORR's eps-guard.
  const TargetRegion region =
      RegionBuilder("guard")
          .param("n")
          .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("x", {sym("i")}), CmpOp::LE, num(0.5)},
              {Stmt::store("y", {sym("i")}, num(1.0))},
              {Stmt::store("y", {sym("i")}, num(-1.0))}))
          .build();
  const symbolic::Bindings b{{"n", 10}};
  ArrayStore store = allocateArrays(region, b);
  for (int i = 0; i < 10; ++i) store["x"][static_cast<std::size_t>(i)] = i * 0.1;
  CompiledRegion compiled(region, b);
  compiled.runAll(store);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(store["y"][static_cast<std::size_t>(i)],
                     (i * 0.1 <= 0.5) ? 1.0 : -1.0);
  }
}

TEST(Interpreter, UnaryMathOps) {
  const TargetRegion region =
      RegionBuilder("unary")
          .param("n")
          .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store(
              "y", {sym("i")},
              Value::unary(UnOp::Sqrt, Value::unary(UnOp::Abs,
                                                    read("x", {sym("i")})))))
          .build();
  const symbolic::Bindings b{{"n", 4}};
  ArrayStore store = allocateArrays(region, b);
  store["x"] = {-4.0, 9.0, -16.0, 25.0};
  CompiledRegion(region, b).runAll(store);
  EXPECT_DOUBLE_EQ(store["y"][0], 2.0);
  EXPECT_DOUBLE_EQ(store["y"][1], 3.0);
  EXPECT_DOUBLE_EQ(store["y"][2], 4.0);
  EXPECT_DOUBLE_EQ(store["y"][3], 5.0);
}

TEST(Interpreter, IndexCastProvidesLoopVarValues) {
  const TargetRegion region =
      RegionBuilder("iota")
          .param("n")
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("y", {sym("i")}, asValue(sym("i") * 3 + 1)))
          .build();
  const symbolic::Bindings b{{"n", 5}};
  ArrayStore store = allocateArrays(region, b);
  CompiledRegion(region, b).runAll(store);
  for (int i = 0; i < 5; ++i)
    EXPECT_DOUBLE_EQ(store["y"][static_cast<std::size_t>(i)], 3.0 * i + 1.0);
}

/// Counts observer callbacks.
class CountingObserver final : public ExecutionObserver {
 public:
  int loads = 0;
  int stores = 0;
  int arithmetic = 0;
  int special = 0;
  int branches = 0;
  int branchesTaken = 0;
  int loopIterations = 0;

  void onLoad(std::size_t, std::int64_t, std::size_t) override { ++loads; }
  void onStore(std::size_t, std::int64_t, std::size_t) override { ++stores; }
  void onArithmetic(bool isSpecial) override {
    ++arithmetic;
    if (isSpecial) ++special;
  }
  void onBranch(bool taken) override {
    ++branches;
    if (taken) ++branchesTaken;
  }
  void onLoopIteration() override { ++loopIterations; }
};

TEST(Interpreter, ObserverSeesEveryDynamicOperation) {
  const TargetRegion region =
      RegionBuilder("observed")
          .param("n")
          .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              {Stmt::assign("acc", local("acc") + read("x", {sym("k")}))}))
          .statement(Stmt::store("y", {sym("i")}, local("acc")))
          .build();
  const symbolic::Bindings b{{"n", 8}};
  ArrayStore store = allocateArrays(region, b);
  CountingObserver observer;
  CompiledRegion(region, b).runAll(store, &observer);
  EXPECT_EQ(observer.loads, 64);           // 8 points x 8 iterations
  EXPECT_EQ(observer.stores, 8);           // one per point
  EXPECT_EQ(observer.arithmetic, 64);      // one add per load
  EXPECT_EQ(observer.loopIterations, 64);  // 8 x 8
  EXPECT_EQ(observer.branches, 0);
}

TEST(Interpreter, ObserverBranchOutcomes) {
  const TargetRegion region =
      RegionBuilder("branchy")
          .param("n")
          .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("x", {sym("i")}), CmpOp::GT, num(0.0)},
              {Stmt::store("y", {sym("i")}, num(1.0))}))
          .build();
  const symbolic::Bindings b{{"n", 6}};
  ArrayStore store = allocateArrays(region, b);
  store["x"] = {1.0, -1.0, 1.0, 1.0, -1.0, -1.0};
  CountingObserver observer;
  CompiledRegion(region, b).runAll(store, &observer);
  EXPECT_EQ(observer.branches, 6);
  EXPECT_EQ(observer.branchesTaken, 3);
  EXPECT_EQ(observer.stores, 3);
}

TEST(Interpreter, RunPointFlatIndexDecomposesRowMajor) {
  // 2D space (i in [0,3), j in [0,4)): flat 5 -> i=1, j=1.
  const TargetRegion region =
      RegionBuilder("coords")
          .param("ni")
          .param("nj")
          .array("out", ScalarType::F64, {sym("ni"), sym("nj")}, Transfer::From)
          .parallelFor("i", sym("ni"))
          .parallelFor("j", sym("nj"))
          .statement(Stmt::store("out", {sym("i"), sym("j")},
                                 asValue(sym("i") * 100 + sym("j"))))
          .build();
  const symbolic::Bindings b{{"ni", 3}, {"nj", 4}};
  ArrayStore store = allocateArrays(region, b);
  CompiledRegion compiled(region, b);
  compiled.runPoint(5, store);
  EXPECT_DOUBLE_EQ(store["out"][5], 101.0);  // i=1, j=1
  compiled.runPoint(11, store);
  EXPECT_DOUBLE_EQ(store["out"][11], 203.0);  // i=2, j=3
}

TEST(Interpreter, ReusableContextMatchesDirectRunPoint) {
  const TargetRegion region = vectorAdd();
  const symbolic::Bindings b{{"n", 16}};
  ArrayStore store = allocateArrays(region, b);
  for (int i = 0; i < 16; ++i) store["x"][static_cast<std::size_t>(i)] = i;
  CompiledRegion compiled(region, b);
  ExecutionContext context = compiled.makeContext(store);
  for (std::int64_t i = 0; i < compiled.flatTripCount(); ++i)
    compiled.runPoint(context, i);
  for (int i = 0; i < 16; ++i)
    EXPECT_DOUBLE_EQ(store["z"][static_cast<std::size_t>(i)], i);
}

TEST(Interpreter, RejectsUnboundParameter) {
  EXPECT_THROW(CompiledRegion(vectorAdd(), {}), PreconditionError);
}

TEST(Interpreter, RejectsMissingArrayStorage) {
  const TargetRegion region = vectorAdd();
  const symbolic::Bindings b{{"n", 4}};
  ArrayStore store;  // empty
  CompiledRegion compiled(region, b);
  EXPECT_THROW(compiled.runAll(store), PreconditionError);
}

TEST(Interpreter, RejectsWrongStorageSize) {
  const TargetRegion region = vectorAdd();
  const symbolic::Bindings b{{"n", 4}};
  ArrayStore store = allocateArrays(region, b);
  store["x"].resize(2);
  CompiledRegion compiled(region, b);
  EXPECT_THROW(compiled.runAll(store), PreconditionError);
}

TEST(Interpreter, RunPointRejectsOutOfRangeIndex) {
  const TargetRegion region = vectorAdd();
  const symbolic::Bindings b{{"n", 4}};
  ArrayStore store = allocateArrays(region, b);
  CompiledRegion compiled(region, b);
  EXPECT_THROW(compiled.runPoint(4, store), PreconditionError);
  EXPECT_THROW(compiled.runPoint(-1, store), PreconditionError);
}

TEST(Interpreter, FlatTripCountAndExtents) {
  const TargetRegion region =
      RegionBuilder("dims")
          .param("a")
          .param("b")
          .array("out", ScalarType::F64, {sym("a"), sym("b")}, Transfer::From)
          .parallelFor("i", sym("a"))
          .parallelFor("j", sym("b"))
          .statement(Stmt::store("out", {sym("i"), sym("j")}, num(0.0)))
          .build();
  CompiledRegion compiled(region, {{"a", 7}, {"b", 9}});
  EXPECT_EQ(compiled.flatTripCount(), 63);
  EXPECT_EQ(compiled.parallelExtent(0), 7);
  EXPECT_EQ(compiled.parallelExtent(1), 9);
  EXPECT_THROW((void)compiled.parallelExtent(2), PreconditionError);
}

}  // namespace
}  // namespace osel::ir

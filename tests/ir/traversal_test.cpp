#include "ir/traversal.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace osel::ir {
namespace {

/// GEMM-like region: C[i][j] = beta*C[i][j] + alpha*sum_k A[i][k]*B[k][j].
TargetRegion gemmLike() {
  return RegionBuilder("gemm_like")
      .param("n")
      .array("A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F64, {sym("n"), sym("n")}, Transfer::ToFrom)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", read("C", {sym("i"), sym("j")}) * num(0.5)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}) *
                                                  read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

TEST(CollectAccesses, FindsAllSitesInOrder) {
  const auto sites = collectAccesses(gemmLike());
  ASSERT_EQ(sites.size(), 4u);
  EXPECT_EQ(sites[0].array, "C");
  EXPECT_FALSE(sites[0].isStore);
  EXPECT_EQ(sites[1].array, "A");
  EXPECT_EQ(sites[2].array, "B");
  EXPECT_EQ(sites[3].array, "C");
  EXPECT_TRUE(sites[3].isStore);
}

TEST(CollectAccesses, TracksEnclosingLoops) {
  const auto sites = collectAccesses(gemmLike());
  EXPECT_TRUE(sites[0].enclosingLoops.empty());
  ASSERT_EQ(sites[1].enclosingLoops.size(), 1u);
  EXPECT_EQ(sites[1].enclosingLoops[0].var, "k");
  EXPECT_EQ(sites[1].enclosingLoops[0].upper, sym("n"));
}

TEST(CollectAccesses, TracksBranchDepth) {
  const TargetRegion region =
      RegionBuilder("branchy")
          .param("n")
          .array("y", ScalarType::F64, {sym("n")}, Transfer::ToFrom)
          .parallelFor("i", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("y", {sym("i")}), CmpOp::LE, num(0.1)},
              {Stmt::store("y", {sym("i")}, num(1.0))}))
          .build();
  const auto sites = collectAccesses(region);
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].branchDepth, 0);  // condition load
  EXPECT_EQ(sites[1].branchDepth, 1);  // guarded store
}

TEST(CountOpSites, GemmLikeCounts) {
  const OpCounts counts = countOpSites(gemmLike().body);
  EXPECT_EQ(counts.loads, 3);
  EXPECT_EQ(counts.stores, 1);
  // mul(acc init) + add + mul in loop body.
  EXPECT_EQ(counts.floatOps, 3);
  EXPECT_EQ(counts.seqLoops, 1);
  EXPECT_EQ(counts.branches, 0);
}

TEST(CountOpSites, SpecialOpsSeparated) {
  const std::vector<Stmt> body{
      Stmt::assign("a", Value::unary(UnOp::Sqrt, num(2.0))),
      Stmt::assign("b", Value::unary(UnOp::Neg, local("a"))),
      Stmt::assign("c", Value::unary(UnOp::Exp, local("b"))),
  };
  const OpCounts counts = countOpSites(body);
  EXPECT_EQ(counts.specialOps, 2);
  EXPECT_EQ(counts.floatOps, 1);
}

TEST(CountOpSites, BranchArmsCounted) {
  const std::vector<Stmt> body{
      Stmt::assign("x", num(0.0)),
      Stmt::ifStmt(Condition{local("x"), CmpOp::LT, num(1.0)},
                   {Stmt::assign("x", local("x") + num(1.0))},
                   {Stmt::assign("x", local("x") - num(1.0))}),
  };
  const OpCounts counts = countOpSites(body);
  EXPECT_EQ(counts.branches, 1);
  EXPECT_EQ(counts.compares, 1);
  EXPECT_EQ(counts.floatOps, 2);  // one per arm
}

TEST(ForEachStmt, VisitsNestedBodies) {
  int visits = 0;
  forEachStmt(gemmLike().body, [&](const Stmt&) { ++visits; });
  // assign + seqloop + inner assign + store.
  EXPECT_EQ(visits, 4);
}

TEST(ForEachValue, VisitsWholeTree) {
  int visits = 0;
  const Value v = (num(1.0) + local("x")) * Value::unary(UnOp::Neg, num(2.0));
  forEachValue(v, [&](const Value&) { ++visits; });
  EXPECT_EQ(visits, 6);
}

}  // namespace
}  // namespace osel::ir

#include "ir/region.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "support/check.h"

namespace osel::ir {
namespace {

using support::PreconditionError;

TEST(ArrayDecl, ElementCountAndBytes) {
  const ArrayDecl decl{"A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To};
  const symbolic::Bindings b{{"n", 100}};
  EXPECT_EQ(decl.elementCount(b), 10000);
  EXPECT_EQ(decl.byteSize(b), 80000);
}

TEST(ArrayDecl, ElementCountRejectsNonPositiveExtent) {
  const ArrayDecl decl{"A", ScalarType::F64, {sym("n")}, Transfer::To};
  EXPECT_THROW((void)decl.elementCount({{"n", 0}}), PreconditionError);
}

TEST(ArrayDecl, LinearizeRowMajor2D) {
  const ArrayDecl decl{"A", ScalarType::F64, {sym("n"), sym("m")}, Transfer::To};
  const symbolic::Expr linear = decl.linearize({sym("i"), sym("j")});
  // Row-major: i*m + j.
  EXPECT_EQ(linear, sym("i") * sym("m") + sym("j"));
}

TEST(ArrayDecl, LinearizeRowMajor3D) {
  const ArrayDecl decl{"V", ScalarType::F32, {sym("d"), sym("h"), sym("w")},
                       Transfer::To};
  const symbolic::Expr linear = decl.linearize({sym("i"), sym("j"), sym("k")});
  EXPECT_EQ(linear, (sym("i") * sym("h") + sym("j")) * sym("w") + sym("k"));
}

TEST(ArrayDecl, LinearizeRejectsRankMismatch) {
  const ArrayDecl decl{"A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To};
  EXPECT_THROW((void)decl.linearize({sym("i")}), PreconditionError);
}

TargetRegion vectorScale() {
  return RegionBuilder("vector_scale")
      .param("n")
      .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("i")}, num(2.0) * read("x", {sym("i")})))
      .build();
}

TEST(TargetRegion, TransferByteAccounting) {
  const TargetRegion region = vectorScale();
  const symbolic::Bindings b{{"n", 1000}};
  EXPECT_EQ(region.bytesToDevice(b), 8000);
  EXPECT_EQ(region.bytesFromDevice(b), 8000);
}

TEST(TargetRegion, ToFromCountsBothWays) {
  const TargetRegion region =
      RegionBuilder("inout")
          .param("n")
          .array("a", ScalarType::F32, {sym("n")}, Transfer::ToFrom)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("a", {sym("i")}, num(0.0)))
          .build();
  const symbolic::Bindings b{{"n", 10}};
  EXPECT_EQ(region.bytesToDevice(b), 40);
  EXPECT_EQ(region.bytesFromDevice(b), 40);
}

TEST(TargetRegion, AllocArraysNeverTransfer) {
  const TargetRegion region =
      RegionBuilder("scratchpad")
          .param("n")
          .array("tmp", ScalarType::F64, {sym("n")}, Transfer::Alloc)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("tmp", {sym("i")}, num(1.0)))
          .build();
  const symbolic::Bindings b{{"n", 10}};
  EXPECT_EQ(region.bytesToDevice(b), 0);
  EXPECT_EQ(region.bytesFromDevice(b), 0);
}

TEST(TargetRegion, FlatTripCountMultipliesDims) {
  const TargetRegion region =
      RegionBuilder("grid2d")
          .param("n")
          .param("m")
          .array("a", ScalarType::F64, {sym("n"), sym("m")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .parallelFor("j", sym("m"))
          .statement(Stmt::store("a", {sym("i"), sym("j")}, num(1.0)))
          .build();
  EXPECT_EQ(region.flatTripCount({{"n", 12}, {"m", 5}}), 60);
}

TEST(Verify, RejectsUndeclaredArrayRead) {
  RegionBuilder b("bad");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("i")}, read("ghost", {sym("i")})));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Verify, RejectsOutOfScopeSymbolInIndex) {
  RegionBuilder b("bad");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("q")}, num(1.0)));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Verify, RejectsLocalReadBeforeAssign) {
  RegionBuilder b("bad");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("i")}, local("acc")));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Verify, RejectsRankMismatch) {
  RegionBuilder b("bad");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("i")}, num(1.0)));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Verify, RejectsLoopVarShadowing) {
  RegionBuilder b("bad");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::seqLoop("i", cst(0), sym("n"),
                               {Stmt::store("y", {sym("i")}, num(1.0))}));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Verify, ConditionallyAssignedLocalDoesNotLeak) {
  RegionBuilder b("bad");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::ifStmt(Condition{num(1.0), CmpOp::LT, num(2.0)},
                              {Stmt::assign("t", num(1.0))}))
      .statement(Stmt::store("y", {sym("i")}, local("t")));
  EXPECT_THROW(b.build(), PreconditionError);
}

TEST(Verify, AcceptsLoopVarUseInsideLoop) {
  RegionBuilder b("good");
  b.param("n")
      .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + asValue(sym("k")))}))
      .statement(Stmt::store("y", {sym("i")}, local("acc")));
  EXPECT_NO_THROW(b.build());
}

TEST(TargetRegion, ToStringMentionsStructure) {
  const std::string text = vectorScale().toString();
  EXPECT_NE(text.find("target region vector_scale"), std::string::npos);
  EXPECT_NE(text.find("parallel for (i in [0, [n]))"), std::string::npos);
  EXPECT_NE(text.find("map(to: x"), std::string::npos);
}

TEST(TargetRegion, ArrayLookup) {
  const TargetRegion region = vectorScale();
  EXPECT_EQ(region.array("x").name, "x");
  EXPECT_TRUE(region.hasArray("y"));
  EXPECT_FALSE(region.hasArray("z"));
  EXPECT_THROW((void)region.array("z"), PreconditionError);
}

}  // namespace
}  // namespace osel::ir

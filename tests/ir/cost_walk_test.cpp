#include "ir/cost_walk.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/interpreter.h"
#include "ir/traversal.h"
#include "support/check.h"

namespace osel::ir {
namespace {

TargetRegion gemmKernel() {
  return RegionBuilder("gemm")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F32, {sym("n"), sym("n")}, Transfer::ToFrom)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}) *
                                                  read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

/// Triangular nest like CORR: inner loop trips depend on the outer seq var.
TargetRegion triangularKernel() {
  return RegionBuilder("tri")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "j", cst(0), sym("n"),
          {Stmt::seqLoop("k", sym("j") + 1, sym("n"),
                         {Stmt::assign("acc", local("acc") +
                                                  read("A", {sym("j"), sym("k")}))})}))
      .statement(Stmt::store("y", {sym("i")}, local("acc")))
      .build();
}

TEST(CostWalk, GemmRuntimeCountsMatchTripCounts) {
  const WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  const DynamicCounts counts =
      estimateDynamicCounts(gemmKernel(), {{"n", 100}}, policy);
  EXPECT_DOUBLE_EQ(counts.loads, 200.0);  // 2 per k-iteration
  EXPECT_DOUBLE_EQ(counts.stores, 1.0);
  EXPECT_DOUBLE_EQ(counts.arithOps, 200.0);  // add+mul per k-iteration
  EXPECT_DOUBLE_EQ(counts.loopIterations, 100.0);
}

TEST(CostWalk, GemmFixedAssumptionUses128Trips) {
  const WalkPolicy policy{WalkPolicy::TripMode::FixedAssumption, 128.0, 0.5};
  const DynamicCounts counts =
      estimateDynamicCounts(gemmKernel(), {{"n", 100}}, policy);
  EXPECT_DOUBLE_EQ(counts.loads, 256.0);  // 2 x 128, regardless of n
  EXPECT_DOUBLE_EQ(counts.arithOps, 256.0);
}

TEST(CostWalk, SiteCountsAlignWithCollectAccesses) {
  const TargetRegion region = gemmKernel();
  const auto sites = collectAccesses(region);
  const WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  const DynamicCounts counts = estimateDynamicCounts(region, {{"n", 50}}, policy);
  ASSERT_EQ(counts.siteCounts.size(), sites.size());
  // A and B loads execute 50x each; the C store once.
  EXPECT_DOUBLE_EQ(counts.siteCounts[0], 50.0);
  EXPECT_DOUBLE_EQ(counts.siteCounts[1], 50.0);
  EXPECT_DOUBLE_EQ(counts.siteCounts[2], 1.0);
  EXPECT_TRUE(sites[2].isStore);
}

TEST(CostWalk, TriangularAverageIsExact) {
  // Total inner iterations per parallel point: sum_{j=0}^{n-1} (n-j-1)
  // = n(n-1)/2. The affine-average recursion must reproduce it exactly.
  const std::int64_t n = 40;
  const WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  const DynamicCounts counts =
      estimateDynamicCounts(triangularKernel(), {{"n", n}}, policy);
  const double expected = static_cast<double>(n * (n - 1)) / 2.0;
  EXPECT_DOUBLE_EQ(counts.loads, expected);
}

TEST(CostWalk, TriangularMatchesInterpreterEventCounts) {
  // Cross-check against a real execution of one parallel point.
  const TargetRegion region = triangularKernel();
  const symbolic::Bindings bindings{{"n", 24}};
  class Counter final : public ExecutionObserver {
   public:
    double loads = 0, stores = 0, arith = 0, loopIters = 0;
    void onLoad(std::size_t, std::int64_t, std::size_t) override { ++loads; }
    void onStore(std::size_t, std::int64_t, std::size_t) override { ++stores; }
    void onArithmetic(bool) override { ++arith; }
    void onLoopIteration() override { ++loopIters; }
  };
  ArrayStore store = allocateArrays(region, bindings);
  Counter counter;
  CompiledRegion(region, bindings).runPoint(0, store, &counter);

  const WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  const DynamicCounts counts = estimateDynamicCounts(region, bindings, policy);
  EXPECT_DOUBLE_EQ(counts.loads, counter.loads);
  EXPECT_DOUBLE_EQ(counts.stores, counter.stores);
  EXPECT_DOUBLE_EQ(counts.arithOps, counter.arith);
  EXPECT_DOUBLE_EQ(counts.loopIterations, counter.loopIters);
}

TEST(CostWalk, BranchProbabilityWeighting) {
  const TargetRegion region =
      RegionBuilder("branchy")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::ToFrom)
          .parallelFor("i", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("x", {sym("i")}), CmpOp::LE, num(0.1)},
              {Stmt::store("y", {sym("i")}, num(1.0))},
              {Stmt::store("y", {sym("i")}, read("y", {sym("i")}) * num(2.0))}))
          .build();
  WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  DynamicCounts counts = estimateDynamicCounts(region, {{"n", 10}}, policy);
  EXPECT_DOUBLE_EQ(counts.compares, 1.0);
  // Condition load (1.0) + else-arm load (0.5).
  EXPECT_DOUBLE_EQ(counts.loads, 1.5);
  // Stores: 0.5 (then) + 0.5 (else).
  EXPECT_DOUBLE_EQ(counts.stores, 1.0);

  policy.branchProbability = 1.0;
  counts = estimateDynamicCounts(region, {{"n", 10}}, policy);
  EXPECT_DOUBLE_EQ(counts.loads, 1.0);  // else arm never runs
  EXPECT_DOUBLE_EQ(counts.arithOps, 0.0);
}

TEST(CostWalk, TotalEventsAggregates) {
  const WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  const DynamicCounts counts =
      estimateDynamicCounts(gemmKernel(), {{"n", 10}}, policy);
  EXPECT_DOUBLE_EQ(counts.totalEvents(),
                   counts.arithOps + counts.specialOps + counts.loads +
                       counts.stores + counts.compares + counts.loopIterations);
  EXPECT_DOUBLE_EQ(counts.memoryAccesses(), counts.loads + counts.stores);
}

TEST(CostWalk, RequiresBoundParamsInRuntimeMode) {
  const WalkPolicy policy{WalkPolicy::TripMode::RuntimeAverage, 128.0, 0.5};
  EXPECT_THROW((void)estimateDynamicCounts(gemmKernel(), {}, policy),
               support::PreconditionError);
}

}  // namespace
}  // namespace osel::ir

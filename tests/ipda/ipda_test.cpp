#include "ipda/ipda.h"

#include <gtest/gtest.h>

#include "ir/builder.h"

namespace osel::ipda {
namespace {

using namespace osel::ir;

/// The paper's running example (§IV.C):
///   #pragma omp teams distribute parallel for
///   for (a = 0; a < max; a++) A[max * a] = ...
TargetRegion paperExample() {
  return RegionBuilder("paper_example")
      .param("max")
      .array("A", ScalarType::F64, {sym("max") * sym("max")}, Transfer::From)
      .parallelFor("a", sym("max"))
      .statement(Stmt::store("A", {sym("max") * sym("a")}, num(1.0)))
      .build();
}

TEST(Ipda, PaperExampleSymbolicStride) {
  const Analysis analysis = Analysis::analyze(paperExample());
  ASSERT_EQ(analysis.records().size(), 1u);
  const StrideRecord& record = analysis.records()[0];
  EXPECT_TRUE(record.affineInThreadVar);
  // IPD_th(A[max*a]) = [max]*1 - [max]*0 = [max].
  EXPECT_EQ(record.stride, sym("max"));
  // Unknown at compile time -> deferred to runtime (case 2 of the paper).
  EXPECT_FALSE(record.classifyStatic().has_value());
}

TEST(Ipda, PaperExampleRuntimeResolution) {
  const Analysis analysis = Analysis::analyze(paperExample());
  const StrideRecord& record = analysis.records()[0];
  // Runtime binds max=1024: stride 1024 elements -> badly strided.
  const Classification big = record.classify({{"max", 1024}});
  EXPECT_EQ(big.kind, CoalescingClass::Strided);
  EXPECT_EQ(big.strideElements.value(), 1024);
  EXPECT_FALSE(big.countsAsCoalesced());
  // Degenerate runtime value max=1 -> stride 1, coalesced.
  const Classification tiny = record.classify({{"max", 1}});
  EXPECT_EQ(tiny.kind, CoalescingClass::Coalesced);
  EXPECT_TRUE(tiny.countsAsCoalesced());
}

/// Row-major 2D kernel, inner parallel dim j: A[i][j] coalesced, A[j][i]
/// strided by n, b[i] uniform across the warp.
TargetRegion rowColKernel() {
  return RegionBuilder("rowcol")
      .param("n")
      .array("A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
      .array("b", ScalarType::F64, {sym("n")}, Transfer::To)
      .array("C", ScalarType::F64, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("C", {sym("i"), sym("j")},
                             read("A", {sym("i"), sym("j")}) +
                                 read("B", {sym("j"), sym("i")}) +
                                 read("b", {sym("i")})))
      .build();
}

TEST(Ipda, ThreadVarIsInnermostParallelDim) {
  const Analysis analysis = Analysis::analyze(rowColKernel());
  EXPECT_EQ(analysis.threadVar(), "j");
}

TEST(Ipda, RowMajorAccessIsCoalesced) {
  const Analysis analysis = Analysis::analyze(rowColKernel());
  const StrideRecord& a = analysis.records()[0];  // A[i][j]
  EXPECT_EQ(a.stride, cst(1));
  // Stride constant 1: resolvable statically (case 1 of the paper).
  const auto statically = a.classifyStatic();
  ASSERT_TRUE(statically.has_value());
  EXPECT_EQ(statically->kind, CoalescingClass::Coalesced);
}

TEST(Ipda, ColumnMajorAccessIsStridedByLeadingDimension) {
  const Analysis analysis = Analysis::analyze(rowColKernel());
  const StrideRecord& b = analysis.records()[1];  // B[j][i]
  EXPECT_EQ(b.stride, sym("n"));
  const Classification c = b.classify({{"n", 9600}});
  EXPECT_EQ(c.kind, CoalescingClass::Strided);
  EXPECT_EQ(c.strideElements.value(), 9600);
}

TEST(Ipda, ThreadInvariantAccessIsUniform) {
  const Analysis analysis = Analysis::analyze(rowColKernel());
  const StrideRecord& r = analysis.records()[2];  // b[i]
  EXPECT_EQ(r.stride, symbolic::Expr{});
  const Classification c = r.classify({{"n", 100}});
  EXPECT_EQ(c.kind, CoalescingClass::Uniform);
  EXPECT_EQ(c.strideElements.value(), 0);
  EXPECT_TRUE(c.countsAsCoalesced());
}

TEST(Ipda, StoreSiteRecorded) {
  const Analysis analysis = Analysis::analyze(rowColKernel());
  const StrideRecord& store = analysis.records()[3];  // C[i][j]
  EXPECT_TRUE(store.site.isStore);
  EXPECT_EQ(store.stride, cst(1));
}

TEST(Ipda, OuterOnlyParallelismMakesRowMajorUncoalesced) {
  // Only i is parallel; the j loop is sequential inside each thread.
  // A[i][j]: adjacent threads differ in i -> stride n (uncoalesced).
  const TargetRegion region =
      RegionBuilder("outer_only")
          .param("n")
          .array("A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "j", cst(0), sym("n"),
              {Stmt::assign("acc", local("acc") +
                                       read("A", {sym("i"), sym("j")}))}))
          .statement(Stmt::store("y", {sym("i")}, local("acc")))
          .build();
  const Analysis analysis = Analysis::analyze(region);
  EXPECT_EQ(analysis.threadVar(), "i");
  const StrideRecord& a = analysis.records()[0];
  EXPECT_EQ(a.stride, sym("n"));
  EXPECT_EQ(a.classify({{"n", 1100}}).kind, CoalescingClass::Strided);
  // The y[i] store is coalesced.
  const StrideRecord& y = analysis.records()[1];
  EXPECT_EQ(y.classify({{"n", 1100}}).kind, CoalescingClass::Coalesced);
}

TEST(Ipda, NonAffineAddressIsIrregular) {
  const TargetRegion region =
      RegionBuilder("quadratic")
          .param("n")
          .array("A", ScalarType::F64, {sym("n") * sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("A", {sym("i") * sym("i")}, num(1.0)))
          .build();
  const Analysis analysis = Analysis::analyze(region);
  const StrideRecord& record = analysis.records()[0];
  EXPECT_FALSE(record.affineInThreadVar);
  const auto statically = record.classifyStatic();
  ASSERT_TRUE(statically.has_value());  // known-bad statically
  EXPECT_EQ(statically->kind, CoalescingClass::Irregular);
  EXPECT_EQ(record.classify({{"n", 64}}).kind, CoalescingClass::Irregular);
}

TEST(Ipda, StrideDependingOnOuterParallelVarIsIrregular) {
  // A[i*j]: affine in j, but the stride (i) differs per thread row.
  const TargetRegion region =
      RegionBuilder("mixed")
          .param("n")
          .array("A", ScalarType::F64, {sym("n") * sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .parallelFor("j", sym("n"))
          .statement(Stmt::store("A", {sym("i") * sym("j")}, num(1.0)))
          .build();
  const Analysis analysis = Analysis::analyze(region);
  const StrideRecord& record = analysis.records()[0];
  EXPECT_TRUE(record.affineInThreadVar);
  EXPECT_EQ(record.stride, sym("i"));
  EXPECT_FALSE(record.classifyStatic().has_value());
  // i is not a runtime parameter; binding n does not resolve it.
  EXPECT_EQ(record.classify({{"n", 64}}).kind, CoalescingClass::Irregular);
}

TEST(Ipda, StrideDependingOnSeqLoopVarIsIrregular) {
  // A[k*i]: stride k changes every sequential iteration.
  const TargetRegion region =
      RegionBuilder("seqvar")
          .param("n")
          .array("A", ScalarType::F64, {sym("n") * sym("n")}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              {Stmt::assign("acc",
                            local("acc") + read("A", {sym("k") * sym("i")}))}))
          .statement(Stmt::store("y", {sym("i")}, local("acc")))
          .build();
  const Analysis analysis = Analysis::analyze(region);
  const StrideRecord& record = analysis.records()[0];
  EXPECT_EQ(record.stride, sym("k"));
  EXPECT_EQ(record.classify({{"n", 64}}).kind, CoalescingClass::Irregular);
}

TEST(Ipda, SiteCountsSummarize) {
  const Analysis analysis = Analysis::analyze(rowColKernel());
  const auto counts = analysis.classifySites({{"n", 256}});
  EXPECT_EQ(counts.coalesced, 2);  // A[i][j] load + C[i][j] store
  EXPECT_EQ(counts.strided, 1);    // B[j][i]
  EXPECT_EQ(counts.uniform, 1);    // b[i]
  EXPECT_EQ(counts.irregular, 0);
}

TEST(Ipda, FalseSharingRiskForFineGrainedStores) {
  // Coalesced f64 store: adjacent parallel iterations are 8 bytes apart —
  // below a 128-byte line, so chunk-boundary false sharing is possible.
  const Analysis analysis = Analysis::analyze(rowColKernel());
  EXPECT_TRUE(analysis.falseSharingRisk({{"n", 256}}, 128));
  // With a 4-byte "line" no two stores share a line.
  EXPECT_FALSE(analysis.falseSharingRisk({{"n", 256}}, 4));
}

TEST(Ipda, NoFalseSharingForWideStrides) {
  const Analysis analysis = Analysis::analyze(paperExample());
  // Stride max*8 bytes >= 128 for max >= 16.
  EXPECT_FALSE(analysis.falseSharingRisk({{"max", 1024}}, 128));
  EXPECT_TRUE(analysis.falseSharingRisk({{"max", 2}}, 128));
}

TEST(Ipda, ToStringShowsPaperNotation) {
  const Analysis analysis = Analysis::analyze(paperExample());
  const std::string text = analysis.toString();
  EXPECT_NE(text.find("IPD_a(A[[a]*[max]]) = [max]"), std::string::npos);
  EXPECT_NE(text.find("(store)"), std::string::npos);
}

TEST(Ipda, NegativeUnitStrideCountsAsCoalesced) {
  // A[n-1-i]: reversed traversal still touches adjacent addresses.
  const TargetRegion region =
      RegionBuilder("reversed")
          .param("n")
          .array("A", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("A", {sym("n") - 1 - sym("i")}, num(1.0)))
          .build();
  const Analysis analysis = Analysis::analyze(region);
  const Classification c = analysis.records()[0].classify({{"n", 100}});
  EXPECT_EQ(c.kind, CoalescingClass::Coalesced);
  EXPECT_EQ(c.strideElements.value(), 1);
}

}  // namespace
}  // namespace osel::ipda

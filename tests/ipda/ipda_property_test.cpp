// Property test: the symbolic inter-thread stride must equal the concrete
// address difference between adjacent threads, measured by evaluating the
// linearized index expression at thread t and t+1 for random kernels,
// bindings, and iteration points.
#include <gtest/gtest.h>

#include <cstdint>

#include "ipda/ipda.h"
#include "ir/builder.h"
#include "support/rng.h"

namespace osel::ipda {
namespace {

using namespace osel::ir;

/// Builds a random 2D-parallel region with one access whose index is a
/// random affine combination of (i, j, k, n).
struct RandomKernel {
  TargetRegion region;
  symbolic::Expr index;
};

RandomKernel makeRandomKernel(support::SplitMix64& rng) {
  // index = c0 + c1*j + c2*i + c3*k + c4*n*i + c5*n*j.
  auto coeff = [&rng] {
    return static_cast<std::int64_t>(rng.nextBelow(5)) - 2;
  };
  symbolic::Expr index = cst(coeff() + 2);  // keep a positive base offset
  index += coeff() * sym("j");
  index += coeff() * sym("i");
  index += coeff() * sym("k");
  index += coeff() * sym("n") * sym("i");
  index += coeff() * sym("n") * sym("j");

  // Generous flat extent so all evaluated indices stay in bounds: offsets
  // are bounded by |coeffs|*(2n + 2n^2) + 3.
  const symbolic::Expr extent = 8 * sym("n") * sym("n") + 64 * sym("n") + 64;
  TargetRegion region =
      RegionBuilder("random")
          .param("n")
          .array("A", ScalarType::F64, {extent}, Transfer::To)
          .array("y", ScalarType::F64, {sym("n"), sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .parallelFor("j", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              // Shift by 4n^2+32n+32 to keep negative offsets in range.
              {Stmt::assign("acc",
                            local("acc") +
                                read("A", {index + 4 * sym("n") * sym("n") +
                                           32 * sym("n") + 32}))}))
          .statement(Stmt::store("y", {sym("i"), sym("j")}, local("acc")))
          .build();
  return RandomKernel{std::move(region), index};
}

class IpdaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IpdaProperty, SymbolicStrideEqualsConcreteAddressDifference) {
  support::SplitMix64 rng(GetParam());
  const RandomKernel kernel = makeRandomKernel(rng);
  const Analysis analysis = Analysis::analyze(kernel.region);
  // records()[0] is the A load.
  const StrideRecord& record = analysis.records()[0];
  ASSERT_TRUE(record.affineInThreadVar);

  const std::int64_t n = 4 + static_cast<std::int64_t>(rng.nextBelow(13));
  for (int trial = 0; trial < 20; ++trial) {
    symbolic::Bindings point{{"n", n}};
    point["i"] = static_cast<std::int64_t>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    point["j"] =
        static_cast<std::int64_t>(rng.nextBelow(static_cast<std::uint64_t>(n - 1)));
    point["k"] = static_cast<std::int64_t>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    symbolic::Bindings neighbour = point;
    neighbour["j"] = point["j"] + 1;  // adjacent thread
    const std::int64_t difference = record.linearIndex.evaluate(neighbour) -
                                    record.linearIndex.evaluate(point);
    EXPECT_EQ(record.stride.evaluate(point), difference)
        << "index: " << kernel.index.toString();
  }
}

TEST_P(IpdaProperty, ClassificationAgreesWithResolvedStrideValue) {
  support::SplitMix64 rng(GetParam() ^ 0xC0FFEE);
  const RandomKernel kernel = makeRandomKernel(rng);
  const Analysis analysis = Analysis::analyze(kernel.region);
  const StrideRecord& record = analysis.records()[0];
  const std::int64_t n = 4 + static_cast<std::int64_t>(rng.nextBelow(13));
  const Classification c = record.classify({{"n", n}});
  const symbolic::Expr bound = record.stride.substituteAll({{"n", n}});
  if (const auto constant = bound.tryConstant()) {
    ASSERT_TRUE(c.strideElements.has_value());
    EXPECT_EQ(*c.strideElements, std::abs(*constant));
    if (*constant == 0) {
      EXPECT_EQ(c.kind, CoalescingClass::Uniform);
    } else if (std::abs(*constant) == 1) {
      EXPECT_EQ(c.kind, CoalescingClass::Coalesced);
    } else {
      EXPECT_EQ(c.kind, CoalescingClass::Strided);
    }
  } else {
    EXPECT_EQ(c.kind, CoalescingClass::Irregular);
    EXPECT_FALSE(c.strideElements.has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpdaProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace osel::ipda

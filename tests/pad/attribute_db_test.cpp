#include "pad/attribute_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "support/check.h"
#include "support/rng.h"

namespace osel::pad {
namespace {

using symbolic::Expr;

Expr S(const std::string& name) { return Expr::symbol(name); }

TEST(ExprSerialization, RoundTripsSimpleForms) {
  for (const Expr& e :
       {Expr{}, Expr::constant(42), Expr::constant(-7), S("n"),
        S("n") * S("i") + S("j") + Expr::constant(5),
        3 * S("a") * S("a") - 2 * S("b"), S("max")}) {
    EXPECT_EQ(parseExpr(serializeExpr(e)), e) << serializeExpr(e);
  }
}

TEST(ExprSerialization, KnownTextForm) {
  EXPECT_EQ(serializeExpr(Expr{}), "0:_");
  EXPECT_EQ(serializeExpr(Expr::constant(5)), "5:_");
  EXPECT_EQ(serializeExpr(S("n")), "1:n");
  EXPECT_EQ(serializeExpr(S("a") * S("b") * 2), "2:a*b");
}

TEST(ExprSerialization, ParseRejectsGarbage) {
  EXPECT_THROW((void)parseExpr(""), support::PreconditionError);
  EXPECT_THROW((void)parseExpr("nocolon"), support::PreconditionError);
  EXPECT_THROW((void)parseExpr("x:_"), support::PreconditionError);
  EXPECT_THROW((void)parseExpr("3:"), support::PreconditionError);
}

RegionAttributes sampleAttributes(const std::string& name) {
  RegionAttributes attr;
  attr.regionName = name;
  attr.params = {"n", "max"};
  attr.compInstsPerIter = 256.0;
  attr.specialInstsPerIter = 2.0;
  attr.loadInstsPerIter = 260.0;
  attr.storeInstsPerIter = 1.0;
  attr.fp64Fraction = 0.25;
  attr.bytesTouchedPerIteration = 2048.0;
  attr.machineCyclesPerIter = {{"POWER9", 901.5}, {"POWER8", 1033.25}};
  StrideAttribute stride;
  stride.stride = S("max");
  stride.affine = true;
  stride.isStore = true;
  stride.elementBytes = 4;
  stride.countPerIteration = 128.0;
  attr.strides.push_back(stride);
  StrideAttribute irregular;
  irregular.affine = false;
  irregular.countPerIteration = 1.0;
  attr.strides.push_back(irregular);
  attr.flatTripCount = S("n") * S("n");
  attr.bytesToDevice = 4 * S("n") * S("n");
  attr.bytesFromDevice = 4 * S("n");
  return attr;
}

TEST(AttributeDatabase, InsertAndLookup) {
  AttributeDatabase db;
  db.insert(sampleAttributes("gemm_k1"));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_NE(db.find("gemm_k1"), nullptr);
  EXPECT_EQ(db.find("missing"), nullptr);
  EXPECT_EQ(db.at("gemm_k1").compInstsPerIter, 256.0);
  EXPECT_THROW((void)db.at("missing"), support::PreconditionError);
}

TEST(AttributeDatabase, MissingLookupThrowsTypedErrorWithSuggestion) {
  AttributeDatabase db;
  db.insert(sampleAttributes("gemm_k1"));
  db.insert(sampleAttributes("atax_k1"));
  try {
    (void)db.at("gemm_k2");  // plausible typo of gemm_k1
    FAIL() << "expected PadLookupError";
  } catch (const PadLookupError& error) {
    EXPECT_EQ(error.regionName(), "gemm_k2");
    EXPECT_EQ(error.suggestion(), "gemm_k1");
    EXPECT_NE(std::string(error.what()).find("gemm_k2"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("did you mean 'gemm_k1'"),
              std::string::npos);
  }
}

TEST(AttributeDatabase, FarFetchedLookupSuggestsNothing) {
  AttributeDatabase db;
  db.insert(sampleAttributes("gemm_k1"));
  try {
    (void)db.at("completely_unrelated_region");
    FAIL() << "expected PadLookupError";
  } catch (const PadLookupError& error) {
    EXPECT_TRUE(error.suggestion().empty());
    EXPECT_EQ(std::string(error.what()).find("did you mean"),
              std::string::npos);
  }
}

TEST(AttributeDatabase, NearestRegionName) {
  AttributeDatabase db;
  db.insert(sampleAttributes("bicg_k1"));
  db.insert(sampleAttributes("bicg_k2"));
  db.insert(sampleAttributes("mvt_k1"));
  // bicg_k1 and bicg_k2 tie at distance 1; the first in name order wins.
  EXPECT_EQ(db.nearestRegionName("bicg_k3"), "bicg_k1");
  EXPECT_EQ(db.nearestRegionName("mvt_k1"), "mvt_k1");
  EXPECT_EQ(db.nearestRegionName("zzzzzzzzz"), "");
  EXPECT_EQ(AttributeDatabase{}.nearestRegionName("anything"), "");
}

TEST(AttributeDatabase, InsertReplacesExisting) {
  AttributeDatabase db;
  db.insert(sampleAttributes("k"));
  RegionAttributes updated = sampleAttributes("k");
  updated.compInstsPerIter = 999.0;
  db.insert(updated);
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.at("k").compInstsPerIter, 999.0);
}

TEST(AttributeDatabase, RejectsEmptyName) {
  AttributeDatabase db;
  EXPECT_THROW(db.insert(RegionAttributes{}), support::PreconditionError);
}

TEST(AttributeDatabase, SerializationRoundTrip) {
  AttributeDatabase db;
  db.insert(sampleAttributes("atax_k1"));
  db.insert(sampleAttributes("atax_k2"));
  const std::string text = db.serialize();
  const AttributeDatabase parsed = AttributeDatabase::deserialize(text);
  ASSERT_EQ(parsed.size(), 2u);
  const RegionAttributes& attr = parsed.at("atax_k1");
  const RegionAttributes& original = db.at("atax_k1");
  EXPECT_EQ(attr.params, original.params);
  EXPECT_DOUBLE_EQ(attr.compInstsPerIter, original.compInstsPerIter);
  EXPECT_DOUBLE_EQ(attr.specialInstsPerIter, original.specialInstsPerIter);
  EXPECT_DOUBLE_EQ(attr.loadInstsPerIter, original.loadInstsPerIter);
  EXPECT_DOUBLE_EQ(attr.storeInstsPerIter, original.storeInstsPerIter);
  EXPECT_DOUBLE_EQ(attr.fp64Fraction, original.fp64Fraction);
  EXPECT_EQ(attr.machineCyclesPerIter, original.machineCyclesPerIter);
  ASSERT_EQ(attr.strides.size(), 2u);
  EXPECT_EQ(attr.strides[0].stride, original.strides[0].stride);
  EXPECT_TRUE(attr.strides[0].affine);
  EXPECT_TRUE(attr.strides[0].isStore);
  EXPECT_EQ(attr.strides[0].elementBytes, 4);
  EXPECT_FALSE(attr.strides[1].affine);
  EXPECT_EQ(attr.flatTripCount, original.flatTripCount);
  EXPECT_EQ(attr.bytesToDevice, original.bytesToDevice);
  EXPECT_EQ(attr.bytesFromDevice, original.bytesFromDevice);
}

TEST(AttributeDatabase, DeserializeRejectsBadHeader) {
  EXPECT_THROW((void)AttributeDatabase::deserialize("wrong\n"),
               support::PreconditionError);
}

TEST(AttributeDatabase, DeserializeRejectsUnterminatedBlock) {
  const std::string text = "osel-pad-v1\nregion r\ncomp 1\n";
  EXPECT_THROW((void)AttributeDatabase::deserialize(text),
               support::PreconditionError);
}

TEST(AttributeDatabase, DeserializeRejectsUnknownKey) {
  const std::string text = "osel-pad-v1\nregion r\nwhatever 1\nend\n";
  EXPECT_THROW((void)AttributeDatabase::deserialize(text),
               support::PreconditionError);
}

TEST(AttributeDatabase, FileRoundTrip) {
  AttributeDatabase db;
  db.insert(sampleAttributes("file_kernel"));
  const std::string path =
      (std::filesystem::temp_directory_path() / "osel_pad_test.txt").string();
  db.saveToFile(path);
  const AttributeDatabase loaded = AttributeDatabase::loadFromFile(path);
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_EQ(loaded.at("file_kernel").strides.size(), 2u);
  EXPECT_EQ(loaded.at("file_kernel").flatTripCount,
            db.at("file_kernel").flatTripCount);
  std::remove(path.c_str());
}

TEST(AttributeDatabase, LoadFromMissingFileThrows) {
  EXPECT_THROW((void)AttributeDatabase::loadFromFile("/nonexistent/osel.pad"),
               support::PreconditionError);
}

TEST(AttributeDatabase, SaveToUnwritablePathThrows) {
  AttributeDatabase db;
  db.insert(sampleAttributes("k"));
  EXPECT_THROW(db.saveToFile("/nonexistent-dir/osel.pad"),
               support::PreconditionError);
}

TEST(ExprSerialization, FuzzRoundTripRandomPolynomials) {
  support::SplitMix64 rng(31337);
  const char* names[] = {"n", "i", "j", "max", "nk"};
  for (int trial = 0; trial < 300; ++trial) {
    symbolic::Expr e;
    const auto terms = rng.nextBelow(6);
    for (std::uint64_t t = 0; t < terms; ++t) {
      symbolic::Expr mono = symbolic::Expr::constant(
          static_cast<std::int64_t>(rng.nextBelow(2001)) - 1000);
      const auto degree = rng.nextBelow(4);
      for (std::uint64_t d = 0; d < degree; ++d)
        mono = mono * symbolic::Expr::symbol(names[rng.nextBelow(5)]);
      e = e + mono;
    }
    EXPECT_EQ(parseExpr(serializeExpr(e)), e) << serializeExpr(e);
  }
}

TEST(AttributeDatabase, RuntimeBindingCompletesStoredStride) {
  // The paper's two-phase flow: compile stores "[max]", runtime binds it.
  AttributeDatabase db;
  db.insert(sampleAttributes("paper_example"));
  const AttributeDatabase parsed = AttributeDatabase::deserialize(db.serialize());
  const StrideAttribute& stride = parsed.at("paper_example").strides[0];
  EXPECT_EQ(stride.stride.substituteAll({{"max", 1024}}).tryConstant().value(),
            1024);
}

}  // namespace
}  // namespace osel::pad

// Integration tests: the full paper pipeline — Polybench kernel IR ->
// compile-time analyses -> serialized PAD -> runtime binding -> model
// evaluation -> policy execution on the simulated devices — across module
// boundaries, the way the bench harness and a downstream user drive it.
#include <gtest/gtest.h>

#include <array>

#include "compiler/compiler.h"
#include "polybench/polybench.h"
#include "runtime/target_runtime.h"

namespace osel {
namespace {

runtime::TargetRuntime buildRuntime(const std::vector<std::string>& names,
                                    int threads) {
  std::vector<ir::TargetRegion> regions;
  for (const std::string& name : names) {
    for (const auto& kernel : polybench::benchmarkByName(name).kernels())
      regions.push_back(kernel);
  }
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  // Exercise the serialization boundary the paper's two-phase design
  // implies: the runtime sees only the deserialized database.
  db = pad::AttributeDatabase::deserialize(db.serialize());

  runtime::RuntimeOptions options;
  options.selector.cpuThreads = threads;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  runtime::TargetRuntime rt(std::move(db), options);
  for (ir::TargetRegion& region : regions) rt.registerRegion(std::move(region));
  return rt;
}

TEST(EndToEnd, GemmPipelineThroughSerializedPad) {
  runtime::TargetRuntime rt = buildRuntime({"GEMM"}, 160);
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const auto bindings = gemm.bindings(256);
  ir::ArrayStore store = gemm.allocate(bindings);
  polybench::initializeInputs(gemm, bindings, store);

  const runtime::LaunchRecord record =
      rt.launch("gemm_k1", bindings, store, runtime::Policy::ModelGuided);
  EXPECT_GT(record.actualSeconds, 0.0);
  EXPECT_GT(record.decision.cpu.seconds, 0.0);
  EXPECT_GT(record.decision.gpu.totalSeconds, 0.0);
  // 256x256 GEMM on a 160-thread host vs V100: GPU should win both in
  // prediction and in measurement.
  EXPECT_EQ(record.chosen, runtime::Device::Gpu);
}

TEST(EndToEnd, MultiKernelBenchmarkRunsInPipelineOrder) {
  runtime::TargetRuntime rt = buildRuntime({"ATAX"}, 160);
  const polybench::Benchmark& atax = polybench::benchmarkByName("ATAX");
  const auto bindings = atax.bindings(200);
  ir::ArrayStore store = atax.allocate(bindings);
  polybench::initializeInputs(atax, bindings, store);
  for (const auto& kernel : atax.kernels()) {
    const auto record =
        rt.launch(kernel.name, bindings, store, runtime::Policy::ModelGuided);
    EXPECT_GT(record.actualSeconds, 0.0) << kernel.name;
  }
  EXPECT_EQ(rt.log().size(), 2u);
}

TEST(EndToEnd, OracleNeverLosesAcrossSuiteSubset) {
  runtime::TargetRuntime rt = buildRuntime({"MVT", "BICG"}, 160);
  for (const char* name : {"MVT", "BICG"}) {
    const polybench::Benchmark& benchmark = polybench::benchmarkByName(name);
    const auto bindings = benchmark.bindings(300);
    ir::ArrayStore store = benchmark.allocate(bindings);
    polybench::initializeInputs(benchmark, bindings, store);
    for (const auto& kernel : benchmark.kernels()) {
      const auto oracle =
          rt.launch(kernel.name, bindings, store, runtime::Policy::Oracle);
      const auto guided = rt.launch(kernel.name, bindings, store,
                                    runtime::Policy::ModelGuided);
      EXPECT_LE(oracle.actualSeconds, guided.actualSeconds + 1e-12)
          << kernel.name;
    }
  }
}

TEST(EndToEnd, ModelGuidedMatchesOneOfTheFixedPolicies) {
  runtime::TargetRuntime rt = buildRuntime({"SYRK"}, 160);
  const polybench::Benchmark& syrk = polybench::benchmarkByName("SYRK");
  const auto bindings = syrk.bindings(200);
  ir::ArrayStore store = syrk.allocate(bindings);
  polybench::initializeInputs(syrk, bindings, store);
  const auto guided =
      rt.launch("syrk_k1", bindings, store, runtime::Policy::ModelGuided);
  const auto fixedPolicy = guided.chosen == runtime::Device::Gpu
                               ? runtime::Policy::AlwaysGpu
                               : runtime::Policy::AlwaysCpu;
  const auto fixed = rt.launch("syrk_k1", bindings, store, fixedPolicy);
  // Same device, so times come from the same simulator configuration.
  EXPECT_EQ(fixed.chosen, guided.chosen);
  EXPECT_NEAR(fixed.actualSeconds, guided.actualSeconds,
              0.2 * guided.actualSeconds);
}

TEST(EndToEnd, DecisionOverheadNegligibleVersusExecution) {
  // §IV.D: the model evaluation must be cheap next to the kernel itself.
  runtime::TargetRuntime rt = buildRuntime({"GEMM"}, 160);
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const auto bindings = gemm.bindings(512);
  ir::ArrayStore store = gemm.allocate(bindings);
  polybench::initializeInputs(gemm, bindings, store);
  const auto record =
      rt.launch("gemm_k1", bindings, store, runtime::Policy::ModelGuided);
  EXPECT_LT(record.decision.overheadSeconds, record.actualSeconds);
  EXPECT_LT(record.decision.overheadSeconds, 1e-3);
}

TEST(EndToEnd, RuntimeBindingChangesDecisionForSameRegion) {
  // The hybrid-analysis point: one compiled artifact, different launch-time
  // values, different devices.
  runtime::TargetRuntime rt = buildRuntime({"GEMM"}, 160);
  const auto& attr = rt.database().at("gemm_k1");
  const runtime::Decision small =
      rt.selector().decide(runtime::RegionHandle(attr), {{"n", 8}});
  const runtime::Decision large =
      rt.selector().decide(runtime::RegionHandle(attr), {{"n", 4096}});
  EXPECT_EQ(large.device, runtime::Device::Gpu);
  // The small case must at minimum predict far smaller GPU benefit.
  EXPECT_LT(small.predictedSpeedup(), large.predictedSpeedup());
}

TEST(EndToEnd, AllSuiteKernelsSurvivePadRoundTripAndDecision) {
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const auto& kernel : benchmark.kernels()) regions.push_back(kernel);
  }
  const std::array<mca::MachineModel, 2> models{mca::MachineModel::power9(),
                                                mca::MachineModel::power8()};
  const pad::AttributeDatabase db = compiler::compileAll(regions, models);
  const pad::AttributeDatabase parsed =
      pad::AttributeDatabase::deserialize(db.serialize());
  EXPECT_EQ(parsed.size(), 24u);
  const runtime::OffloadSelector selector{runtime::SelectorConfig{}};
  for (const auto& region : regions) {
    const symbolic::Bindings bindings{{"n", 1100}};
    const runtime::Decision decision = selector.decide(
        runtime::RegionHandle(parsed.at(region.name)), bindings);
    EXPECT_GT(decision.cpu.seconds, 0.0) << region.name;
    EXPECT_GT(decision.gpu.totalSeconds, 0.0) << region.name;
  }
}

}  // namespace
}  // namespace osel

// Failure-injection / extreme-parameter robustness: the simulators and
// models must stay finite, positive, and exception-clean under degenerate
// but legal configurations (production runtimes cannot crash on odd
// machines, §I).
#include <gtest/gtest.h>

#include <cmath>

#include "cpusim/cpu_simulator.h"
#include "gpusim/gpu_simulator.h"
#include "ir/builder.h"
#include "support/check.h"

namespace osel {
namespace {

using namespace osel::ir;

TargetRegion smallKernel() {
  return RegionBuilder("probe")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) + num(1.0)))
      .build();
}

TEST(Robustness, GpuSimulatorSingleSmTinyCaches) {
  gpusim::GpuSimParams params = gpusim::GpuSimParams::teslaV100();
  params.device.sms = 1;
  params.memory.l1BytesPerSm = 0;      // always-miss L1
  params.memory.l2BytesTotal = 1024;   // nearly useless L2
  params.memory.tlbEntries = 1;
  const symbolic::Bindings bindings{{"n", 128}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result =
      gpusim::GpuSimulator(params).simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.totalSeconds));
  EXPECT_GT(result.totalSeconds, 0.0);
  EXPECT_LE(result.l1HitRate, 1e-9);  // the dead L1 never hits
}

TEST(Robustness, GpuSimulatorMinimalSamplingBudget) {
  gpusim::GpuSimParams params = gpusim::GpuSimParams::teslaV100();
  params.sampling.warpsPerWave = 1;
  params.sampling.repsPerThread = 1;
  params.sampling.waves = 1;
  params.sampling.maxEventsPerPoint = 8;  // truncate almost immediately
  const symbolic::Bindings bindings{{"n", 512}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result =
      gpusim::GpuSimulator(params).simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.kernelSeconds));
  EXPECT_GT(result.totalSeconds, 0.0);
}

TEST(Robustness, GpuSimulatorRejectsZeroBudgets) {
  gpusim::GpuSimParams params = gpusim::GpuSimParams::teslaV100();
  params.sampling.waves = 0;
  EXPECT_THROW(gpusim::GpuSimulator{params}, support::PreconditionError);
}

TEST(Robustness, CpuSimulatorOneCoreNoCaches) {
  cpusim::CpuSimParams params = cpusim::CpuSimParams::power9();
  params.cores = 1;
  params.smtWays = 1;
  params.cache.l1Bytes = 0;
  params.cache.l2Bytes = 0;
  params.cache.l3BytesPerCore = 0;
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result = cpusim::CpuSimulator(params, 64)
                          .simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.seconds));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_LE(result.l1HitRate, 1e-9);
  EXPECT_NE(result.bound, cpusim::CpuBound::Compute);  // all-miss => memory-bound
}

TEST(Robustness, CpuSimulatorThreadsBeyondHardware) {
  // 10000 nominal threads on a 20x8 machine must clamp, not explode.
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result = cpusim::CpuSimulator(cpusim::CpuSimParams::power9(), 10000)
                          .simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.seconds));
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Robustness, SingleIterationRegionEverywhere) {
  // Degenerate 3x3 problem exercises every clamp (partial warps, single
  // block, single chunk).
  const symbolic::Bindings bindings{{"n", 3}};
  ArrayStore storeA = allocateArrays(smallKernel(), bindings);
  ArrayStore storeB = allocateArrays(smallKernel(), bindings);
  const auto gpu = gpusim::GpuSimulator(gpusim::GpuSimParams::teslaV100())
                       .simulate(smallKernel(), bindings, storeA);
  const auto cpu = cpusim::CpuSimulator(cpusim::CpuSimParams::power9(), 160)
                       .simulate(smallKernel(), bindings, storeB);
  EXPECT_GT(gpu.totalSeconds, 0.0);
  EXPECT_GT(cpu.seconds, 0.0);
  EXPECT_EQ(gpu.blocks, 1);
}

TEST(Robustness, HugeTripCountsStayFinite) {
  // 2^20 x 2^10 iterations; no storage explosion because gpusim/cpusim
  // sample — but the store for this region would be enormous, so use a
  // vector kernel with modest footprint and huge trip count instead.
  const TargetRegion region =
      RegionBuilder("strided_probe")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("y", {sym("i")},
                                 read("x", {sym("i")}) * num(2.0)))
          .build();
  const symbolic::Bindings bindings{{"n", 1 << 24}};
  ArrayStore store = allocateArrays(region, bindings);
  const auto gpu = gpusim::GpuSimulator(gpusim::GpuSimParams::teslaV100())
                       .simulate(region, bindings, store);
  EXPECT_TRUE(std::isfinite(gpu.totalSeconds));
  EXPECT_GT(gpu.ompRep, 1.0);  // grid cap exceeded
}

}  // namespace
}  // namespace osel

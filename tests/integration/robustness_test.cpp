// Failure-injection / extreme-parameter robustness: the simulators and
// models must stay finite, positive, and exception-clean under degenerate
// but legal configurations (production runtimes cannot crash on odd
// machines, §I) — and the launch pipeline must survive injected device
// faults by retrying and falling back to the host path (§IV.D production
// framing; see docs/ROBUSTNESS.md).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "compiler/compiler.h"
#include "cpusim/cpu_simulator.h"
#include "gpusim/gpu_simulator.h"
#include "ir/builder.h"
#include "polybench/polybench.h"
#include "runtime/target_runtime.h"
#include "support/check.h"
#include "support/faultinject.h"

namespace osel {
namespace {

using namespace osel::ir;

TargetRegion smallKernel() {
  return RegionBuilder("probe")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) + num(1.0)))
      .build();
}

TEST(Robustness, GpuSimulatorSingleSmTinyCaches) {
  gpusim::GpuSimParams params = gpusim::GpuSimParams::teslaV100();
  params.device.sms = 1;
  params.memory.l1BytesPerSm = 0;      // always-miss L1
  params.memory.l2BytesTotal = 1024;   // nearly useless L2
  params.memory.tlbEntries = 1;
  const symbolic::Bindings bindings{{"n", 128}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result =
      gpusim::GpuSimulator(params).simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.totalSeconds));
  EXPECT_GT(result.totalSeconds, 0.0);
  EXPECT_LE(result.l1HitRate, 1e-9);  // the dead L1 never hits
}

TEST(Robustness, GpuSimulatorMinimalSamplingBudget) {
  gpusim::GpuSimParams params = gpusim::GpuSimParams::teslaV100();
  params.sampling.warpsPerWave = 1;
  params.sampling.repsPerThread = 1;
  params.sampling.waves = 1;
  params.sampling.maxEventsPerPoint = 8;  // truncate almost immediately
  const symbolic::Bindings bindings{{"n", 512}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result =
      gpusim::GpuSimulator(params).simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.kernelSeconds));
  EXPECT_GT(result.totalSeconds, 0.0);
}

TEST(Robustness, GpuSimulatorRejectsZeroBudgets) {
  gpusim::GpuSimParams params = gpusim::GpuSimParams::teslaV100();
  params.sampling.waves = 0;
  EXPECT_THROW(gpusim::GpuSimulator{params}, support::PreconditionError);
}

TEST(Robustness, CpuSimulatorOneCoreNoCaches) {
  cpusim::CpuSimParams params = cpusim::CpuSimParams::power9();
  params.cores = 1;
  params.smtWays = 1;
  params.cache.l1Bytes = 0;
  params.cache.l2Bytes = 0;
  params.cache.l3BytesPerCore = 0;
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result = cpusim::CpuSimulator(params, 64)
                          .simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.seconds));
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_LE(result.l1HitRate, 1e-9);
  EXPECT_NE(result.bound, cpusim::CpuBound::Compute);  // all-miss => memory-bound
}

TEST(Robustness, CpuSimulatorThreadsBeyondHardware) {
  // 10000 nominal threads on a 20x8 machine must clamp, not explode.
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const auto result = cpusim::CpuSimulator(cpusim::CpuSimParams::power9(), 10000)
                          .simulate(smallKernel(), bindings, store);
  EXPECT_TRUE(std::isfinite(result.seconds));
  EXPECT_GT(result.seconds, 0.0);
}

TEST(Robustness, SingleIterationRegionEverywhere) {
  // Degenerate 3x3 problem exercises every clamp (partial warps, single
  // block, single chunk).
  const symbolic::Bindings bindings{{"n", 3}};
  ArrayStore storeA = allocateArrays(smallKernel(), bindings);
  ArrayStore storeB = allocateArrays(smallKernel(), bindings);
  const auto gpu = gpusim::GpuSimulator(gpusim::GpuSimParams::teslaV100())
                       .simulate(smallKernel(), bindings, storeA);
  const auto cpu = cpusim::CpuSimulator(cpusim::CpuSimParams::power9(), 160)
                       .simulate(smallKernel(), bindings, storeB);
  EXPECT_GT(gpu.totalSeconds, 0.0);
  EXPECT_GT(cpu.seconds, 0.0);
  EXPECT_EQ(gpu.blocks, 1);
}

// --- Launch-pipeline fault scenarios ----------------------------------------

using support::FaultKind;
using support::FaultSpec;
using support::faultInjector;
using support::faultpoints::kGpuLaunch;
using support::faultpoints::kSelectorDecide;

/// Builds a runtime over `smallKernel` with tight fault-tolerance knobs so
/// scenarios stay short. `registerPad` false leaves the PAD empty (the
/// malformed-database scenario).
runtime::TargetRuntime makeFaultRuntime(runtime::RuntimeOptions options,
                                        bool registerPad = true) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{smallKernel()};
  pad::AttributeDatabase db;
  if (registerPad) db = compiler::compileAll(regions, models);
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  runtime::TargetRuntime rt(std::move(db), options);
  rt.registerRegion(smallKernel());
  return rt;
}

class LaunchFaults : public ::testing::Test {
 protected:
  void TearDown() override { faultInjector().disarmAll(); }

  runtime::RuntimeOptions tightOptions() const {
    runtime::RuntimeOptions options;
    options.retry.maxAttempts = 3;
    options.health.quarantineThreshold = 2;
    options.health.quarantineLaunches = 3;
    return options;
  }
};

TEST_F(LaunchFaults, TransientThenRecoverStaysOnGpu) {
  runtime::TargetRuntime rt = makeFaultRuntime(tightOptions());
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  // Exactly two transient failures, then the device behaves again.
  faultInjector().arm(kGpuLaunch,
                      {.kind = FaultKind::TransientLaunch, .maxFires = 2});
  const runtime::LaunchRecord record =
      rt.launch("probe", bindings, store, runtime::Policy::AlwaysGpu);
  EXPECT_EQ(record.chosen, runtime::Device::Gpu);
  EXPECT_EQ(record.attempts, 3);
  EXPECT_EQ(record.fallbackReason, runtime::FallbackReason::None);
  EXPECT_GT(record.backoffSeconds, 0.0);
  EXPECT_GT(record.actualSeconds, 0.0);
  EXPECT_FALSE(rt.gpuHealth().quarantined());
}

TEST_F(LaunchFaults, FatalThenFallbackRunsOnCpu) {
  runtime::TargetRuntime rt = makeFaultRuntime(tightOptions());
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  faultInjector().arm(kGpuLaunch,
                      {.kind = FaultKind::DeviceMemory, .maxFires = 1});
  const runtime::LaunchRecord record =
      rt.launch("probe", bindings, store, runtime::Policy::AlwaysGpu);
  EXPECT_EQ(record.preferred, runtime::Device::Gpu);
  EXPECT_EQ(record.chosen, runtime::Device::Cpu);
  EXPECT_TRUE(record.cpuMeasured);
  EXPECT_FALSE(record.gpuMeasured);
  EXPECT_EQ(record.fallbackReason, runtime::FallbackReason::FatalError);
  EXPECT_EQ(record.attempts, 2);  // 1 fatal GPU + 1 CPU
  EXPECT_GT(record.actualSeconds, 0.0);
  EXPECT_EQ(rt.gpuHealth().consecutiveFatals(), 1);
}

TEST_F(LaunchFaults, QuarantineThenProbeReopensTheGpu) {
  runtime::TargetRuntime rt = makeFaultRuntime(tightOptions());
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  faultInjector().arm(kGpuLaunch, {.kind = FaultKind::DeviceLost});

  // Two consecutive fatal launches open the breaker (threshold 2).
  for (int i = 0; i < 2; ++i) {
    const auto record =
        rt.launch("probe", bindings, store, runtime::Policy::AlwaysGpu);
    EXPECT_EQ(record.chosen, runtime::Device::Cpu);
    EXPECT_EQ(record.fallbackReason, runtime::FallbackReason::FatalError);
  }
  EXPECT_TRUE(rt.gpuHealth().quarantined());
  EXPECT_EQ(rt.gpuHealth().quarantinesOpened(), 1);

  // The next three launches are refused GPU access without touching it.
  const auto gpuFiresBefore = faultInjector().stats(kGpuLaunch).fires;
  for (int i = 0; i < 3; ++i) {
    const auto record =
        rt.launch("probe", bindings, store, runtime::Policy::AlwaysGpu);
    EXPECT_EQ(record.chosen, runtime::Device::Cpu);
    EXPECT_TRUE(record.gpuQuarantined);
    EXPECT_EQ(record.fallbackReason, runtime::FallbackReason::Quarantined);
    EXPECT_EQ(record.attempts, 1);  // straight to the CPU, no GPU attempt
  }
  EXPECT_EQ(faultInjector().stats(kGpuLaunch).fires, gpuFiresBefore);

  // Quarantine has drained; the device recovered; the probe succeeds.
  faultInjector().disarm(kGpuLaunch);
  const auto probe =
      rt.launch("probe", bindings, store, runtime::Policy::AlwaysGpu);
  EXPECT_FALSE(probe.gpuQuarantined);
  EXPECT_EQ(probe.chosen, runtime::Device::Gpu);
  EXPECT_EQ(probe.fallbackReason, runtime::FallbackReason::None);
  EXPECT_FALSE(rt.gpuHealth().quarantined());
}

TEST_F(LaunchFaults, MissingPadEntryDegradesModelGuidedToCpu) {
  runtime::TargetRuntime rt =
      makeFaultRuntime(tightOptions(), /*registerPad=*/false);
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  const runtime::LaunchRecord record =
      rt.launch("probe", bindings, store, runtime::Policy::ModelGuided);
  EXPECT_FALSE(record.decision.valid);
  EXPECT_EQ(record.chosen, runtime::Device::Cpu);
  EXPECT_EQ(record.fallbackReason, runtime::FallbackReason::InvalidDecision);
  EXPECT_NE(record.fallbackDetail.find("probe"), std::string::npos);
  EXPECT_GT(record.actualSeconds, 0.0);
  EXPECT_TRUE(std::isnan(record.decision.predictedSpeedup()));
}

TEST_F(LaunchFaults, ModelEvaluationFaultDegradesModelGuidedToCpu) {
  runtime::TargetRuntime rt = makeFaultRuntime(tightOptions());
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(smallKernel(), bindings);
  faultInjector().arm(kSelectorDecide, {.kind = FaultKind::DeviceLost});
  const runtime::LaunchRecord record =
      rt.launch("probe", bindings, store, runtime::Policy::ModelGuided);
  EXPECT_FALSE(record.decision.valid);
  EXPECT_EQ(record.chosen, runtime::Device::Cpu);
  EXPECT_EQ(record.fallbackReason, runtime::FallbackReason::InvalidDecision);
  EXPECT_GT(record.actualSeconds, 0.0);
}

TEST_F(LaunchFaults, ThirtyPercentTransientSuiteCompletesEveryLaunch) {
  // The acceptance scenario: ModelGuided across the whole Polybench suite
  // with a 30% transient GPU failure rate — zero uncaught exceptions and
  // every launch resolving to a measured execution.
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const auto& kernel : benchmark.kernels()) regions.push_back(kernel);
  }
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  runtime::RuntimeOptions suiteOptions;
  suiteOptions.selector.cpuThreads = 160;
  suiteOptions.cpuSim = cpusim::CpuSimParams::power9();
  suiteOptions.gpuSim = gpusim::GpuSimParams::teslaV100();
  runtime::TargetRuntime rt(std::move(db), suiteOptions);
  for (ir::TargetRegion& region : regions) rt.registerRegion(std::move(region));

  faultInjector().arm(kGpuLaunch, {.kind = FaultKind::TransientLaunch,
                                   .probability = 0.3,
                                   .seed = 2019});
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    const auto bindings = benchmark.bindings(48);
    ir::ArrayStore store = benchmark.allocate(bindings);
    polybench::initializeInputs(benchmark, bindings, store);
    for (const auto& kernel : benchmark.kernels()) {
      const auto record = rt.launch(kernel.name, bindings, store,
                                    runtime::Policy::ModelGuided);
      EXPECT_GT(record.actualSeconds, 0.0) << kernel.name;
    }
  }
  // The launch log shows the faults were really exercised: every launch
  // resolved, and the injected failures surface as retries/fallbacks.
  EXPECT_EQ(rt.log().size(), 24u);
  int retried = 0, fellBack = 0;
  for (const auto& record : rt.log()) {
    EXPECT_TRUE(record.cpuMeasured || record.gpuMeasured);
    if (record.attempts > 1) ++retried;
    if (record.fallbackReason != runtime::FallbackReason::None) ++fellBack;
  }
  EXPECT_GT(faultInjector().stats(kGpuLaunch).fires, 0u);
  EXPECT_GT(retried + fellBack, 0);
}

TEST_F(LaunchFaults, DisarmedRunMatchesNeverArmedRun) {
  // Arm-then-disarm must leave no residue: decisions and measured times are
  // bit-identical to a runtime that never saw a fault.
  const symbolic::Bindings bindings{{"n", 96}};

  runtime::TargetRuntime faulted = makeFaultRuntime(tightOptions());
  faultInjector().arm(kGpuLaunch,
                      {.kind = FaultKind::TransientLaunch, .maxFires = 1});
  ArrayStore warmup = allocateArrays(smallKernel(), bindings);
  (void)faulted.launch("probe", bindings, warmup, runtime::Policy::AlwaysGpu);
  faultInjector().disarmAll();
  ArrayStore storeA = allocateArrays(smallKernel(), bindings);
  const auto after =
      faulted.launch("probe", bindings, storeA, runtime::Policy::ModelGuided);

  runtime::TargetRuntime pristine = makeFaultRuntime(tightOptions());
  ArrayStore storeB = allocateArrays(smallKernel(), bindings);
  const auto clean =
      pristine.launch("probe", bindings, storeB, runtime::Policy::ModelGuided);

  EXPECT_EQ(after.chosen, clean.chosen);
  EXPECT_TRUE(after.decision.valid);
  EXPECT_EQ(after.decision.cpu.seconds, clean.decision.cpu.seconds);
  EXPECT_EQ(after.decision.gpu.totalSeconds, clean.decision.gpu.totalSeconds);
  EXPECT_EQ(after.actualSeconds, clean.actualSeconds);
  EXPECT_EQ(after.attempts, 1);
  EXPECT_DOUBLE_EQ(after.backoffSeconds, 0.0);
}

TEST(Robustness, HugeTripCountsStayFinite) {
  // 2^20 x 2^10 iterations; no storage explosion because gpusim/cpusim
  // sample — but the store for this region would be enormous, so use a
  // vector kernel with modest footprint and huge trip count instead.
  const TargetRegion region =
      RegionBuilder("strided_probe")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("y", {sym("i")},
                                 read("x", {sym("i")}) * num(2.0)))
          .build();
  const symbolic::Bindings bindings{{"n", 1 << 24}};
  ArrayStore store = allocateArrays(region, bindings);
  const auto gpu = gpusim::GpuSimulator(gpusim::GpuSimParams::teslaV100())
                       .simulate(region, bindings, store);
  EXPECT_TRUE(std::isfinite(gpu.totalSeconds));
  EXPECT_GT(gpu.ompRep, 1.0);  // grid cap exceeded
}

}  // namespace
}  // namespace osel

#include "gpumodel/gpu_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/check.h"

namespace osel::gpumodel {
namespace {

using support::PreconditionError;

GpuWorkload denseWorkload() {
  GpuWorkload w;
  w.compInstsPerThread = 200.0;
  w.coalMemInstsPerThread = 20.0;
  w.uncoalMemInstsPerThread = 0.0;
  w.parallelTripCount = 1100 * 1100;
  w.bytesToDevice = 3 * 1100 * 1100 * 8;
  w.bytesFromDevice = 1100 * 1100 * 8;
  return w;
}

TEST(GpuDeviceParams, V100MatchesTableIII) {
  const GpuDeviceParams d = GpuDeviceParams::teslaV100();
  EXPECT_EQ(d.sms, 80);
  EXPECT_DOUBLE_EQ(d.memBandwidthBytesPerSec, 900.0e9);
  EXPECT_EQ(d.maxWarpsPerSm, 64);
  EXPECT_EQ(d.maxThreadsPerSm, 2048);
  EXPECT_DOUBLE_EQ(d.coreClockHz, 1.53e9);
}

TEST(GpuDeviceParams, TableIIIFieldInventoryComplete) {
  // Every Table III row maps to a populated field.
  const GpuDeviceParams d = GpuDeviceParams::teslaV100();
  EXPECT_GT(d.sms, 0);                       // #SMs
  EXPECT_GT(d.coresPerSm, 0);                // Processor Cores
  EXPECT_GT(d.coreClockHz, 0.0);             // Processor Clock
  EXPECT_GT(d.memBandwidthBytesPerSec, 0.0); // Memory Bandwidth
  EXPECT_GT(d.transferBandwidthBytesPerSec, 0.0);  // NVLink Transfer Rate
  EXPECT_GT(d.maxWarpsPerSm, 0);             // Max Warps/SM
  EXPECT_GT(d.maxThreadsPerSm, 0);           // Max Threads/SM
  EXPECT_GT(d.issueCyclesPerInst, 0.0);      // Issue Rate
  EXPECT_GT(d.memLatencyCycles, 0.0);        // Memory Access Latency
  EXPECT_GT(d.fp64IssueMultiplier, 0.0);     // Float Cmpu Inst. Latency ctx
  EXPECT_GT(d.warpSize, 0);
}

TEST(GpuCostModel, Fp64WorkloadsCostMoreThanFp32) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload fp32 = denseWorkload();
  fp32.fp64Fraction = 0.0;
  GpuWorkload fp64 = denseWorkload();
  fp64.fp64Fraction = 1.0;
  EXPECT_GT(model.predict(fp64).kernelCycles, model.predict(fp32).kernelCycles);
}

TEST(GpuDeviceParams, GenerationalContrasts) {
  const GpuDeviceParams v100 = GpuDeviceParams::teslaV100();
  const GpuDeviceParams k80 = GpuDeviceParams::teslaK80();
  EXPECT_GT(v100.memBandwidthBytesPerSec, 3.0 * k80.memBandwidthBytesPerSec);
  EXPECT_GT(v100.transferBandwidthBytesPerSec,
            5.0 * k80.transferBandwidthBytesPerSec);  // NVLink2 vs PCIe3
  EXPECT_LT(v100.memLatencyCycles, k80.memLatencyCycles);
  EXPECT_GT(v100.sms, k80.sms);
}

TEST(GpuDeviceParams, P100SitsBetweenGenerations) {
  const GpuDeviceParams k80 = GpuDeviceParams::teslaK80();
  const GpuDeviceParams p100 = GpuDeviceParams::teslaP100();
  const GpuDeviceParams v100 = GpuDeviceParams::teslaV100();
  EXPECT_GT(p100.memBandwidthBytesPerSec, k80.memBandwidthBytesPerSec);
  EXPECT_LT(p100.memBandwidthBytesPerSec, v100.memBandwidthBytesPerSec);
  EXPECT_GT(p100.transferBandwidthBytesPerSec, k80.transferBandwidthBytesPerSec);
  EXPECT_LT(p100.transferBandwidthBytesPerSec, v100.transferBandwidthBytesPerSec);
  EXPECT_LT(p100.memLatencyCycles, k80.memLatencyCycles);
  EXPECT_GT(p100.memLatencyCycles, v100.memLatencyCycles);
}

TEST(GpuCostModel, GenerationsOrderPredictedTimes) {
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 2400L * 2400;
  w.bytesToDevice = 2 * 2400L * 2400 * 4;
  w.bytesFromDevice = 2400L * 2400 * 4;
  const double k80 =
      GpuCostModel(GpuDeviceParams::teslaK80()).predict(w).totalSeconds;
  const double p100 =
      GpuCostModel(GpuDeviceParams::teslaP100()).predict(w).totalSeconds;
  const double v100 =
      GpuCostModel(GpuDeviceParams::teslaV100()).predict(w).totalSeconds;
  EXPECT_LT(v100, p100);
  EXPECT_LT(p100, k80);
}

TEST(GpuCostModel, GridGeometryCoversSmallIterationSpace) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 1000;
  const GpuPrediction p = model.predict(w);
  EXPECT_EQ(p.threadsPerBlock, 128);
  EXPECT_EQ(p.blocks, 8);  // ceil(1000/128)
  EXPECT_DOUBLE_EQ(p.ompRep, 1.0);
}

TEST(GpuCostModel, OmpRepKicksInBeyondMaxGrid) {
  GpuDeviceParams device = GpuDeviceParams::teslaV100();
  device.maxGridBlocks = 1;  // force the paper's example scenario
  device.defaultThreadsPerBlock = 128;
  const GpuCostModel model(device);
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 1024;
  const GpuPrediction p = model.predict(w);
  // Paper §IV.B: 1024 iterations, 1 block of 128 threads -> 8 reps each.
  EXPECT_EQ(p.blocks, 1);
  EXPECT_DOUBLE_EQ(p.ompRep, 8.0);
}

TEST(GpuCostModel, OmpRepScalesKernelCyclesLinearly) {
  GpuDeviceParams device = GpuDeviceParams::teslaV100();
  device.maxGridBlocks = 80;
  const GpuCostModel model(device);
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 80L * 128;  // exactly one grid
  const double base = model.predict(w).kernelCycles;
  w.parallelTripCount *= 4;  // same grid, OMP_Rep = 4
  const GpuPrediction p = model.predict(w);
  EXPECT_DOUBLE_EQ(p.ompRep, 4.0);
  EXPECT_NEAR(p.kernelCycles / base, 4.0, 1e-9);
}

TEST(GpuCostModel, MwpRespectsAllThreeCeilings) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  const GpuPrediction p = model.predict(denseWorkload());
  EXPECT_LE(p.mwp, p.mwpWithoutBw + 1e-9);
  EXPECT_LE(p.mwp, p.mwpPeakBw + 1e-9);
  EXPECT_LE(p.mwp, p.activeWarpsPerSm + 1e-9);
  EXPECT_GE(p.mwp, 1.0);
}

TEST(GpuCostModel, CwpBoundedByActiveWarps) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.compInstsPerThread = 1.0;  // extreme memory-boundedness
  w.uncoalMemInstsPerThread = 50.0;
  const GpuPrediction p = model.predict(w);
  EXPECT_LE(p.cwp, p.activeWarpsPerSm + 1e-9);
  EXPECT_GE(p.cwp, 1.0);
}

TEST(GpuCostModel, UncoalescedAccessesCostMore) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload coalesced = denseWorkload();
  GpuWorkload uncoalesced = denseWorkload();
  uncoalesced.uncoalMemInstsPerThread = coalesced.coalMemInstsPerThread;
  uncoalesced.coalMemInstsPerThread = 0.0;
  EXPECT_GT(model.predict(uncoalesced).kernelSeconds,
            model.predict(coalesced).kernelSeconds * 1.5);
}

TEST(GpuCostModel, ComputeBoundCaseForArithmeticHeavyKernels) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.compInstsPerThread = 100000.0;
  w.coalMemInstsPerThread = 1.0;
  w.uncoalMemInstsPerThread = 0.0;
  const GpuPrediction p = model.predict(w);
  EXPECT_EQ(p.execCase, ExecCase::ComputeBound);
}

TEST(GpuCostModel, MemoryBoundCaseForStreamingKernels) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.compInstsPerThread = 2.0;
  w.coalMemInstsPerThread = 3.0;
  w.uncoalMemInstsPerThread = 3.0;
  const GpuPrediction p = model.predict(w);
  EXPECT_EQ(p.execCase, ExecCase::MemoryBound);
}

TEST(GpuCostModel, PureComputeKernelHandledWithoutMemInsts) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.coalMemInstsPerThread = 0.0;
  w.uncoalMemInstsPerThread = 0.0;
  const GpuPrediction p = model.predict(w);
  EXPECT_EQ(p.execCase, ExecCase::ComputeBound);
  EXPECT_GT(p.kernelCycles, 0.0);
  EXPECT_TRUE(std::isfinite(p.kernelCycles));
}

TEST(GpuCostModel, TransferTimeScalesWithBytesAndLink) {
  const GpuCostModel v100(GpuDeviceParams::teslaV100());
  const GpuCostModel k80(GpuCostModel(GpuDeviceParams::teslaK80()).device());
  GpuWorkload w = denseWorkload();
  const double v100Transfer = v100.predict(w).transferSeconds;
  const double k80Transfer = k80.predict(w).transferSeconds;
  // PCIe3 is ~6x slower than NVLink2 for the same bytes.
  EXPECT_GT(k80Transfer, 4.0 * v100Transfer);
  GpuWorkload doubled = w;
  doubled.bytesToDevice *= 2;
  doubled.bytesFromDevice *= 2;
  EXPECT_GT(v100.predict(doubled).transferSeconds, v100Transfer * 1.5);
}

TEST(GpuCostModel, MemoryBoundKernelFasterOnV100ThanK80) {
  // The Table I 3DCONV story: low arithmetic intensity -> wins with HBM2.
  GpuWorkload w = denseWorkload();
  w.compInstsPerThread = 30.0;
  w.coalMemInstsPerThread = 30.0;
  w.parallelTripCount = 9600L * 9600;
  w.bytesToDevice = 2 * 9600L * 9600 * 8;
  w.bytesFromDevice = 9600L * 9600 * 8;
  const double v100 =
      GpuCostModel(GpuDeviceParams::teslaV100()).predict(w).totalSeconds;
  const double k80 =
      GpuCostModel(GpuDeviceParams::teslaK80()).predict(w).totalSeconds;
  EXPECT_GT(k80, 2.5 * v100);
}

TEST(GpuCostModel, FullGridUsesAllSms) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  const GpuPrediction p = model.predict(denseWorkload());
  EXPECT_EQ(p.activeSms, 80);
  EXPECT_GT(p.activeWarpsPerSm, 1.0);
}

TEST(GpuCostModel, TinyGridLeavesSmsIdle) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 256;  // 2 blocks
  const GpuPrediction p = model.predict(w);
  EXPECT_EQ(p.activeSms, 2);
}

TEST(GpuCostModel, RepCountsBlockWaves) {
  GpuDeviceParams device = GpuDeviceParams::teslaV100();
  device.maxGridBlocks = 100000;  // no grid cap: many waves instead
  const GpuCostModel model(device);
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 9600L * 9600;  // 720000 blocks
  const GpuPrediction p = model.predict(w);
  EXPECT_DOUBLE_EQ(p.ompRep, 8.0);  // capped at 100000 blocks
  EXPECT_GT(p.rep, 1.0);
}

TEST(GpuCostModel, RejectsInvalidWorkloads) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = denseWorkload();
  w.parallelTripCount = 0;
  EXPECT_THROW((void)model.predict(w), PreconditionError);
  w = denseWorkload();
  w.compInstsPerThread = -1.0;
  EXPECT_THROW((void)model.predict(w), PreconditionError);
  w = denseWorkload();
  w.bytesToDevice = -5;
  EXPECT_THROW((void)model.predict(w), PreconditionError);
}

TEST(GpuCostModel, PredictionToStringShowsMwpCwp) {
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  const std::string text = model.predict(denseWorkload()).toString();
  EXPECT_NE(text.find("MWP"), std::string::npos);
  EXPECT_NE(text.find("CWP"), std::string::npos);
  EXPECT_NE(text.find("OMP_Rep"), std::string::npos);
}

}  // namespace
}  // namespace osel::gpumodel

// Property tests: Hong-Kim model invariants over random workloads and both
// device generations.
#include <gtest/gtest.h>

#include <cmath>

#include "gpumodel/gpu_model.h"
#include "support/rng.h"

namespace osel::gpumodel {
namespace {

GpuWorkload randomWorkload(support::SplitMix64& rng) {
  GpuWorkload w;
  w.compInstsPerThread = 1.0 + static_cast<double>(rng.nextBelow(5000));
  w.coalMemInstsPerThread = static_cast<double>(rng.nextBelow(200));
  w.uncoalMemInstsPerThread = static_cast<double>(rng.nextBelow(200));
  w.fp64Fraction = rng.nextDouble();
  w.parallelTripCount = 1 + static_cast<std::int64_t>(rng.nextBelow(100000000));
  w.bytesToDevice = static_cast<std::int64_t>(rng.nextBelow(1u << 30));
  w.bytesFromDevice = static_cast<std::int64_t>(rng.nextBelow(1u << 30));
  return w;
}

class GpuModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GpuModelProperty, PredictionsAreFinitePositive) {
  support::SplitMix64 rng(GetParam());
  for (const auto& device :
       {GpuDeviceParams::teslaV100(), GpuDeviceParams::teslaK80()}) {
    const GpuCostModel model(device);
    const GpuWorkload w = randomWorkload(rng);
    const GpuPrediction p = model.predict(w);
    EXPECT_TRUE(std::isfinite(p.totalSeconds)) << device.name;
    EXPECT_GT(p.totalSeconds, 0.0) << device.name;
    EXPECT_GE(p.kernelCycles, 0.0);
    EXPECT_GE(p.transferSeconds, 0.0);
  }
}

TEST_P(GpuModelProperty, MwpCwpWithinBounds) {
  support::SplitMix64 rng(GetParam() ^ 0xF00D);
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  const GpuWorkload w = randomWorkload(rng);
  const GpuPrediction p = model.predict(w);
  EXPECT_GE(p.mwp, 1.0);
  EXPECT_GE(p.cwp, 1.0);
  EXPECT_LE(p.mwp, p.activeWarpsPerSm + 1e-9);
  EXPECT_LE(p.cwp, p.activeWarpsPerSm + 1e-9);
}

TEST_P(GpuModelProperty, MoreWorkNeverMuchFaster) {
  // The three-case Hong-Kim formula is discontinuous at the MWP/CWP case
  // boundaries (a property of the published model, not a bug), so adding
  // work can shift the case and *slightly* lower the estimate. Bound the
  // violation instead of forbidding it.
  support::SplitMix64 rng(GetParam() ^ 0xCAFE);
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = randomWorkload(rng);
  const double base = model.predict(w).kernelCycles;
  w.compInstsPerThread *= 2.0;
  const double moreCompute = model.predict(w).kernelCycles;
  EXPECT_GE(moreCompute, 0.85 * base);
  w.uncoalMemInstsPerThread += 10.0;
  const double moreMemory = model.predict(w).kernelCycles;
  EXPECT_GE(moreMemory, 0.85 * moreCompute);
}

TEST_P(GpuModelProperty, TripCountMonotone) {
  support::SplitMix64 rng(GetParam() ^ 0xB00B5);
  const GpuCostModel model(GpuDeviceParams::teslaK80());
  GpuWorkload w = randomWorkload(rng);
  w.parallelTripCount = 1 + static_cast<std::int64_t>(rng.nextBelow(1000000));
  const double small = model.predict(w).kernelCycles;
  w.parallelTripCount *= 16;
  const double large = model.predict(w).kernelCycles;
  EXPECT_GE(large, small - 1e-6);
}

TEST_P(GpuModelProperty, HigherBandwidthNeverHurts) {
  support::SplitMix64 rng(GetParam() ^ 0x5EED);
  GpuDeviceParams slow = GpuDeviceParams::teslaV100();
  GpuDeviceParams fast = slow;
  fast.memBandwidthBytesPerSec *= 4.0;
  const GpuWorkload w = randomWorkload(rng);
  const double slowCycles = GpuCostModel(slow).predict(w).kernelCycles;
  const double fastCycles = GpuCostModel(fast).predict(w).kernelCycles;
  EXPECT_LE(fastCycles, slowCycles + 1e-6);
}

TEST_P(GpuModelProperty, CoalescingNeverHurts) {
  // Moving one instruction from the uncoalesced to the coalesced bucket
  // must never increase predicted cycles.
  support::SplitMix64 rng(GetParam() ^ 0xDEAD);
  const GpuCostModel model(GpuDeviceParams::teslaV100());
  GpuWorkload w = randomWorkload(rng);
  if (w.uncoalMemInstsPerThread < 1.0) w.uncoalMemInstsPerThread = 1.0;
  const double before = model.predict(w).kernelCycles;
  w.uncoalMemInstsPerThread -= 1.0;
  w.coalMemInstsPerThread += 1.0;
  const double after = model.predict(w).kernelCycles;
  EXPECT_LE(after, before + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpuModelProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace osel::gpumodel

#include "compiler/compiler.h"

#include <gtest/gtest.h>

#include <array>

#include "ir/builder.h"

namespace osel::compiler {
namespace {

using namespace osel::ir;

TargetRegion gemmKernel() {
  return RegionBuilder("gemm")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F32, {sym("n"), sym("n")}, Transfer::ToFrom)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}) *
                                                  read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

std::array<mca::MachineModel, 2> hostModels() {
  return {mca::MachineModel::power9(), mca::MachineModel::power8()};
}

TEST(Compiler, LoadoutUses128TripAbstraction) {
  const auto models = hostModels();
  const pad::RegionAttributes attr = analyzeRegion(gemmKernel(), models);
  // 2 loads x 128 trips; the loadout must not depend on any runtime n.
  EXPECT_DOUBLE_EQ(attr.loadInstsPerIter, 256.0);
  EXPECT_DOUBLE_EQ(attr.storeInstsPerIter, 1.0);
  EXPECT_DOUBLE_EQ(attr.compInstsPerIter, 256.0);
  EXPECT_DOUBLE_EQ(attr.specialInstsPerIter, 0.0);
}

TEST(Compiler, CustomTripAssumption) {
  const auto models = hostModels();
  CompileOptions options;
  options.assumedLoopTrips = 10.0;
  const pad::RegionAttributes attr = analyzeRegion(gemmKernel(), models, options);
  EXPECT_DOUBLE_EQ(attr.loadInstsPerIter, 20.0);
}

TEST(Compiler, McaCyclesPerHostModel) {
  const auto models = hostModels();
  const pad::RegionAttributes attr = analyzeRegion(gemmKernel(), models);
  ASSERT_EQ(attr.machineCyclesPerIter.size(), 2u);
  EXPECT_GT(attr.machineCyclesPerIter.at("POWER9"), 0.0);
  EXPECT_GT(attr.machineCyclesPerIter.at("POWER8"), 0.0);
}

TEST(Compiler, McaCompositionScalesWithTrips) {
  CompileOptions few;
  few.assumedLoopTrips = 16.0;
  CompileOptions many;
  many.assumedLoopTrips = 160.0;
  const double fewCycles =
      machineCyclesPerIteration(gemmKernel(), mca::MachineModel::power9(), few);
  const double manyCycles =
      machineCyclesPerIteration(gemmKernel(), mca::MachineModel::power9(), many);
  EXPECT_NEAR(manyCycles / fewCycles, 10.0, 1.0);
}

TEST(Compiler, StrideRecordsStoredSymbolically) {
  const auto models = hostModels();
  const pad::RegionAttributes attr = analyzeRegion(gemmKernel(), models);
  ASSERT_EQ(attr.strides.size(), 3u);
  // A[i][k]: stride 0 in thread var j (uniform); B[k][j]: stride 1;
  // C store: stride 1.
  EXPECT_EQ(attr.strides[0].stride, symbolic::Expr{});
  EXPECT_EQ(attr.strides[1].stride, symbolic::Expr::constant(1));
  EXPECT_EQ(attr.strides[2].stride, symbolic::Expr::constant(1));
  EXPECT_TRUE(attr.strides[2].isStore);
  // Loads in the k-loop run 128x per parallel iteration; the store once.
  EXPECT_DOUBLE_EQ(attr.strides[0].countPerIteration, 128.0);
  EXPECT_DOUBLE_EQ(attr.strides[2].countPerIteration, 1.0);
}

TEST(Compiler, SymbolicTripAndTransferExpressions) {
  const auto models = hostModels();
  const pad::RegionAttributes attr = analyzeRegion(gemmKernel(), models);
  const symbolic::Bindings bindings{{"n", 1100}};
  EXPECT_EQ(attr.flatTripCount.evaluate(bindings), 1100 * 1100);
  // To: A + B + C (tofrom) = 3 arrays x n^2 x 4B.
  EXPECT_EQ(attr.bytesToDevice.evaluate(bindings), 3LL * 1100 * 1100 * 4);
  EXPECT_EQ(attr.bytesFromDevice.evaluate(bindings), 1LL * 1100 * 1100 * 4);
}

TEST(Compiler, Fp64FractionFromElementTypes) {
  const auto models = hostModels();
  const TargetRegion mixed =
      RegionBuilder("mixed")
          .param("n")
          .array("a", ScalarType::F64, {sym("n")}, Transfer::To)
          .array("b", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("b", {sym("i")}, read("a", {sym("i")})))
          .build();
  const pad::RegionAttributes attr = analyzeRegion(mixed, models);
  EXPECT_DOUBLE_EQ(attr.fp64Fraction, 0.5);
}

TEST(Compiler, BranchHalvesGuardedWork) {
  const auto models = hostModels();
  const TargetRegion guarded =
      RegionBuilder("guarded")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::ToFrom)
          .parallelFor("i", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("x", {sym("i")}), CmpOp::LE, num(0.1)},
              {Stmt::store("x", {sym("i")}, num(1.0))}))
          .build();
  const pad::RegionAttributes attr = analyzeRegion(guarded, models);
  // Condition load always; guarded store half the time.
  EXPECT_DOUBLE_EQ(attr.loadInstsPerIter, 1.0);
  EXPECT_DOUBLE_EQ(attr.storeInstsPerIter, 0.5);
}

TEST(Compiler, BytesTouchedAccountsElementSizes) {
  const auto models = hostModels();
  const pad::RegionAttributes attr = analyzeRegion(gemmKernel(), models);
  // (256 loads + 1 store + 1 C-read? no C read) -> 257 accesses x 4B.
  EXPECT_DOUBLE_EQ(attr.bytesTouchedPerIteration, 257.0 * 4.0);
}

TEST(Compiler, CompileAllBuildsDatabase) {
  const auto models = hostModels();
  const std::array<TargetRegion, 2> regions{gemmKernel(),
                                            RegionBuilder("copy")
                                                .param("n")
                                                .array("x", ScalarType::F32,
                                                       {sym("n")}, Transfer::To)
                                                .array("y", ScalarType::F32,
                                                       {sym("n")}, Transfer::From)
                                                .parallelFor("i", sym("n"))
                                                .statement(Stmt::store(
                                                    "y", {sym("i")},
                                                    read("x", {sym("i")})))
                                                .build()};
  const pad::AttributeDatabase db = compileAll(regions, models);
  EXPECT_EQ(db.size(), 2u);
  EXPECT_NE(db.find("gemm"), nullptr);
  EXPECT_NE(db.find("copy"), nullptr);
}

TEST(Compiler, AttributesSurvivePadRoundTrip) {
  const auto models = hostModels();
  pad::AttributeDatabase db;
  db.insert(analyzeRegion(gemmKernel(), models));
  const pad::AttributeDatabase parsed =
      pad::AttributeDatabase::deserialize(db.serialize());
  EXPECT_DOUBLE_EQ(parsed.at("gemm").machineCyclesPerIter.at("POWER9"),
                   db.at("gemm").machineCyclesPerIter.at("POWER9"));
  EXPECT_EQ(parsed.at("gemm").strides.size(), 3u);
}

}  // namespace
}  // namespace osel::compiler

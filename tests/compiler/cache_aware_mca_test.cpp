#include "compiler/cache_aware_mca.h"

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "ir/builder.h"

namespace osel::compiler {
namespace {

using namespace osel::ir;

/// Row-streaming reduction: unit-stride loads within a small row.
TargetRegion rowKernel() {
  return RegionBuilder("rows")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}))}))
      .statement(Stmt::store("y", {sym("i")}, local("acc")))
      .build();
}

/// Column walk: every load opens a new line; footprint = n lines.
TargetRegion columnKernel() {
  return RegionBuilder("columns")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("k"), sym("i")}))}))
      .statement(Stmt::store("y", {sym("i")}, local("acc")))
      .build();
}

TEST(CacheAwareMca, UnitStrideStaysNearL1) {
  const EffectiveLoadLatency latency =
      estimateLoadLatency(rowKernel(), {{"n", 1000}}, CacheGeometry::power9());
  // 4 KB row walk fits L1; shared-line accesses keep the mix near the L1
  // figure.
  EXPECT_LT(latency.cycles, 8.0);
  EXPECT_GT(latency.l1Fraction, 0.9);
}

TEST(CacheAwareMca, ColumnWalkChargesDeeperLevels) {
  const CacheGeometry geometry = CacheGeometry::power9();
  // n = 1000: column walk touches 1000 x 128B = 128 KB -> L2 figure.
  const EffectiveLoadLatency medium =
      estimateLoadLatency(columnKernel(), {{"n", 1000}}, geometry);
  EXPECT_NEAR(medium.cycles, geometry.l2LoadCycles, 2.0);
  // n = 40000: 5.1 MB walk -> L3 figure.
  const EffectiveLoadLatency large =
      estimateLoadLatency(columnKernel(), {{"n", 40000}}, geometry);
  EXPECT_NEAR(large.cycles, geometry.l3LoadCycles, 5.0);
  EXPECT_GT(large.cycles, medium.cycles);
}

TEST(CacheAwareMca, FractionsSumToOne) {
  const EffectiveLoadLatency latency = estimateLoadLatency(
      columnKernel(), {{"n", 2000}}, CacheGeometry::power9());
  EXPECT_NEAR(latency.l1Fraction + latency.l2Fraction + latency.l3Fraction +
                  latency.dramFraction,
              1.0, 1e-9);
}

TEST(CacheAwareMca, RuntimeValueChangesTheEstimate) {
  // The hybrid point again: the same static kernel gets a different
  // effective latency once runtime values reveal the footprint.
  const CacheGeometry geometry = CacheGeometry::power9();
  const TargetRegion kernel = columnKernel();
  const double small = estimateLoadLatency(kernel, {{"n", 100}}, geometry).cycles;
  const double large =
      estimateLoadLatency(kernel, {{"n", 100000}}, geometry).cycles;
  EXPECT_LT(small, large);
}

TEST(CacheAwareMca, ModelGainsCacheSuffixAndAdjustedLoad) {
  const mca::MachineModel base = mca::MachineModel::power9();
  const mca::MachineModel aware = cacheAwareMachineModel(
      base, columnKernel(), {{"n", 40000}}, CacheGeometry::power9());
  EXPECT_EQ(aware.name, "POWER9+cache");
  EXPECT_GT(aware.opModel(mca::MOp::Load).latency,
            base.opModel(mca::MOp::Load).latency);
  // Everything else untouched.
  EXPECT_EQ(aware.opModel(mca::MOp::FAdd).latency,
            base.opModel(mca::MOp::FAdd).latency);
  EXPECT_EQ(aware.dispatchWidth, base.dispatchWidth);
}

TEST(CacheAwareMca, UnitStrideKernelKeepsBaseLoadLatency) {
  const mca::MachineModel base = mca::MachineModel::power9();
  const mca::MachineModel aware = cacheAwareMachineModel(
      base, rowKernel(), {{"n", 1000}}, CacheGeometry::power9());
  EXPECT_EQ(aware.opModel(mca::MOp::Load).latency,
            base.opModel(mca::MOp::Load).latency);
}

TEST(CacheAwareMca, RaisesMachineCyclesOnceWalksReachDram) {
  // The OoO window hides L2/L3-level load latencies behind the reduction
  // chain, so the composed Machine_cycles_per_iter only grows once the
  // footprint heuristic charges DRAM — which is also why the extension is
  // near-neutral at Polybench's sizes (see bench/ablation_mca).
  CompileOptions options;
  options.assumedLoopTrips = 4000.0;
  const TargetRegion kernel = columnKernel();
  const mca::MachineModel base = mca::MachineModel::power9();
  // Touched lines: 2e6 x 128 B = 256 MB >> L3 -> DRAM-level load latency.
  const mca::MachineModel aware = cacheAwareMachineModel(
      base, kernel, {{"n", 2000000}}, CacheGeometry::power9());
  const double baseCycles = machineCyclesPerIteration(kernel, base, options);
  const double awareCycles = machineCyclesPerIteration(kernel, aware, options);
  EXPECT_GT(awareCycles, 1.5 * baseCycles);

  // L2-level walk: hidden by the window, estimate unchanged-ish.
  const mca::MachineModel l2Aware = cacheAwareMachineModel(
      base, kernel, {{"n", 4000}}, CacheGeometry::power9());
  const double l2Cycles = machineCyclesPerIteration(kernel, l2Aware, options);
  EXPECT_LT(l2Cycles, 1.2 * baseCycles);
}

TEST(CacheAwareMca, LoopInvariantLoadIsL1) {
  // b[i] inside the k-loop is loop-invariant: stride 0 -> register/L1.
  const TargetRegion kernel =
      RegionBuilder("broadcast")
          .param("n")
          .array("b", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              {Stmt::assign("acc", local("acc") + read("b", {sym("i")}))}))
          .statement(Stmt::store("y", {sym("i")}, local("acc")))
          .build();
  const EffectiveLoadLatency latency = estimateLoadLatency(
      kernel, {{"n", 100000}}, CacheGeometry::power9());
  EXPECT_DOUBLE_EQ(latency.l1Fraction, 1.0);
}

}  // namespace
}  // namespace osel::compiler

#include "cpusim/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "support/check.h"

namespace osel::cpusim {
namespace {

TEST(ParallelFor, CoversExactRangeOnce) {
  std::vector<std::atomic<int>> touched(1000);
  parallelFor(0, 1000, 8, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      touched[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& count : touched) EXPECT_EQ(count.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallelFor(5, 5, 4, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleThreadRunsInline) {
  std::vector<int> order;
  parallelFor(0, 10, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) order.push_back(static_cast<int>(i));
  });
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelFor, MoreThreadsThanWork) {
  std::atomic<std::int64_t> sum{0};
  parallelFor(0, 3, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelFor, ParallelSumMatchesSequential) {
  std::vector<double> data(100000);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(data.size());
  parallelFor(0, static_cast<std::int64_t>(data.size()), 8,
              [&](std::int64_t lo, std::int64_t hi) {
                for (std::int64_t i = lo; i < hi; ++i)
                  out[static_cast<std::size_t>(i)] =
                      2.0 * data[static_cast<std::size_t>(i)];
              });
  for (std::size_t i = 0; i < data.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], 2.0 * data[i]);
}

TEST(ParallelFor, RejectsZeroThreads) {
  EXPECT_THROW(parallelFor(0, 1, 0, [](std::int64_t, std::int64_t) {}),
               support::PreconditionError);
}

}  // namespace
}  // namespace osel::cpusim

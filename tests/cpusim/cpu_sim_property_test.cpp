// Property tests for the ground-truth CPU simulator: determinism, scaling
// in problem size and threads, and platform-ordering invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "cpusim/cpu_simulator.h"
#include "ir/builder.h"
#include "support/rng.h"

namespace osel::cpusim {
namespace {

using namespace osel::ir;

/// Random reduction kernel: the A access pattern varies with the seed
/// (row walk, column walk, or broadcast).
TargetRegion randomKernel(std::uint64_t seed) {
  support::SplitMix64 rng(seed);
  symbolic::Expr row = sym("i");
  symbolic::Expr col = sym("k");
  switch (rng.nextBelow(3)) {
    case 0:
      break;  // A[i][k] row walk
    case 1:
      std::swap(row, col);  // A[k][i] column walk
      break;
    default:
      col = cst(7);  // A[i][7] loop-invariant
      break;
  }
  return RegionBuilder("random_" + std::to_string(seed))
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {row, col}))}))
      .statement(Stmt::store("y", {sym("i")}, local("acc")))
      .build();
}

class CpuSimProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CpuSimProperty, SimulationIsDeterministic) {
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 300}};
  const CpuSimulator sim(CpuSimParams::power9(), 16);
  ArrayStore storeA = allocateArrays(region, bindings);
  ArrayStore storeB = allocateArrays(region, bindings);
  const CpuSimResult a = sim.simulate(region, bindings, storeA);
  const CpuSimResult b = sim.simulate(region, bindings, storeB);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_DOUBLE_EQ(a.totalCycles, b.totalCycles);
  EXPECT_DOUBLE_EQ(a.l1HitRate, b.l1HitRate);
}

TEST_P(CpuSimProperty, LargerProblemsNeverFaster) {
  const TargetRegion region = randomKernel(GetParam());
  const CpuSimulator sim(CpuSimParams::power9(), 8);
  double previous = 0.0;
  for (const std::int64_t n : {128, 512, 2048}) {
    const symbolic::Bindings bindings{{"n", n}};
    ArrayStore store = allocateArrays(region, bindings);
    const double t = sim.simulate(region, bindings, store).seconds;
    EXPECT_GE(t, previous * 0.9) << n;  // sampling jitter tolerance
    previous = t;
  }
}

TEST_P(CpuSimProperty, ResultInvariantsHold) {
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 400}};
  ArrayStore store = allocateArrays(region, bindings);
  const CpuSimResult r =
      CpuSimulator(CpuSimParams::power9(), 32).simulate(region, bindings, store);
  EXPECT_TRUE(std::isfinite(r.seconds));
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GE(r.vectorFactor, 1.0);
  EXPECT_GE(r.smtSlowdown, 1.0);
  EXPECT_NEAR(r.seconds, r.totalCycles / 3.0e9, 1e-15);
  EXPECT_GE(r.totalCycles,
            r.overheadCycles);  // overheads always included
  for (const double rate : {r.l1HitRate, r.l2HitRate, r.l3HitRate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
}

TEST_P(CpuSimProperty, SingleThreadSlowerThanEight) {
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 1024}};
  ArrayStore storeA = allocateArrays(region, bindings);
  ArrayStore storeB = allocateArrays(region, bindings);
  const double one = CpuSimulator(CpuSimParams::power9(), 1)
                         .simulate(region, bindings, storeA)
                         .seconds;
  const double eight = CpuSimulator(CpuSimParams::power9(), 8)
                           .simulate(region, bindings, storeB)
                           .seconds;
  EXPECT_GT(one, eight);
}

TEST_P(CpuSimProperty, Power8NeverFasterThanPower9) {
  // POWER9 dominates POWER8 in every simulated parameter, so it must never
  // lose on the same kernel and thread count.
  const TargetRegion region = randomKernel(GetParam());
  const symbolic::Bindings bindings{{"n", 700}};
  ArrayStore storeA = allocateArrays(region, bindings);
  ArrayStore storeB = allocateArrays(region, bindings);
  const double p9 = CpuSimulator(CpuSimParams::power9(), 16)
                        .simulate(region, bindings, storeA)
                        .seconds;
  const double p8 = CpuSimulator(CpuSimParams::power8(), 16)
                        .simulate(region, bindings, storeB)
                        .seconds;
  EXPECT_LE(p9, p8 * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuSimProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace osel::cpusim

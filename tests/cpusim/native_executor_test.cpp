#include "cpusim/native_executor.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "polybench/polybench.h"
#include "support/check.h"

namespace osel::cpusim {
namespace {

using namespace osel::ir;

TEST(NativeExecutor, MatchesSequentialRunAll) {
  const TargetRegion region =
      RegionBuilder("affine")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("y", {sym("i")},
                                 read("x", {sym("i")}) * num(3.0) + num(1.0)))
          .build();
  const symbolic::Bindings bindings{{"n", 10007}};  // prime: ragged chunks
  ArrayStore parallelStore = allocateArrays(region, bindings);
  ArrayStore sequentialStore = allocateArrays(region, bindings);
  for (std::size_t i = 0; i < parallelStore["x"].size(); ++i) {
    parallelStore["x"][i] = static_cast<double>(i % 97);
    sequentialStore["x"][i] = static_cast<double>(i % 97);
  }
  executeNative(region, bindings, parallelStore, 8);
  CompiledRegion(region, bindings).runAll(sequentialStore);
  EXPECT_EQ(parallelStore["y"], sequentialStore["y"]);
}

TEST(NativeExecutor, PolybenchGemmMatchesReference) {
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const auto bindings = gemm.bindings(96);
  ArrayStore nativeStore = gemm.allocate(bindings);
  polybench::initializeInputs(gemm, bindings, nativeStore);
  ArrayStore referenceStore = gemm.allocate(bindings);
  polybench::initializeInputs(gemm, bindings, referenceStore);

  for (const auto& kernel : gemm.kernels())
    executeNative(kernel, bindings, nativeStore, 6);
  polybench::referenceExecute(gemm, bindings, referenceStore);

  const auto& actual = nativeStore.at("C");
  const auto& expected = referenceStore.at("C");
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-9) << i;
}

TEST(NativeExecutor, TriangularOverlappingStoresStayRaceFree) {
  // COVAR's third kernel writes symmat[j1][j2] and symmat[j2][j1]; the
  // (j1, j2) pairs are unique across threads, so parallel execution must
  // match the reference exactly.
  const polybench::Benchmark& covar = polybench::benchmarkByName("COVAR");
  const auto bindings = covar.bindings(48);
  ArrayStore nativeStore = covar.allocate(bindings);
  polybench::initializeInputs(covar, bindings, nativeStore);
  ArrayStore referenceStore = covar.allocate(bindings);
  polybench::initializeInputs(covar, bindings, referenceStore);

  for (const auto& kernel : covar.kernels())
    executeNative(kernel, bindings, nativeStore, 8);
  polybench::referenceExecute(covar, bindings, referenceStore);

  const auto& actual = nativeStore.at("symmat");
  const auto& expected = referenceStore.at("symmat");
  for (std::size_t i = 0; i < expected.size(); ++i)
    ASSERT_NEAR(actual[i], expected[i], 1e-9) << i;
}

TEST(NativeExecutor, SingleThreadWorks) {
  const polybench::Benchmark& atax = polybench::benchmarkByName("ATAX");
  const auto bindings = atax.bindings(40);
  ArrayStore store = atax.allocate(bindings);
  polybench::initializeInputs(atax, bindings, store);
  for (const auto& kernel : atax.kernels())
    EXPECT_NO_THROW(executeNative(kernel, bindings, store, 1));
}

TEST(NativeExecutor, RejectsZeroThreads) {
  const polybench::Benchmark& atax = polybench::benchmarkByName("ATAX");
  const auto bindings = atax.bindings(16);
  ArrayStore store = atax.allocate(bindings);
  EXPECT_THROW(executeNative(atax.kernels()[0], bindings, store, 0),
               support::PreconditionError);
}

}  // namespace
}  // namespace osel::cpusim

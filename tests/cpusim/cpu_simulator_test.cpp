#include "cpusim/cpu_simulator.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "support/check.h"

namespace osel::cpusim {
namespace {

using namespace osel::ir;

/// Streaming kernel: one coalesced read + write per parallel iteration.
TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("i")},
                             read("x", {sym("i")}) * num(2.0) + num(1.0)))
      .build();
}

/// GEMM-like kernel with a sequential reduction loop.
TargetRegion gemmKernel() {
  return RegionBuilder("gemm")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}) *
                                                  read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

/// Column-walking kernel: every access misses its line repeatedly.
TargetRegion columnKernel() {
  return RegionBuilder("columns")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc",
                        local("acc") + read("A", {sym("k"), sym("i")}))}))
      .statement(Stmt::store("y", {sym("i")}, local("acc")))
      .build();
}

CpuSimResult runSim(const CpuSimParams& params, int threads,
                    const TargetRegion& region, std::int64_t n) {
  const symbolic::Bindings bindings{{"n", n}};
  ArrayStore store = allocateArrays(region, bindings);
  return CpuSimulator(params, threads).simulate(region, bindings, store);
}

TEST(CpuSimulator, MoreThreadsFasterUntilSaturation) {
  const TargetRegion kernel = gemmKernel();
  double previous = 1e300;
  for (const int threads : {1, 4, 16}) {
    const double t = runSim(CpuSimParams::power9(), threads, kernel, 256).seconds;
    EXPECT_LT(t, previous) << threads;
    previous = t;
  }
}

TEST(CpuSimulator, SmtOversubscriptionDeratesNotAccelerates) {
  // Enough work per thread that the thread-count-dependent fork overhead
  // does not dominate.
  const TargetRegion kernel = gemmKernel();
  const double at20 = runSim(CpuSimParams::power9(), 20, kernel, 768).seconds;
  const double at160 = runSim(CpuSimParams::power9(), 160, kernel, 768).seconds;
  // 160 SMT threads help (latency hiding) but nowhere near the 8x thread
  // ratio on the issue side.
  EXPECT_LT(at160, at20);
  EXPECT_GT(at160, at20 / 8.0);
}

TEST(CpuSimulator, TinyKernelSlowerAt160ThreadsThanAt20) {
  // The paper's test-mode story: forking 160 SMT threads for microseconds
  // of work costs more than it buys.
  const TargetRegion kernel = streamKernel();
  const double at20 = runSim(CpuSimParams::power9(), 20, kernel, 2048).seconds;
  const double at160 = runSim(CpuSimParams::power9(), 160, kernel, 2048).seconds;
  EXPECT_GT(at160, at20);
}

TEST(CpuSimulator, SmtSlowdownReported) {
  const CpuSimResult one = runSim(CpuSimParams::power9(), 20, gemmKernel(), 128);
  EXPECT_DOUBLE_EQ(one.smtSlowdown, 1.0);
  const CpuSimResult smt = runSim(CpuSimParams::power9(), 160, gemmKernel(), 128);
  EXPECT_GT(smt.smtSlowdown, 2.0);
}

TEST(CpuSimulator, Power9VectorizesBetterThanPower8) {
  // Streaming unit-stride kernel: the VSX3-era vectorizer pays off.
  const CpuSimResult p9 = runSim(CpuSimParams::power9(), 4, streamKernel(), 1 << 16);
  const CpuSimResult p8 = runSim(CpuSimParams::power8(), 4, streamKernel(), 1 << 16);
  EXPECT_GT(p9.vectorFactor, p8.vectorFactor);
}

TEST(CpuSimulator, StridedVectorizationTiers) {
  // Unit-stride streams vectorize best; constant-stride column walks get
  // VSX3 gather vectorization on POWER9 only; POWER8 runs them scalar.
  const CpuSimResult stream = runSim(CpuSimParams::power9(), 4, streamKernel(), 1 << 16);
  const CpuSimResult p9cols = runSim(CpuSimParams::power9(), 4, columnKernel(), 512);
  const CpuSimResult p8cols = runSim(CpuSimParams::power8(), 4, columnKernel(), 512);
  EXPECT_GT(stream.vectorFactor, p9cols.vectorFactor);
  EXPECT_GT(p9cols.vectorFactor, 1.5);  // gathers help
  EXPECT_LT(p8cols.vectorFactor, 1.1);  // pre-VSX3: scalar column walks
}

TEST(CpuSimulator, StreamableFractionAnalysis) {
  EXPECT_GT(streamableAccessFraction(streamKernel(), {{"n", 1000}}), 0.99);
  // Column kernel: n column loads + 1 store -> tiny streamable fraction.
  EXPECT_LT(streamableAccessFraction(columnKernel(), {{"n", 1000}}), 0.01);
  // GEMM: A[i][k] and the C store stream; B[k][j] walks columns.
  const double gemm = streamableAccessFraction(gemmKernel(), {{"n", 1000}});
  EXPECT_GT(gemm, 0.4);
  EXPECT_LT(gemm, 0.6);
}

TEST(CpuSimulator, ColumnWalkSlowerThanStreamPerAccess) {
  // Equal access counts; the column walk misses caches and forfeits
  // prefetching, so it must be clearly slower at large n.
  const TargetRegion columns = columnKernel();
  // Row-walking variant of the same reduction for comparison.
  const TargetRegion rows =
      RegionBuilder("rows")
          .param("n")
          .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              {Stmt::assign("acc",
                            local("acc") + read("A", {sym("i"), sym("k")}))}))
          .statement(Stmt::store("y", {sym("i")}, local("acc")))
          .build();
  const double colTime = runSim(CpuSimParams::power9(), 4, columns, 1024).seconds;
  const double rowTime = runSim(CpuSimParams::power9(), 4, rows, 1024).seconds;
  EXPECT_GT(colTime, 1.5 * rowTime);
}

TEST(CpuSimulator, CacheHitRatesWithinBounds) {
  const CpuSimResult r = runSim(CpuSimParams::power9(), 4, gemmKernel(), 300);
  for (const double rate : {r.l1HitRate, r.l2HitRate, r.l3HitRate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GT(r.l1HitRate, 0.3);  // GEMM rows reused heavily
}

TEST(CpuSimulator, TinyRegionDominatedByOverheads) {
  const CpuSimResult r = runSim(CpuSimParams::power9(), 160, streamKernel(), 64);
  EXPECT_GT(r.overheadCycles / r.totalCycles, 0.8);
}

TEST(CpuSimulator, BigRegionDominatedByWork) {
  const CpuSimResult r = runSim(CpuSimParams::power9(), 4, gemmKernel(), 512);
  EXPECT_LT(r.overheadCycles / r.totalCycles, 0.05);
}

TEST(CpuSimulator, BudgetTruncationStaysCloseToFullTrace) {
  // Same kernel, tiny budget vs unlimited: scaled estimates should agree
  // within a modest factor on a homogeneous kernel.
  CpuSimParams tight = CpuSimParams::power9();
  tight.maxEventsPerPoint = 500;  // truncates every GEMM point (n=384 -> ~2.3k)
  CpuSimParams full = CpuSimParams::power9();
  full.maxEventsPerPoint = 0;
  const double truncated = runSim(tight, 4, gemmKernel(), 384).seconds;
  const double exact = runSim(full, 4, gemmKernel(), 384).seconds;
  EXPECT_LT(std::abs(truncated - exact) / exact, 0.5);
}

TEST(CpuSimulator, BoundClassificationConsistent) {
  const CpuSimResult r = runSim(CpuSimParams::power9(), 4, columnKernel(), 1024);
  if (r.bound == CpuBound::MemoryBandwidth) {
    EXPECT_GE(r.bandwidthCycles, r.computeCycles + r.stallCycles - 1e-9);
  } else if (r.bound == CpuBound::MemoryLatency) {
    EXPECT_GE(r.stallCycles, r.computeCycles);
  } else {
    EXPECT_GE(r.computeCycles, r.stallCycles);
  }
}

/// Triangular workload: parallel iteration j1 does (n - j1) inner trips —
/// the first static chunk is by far the heaviest.
TargetRegion triangularKernel() {
  return RegionBuilder("triangle")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
      .parallelFor("j1", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", sym("j1"), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("j1"), sym("k")}))}))
      .statement(Stmt::store("y", {sym("j1")}, local("acc")))
      .build();
}

TEST(CpuSimulator, DynamicScheduleBalancesTriangularWork) {
  const TargetRegion kernel = triangularKernel();
  const symbolic::Bindings bindings{{"n", 2048}};
  const CpuSimulator sim(CpuSimParams::power9(), 16);
  ArrayStore storeA = allocateArrays(kernel, bindings);
  ArrayStore storeB = allocateArrays(kernel, bindings);
  const double staticTime =
      sim.simulate(kernel, bindings, storeA, Schedule::Static).seconds;
  const double dynamicTime =
      sim.simulate(kernel, bindings, storeB, Schedule::Dynamic).seconds;
  // Static: thread 0 owns the heavy low-j1 chunk (~2x the mean work).
  EXPECT_LT(dynamicTime, 0.8 * staticTime);
}

TEST(CpuSimulator, DynamicScheduleCostsDispatchOnUniformWork) {
  // Balanced workload: dynamic buys nothing and pays per-chunk dispatch.
  const TargetRegion kernel = streamKernel();
  const symbolic::Bindings bindings{{"n", 1 << 16}};
  const CpuSimulator sim(CpuSimParams::power9(), 16);
  ArrayStore storeA = allocateArrays(kernel, bindings);
  ArrayStore storeB = allocateArrays(kernel, bindings);
  const double staticTime =
      sim.simulate(kernel, bindings, storeA, Schedule::Static).seconds;
  const double dynamicTime =
      sim.simulate(kernel, bindings, storeB, Schedule::Dynamic).seconds;
  EXPECT_GT(dynamicTime, staticTime);
}

TEST(CpuSimulator, SecondsMatchCyclesOverFrequency) {
  const CpuSimResult r = runSim(CpuSimParams::power9(), 8, streamKernel(), 4096);
  EXPECT_NEAR(r.seconds, r.totalCycles / 3.0e9, 1e-15);
}

TEST(CpuSimulator, RejectsBadThreadCount) {
  EXPECT_THROW(CpuSimulator(CpuSimParams::power9(), 0),
               support::PreconditionError);
}

TEST(CpuSimulator, ToStringMentionsBoundAndRates) {
  const CpuSimResult r = runSim(CpuSimParams::power9(), 4, gemmKernel(), 128);
  const std::string text = r.toString();
  EXPECT_NE(text.find("CPU sim"), std::string::npos);
  EXPECT_NE(text.find("L1"), std::string::npos);
  EXPECT_NE(text.find("vec"), std::string::npos);
}

}  // namespace
}  // namespace osel::cpusim

// Drift detector: EWMA smoothing, warm-up baseline, one-sided CUSUM with
// latched alarms, and misprediction counting. The arithmetic is pinned with
// exact expected values (the update rules are plain double expressions, so
// the test can mirror them term by term).
#include "obs/drift.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "support/check.h"

namespace osel::obs {
namespace {

TEST(DriftDetector, RejectsBadOptions) {
  EXPECT_THROW(DriftDetector({.ewmaAlpha = 0.0}), support::PreconditionError);
  EXPECT_THROW(DriftDetector({.ewmaAlpha = 1.5}), support::PreconditionError);
  EXPECT_THROW(DriftDetector({.baselineSamples = 0}),
               support::PreconditionError);
  EXPECT_THROW(DriftDetector({.cusumThreshold = 0.0}),
               support::PreconditionError);
}

TEST(DriftDetector, IgnoresNonFiniteAndNegativeErrors) {
  DriftDetector detector;
  EXPECT_EQ(detector.recordError("k", -0.5).ewma, 0.0);
  EXPECT_EQ(
      detector.recordError("k", std::numeric_limits<double>::quiet_NaN()).ewma,
      0.0);
  EXPECT_EQ(
      detector.recordError("k", std::numeric_limits<double>::infinity()).ewma,
      0.0);
  // No region state was created for the rejected samples.
  EXPECT_TRUE(detector.stats().empty());
}

TEST(DriftDetector, EwmaStartsAtFirstSampleThenSmooths) {
  DriftDetector detector({.ewmaAlpha = 0.5});
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.4).ewma, 0.4);
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.8).ewma, 0.5 * 0.8 + 0.5 * 0.4);
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.0).ewma, 0.5 * 0.6);
}

TEST(DriftDetector, BaselineIsMeanOfWarmupWindowAndCusumStaysDisarmed) {
  DriftDetector detector({.baselineSamples = 3, .cusumSlack = 0.0});
  // Warm-up samples never charge the CUSUM, however large the error.
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.1).cusum, 0.0);
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.2).cusum, 0.0);
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.3).cusum, 0.0);
  const std::vector<RegionDriftStats> stats = detector.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_DOUBLE_EQ(stats[0].baseline, 0.2);
  EXPECT_EQ(stats[0].samples, 3u);
  EXPECT_EQ(stats[0].alarms, 0u);
}

TEST(DriftDetector, CusumChargesOnSustainedExcessAndDrainsBelowBaseline) {
  DriftDetector detector(
      {.baselineSamples = 2, .cusumSlack = 0.05, .cusumThreshold = 1.0});
  detector.recordError("k", 0.1);
  detector.recordError("k", 0.1);  // baseline = 0.1
  // Charge: err - baseline - slack = 0.5 - 0.1 - 0.05 = 0.35 per sample.
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.5).cusum, 0.35);
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.5).cusum, 0.70);
  // Drain: a back-at-baseline sample subtracts the slack, floored at zero.
  EXPECT_DOUBLE_EQ(detector.recordError("k", 0.1).cusum, 0.65);
  for (int i = 0; i < 20; ++i) detector.recordError("k", 0.0);
  EXPECT_DOUBLE_EQ(detector.stats()[0].cusum, 0.0);
}

TEST(DriftDetector, AlarmFiresOnceOnCrossingAndStaysLatchedUntilZero) {
  DriftDetector detector(
      {.baselineSamples = 1, .cusumSlack = 0.1, .cusumThreshold = 1.0});
  detector.recordError("k", 0.0);  // baseline = 0
  // Each 0.6-error sample charges 0.5: crossing happens on the second.
  EXPECT_FALSE(detector.recordError("k", 0.6).alarm);
  EXPECT_TRUE(detector.recordError("k", 0.6).alarm);
  // Above threshold but already latched: no re-alarm.
  EXPECT_FALSE(detector.recordError("k", 0.6).alarm);
  EXPECT_TRUE(detector.stats()[0].alarming);
  EXPECT_EQ(detector.stats()[0].alarms, 1u);
  // Errors return to baseline; each at-baseline sample drains the slack and
  // the alarm unlatches only once the CUSUM bottoms out at zero.
  for (int i = 0; i < 20 && detector.stats()[0].cusum > 0.0; ++i) {
    detector.recordError("k", 0.0);
  }
  EXPECT_EQ(detector.stats()[0].cusum, 0.0);
  EXPECT_FALSE(detector.stats()[0].alarming);
  // A fresh excursion can alarm again.
  detector.recordError("k", 1.5);
  EXPECT_EQ(detector.stats()[0].alarms, 2u);
}

TEST(DriftDetector, RegionsAreIndependentAndStatsSorted) {
  DriftDetector detector({.baselineSamples = 1});
  detector.recordError("zz_k1", 0.3);
  detector.recordError("aa_k1", 0.1);
  detector.recordComparison("mm_k1", true);
  const std::vector<RegionDriftStats> stats = detector.stats();
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_EQ(stats[0].region, "aa_k1");
  EXPECT_EQ(stats[1].region, "mm_k1");
  EXPECT_EQ(stats[2].region, "zz_k1");
  EXPECT_DOUBLE_EQ(stats[0].ewma, 0.1);
  EXPECT_DOUBLE_EQ(stats[2].ewma, 0.3);
}

TEST(DriftDetector, CountsComparisonsAndMispredictions) {
  DriftDetector detector;
  detector.recordComparison("k", false);
  detector.recordComparison("k", true);
  detector.recordComparison("k", false);
  const std::vector<RegionDriftStats> stats = detector.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].comparisons, 3u);
  EXPECT_EQ(stats[0].mispredictions, 1u);
}

TEST(DriftDetector, ClearForgetsEverything) {
  DriftDetector detector;
  detector.recordError("k", 0.5);
  detector.clear();
  EXPECT_TRUE(detector.stats().empty());
}

TEST(TraceSessionDrift, AlarmRaisesInstantAndCounter) {
  // Route through the session: a CUSUM alarm transition must surface as a
  // drift.alarm instant plus a drift.alarms counter bump.
  TraceOptions options;
  options.drift = {.baselineSamples = 1, .cusumSlack = 0.0,
                   .cusumThreshold = 0.5};
  TraceSession session(options);
  session.recordPrediction("gemm_k1", 1.0, 1.0);  // baseline: zero error
  session.recordPrediction("gemm_k1", 2.0, 1.0);  // error 1.0 >= threshold
  EXPECT_EQ(session.metrics().counter("drift.alarms").value(), 1u);
  bool sawAlarm = false;
  for (const TraceEvent& event : session.snapshot()) {
    if (std::string_view(event.name) == "drift.alarm") {
      sawAlarm = true;
      EXPECT_EQ(event.labelView(), "gemm_k1");
    }
  }
  EXPECT_TRUE(sawAlarm);
  const std::vector<RegionDriftStats> stats = session.driftStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].alarming);
}

TEST(TraceSessionDrift, ComparisonFeedsCountersAndMispredictInstant) {
  TraceSession session;
  session.recordComparison("atax_k1", false);
  session.recordComparison("atax_k1", true);
  EXPECT_EQ(session.metrics().counter("drift.comparisons").value(), 2u);
  EXPECT_EQ(session.metrics().counter("drift.mispredictions").value(), 1u);
  bool sawMispredict = false;
  for (const TraceEvent& event : session.snapshot()) {
    if (std::string_view(event.name) == "drift.mispredict") sawMispredict = true;
  }
  EXPECT_TRUE(sawMispredict);
}

}  // namespace
}  // namespace osel::obs

// TraceSession ring-buffer semantics: bounded capacity with oldest-first
// eviction, label truncation into the fixed inline array, the online
// predicted-vs-actual tracker, and the FaultObserver hook.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "support/check.h"
#include "support/faultinject.h"

namespace osel::obs {
namespace {

TEST(TraceSession, RejectsZeroCapacity) {
  EXPECT_THROW(TraceSession({.capacity = 0}), support::PreconditionError);
}

TEST(TraceSession, RecordsSpansAndInstantsInOrder) {
  TraceSession session({.capacity = 8});
  session.recordSpan("decide", "compiled", "gemm_k1", 100, 50,
                     {"overhead_s", 1e-6});
  session.recordInstant("retry", "guard", "gemm_k1", 200, {"attempt", 2.0});

  const std::vector<TraceEvent> events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::Span);
  EXPECT_STREQ(events[0].name, "decide");
  EXPECT_STREQ(events[0].category, "compiled");
  EXPECT_EQ(events[0].labelView(), "gemm_k1");
  EXPECT_EQ(events[0].startNs, 100);
  EXPECT_EQ(events[0].durNs, 50);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_STREQ(events[0].args[0].key, "overhead_s");
  EXPECT_EQ(events[0].args[1].key, nullptr);

  EXPECT_EQ(events[1].kind, EventKind::Instant);
  EXPECT_EQ(events[1].durNs, 0);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST(TraceSession, RingDropsOldestBeyondCapacity) {
  TraceSession session({.capacity = 4});
  for (int i = 0; i < 6; ++i) {
    session.recordInstant("e", "test", "", i * 10);
  }
  EXPECT_EQ(session.recorded(), 6u);
  EXPECT_EQ(session.dropped(), 2u);
  EXPECT_EQ(session.capacity(), 4u);

  const std::vector<TraceEvent> events = session.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-first, starting after the two overwritten events.
  EXPECT_EQ(events.front().seq, 2u);
  EXPECT_EQ(events.front().startNs, 20);
  EXPECT_EQ(events.back().seq, 5u);
  EXPECT_EQ(events.back().startNs, 50);
}

TEST(TraceSession, ClearResetsTheRing) {
  TraceSession session({.capacity = 2});
  session.recordInstant("e", "test", "", 0);
  session.clear();
  EXPECT_EQ(session.recorded(), 0u);
  EXPECT_TRUE(session.snapshot().empty());
}

TEST(TraceSession, OversizedLabelsTruncateWithoutAllocating) {
  TraceSession session({.capacity = 2});
  const std::string label(100, 'x');
  session.recordSpan("decide", "compiled", label, 0, 1);
  const std::vector<TraceEvent> events = session.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].labelView(),
            std::string(TraceEvent::kLabelCapacity - 1, 'x'));
}

TEST(TraceSession, PredictionTrackerAveragesPerRegion) {
  TraceSession session;
  session.recordPrediction("gemm_k1", 2.0, 1.0);  // |2-1|/1 = 1.0
  session.recordPrediction("gemm_k1", 0.5, 1.0);  // |0.5-1|/1 = 0.5
  session.recordPrediction("atax_k1", 1.0, 1.0);  // exact

  const std::vector<PredictionStats> stats = session.predictionStats();
  ASSERT_EQ(stats.size(), 2u);
  // Sorted by region name.
  EXPECT_EQ(stats[0].region, "atax_k1");
  EXPECT_EQ(stats[0].count, 1u);
  EXPECT_DOUBLE_EQ(stats[0].meanAbsRelError, 0.0);
  EXPECT_EQ(stats[1].region, "gemm_k1");
  EXPECT_EQ(stats[1].count, 2u);
  EXPECT_DOUBLE_EQ(stats[1].meanAbsRelError, 0.75);
  EXPECT_DOUBLE_EQ(stats[1].meanPredictedSeconds, 1.25);
  EXPECT_DOUBLE_EQ(stats[1].meanActualSeconds, 1.0);
}

TEST(TraceSession, PredictionTrackerIgnoresDegenerateSamples) {
  TraceSession session;
  session.recordPrediction("r", 1.0, 0.0);   // actual not > 0
  session.recordPrediction("r", 1.0, -1.0);  // negative actual
  session.recordPrediction("r", std::numeric_limits<double>::quiet_NaN(), 1.0);
  session.recordPrediction("r", 1.0, std::numeric_limits<double>::infinity());
  EXPECT_TRUE(session.predictionStats().empty());
}

TEST(TraceSession, FaultObserverRecordsHitsAndFires) {
  TraceSession session;
  session.onFaultHit("gpu.launch", "gpu", support::FaultKind::TransientLaunch,
                     false);
  session.onFaultHit("gpu.launch", "gpu", support::FaultKind::TransientLaunch,
                     true);
  EXPECT_EQ(session.metrics().counter("fault.hits").value(), 2u);
  EXPECT_EQ(session.metrics().counter("fault.fires").value(), 1u);
  const std::vector<TraceEvent> events = session.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "fault.skip");
  EXPECT_STREQ(events[1].name, "fault.fire");
  EXPECT_EQ(events[1].labelView(), "gpu.launch");
  EXPECT_STREQ(events[1].category, "fault");
}

TEST(TraceSession, ObserveFaultInjectorDetachesOnDestruction) {
  {
    TraceSession session;
    session.observeFaultInjector();
    EXPECT_EQ(support::faultInjector().observer(), &session);
  }
  EXPECT_EQ(support::faultInjector().observer(), nullptr);
}

TEST(TraceSession, LastObserverWinsAndDoesNotDetachTheWinner) {
  TraceSession winner;
  {
    TraceSession loser;
    loser.observeFaultInjector();
    winner.observeFaultInjector();
    // `loser`'s destructor must not uninstall `winner`.
  }
  EXPECT_EQ(support::faultInjector().observer(), &winner);
  support::faultInjector().setObserver(nullptr);
}

}  // namespace
}  // namespace osel::obs

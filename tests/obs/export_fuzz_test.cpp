// Hostile-label property test for the exporters (satellite of the decision
// forensics PR): region labels carrying quotes, backslashes, commas, control
// characters, and multi-byte UTF-8 sequences truncated at the 48-byte inline
// label boundary must still yield a syntactically valid Chrome trace JSON
// document, a valid explain-JSON document, and well-formed Prometheus
// exposition lines. The validators below are deliberately independent
// re-implementations (byte-level), not the exporters' own escaping logic.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.h"
#include "obs/trace.h"
#include "support/rng.h"

namespace osel::obs {
namespace {

// --- Minimal JSON syntax checker --------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skipWs();
    if (!value()) return false;
    skipWs();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skipWs();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skipWs();
      if (!string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++pos_;
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skipWs();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skipWs();
      if (!value()) return false;
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') return ++pos_, true;
      if (c < 0x20) return false;  // raw control byte: invalid in JSON
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              return false;
            }
          }
        } else if (std::string_view("\"\\/bfnrt").find(esc) ==
                   std::string_view::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// --- Prometheus exposition line checker -------------------------------------

bool validPromName(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_' &&
        c != ':') {
      return false;
    }
  }
  return std::isdigit(static_cast<unsigned char>(name.front())) == 0;
}

/// One sample line: name[{label="escaped",...}] value. Returns false on any
/// malformed name, label block, or value.
bool validPromSampleLine(std::string_view line) {
  std::size_t nameEnd = 0;
  while (nameEnd < line.size() && line[nameEnd] != '{' && line[nameEnd] != ' ')
    ++nameEnd;
  if (!validPromName(line.substr(0, nameEnd))) return false;
  std::size_t pos = nameEnd;
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      std::size_t keyEnd = pos;
      while (keyEnd < line.size() && line[keyEnd] != '=') ++keyEnd;
      if (!validPromName(line.substr(pos, keyEnd - pos))) return false;
      pos = keyEnd + 1;
      if (pos >= line.size() || line[pos] != '"') return false;
      ++pos;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\') {
          ++pos;
          if (pos >= line.size() ||
              (line[pos] != '\\' && line[pos] != '"' && line[pos] != 'n')) {
            return false;  // only \\, \" and \n escapes are defined
          }
        } else if (line[pos] == '\n') {
          return false;  // raw newline inside a label value
        }
        ++pos;
      }
      if (pos >= line.size()) return false;  // unterminated value
      ++pos;                                 // closing '"'
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size()) return false;  // unterminated label block
    ++pos;                                 // '}'
  }
  if (pos >= line.size() || line[pos] != ' ') return false;
  const std::string_view value = line.substr(pos + 1);
  if (value.empty()) return false;
  if (value == "NaN" || value == "+Inf" || value == "-Inf") return true;
  char* end = nullptr;
  const std::string owned(value);
  (void)std::strtod(owned.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool validPromExposition(const std::string& text) {
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) return false;  // must end with newline
    const std::string_view line(text.data() + start, end - start);
    if (!line.empty() && line[0] != '#' && !validPromSampleLine(line)) {
      ADD_FAILURE() << "bad exposition line: " << line;
      return false;
    }
    start = end + 1;
  }
  return true;
}

// --- Hostile label corpus ----------------------------------------------------

std::vector<std::string> hostileLabels() {
  std::vector<std::string> labels{
      "plain_k1",
      "quote\"inside",
      "back\\slash",
      "comma,semicolon;",
      "newline\nand\ttab",
      "ctrl\x01\x02\x1f bytes",
      "brace}{bracket][",
      "utf8 \xc3\xa9\xe2\x82\xac ok",
      std::string("embedded\0nul", 12),
  };
  // A 3-byte UTF-8 character (€, E2 82 AC) straddling the 48-byte inline
  // label capacity: byte 47 starts the sequence, so truncation at
  // kLabelCapacity-1 cuts it mid-character.
  std::string straddle(46, 'a');
  straddle += "\xe2\x82\xac tail";
  labels.push_back(straddle);
  // Randomized mix over a hostile alphabet.
  support::SplitMix64 rng(0x0B5C05EDULL);
  const std::string_view alphabet = "ab\"\\\n\r\t,{}\x01\x7f\xc3\xa9\xe2";
  for (int i = 0; i < 64; ++i) {
    std::string label;
    const std::size_t length = rng.nextBelow(80);
    for (std::size_t j = 0; j < length; ++j) {
      label += alphabet[rng.nextBelow(alphabet.size())];
    }
    labels.push_back(std::move(label));
  }
  return labels;
}

TEST(ExportFuzz, ChromeTraceStaysValidJsonUnderHostileLabels) {
  TraceSession session({.capacity = 256});
  std::int64_t ts = 0;
  for (const std::string& label : hostileLabels()) {
    session.recordSpan("decide", "compiled", label, ts, 10);
    session.recordInstant("retry", "guard", label, ts + 5, {"attempt", 1.0});
    ts += 20;
  }
  const std::string json = renderChromeTrace(session);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(ExportFuzz, ExplainJsonStaysValidUnderHostileRegionNames) {
  TraceSession session({.explainCapacity = 256});
  for (const std::string& label : hostileLabels()) {
    DecisionExplain explain;
    explain.setRegion(label);
    explain.predictedSpeedup = 1.5;
    session.recordExplain(explain);
  }
  const std::string json = renderExplainJson(session);
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

TEST(ExportFuzz, PrometheusExpositionStaysWellFormedUnderHostileLabels) {
  TraceSession session({.capacity = 256});
  session.metrics().counter("decision.compiled").add(3);
  session.metrics().gauge("decision_cache.hit_ratio").set(0.5);
  session.metrics().histogram("decision.overhead_s", {1e-6, 1e-3}).record(1e-4);
  for (const std::string& label : hostileLabels()) {
    session.recordPrediction(label, 1.5, 1.0);
    session.recordComparison(label, true);
    DecisionExplain explain;
    explain.setRegion(label);
    session.recordExplain(explain);
  }
  const std::string exposition = renderPrometheus(session);
  EXPECT_TRUE(validPromExposition(exposition));
}

TEST(ExportFuzz, TraceCsvKeepsOneRecordPerLineUnderHostileLabels) {
  // RFC-4180: a label may expand to a quoted field containing newlines, but
  // the number of *unquoted* newlines must equal header + one per event.
  TraceSession session({.capacity = 256});
  std::int64_t ts = 0;
  std::size_t events = 0;
  for (const std::string& label : hostileLabels()) {
    session.recordSpan("decide", "compiled", label, ts, 10);
    ts += 20;
    ++events;
  }
  const std::string csv = renderTraceCsv(session);
  std::size_t unquotedNewlines = 0;
  bool inQuotes = false;
  for (std::size_t i = 0; i < csv.size(); ++i) {
    if (csv[i] == '"') inQuotes = !inQuotes;
    if (csv[i] == '\n' && !inQuotes) ++unquotedNewlines;
  }
  EXPECT_FALSE(inQuotes);
  EXPECT_EQ(unquotedNewlines, events + 1);
}

}  // namespace
}  // namespace osel::obs

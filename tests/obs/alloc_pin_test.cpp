// Allocation pins for the observability layer's two core promises:
//   * with NO session attached, the decision path performs zero heap
//     allocations (the disabled hook is one pointer test), and
//   * with a session attached, *recording* never allocates either — events
//     go into the preallocated ring, metrics updates are atomic ops.
// The global operator new/delete pair below counts every allocation in this
// test binary (counting only; behaviour is unchanged).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "compiler/compiler.h"
#include "obs/trace.h"
#include "polybench/polybench.h"
#include "runtime/selector.h"

namespace {
std::atomic<std::uint64_t> gAllocations{0};

// noinline keeps GCC from tracking malloc/free provenance through the
// replaced operators and raising a spurious -Wmismatched-new-delete.
[[gnu::noinline]] void* countedAlloc(std::size_t size) {
  gAllocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
[[gnu::noinline]] void countedFree(void* p) noexcept { std::free(p); }
}  // namespace

void* operator new(std::size_t size) {
  if (void* p = countedAlloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { countedFree(p); }
void operator delete[](void* p) noexcept { countedFree(p); }
void operator delete(void* p, std::size_t) noexcept { countedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { countedFree(p); }

namespace osel::obs {
namespace {

std::uint64_t allocations() {
  return gAllocations.load(std::memory_order_relaxed);
}

TEST(ObsAllocPin, DisabledSessionDecideAllocatesNothing) {
  // The unified decide() over a compiled plan with no TraceSession anywhere
  // in sight — the exact configuration production launches run in when
  // observability is off.
  const runtime::OffloadSelector selector{runtime::SelectorConfig{}};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const runtime::CompiledRegionPlan plan = selector.compile(
      compiler::analyzeRegion(gemm.kernels()[0], models));
  ASSERT_TRUE(plan.fastPathUsable());
  const symbolic::Bindings bindings = gemm.bindings(9600);
  const runtime::RegionHandle region(plan);
  double sink = selector.decide(region, bindings).cpu.seconds;  // warm-up
  const std::uint64_t before = allocations();
  for (int i = 0; i < 64; ++i) {
    sink += selector.decide(region, bindings).cpu.seconds;
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_GT(sink, 0.0);
}

TEST(ObsAllocPin, RecordingIntoTheRingAllocatesNothing) {
  TraceSession session({.capacity = 16});
  const std::string label = "stream_k1";  // allocated before the window
  session.recordSpan("decide", "compiled", label, 0, 1);  // warm-up
  const std::uint64_t before = allocations();
  for (int i = 0; i < 256; ++i) {
    session.recordSpan("decide", "compiled", label, i, 1, {"overhead_s", 1e-6},
                       {"valid", 1.0});
    session.recordInstant("retry", "guard", label, i, {"attempt", 2.0});
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(session.recorded(), 513u);
  EXPECT_EQ(session.dropped(), 513u - 16u);
}

TEST(ObsAllocPin, ExplainSinkDecideAllocatesNothing) {
  // Filling a DecisionExplain through the selector's explain sink and
  // pushing it into the session's ring — the full forensics hot path — must
  // stay heap-free: the record is a fixed-size stack object and the ring is
  // preallocated.
  const runtime::OffloadSelector selector{runtime::SelectorConfig{}};
  const polybench::Benchmark& gemm = polybench::benchmarkByName("GEMM");
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const runtime::CompiledRegionPlan plan = selector.compile(
      compiler::analyzeRegion(gemm.kernels()[0], models));
  ASSERT_TRUE(plan.fastPathUsable());
  const symbolic::Bindings bindings = gemm.bindings(9600);
  const runtime::RegionHandle region(plan);
  TraceSession session({.explainCapacity = 16});
  DecisionExplain explain;
  double sink =
      selector.decide(region, bindings, &explain).cpu.seconds;  // warm-up
  session.recordExplain(explain);
  const std::uint64_t before = allocations();
  for (int i = 0; i < 64; ++i) {
    sink += selector.decide(region, bindings, &explain).cpu.seconds;
    explain.atNs = 1;  // pre-stamped: recording takes no clock branch
    session.recordExplain(explain);
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_GT(sink, 0.0);
  EXPECT_EQ(session.explainRing().recorded(), 65u);
  EXPECT_EQ(session.explainRing().dropped(), 65u - 16u);
}

TEST(ObsAllocPin, SlowCaptureAllocatesNothing) {
  // The service's slow-request capture path: a fixed-size wide-event record
  // pushed into the preallocated slow ring. Stamped before the window so
  // recording takes no clock branch; overwriting past capacity must not
  // allocate either.
  TraceSession session({.slowCapacity = 16});
  SlowRequestRecord record;
  record.setRegion("stream_k1");
  record.atNs = 1;
  record.decodeNs = 2000;
  record.decideNs = 40000;
  record.wallNs = 45000;
  session.recordSlow(record);  // warm-up
  const std::uint64_t before = allocations();
  for (int i = 0; i < 256; ++i) {
    record.traceId = static_cast<std::uint64_t>(i);
    session.recordSlow(record);
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(session.slowRing().recorded(), 257u);
  EXPECT_EQ(session.slowRing().dropped(), 257u - 16u);
}

TEST(ObsAllocPin, DriftFeedingAllocatesNothingAfterFirstSample) {
  // Per-region drift state allocates once (the map node on first sample);
  // every subsequent error/comparison is arithmetic under a lock.
  TraceSession session;
  const std::string region = "gemm_k1";  // allocated before the window
  session.recordPrediction(region, 1.5, 1.0);  // warm-up: creates the nodes
  session.recordComparison(region, true);
  const std::uint64_t before = allocations();
  for (int i = 0; i < 256; ++i) {
    session.recordPrediction(region, 1.5, 1.0);
    session.recordComparison(region, i % 2 == 0);
  }
  EXPECT_EQ(allocations() - before, 0u);
}

TEST(ObsAllocPin, MetricUpdatesAllocateNothing) {
  TraceSession session;
  // Registration (name lookup, node creation) may allocate; hot paths do it
  // once and keep the reference — exactly what TargetRuntime::Instruments
  // does.
  Counter& counter = session.metrics().counter("decision.compiled");
  Gauge& gauge = session.metrics().gauge("decision_cache.hit_ratio");
  Histogram& histogram =
      session.metrics().histogram("decision.overhead_s", {1e-6, 1e-3});
  const std::uint64_t before = allocations();
  for (int i = 0; i < 256; ++i) {
    counter.add();
    gauge.set(0.5);
    histogram.record(1e-4);
  }
  EXPECT_EQ(allocations() - before, 0u);
  EXPECT_EQ(counter.value(), 256u);
  EXPECT_EQ(histogram.count(), 256u);
}

}  // namespace
}  // namespace osel::obs

// End-to-end observability: a TargetRuntime with a TraceSession attached
// must narrate the whole launch pipeline — decision spans tagged with the
// path taken (compiled / cache_hit / interpreted / degenerate), execution
// spans with GPU kernel/transfer sub-spans, retry and fallback instants
// under injected faults, per-launch counters, the decision-cache hit-ratio
// gauge, and the online predicted-vs-actual tracker.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "runtime/target_runtime.h"
#include "support/faultinject.h"

namespace osel {
namespace {

using namespace osel::ir;

TargetRegion streamKernel() {
  return RegionBuilder("stream")
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

runtime::TargetRuntime makeTracedRuntime(obs::TraceSession* session) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const std::array<TargetRegion, 1> regions{streamKernel()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);
  runtime::RuntimeOptions options;
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  options.trace = session;
  runtime::TargetRuntime rt(std::move(db), options);
  rt.registerRegion(streamKernel());
  return rt;
}

std::vector<obs::TraceEvent> eventsNamed(const obs::TraceSession& session,
                                         const char* name) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& event : session.snapshot()) {
    if (std::string_view(event.name) == name) out.push_back(event);
  }
  return out;
}

class RuntimeObservability : public ::testing::Test {
 protected:
  void TearDown() override { support::faultInjector().disarmAll(); }
};

TEST_F(RuntimeObservability, DecisionPathsAreTaggedAndCounted) {
  obs::TraceSession session;
  runtime::TargetRuntime rt = makeTracedRuntime(&session);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);

  (void)rt.launch("stream", bindings, store, runtime::Policy::ModelGuided);
  (void)rt.launch("stream", bindings, store, runtime::Policy::ModelGuided);

  EXPECT_EQ(session.metrics().counter("decision.compiled").value(), 1u);
  EXPECT_EQ(session.metrics().counter("decision.cache_hit").value(), 1u);
  EXPECT_EQ(session.metrics().counter("decision.interpreted").value(), 0u);
  EXPECT_DOUBLE_EQ(session.metrics().gauge("decision_cache.hit_ratio").value(),
                   0.5);
  EXPECT_EQ(
      session.metrics().histogram("decision.overhead_s", {1.0}).count(), 2u);

  const std::vector<obs::TraceEvent> decides = eventsNamed(session, "decide");
  ASSERT_EQ(decides.size(), 2u);
  EXPECT_STREQ(decides[0].category, "compiled");
  EXPECT_STREQ(decides[1].category, "cache_hit");
  EXPECT_EQ(decides[0].labelView(), "stream");
  EXPECT_STREQ(decides[0].args[0].key, "overhead_s");
  EXPECT_EQ(decides[0].args[1].value, 1.0);  // valid

  const std::vector<obs::TraceEvent> launches = eventsNamed(session, "launch");
  ASSERT_EQ(launches.size(), 2u);
  EXPECT_STREQ(launches[0].category, "model-guided");
  EXPECT_GT(launches[0].args[0].value, 0.0);  // actual_s
}

TEST_F(RuntimeObservability, MissingPadEntryTracesDegenerateDecision) {
  obs::TraceSession session;
  runtime::RuntimeOptions options;
  options.trace = &session;
  runtime::TargetRuntime rt{pad::AttributeDatabase{}, options};
  rt.registerRegion(streamKernel());
  const symbolic::Bindings bindings{{"n", 32}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);

  (void)rt.launch("stream", bindings, store, runtime::Policy::ModelGuided);

  EXPECT_EQ(session.metrics().counter("decision.degenerate").value(), 1u);
  const std::vector<obs::TraceEvent> decides = eventsNamed(session, "decide");
  ASSERT_EQ(decides.size(), 1u);
  EXPECT_STREQ(decides[0].category, "degenerate");
  EXPECT_EQ(decides[0].args[1].value, 0.0);  // valid = false
}

TEST_F(RuntimeObservability, GpuLaunchEmitsKernelAndTransferSubSpans) {
  obs::TraceSession session;
  runtime::TargetRuntime rt = makeTracedRuntime(&session);
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);

  (void)rt.launch("stream", bindings, store, runtime::Policy::AlwaysGpu);

  const std::vector<obs::TraceEvent> gpuSpans = eventsNamed(session, "exec.gpu");
  const std::vector<obs::TraceEvent> kernels = eventsNamed(session, "gpu.kernel");
  const std::vector<obs::TraceEvent> transfers =
      eventsNamed(session, "gpu.transfer");
  ASSERT_EQ(gpuSpans.size(), 1u);
  ASSERT_EQ(kernels.size(), 1u);
  ASSERT_EQ(transfers.size(), 1u);
  EXPECT_EQ(session.metrics().counter("launch.gpu").value(), 1u);
  EXPECT_EQ(session.metrics().counter("launch.cpu").value(), 0u);

  // Sub-spans carry the simulated phase seconds and nest inside the parent.
  EXPECT_GT(kernels[0].args[0].value, 0.0);
  EXPECT_GT(transfers[0].args[0].value, 0.0);
  EXPECT_GE(transfers[0].startNs, gpuSpans[0].startNs);
  EXPECT_LE(kernels[0].startNs + kernels[0].durNs,
            gpuSpans[0].startNs + gpuSpans[0].durNs + 1);

  (void)rt.launch("stream", bindings, store, runtime::Policy::AlwaysCpu);
  EXPECT_EQ(eventsNamed(session, "exec.cpu").size(), 1u);
  EXPECT_EQ(session.metrics().counter("launch.cpu").value(), 1u);
}

TEST_F(RuntimeObservability, RetriesAndFallbacksAreTraced) {
  obs::TraceSession session;
  session.observeFaultInjector();
  runtime::TargetRuntime rt = makeTracedRuntime(&session);
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);

  // Two transient failures, then success: retries but no fallback.
  support::faultInjector().arm(
      support::faultpoints::kGpuLaunch,
      {.kind = support::FaultKind::TransientLaunch, .maxFires = 2});
  const runtime::LaunchRecord recovered =
      rt.launch("stream", bindings, store, runtime::Policy::AlwaysGpu);
  EXPECT_EQ(recovered.attempts, 3);
  EXPECT_EQ(session.metrics().counter("guard.retries").value(), 2u);
  EXPECT_EQ(session.metrics().counter("guard.fallbacks").value(), 0u);
  EXPECT_GE(session.metrics().counter("fault.fires").value(), 2u);
  EXPECT_EQ(eventsNamed(session, "retry").size(), 2u);
  EXPECT_EQ(eventsNamed(session, "attempt.fail").size(), 2u);

  // A fatal error falls back to the CPU and says so.
  support::faultInjector().arm(
      support::faultpoints::kGpuLaunch,
      {.kind = support::FaultKind::DeviceMemory, .maxFires = 1});
  const runtime::LaunchRecord fallen =
      rt.launch("stream", bindings, store, runtime::Policy::AlwaysGpu);
  EXPECT_EQ(fallen.chosen, runtime::Device::Cpu);
  EXPECT_EQ(session.metrics().counter("guard.fallbacks").value(), 1u);
  const std::vector<obs::TraceEvent> fallbacks =
      eventsNamed(session, "fallback");
  ASSERT_EQ(fallbacks.size(), 1u);
  EXPECT_STREQ(fallbacks[0].category, "fatal-error");
}

TEST_F(RuntimeObservability, QuarantineTransitionsAreTraced) {
  obs::TraceSession session;
  runtime::TargetRuntime rt = [&] {
    const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
    const std::array<TargetRegion, 1> regions{streamKernel()};
    pad::AttributeDatabase db = compiler::compileAll(regions, models);
    runtime::RuntimeOptions options;
    options.health.quarantineThreshold = 2;
    options.health.quarantineLaunches = 3;
    options.trace = &session;
    runtime::TargetRuntime built(std::move(db), options);
    built.registerRegion(streamKernel());
    return built;
  }();
  const symbolic::Bindings bindings{{"n", 64}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);

  support::faultInjector().arm(support::faultpoints::kGpuLaunch,
                               {.kind = support::FaultKind::DeviceLost});
  for (int i = 0; i < 2; ++i)
    (void)rt.launch("stream", bindings, store, runtime::Policy::AlwaysGpu);
  ASSERT_TRUE(rt.gpuHealth().quarantined());
  EXPECT_EQ(session.metrics().counter("health.quarantines").value(), 1u);
  EXPECT_EQ(eventsNamed(session, "quarantine.open").size(), 1u);

  // While quarantined, the breaker blocks GPU access without touching it.
  (void)rt.launch("stream", bindings, store, runtime::Policy::AlwaysGpu);
  EXPECT_EQ(eventsNamed(session, "quarantine.block").size(), 1u);
}

TEST_F(RuntimeObservability, PredictionTrackerFollowsMeasuredLaunches) {
  obs::TraceSession session;
  runtime::TargetRuntime rt = makeTracedRuntime(&session);
  ArrayStore store;
  for (const std::int64_t n : {48, 96, 192}) {
    const symbolic::Bindings bindings{{"n", n}};
    store = allocateArrays(streamKernel(), bindings);
    (void)rt.launch("stream", bindings, store, runtime::Policy::ModelGuided);
  }
  const std::vector<obs::PredictionStats> stats = session.predictionStats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].region, "stream");
  EXPECT_EQ(stats[0].count, 3u);
  EXPECT_GT(stats[0].meanActualSeconds, 0.0);
  EXPECT_GE(stats[0].meanAbsRelError, 0.0);
  EXPECT_GT(
      session.metrics().histogram("prediction.abs_rel_error", {1.0}).count(),
      0u);
}

TEST_F(RuntimeObservability, ChromeExportOfARealRunIsWellFormed) {
  obs::TraceSession session;
  runtime::TargetRuntime rt = makeTracedRuntime(&session);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)rt.launch("stream", bindings, store, runtime::Policy::ModelGuided);
  (void)rt.launch("stream", bindings, store, runtime::Policy::AlwaysGpu);

  const std::string json = obs::renderChromeTrace(session);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"launch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gpu.kernel\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"gpu.transfer\""), std::string::npos);
  // Balanced object braces — a cheap well-formedness proxy the golden test
  // in export_test.cpp complements with byte-exact output.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(RuntimeObservability, DetachedRuntimeRecordsNothing) {
  obs::TraceSession session;  // never attached
  runtime::TargetRuntime rt = makeTracedRuntime(nullptr);
  EXPECT_EQ(rt.traceSession(), nullptr);
  const symbolic::Bindings bindings{{"n", 96}};
  ArrayStore store = allocateArrays(streamKernel(), bindings);
  (void)rt.launch("stream", bindings, store, runtime::Policy::ModelGuided);
  EXPECT_EQ(session.recorded(), 0u);
}

}  // namespace
}  // namespace osel

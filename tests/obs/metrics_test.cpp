// Metrics registry: counters, gauges, fixed-bucket histograms. The bucket
// boundary tests pin the "bucket i counts values <= upperBounds[i]"
// contract exactly — exporters and dashboards depend on it.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <thread>
#include <vector>

#include "support/check.h"

namespace osel::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
}

TEST(Gauge, HoldsLastWrittenValue) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(0.75);
  gauge.set(0.25);
  EXPECT_EQ(gauge.value(), 0.25);
}

TEST(Histogram, RejectsBadBounds) {
  EXPECT_THROW(Histogram(std::vector<double>{}), support::PreconditionError);
  EXPECT_THROW(Histogram({1.0, 1.0}), support::PreconditionError);
  EXPECT_THROW(Histogram({2.0, 1.0}), support::PreconditionError);
}

TEST(Histogram, ValuesOnTheBoundaryFallInTheLowerBucket) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.bucketCount(), 4u);  // three bounds + overflow

  h.record(0.5);   // <= 1.0          -> bucket 0
  h.record(1.0);   // == bound 0      -> bucket 0 (inclusive upper bound)
  h.record(1.001); // (1.0, 2.0]      -> bucket 1
  h.record(2.0);   // == bound 1      -> bucket 1
  h.record(4.0);   // == bound 2      -> bucket 2
  h.record(4.001); // > last bound    -> overflow bucket

  EXPECT_EQ(h.bucketValue(0), 2u);
  EXPECT_EQ(h.bucketValue(1), 2u);
  EXPECT_EQ(h.bucketValue(2), 1u);
  EXPECT_EQ(h.bucketValue(3), 1u);
  EXPECT_THROW((void)h.bucketValue(4), support::PreconditionError);
}

TEST(Histogram, StatisticsTrackRecordedValues) {
  Histogram h({10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.min(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.max(), -std::numeric_limits<double>::infinity());

  h.record(2.0);
  h.record(6.0);
  h.record(1.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 6.0);
}

TEST(Histogram, StatsReturnsConsistentBucketCountsAndSummary) {
  Histogram h({1.0, 2.0});
  h.record(0.5);
  h.record(1.5);
  h.record(9.0);
  const Histogram::Stats stats = h.stats();
  ASSERT_EQ(stats.counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(stats.counts[0], 1u);
  EXPECT_EQ(stats.counts[1], 1u);
  EXPECT_EQ(stats.counts[2], 1u);
  EXPECT_EQ(stats.count, 3u);
  EXPECT_DOUBLE_EQ(stats.sum, 11.0);
  EXPECT_DOUBLE_EQ(stats.min, 0.5);
  EXPECT_DOUBLE_EQ(stats.max, 9.0);
}

TEST(MetricsRegistry, SnapshotCopiesEverythingSortedByName) {
  MetricsRegistry registry;
  registry.counter("z.late").add(2);
  registry.counter("a.early").add(1);
  registry.gauge("ratio").set(0.75);
  registry.histogram("overhead", {1.0}).record(0.5);
  const MetricsRegistry::Snapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.early");
  EXPECT_EQ(snapshot.counters[0].second, 1u);
  EXPECT_EQ(snapshot.counters[1].first, "z.late");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].second, 0.75);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].name, "overhead");
  ASSERT_EQ(snapshot.histograms[0].upperBounds.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].stats.count, 1u);
  // A snapshot is a copy: later updates do not leak into it.
  registry.counter("a.early").add(100);
  EXPECT_EQ(snapshot.counters[0].second, 1u);
}

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.counter("decisions");
  a.add(3);
  EXPECT_EQ(&registry.counter("decisions"), &a);
  EXPECT_EQ(registry.counter("decisions").value(), 3u);

  Histogram& h = registry.histogram("overhead", {1.0, 2.0});
  // Re-registration with different bounds returns the existing histogram
  // unchanged.
  EXPECT_EQ(&registry.histogram("overhead", {99.0}), &h);
  EXPECT_EQ(h.upperBounds().size(), 2u);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("events");
  Histogram& histogram = registry.histogram("values", {0.5});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.record(i % 2 == 0 ? 0.25 : 0.75);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  EXPECT_EQ(histogram.count(), kThreads * kPerThread);
  EXPECT_EQ(histogram.bucketValue(0), kThreads * kPerThread / 2);
  EXPECT_EQ(histogram.bucketValue(1), kThreads * kPerThread / 2);
}

TEST(MetricsRegistry, CsvIsSortedAndQuoted) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.counter("a,comma").add(1);  // must be RFC-4180 quoted
  registry.gauge("ratio").set(0.5);
  registry.histogram("h", {1.0}).record(0.5);
  const std::string csv = registry.renderCsv();
  EXPECT_EQ(csv,
            "kind,name,value,count,sum,min,max\n"
            "counter,\"a,comma\",1,,,,\n"
            "counter,b.count,2,,,,\n"
            "gauge,ratio,0.5,,,,\n"
            "histogram,h,0.5,1,0.5,0.5,0.5\n");
}

TEST(MetricsRegistry, SummaryListsEveryMetric) {
  MetricsRegistry registry;
  registry.counter("launches").add(7);
  registry.gauge("hit_ratio").set(0.875);
  registry.histogram("overhead_s", {1e-6}).record(5e-7);
  const std::string summary = registry.renderSummary();
  EXPECT_NE(summary.find("launches"), std::string::npos);
  EXPECT_NE(summary.find("7"), std::string::npos);
  EXPECT_NE(summary.find("hit_ratio"), std::string::npos);
  EXPECT_NE(summary.find("0.875"), std::string::npos);
  EXPECT_NE(summary.find("overhead_s"), std::string::npos);
}

}  // namespace
}  // namespace osel::obs

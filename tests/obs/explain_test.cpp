// DecisionExplain records and the ExplainRing: inline-label truncation,
// seq stamping, wrap-around with drop counting, and newest-record lookup —
// the same ring contract the TraceEvent ring pins in trace_test.cpp.
#include "obs/explain.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/trace.h"
#include "support/check.h"

namespace osel::obs {
namespace {

DecisionExplain record(std::string_view region, double speedup = 1.0) {
  DecisionExplain out;
  out.setRegion(region);
  out.predictedSpeedup = speedup;
  return out;
}

TEST(DecisionPathNames, AreStable) {
  EXPECT_STREQ(toString(DecisionPath::Interpreted), "interpreted");
  EXPECT_STREQ(toString(DecisionPath::Compiled), "compiled");
  EXPECT_STREQ(toString(DecisionPath::Degenerate), "degenerate");
}

TEST(DecisionExplain, SetRegionTruncatesIntoInlineLabel) {
  DecisionExplain explain;
  explain.setRegion("gemm_k1");
  EXPECT_EQ(explain.regionView(), "gemm_k1");

  const std::string oversized(100, 'x');
  explain.setRegion(oversized);
  EXPECT_EQ(explain.regionView().size(), DecisionExplain::kLabelCapacity - 1);
  EXPECT_EQ(explain.regionView(),
            oversized.substr(0, DecisionExplain::kLabelCapacity - 1));

  explain.setRegion("");
  EXPECT_EQ(explain.regionView(), "");
}

TEST(ExplainRing, RejectsZeroCapacity) {
  EXPECT_THROW(ExplainRing(0), support::PreconditionError);
}

TEST(ExplainRing, PushStampsSequenceAndSnapshotIsOldestFirst) {
  ExplainRing ring(4);
  ring.push(record("a"));
  ring.push(record("b"));
  ring.push(record("c"));
  const std::vector<DecisionExplain> snapshot = ring.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].regionView(), "a");
  EXPECT_EQ(snapshot[0].seq, 0u);
  EXPECT_EQ(snapshot[1].seq, 1u);
  EXPECT_EQ(snapshot[2].regionView(), "c");
  EXPECT_EQ(ring.recorded(), 3u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(ExplainRing, WrapsOverwritingOldestAndCountsDrops) {
  ExplainRing ring(2);
  for (int i = 0; i < 5; ++i) {
    ring.push(record("r" + std::to_string(i)));
  }
  EXPECT_EQ(ring.recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 3u);
  const std::vector<DecisionExplain> snapshot = ring.snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].regionView(), "r3");
  EXPECT_EQ(snapshot[1].regionView(), "r4");
}

TEST(ExplainRing, LatestForFindsNewestSurvivingRecordPerRegion) {
  ExplainRing ring(8);
  ring.push(record("gemm_k1", 1.0));
  ring.push(record("atax_k1", 2.0));
  ring.push(record("gemm_k1", 3.0));
  DecisionExplain out;
  ASSERT_TRUE(ring.latestFor("gemm_k1", out));
  EXPECT_DOUBLE_EQ(out.predictedSpeedup, 3.0);
  ASSERT_TRUE(ring.latestFor("atax_k1", out));
  EXPECT_DOUBLE_EQ(out.predictedSpeedup, 2.0);
  EXPECT_FALSE(ring.latestFor("mvt_k1", out));
}

TEST(ExplainRing, ClearEmptiesBufferButKeepsCapacity) {
  ExplainRing ring(4);
  ring.push(record("a"));
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
  EXPECT_EQ(ring.capacity(), 4u);
  DecisionExplain out;
  EXPECT_FALSE(ring.latestFor("a", out));
}

TEST(TraceSessionExplain, RecordStampsTimestampOnlyWhenUnset) {
  TraceSession session({.explainCapacity = 4});
  DecisionExplain fresh = record("gemm_k1");
  ASSERT_EQ(fresh.atNs, 0);
  session.recordExplain(fresh);

  DecisionExplain stamped = record("atax_k1");
  stamped.atNs = 777;
  session.recordExplain(stamped);

  DecisionExplain out;
  ASSERT_TRUE(session.explainRing().latestFor("gemm_k1", out));
  EXPECT_GT(out.atNs, 0);  // session stamped nowNs()
  ASSERT_TRUE(session.explainRing().latestFor("atax_k1", out));
  EXPECT_EQ(out.atNs, 777);  // caller-provided timestamp preserved
}

}  // namespace
}  // namespace osel::obs

// Exporter goldens. Chrome's trace_event viewer is an external consumer, so
// the JSON shape is pinned byte for byte on hand-built events (explicit
// timestamps and tids make the output fully deterministic); the CSV export
// is pinned the same way, including RFC-4180 quoting of labels.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace osel::obs {
namespace {

TraceEvent makeEvent(EventKind kind, const char* name, const char* category,
                     std::string_view label, std::int64_t startNs,
                     std::int64_t durNs, std::uint32_t tid, std::uint64_t seq,
                     TraceArg arg0 = {}, TraceArg arg1 = {}) {
  TraceEvent event;
  event.kind = kind;
  event.name = name;
  event.category = category;
  const std::size_t n =
      std::min(label.size(), TraceEvent::kLabelCapacity - 1);
  std::memcpy(event.label.data(), label.data(), n);
  event.label[n] = '\0';
  event.startNs = startNs;
  event.durNs = durNs;
  event.tid = tid;
  event.seq = seq;
  event.args = {arg0, arg1};
  return event;
}

TEST(ChromeTrace, GoldenOutputForHandBuiltEvents) {
  const std::vector<TraceEvent> events{
      makeEvent(EventKind::Span, "decide", "compiled", "gemm_k1", 1500, 2500,
                7, 0, {"overhead_s", 2.5e-6}, {"valid", 1.0}),
      makeEvent(EventKind::Instant, "retry", "guard", "", 3000, 0, 7, 1,
                {"attempt", 2.0}),
      makeEvent(EventKind::Span, "x", "y", "a\"b\\c\nd", 0, 0, 0, 2),
  };
  const std::string expected = R"({"traceEvents":[
{"name":"decide","cat":"compiled","ph":"X","ts":1.5,"dur":2.5,"pid":1,"tid":7,"args":{"label":"gemm_k1","overhead_s":2.5e-06,"valid":1}},
{"name":"retry","cat":"guard","ph":"i","s":"t","ts":3,"pid":1,"tid":7,"args":{"attempt":2}},
{"name":"x","cat":"y","ph":"X","ts":0,"dur":0,"pid":1,"tid":0,"args":{"label":"a\"b\\c\nd"}}
],"displayTimeUnit":"ms"}
)";
  EXPECT_EQ(renderChromeTrace(events), expected);
}

TEST(ChromeTrace, EscapesControlCharactersAsUnicode) {
  const std::vector<TraceEvent> events{
      makeEvent(EventKind::Instant, "e", "c", std::string_view("a\t\x01z", 4),
                0, 0, 0, 0),
  };
  const std::string json = renderChromeTrace(events);
  EXPECT_NE(json.find(R"("label":"a\t\u0001z")"), std::string::npos) << json;
}

TEST(ChromeTrace, EmptyTraceIsStillAValidDocument) {
  EXPECT_EQ(renderChromeTrace(std::vector<TraceEvent>{}),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, SessionOverloadExportsTheSnapshot) {
  TraceSession session({.capacity = 4});
  session.recordSpan("decide", "compiled", "gemm_k1", 10, 20);
  const std::string json = renderChromeTrace(session);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"gemm_k1\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceCsv, GoldenOutputWithQuotedLabel) {
  const std::vector<TraceEvent> events{
      makeEvent(EventKind::Span, "decide", "compiled", "gemm_k1", 1500, 2500,
                7, 0, {"overhead_s", 2.5e-6}, {"valid", 1.0}),
      makeEvent(EventKind::Instant, "retry", "guard", "a,b", 3000, 0, 7, 1,
                {"attempt", 2.0}),
  };
  EXPECT_EQ(renderTraceCsv(events),
            "seq,kind,name,category,label,start_ns,dur_ns,tid,"
            "arg0,value0,arg1,value1\n"
            "0,span,decide,compiled,gemm_k1,1500,2500,7,"
            "overhead_s,2.5e-06,valid,1\n"
            "1,instant,retry,guard,\"a,b\",3000,0,7,attempt,2,,\n");
}

TEST(StatsSummary, ReportsRingMetricsAndPredictions) {
  TraceSession session({.capacity = 2});
  for (int i = 0; i < 3; ++i) session.recordInstant("e", "c", "", i);
  session.metrics().counter("decision.compiled").add(5);
  session.recordPrediction("gemm_k1", 1.5, 1.0);

  const std::string summary = renderStatsSummary(session);
  EXPECT_NE(summary.find("trace: 3 events recorded, 1 dropped (capacity 2)"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("decision.compiled"), std::string::npos);
  EXPECT_NE(summary.find("gemm_k1"), std::string::npos);
  EXPECT_NE(summary.find("50"), std::string::npos);  // 50% mean error
}

TEST(Prometheus, ExposesCountersGaugesAndCumulativeHistograms) {
  TraceSession session;
  session.metrics().counter("decision.compiled").add(3);
  session.metrics().gauge("decision_cache.hit_ratio").set(0.875);
  session.metrics().histogram("overhead_s", {1e-6, 1e-3}).record(5e-7);
  const std::string text = renderPrometheus(session);
  // Names sanitise '.' to '_' under the osel_ prefix; counters get _total.
  EXPECT_NE(text.find("# TYPE osel_decision_compiled counter\n"
                      "osel_decision_compiled_total 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("osel_decision_cache_hit_ratio 0.875\n"),
            std::string::npos);
  // Histogram buckets are cumulative and end with +Inf, then _sum/_count.
  EXPECT_NE(text.find("# TYPE osel_overhead_s histogram\n"
                      "osel_overhead_s_bucket{le=\"1e-06\"} 1\n"
                      "osel_overhead_s_bucket{le=\"0.001\"} 1\n"
                      "osel_overhead_s_bucket{le=\"+Inf\"} 1\n"
                      "osel_overhead_s_sum 5e-07\n"
                      "osel_overhead_s_count 1\n"),
            std::string::npos)
      << text;
  // The explain-ring counters close the exposition even when empty.
  EXPECT_NE(text.find("osel_explain_recorded_total 0\n"), std::string::npos);
  EXPECT_NE(text.find("osel_explain_dropped_total 0\n"), std::string::npos);
}

TEST(Prometheus, ExposesPerRegionPredictionAndDriftSeries) {
  TraceSession session;
  session.recordPrediction("gemm_k1", 1.5, 1.0);  // 50% abs rel error
  session.recordComparison("gemm_k1", true);
  const std::string text = renderPrometheus(session);
  EXPECT_NE(
      text.find("osel_prediction_launches_total{region=\"gemm_k1\"} 1\n"),
      std::string::npos)
      << text;
  EXPECT_NE(text.find(
                "osel_prediction_mean_abs_rel_error{region=\"gemm_k1\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("osel_region_drift_ewma{region=\"gemm_k1\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("osel_region_drift_mispredictions_total{region=\"gemm_k1\"} 1\n"),
      std::string::npos);
}

TEST(Prometheus, EscapesLabelValuesPerSpec) {
  TraceSession session;
  session.recordPrediction("a\"b\\c\nd", 2.0, 1.0);
  const std::string text = renderPrometheus(session);
  EXPECT_NE(text.find("{region=\"a\\\"b\\\\c\\nd\"}"), std::string::npos)
      << text;
}

TEST(ExplainJson, SpellsOutEveryModelTermAndNullsNonFiniteSpeedup) {
  DecisionExplain record;
  record.setRegion("gemm_k1");
  record.path = DecisionPath::Compiled;
  record.chosenGpu = true;
  record.predictedSpeedup = std::numeric_limits<double>::quiet_NaN();
  record.cpu.machineCyclesPerIter = 898.5;
  record.gpu.mwp = 12.25;
  const std::string json =
      renderExplainJson(std::vector<DecisionExplain>{record});
  EXPECT_NE(json.find("\"region\":\"gemm_k1\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"path\":\"compiled\""), std::string::npos);
  EXPECT_NE(json.find("\"chosen\":\"gpu\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_speedup\":null"), std::string::npos);
  EXPECT_NE(json.find("\"machine_cycles_per_iter\":898.5"), std::string::npos);
  EXPECT_NE(json.find("\"mwp\":12.25"), std::string::npos);
}

TEST(ExplainText, RendersBothModelTermTables) {
  DecisionExplain record;
  record.setRegion("atax_k1");
  record.valid = false;
  const std::string text = renderExplainText(record);
  EXPECT_NE(text.find("region: atax_k1"), std::string::npos);
  EXPECT_NE(text.find("cpu term (Liao-Chapman)"), std::string::npos);
  EXPECT_NE(text.find("gpu term (Hong-Kim + OMP ext)"), std::string::npos);
  EXPECT_NE(text.find("machine_cycles_per_iter (MCA)"), std::string::npos);
  EXPECT_NE(text.find("degenerate"), std::string::npos);
}

TEST(DriftReport, EmptySessionSaysSoAndSamplesProduceTheTable) {
  TraceSession session;
  EXPECT_EQ(renderDriftReport(session),
            "drift: no prediction samples recorded\n");
  session.recordPrediction("gemm_k1", 1.5, 1.0);
  session.recordComparison("gemm_k1", false);
  const std::string report = renderDriftReport(session);
  EXPECT_NE(report.find("gemm_k1"), std::string::npos) << report;
  EXPECT_NE(report.find("ok"), std::string::npos);
  EXPECT_NE(report.find("baseline window 8"), std::string::npos);
}

}  // namespace
}  // namespace osel::obs

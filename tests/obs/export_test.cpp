// Exporter goldens. Chrome's trace_event viewer is an external consumer, so
// the JSON shape is pinned byte for byte on hand-built events (explicit
// timestamps and tids make the output fully deterministic); the CSV export
// is pinned the same way, including RFC-4180 quoting of labels.
#include "obs/export.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace osel::obs {
namespace {

TraceEvent makeEvent(EventKind kind, const char* name, const char* category,
                     std::string_view label, std::int64_t startNs,
                     std::int64_t durNs, std::uint32_t tid, std::uint64_t seq,
                     TraceArg arg0 = {}, TraceArg arg1 = {}) {
  TraceEvent event;
  event.kind = kind;
  event.name = name;
  event.category = category;
  const std::size_t n =
      std::min(label.size(), TraceEvent::kLabelCapacity - 1);
  std::memcpy(event.label.data(), label.data(), n);
  event.label[n] = '\0';
  event.startNs = startNs;
  event.durNs = durNs;
  event.tid = tid;
  event.seq = seq;
  event.args = {arg0, arg1};
  return event;
}

TEST(ChromeTrace, GoldenOutputForHandBuiltEvents) {
  const std::vector<TraceEvent> events{
      makeEvent(EventKind::Span, "decide", "compiled", "gemm_k1", 1500, 2500,
                7, 0, {"overhead_s", 2.5e-6}, {"valid", 1.0}),
      makeEvent(EventKind::Instant, "retry", "guard", "", 3000, 0, 7, 1,
                {"attempt", 2.0}),
      makeEvent(EventKind::Span, "x", "y", "a\"b\\c\nd", 0, 0, 0, 2),
  };
  const std::string expected = R"({"traceEvents":[
{"name":"decide","cat":"compiled","ph":"X","ts":1.5,"dur":2.5,"pid":1,"tid":7,"args":{"label":"gemm_k1","overhead_s":2.5e-06,"valid":1}},
{"name":"retry","cat":"guard","ph":"i","s":"t","ts":3,"pid":1,"tid":7,"args":{"attempt":2}},
{"name":"x","cat":"y","ph":"X","ts":0,"dur":0,"pid":1,"tid":0,"args":{"label":"a\"b\\c\nd"}}
],"displayTimeUnit":"ms"}
)";
  EXPECT_EQ(renderChromeTrace(events), expected);
}

TEST(ChromeTrace, EscapesControlCharactersAsUnicode) {
  const std::vector<TraceEvent> events{
      makeEvent(EventKind::Instant, "e", "c", std::string_view("a\t\x01z", 4),
                0, 0, 0, 0),
  };
  const std::string json = renderChromeTrace(events);
  EXPECT_NE(json.find(R"("label":"a\t\u0001z")"), std::string::npos) << json;
}

TEST(ChromeTrace, EmptyTraceIsStillAValidDocument) {
  EXPECT_EQ(renderChromeTrace(std::vector<TraceEvent>{}),
            "{\"traceEvents\":[\n],\"displayTimeUnit\":\"ms\"}\n");
}

TEST(ChromeTrace, SessionOverloadExportsTheSnapshot) {
  TraceSession session({.capacity = 4});
  session.recordSpan("decide", "compiled", "gemm_k1", 10, 20);
  const std::string json = renderChromeTrace(session);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"name\":\"decide\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"gemm_k1\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(TraceCsv, GoldenOutputWithQuotedLabel) {
  const std::vector<TraceEvent> events{
      makeEvent(EventKind::Span, "decide", "compiled", "gemm_k1", 1500, 2500,
                7, 0, {"overhead_s", 2.5e-6}, {"valid", 1.0}),
      makeEvent(EventKind::Instant, "retry", "guard", "a,b", 3000, 0, 7, 1,
                {"attempt", 2.0}),
  };
  EXPECT_EQ(renderTraceCsv(events),
            "seq,kind,name,category,label,start_ns,dur_ns,tid,"
            "arg0,value0,arg1,value1\n"
            "0,span,decide,compiled,gemm_k1,1500,2500,7,"
            "overhead_s,2.5e-06,valid,1\n"
            "1,instant,retry,guard,\"a,b\",3000,0,7,attempt,2,,\n");
}

TEST(StatsSummary, ReportsRingMetricsAndPredictions) {
  TraceSession session({.capacity = 2});
  for (int i = 0; i < 3; ++i) session.recordInstant("e", "c", "", i);
  session.metrics().counter("decision.compiled").add(5);
  session.recordPrediction("gemm_k1", 1.5, 1.0);

  const std::string summary = renderStatsSummary(session);
  EXPECT_NE(summary.find("trace: 3 events recorded, 1 dropped (capacity 2)"),
            std::string::npos)
      << summary;
  EXPECT_NE(summary.find("decision.compiled"), std::string::npos);
  EXPECT_NE(summary.find("gemm_k1"), std::string::npos);
  EXPECT_NE(summary.find("50"), std::string::npos);  // 50% mean error
}

}  // namespace
}  // namespace osel::obs

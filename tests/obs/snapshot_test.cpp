// SnapshotWriter: tick-period rewrites, immediate flush, atomic replacement
// (no lingering temp file, readers only ever see a complete render), and
// counted failures on unwritable paths.
#include "obs/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/trace.h"
#include "support/check.h"

namespace osel::obs {
namespace {

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string tempPath(const char* name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

TEST(SnapshotWriter, RejectsBadOptions) {
  const auto render = [] { return std::string("x"); };
  EXPECT_THROW(SnapshotWriter({.path = ""}, render),
               support::PreconditionError);
  EXPECT_THROW(SnapshotWriter({.path = "f", .everyLaunches = 0}, render),
               support::PreconditionError);
  EXPECT_THROW(SnapshotWriter({.path = "f"}, nullptr),
               support::PreconditionError);
}

TEST(SnapshotWriter, WritesOnEveryNthTick) {
  const std::string path = tempPath("osel_snapshot_period.txt");
  std::filesystem::remove(path);
  int renders = 0;
  SnapshotWriter writer({.path = path, .everyLaunches = 3},
                        [&renders] { return std::to_string(++renders); });
  EXPECT_FALSE(writer.tick());
  EXPECT_FALSE(writer.tick());
  EXPECT_FALSE(std::filesystem::exists(path));  // off-period: no file yet
  EXPECT_TRUE(writer.tick());                   // third tick writes
  EXPECT_EQ(readFile(path), "1");
  EXPECT_FALSE(writer.tick());
  EXPECT_FALSE(writer.tick());
  EXPECT_TRUE(writer.tick());
  EXPECT_EQ(readFile(path), "2");  // replaced, not appended
  EXPECT_EQ(writer.ticks(), 6u);
  EXPECT_EQ(writer.writes(), 2u);
  EXPECT_EQ(writer.writeFailures(), 0u);
  std::filesystem::remove(path);
}

TEST(SnapshotWriter, FlushWritesImmediatelyAndLeavesNoTempFile) {
  const std::string path = tempPath("osel_snapshot_flush.txt");
  std::filesystem::remove(path);
  SnapshotWriter writer({.path = path, .everyLaunches = 1000},
                        [] { return std::string("payload\n"); });
  EXPECT_TRUE(writer.flush());
  EXPECT_EQ(readFile(path), "payload\n");
  // The atomic-replace temp file must not survive a successful write.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(writer.writes(), 1u);
  EXPECT_EQ(writer.ticks(), 0u);  // flush is not a tick
  std::filesystem::remove(path);
}

TEST(SnapshotWriter, UnwritablePathCountsFailuresWithoutThrowing) {
  SnapshotWriter writer(
      {.path = "/nonexistent-dir-osel/snapshot.txt", .everyLaunches = 1},
      [] { return std::string("x"); });
  EXPECT_FALSE(writer.flush());
  EXPECT_FALSE(writer.tick());
  EXPECT_EQ(writer.writeFailures(), 2u);
  EXPECT_EQ(writer.writes(), 0u);
}

TEST(SnapshotWriter, TickDrivenThroughSessionNotifyLaunch) {
  // The runtime-facing wiring: attach to a TraceSession and let
  // notifyLaunch() drive the period.
  const std::string path = tempPath("osel_snapshot_session.txt");
  std::filesystem::remove(path);
  TraceSession session;
  SnapshotWriter writer({.path = path, .everyLaunches = 2},
                        [&session] { return renderStatsSummary(session); });
  session.attachSnapshotWriter(&writer);
  session.notifyLaunch();
  EXPECT_FALSE(std::filesystem::exists(path));
  session.notifyLaunch();
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_NE(readFile(path).find("trace:"), std::string::npos);
  // Detach: further launches no longer tick the writer.
  session.attachSnapshotWriter(nullptr);
  session.notifyLaunch();
  session.notifyLaunch();
  EXPECT_EQ(writer.ticks(), 2u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace osel::obs

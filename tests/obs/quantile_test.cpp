// The shared quantile estimators (obs/quantile.h) every latency-reporting
// surface uses: nearest-rank percentiles over sorted samples (the bench
// harnesses) and interpolated quantiles from fixed-bucket histogram state
// (`oselctl top` over the Prometheus _bucket series).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "obs/quantile.h"
#include "support/check.h"

namespace osel::obs {
namespace {

TEST(Quantile, PercentileOfSortedUsesNearestRank) {
  std::vector<double> sorted;
  for (int i = 1; i <= 100; ++i) sorted.push_back(static_cast<double>(i));
  // rank = floor(p * (size - 1)) — the convention the benches always used.
  EXPECT_EQ(percentileOfSorted(sorted, 0.0), 1.0);
  EXPECT_EQ(percentileOfSorted(sorted, 0.5), 50.0);
  EXPECT_EQ(percentileOfSorted(sorted, 0.99), 99.0);
  EXPECT_EQ(percentileOfSorted(sorted, 1.0), 100.0);
}

TEST(Quantile, PercentileOfSortedHandlesEdges) {
  EXPECT_TRUE(std::isnan(percentileOfSorted({}, 0.5)));
  const std::vector<double> one{7.0};
  EXPECT_EQ(percentileOfSorted(one, 0.0), 7.0);
  EXPECT_EQ(percentileOfSorted(one, 1.0), 7.0);
  // p is clamped, not rejected.
  const std::vector<double> pair{1.0, 2.0};
  EXPECT_EQ(percentileOfSorted(pair, -0.5), 1.0);
  EXPECT_EQ(percentileOfSorted(pair, 1.5), 2.0);
}

TEST(Quantile, FromBucketsInterpolatesInsideTheCrossingBucket) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  // All 10 samples fell in (1, 2]; the median interpolates to the middle.
  const std::vector<std::uint64_t> counts{0, 10, 0, 0};
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, counts, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, counts, 1.0), 2.0);
  // First bucket interpolates from an implicit lower bound of 0.
  const std::vector<std::uint64_t> first{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, first, 0.5), 0.5);
}

TEST(Quantile, FromBucketsSpansMultipleBuckets) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts{5, 5, 10, 0};  // total 20
  // q=0.25 -> rank 5, exactly the first bucket's cumulative edge.
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, counts, 0.25), 1.0);
  // q=0.75 -> rank 15, halfway through the (2, 4] bucket.
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, counts, 0.75), 3.0);
}

TEST(Quantile, FromBucketsOverflowResolvesToLargestFiniteBound) {
  const std::vector<double> bounds{1.0, 2.0, 4.0};
  const std::vector<std::uint64_t> counts{0, 0, 0, 5};  // all overflow
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, counts, 0.5), 4.0);
  // A tail rank past the finite buckets clamps the same way.
  const std::vector<std::uint64_t> mixed{8, 0, 0, 2};
  EXPECT_DOUBLE_EQ(quantileFromBuckets(bounds, mixed, 0.999), 4.0);
}

TEST(Quantile, FromBucketsRejectsEmptyAndMalformedState) {
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::uint64_t> empty{0, 0, 0};
  EXPECT_TRUE(std::isnan(quantileFromBuckets(bounds, empty, 0.5)));
  // The overflow-bucket shape invariant is a hard precondition.
  const std::vector<std::uint64_t> wrongShape{1, 2};
  EXPECT_THROW((void)quantileFromBuckets(bounds, wrongShape, 0.5),
               support::PreconditionError);
}

}  // namespace
}  // namespace osel::obs

// Analysis-level expectations for the Polybench kernels: IPDA coalescing
// verdicts and compiler features must match what the loop structure implies.
#include <gtest/gtest.h>

#include <array>

#include "compiler/compiler.h"
#include "ipda/ipda.h"
#include "polybench/polybench.h"

namespace osel::polybench {
namespace {

const ir::TargetRegion& kernelOf(const std::string& benchmark, std::size_t index) {
  return benchmarkByName(benchmark).kernels().at(index);
}

ipda::Analysis::SiteCounts countsFor(const ir::TargetRegion& region,
                                     std::int64_t n) {
  return ipda::Analysis::analyze(region).classifySites({{"n", n}});
}

TEST(PolybenchIpda, GemmIsFullyCoalescedOrUniform) {
  // Thread var j: A[i][k] uniform, B[k][j] + C accesses coalesced.
  const auto counts = countsFor(kernelOf("GEMM", 0), 1100);
  EXPECT_EQ(counts.strided, 0);
  EXPECT_EQ(counts.irregular, 0);
  EXPECT_GT(counts.coalesced, 0);
  EXPECT_GT(counts.uniform, 0);
}

TEST(PolybenchIpda, MvtKernelsContrastInCoalescing) {
  // mvt_k1 reads A[i][j] with thread var i -> strided by n.
  const auto k1 = countsFor(kernelOf("MVT", 0), 1100);
  EXPECT_GT(k1.strided, 0);
  // mvt_k2 reads A[j][i] with thread var i -> coalesced.
  const auto k2 = countsFor(kernelOf("MVT", 1), 1100);
  EXPECT_EQ(k2.strided, 0);
}

TEST(PolybenchIpda, AtaxKernelsContrastInCoalescing) {
  const auto k1 = countsFor(kernelOf("ATAX", 0), 1100);  // A[i][j], thread i
  EXPECT_GT(k1.strided, 0);
  const auto k2 = countsFor(kernelOf("ATAX", 1), 1100);  // A[i][j], thread j
  EXPECT_EQ(k2.strided, 0);
  EXPECT_GT(k2.coalesced, 0);
}

TEST(PolybenchIpda, SyrkHasStridedRowAccess) {
  // A[j][k] with thread var j: stride n -> the paper's SYRK coalescing
  // penalty (§IV.E).
  const auto counts = countsFor(kernelOf("SYRK", 0), 1100);
  EXPECT_GT(counts.strided, 0);
}

TEST(PolybenchIpda, Conv2dCoalescedConv3dStrided) {
  // 2DCONV: thread var j is the fastest array dimension -> coalesced.
  const auto conv2d = countsFor(kernelOf("2DCONV", 0), 1100);
  EXPECT_EQ(conv2d.strided, 0);
  EXPECT_EQ(conv2d.irregular, 0);
  // 3DCONV: threads span (i, j) while k is the fastest dimension, so
  // adjacent threads sit n elements apart — heavily memory-bound, the
  // kernel Table I shows flipping from K80 slowdown to V100 speedup.
  const auto conv3d = countsFor(kernelOf("3DCONV", 0), 256);
  EXPECT_GT(conv3d.strided, 0);
  EXPECT_EQ(conv3d.irregular, 0);
}

TEST(PolybenchIpda, CorrStddevBranchExists) {
  // corr_k2 carries the eps-guard conditional the 50%-branch abstraction
  // mis-models (the interpreter resolves it from real data).
  const auto sites = ir::collectAccesses(kernelOf("CORR", 1));
  bool anyGuarded = false;
  for (const auto& site : sites) anyGuarded |= site.branchDepth > 0;
  // The guard itself contains no array access; instead check the region has
  // a conditional statement.
  bool hasIf = false;
  ir::forEachStmt(kernelOf("CORR", 1).body, [&](const ir::Stmt& stmt) {
    hasIf |= stmt.kind() == ir::Stmt::Kind::If;
  });
  EXPECT_TRUE(hasIf);
  (void)anyGuarded;
}

TEST(PolybenchCompiler, AllKernelsAnalyzeCleanly) {
  const std::array<mca::MachineModel, 2> models{mca::MachineModel::power9(),
                                                mca::MachineModel::power8()};
  for (const Benchmark& benchmark : suite()) {
    for (const auto& kernel : benchmark.kernels()) {
      const pad::RegionAttributes attr = compiler::analyzeRegion(kernel, models);
      EXPECT_GT(attr.machineCyclesPerIter.at("POWER9"), 0.0) << kernel.name;
      EXPECT_GT(attr.loadInstsPerIter + attr.storeInstsPerIter, 0.0)
          << kernel.name;
      EXPECT_FALSE(attr.strides.empty()) << kernel.name;
      // All Polybench kernels are F32.
      EXPECT_DOUBLE_EQ(attr.fp64Fraction, 0.0) << kernel.name;
    }
  }
}

TEST(PolybenchCompiler, TriangularKernelsHaveSpecialOps) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  // corr_k2 computes sqrt.
  const pad::RegionAttributes attr =
      compiler::analyzeRegion(kernelOf("CORR", 1), models);
  EXPECT_GT(attr.specialInstsPerIter, 0.0);
}

TEST(PolybenchCompiler, TransferExpressionsMatchRegionAccounting) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const symbolic::Bindings bindings{{"n", 1100}};
  for (const Benchmark& benchmark : suite()) {
    for (const auto& kernel : benchmark.kernels()) {
      const pad::RegionAttributes attr = compiler::analyzeRegion(kernel, models);
      EXPECT_EQ(attr.bytesToDevice.evaluate(bindings),
                kernel.bytesToDevice(bindings))
          << kernel.name;
      EXPECT_EQ(attr.bytesFromDevice.evaluate(bindings),
                kernel.bytesFromDevice(bindings))
          << kernel.name;
      EXPECT_EQ(attr.flatTripCount.evaluate(bindings),
                kernel.flatTripCount(bindings))
          << kernel.name;
    }
  }
}

}  // namespace
}  // namespace osel::polybench

#include "polybench/polybench.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace osel::polybench {
namespace {

TEST(Suite, ThirteenBenchmarksInPaperOrder) {
  const auto& all = suite();
  ASSERT_EQ(all.size(), 13u);
  const std::vector<std::string> expected{
      "GEMM", "MVT",    "3MM",     "2MM",   "ATAX",  "BICG", "2DCONV",
      "3DCONV", "COVAR", "GESUMMV", "SYR2K", "SYRK", "CORR"};
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(all[i].name(), expected[i]);
}

TEST(Suite, TwentyFourKernelsTotal) {
  std::size_t kernels = 0;
  for (const Benchmark& b : suite()) kernels += b.kernels().size();
  EXPECT_EQ(kernels, 24u);
}

TEST(Suite, KernelCountsPerBenchmark) {
  EXPECT_EQ(benchmarkByName("GEMM").kernels().size(), 1u);
  EXPECT_EQ(benchmarkByName("MVT").kernels().size(), 2u);
  EXPECT_EQ(benchmarkByName("3MM").kernels().size(), 3u);
  EXPECT_EQ(benchmarkByName("2MM").kernels().size(), 2u);
  EXPECT_EQ(benchmarkByName("ATAX").kernels().size(), 2u);
  EXPECT_EQ(benchmarkByName("BICG").kernels().size(), 2u);
  EXPECT_EQ(benchmarkByName("2DCONV").kernels().size(), 1u);
  EXPECT_EQ(benchmarkByName("3DCONV").kernels().size(), 1u);
  EXPECT_EQ(benchmarkByName("COVAR").kernels().size(), 3u);
  EXPECT_EQ(benchmarkByName("GESUMMV").kernels().size(), 1u);
  EXPECT_EQ(benchmarkByName("SYR2K").kernels().size(), 1u);
  EXPECT_EQ(benchmarkByName("SYRK").kernels().size(), 1u);
  EXPECT_EQ(benchmarkByName("CORR").kernels().size(), 4u);
}

TEST(Suite, PaperDatasetSizes) {
  // §III: test = 1100x1100, benchmark = 9600x9600 "in most programs".
  for (const Benchmark& b : suite()) {
    if (b.name() == "3DCONV") {
      EXPECT_LT(b.size(Mode::Benchmark), 1024);  // cubes stay tractable
      continue;
    }
    EXPECT_EQ(b.size(Mode::Test), 1100);
    EXPECT_EQ(b.size(Mode::Benchmark), 9600);
  }
}

TEST(Suite, UnknownBenchmarkThrows) {
  EXPECT_THROW((void)benchmarkByName("FFT"), support::PreconditionError);
}

TEST(Suite, AllKernelsVerify) {
  for (const Benchmark& b : suite()) {
    for (const auto& kernel : b.kernels())
      EXPECT_NO_THROW(kernel.verify()) << kernel.name;
  }
}

TEST(Suite, KernelNamesAreUniqueAndPrefixed) {
  std::set<std::string> names;
  for (const Benchmark& b : suite()) {
    for (const auto& kernel : b.kernels()) {
      EXPECT_TRUE(names.insert(kernel.name).second) << kernel.name;
    }
  }
  EXPECT_EQ(names.size(), 24u);
}

TEST(Suite, AllocateCoversEveryKernelArray) {
  for (const Benchmark& b : suite()) {
    const auto bindings = b.bindings(16);
    const ir::ArrayStore store = b.allocate(bindings);
    for (const auto& kernel : b.kernels()) {
      for (const auto& decl : kernel.arrays) {
        const auto it = store.find(decl.name);
        ASSERT_NE(it, store.end()) << b.name() << "/" << decl.name;
        EXPECT_EQ(static_cast<std::int64_t>(it->second.size()),
                  decl.elementCount(bindings));
      }
    }
  }
}

TEST(Suite, BindingsRejectDegenerateSizes) {
  EXPECT_THROW((void)benchmarkByName("GEMM").bindings(2),
               support::PreconditionError);
}

TEST(Suite, ModeNames) {
  EXPECT_EQ(toString(Mode::Test), "test");
  EXPECT_EQ(toString(Mode::Benchmark), "benchmark");
}

/// Functional validation: for every benchmark, executing all kernel IRs
/// through the interpreter must reproduce the native reference pipeline.
class PipelineCorrectness : public ::testing::TestWithParam<std::string> {};

TEST_P(PipelineCorrectness, InterpreterMatchesReference) {
  const Benchmark& benchmark = benchmarkByName(GetParam());
  const std::int64_t n = 20;
  const auto bindings = benchmark.bindings(n);

  ir::ArrayStore viaIr = benchmark.allocate(bindings);
  initializeInputs(benchmark, bindings, viaIr);
  for (const auto& kernel : benchmark.kernels())
    ir::CompiledRegion(kernel, bindings).runAll(viaIr);

  ir::ArrayStore viaRef = benchmark.allocate(bindings);
  initializeInputs(benchmark, bindings, viaRef);
  referenceExecute(benchmark, bindings, viaRef);

  for (const auto& [name, expected] : viaRef) {
    const auto& actual = viaIr.at(name);
    ASSERT_EQ(actual.size(), expected.size()) << name;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_NEAR(actual[i], expected[i], 1e-9)
          << name << "[" << i << "] in " << benchmark.name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, PipelineCorrectness,
                         ::testing::Values("GEMM", "MVT", "3MM", "2MM", "ATAX",
                                           "BICG", "2DCONV", "3DCONV", "COVAR",
                                           "GESUMMV", "SYR2K", "SYRK", "CORR"));

}  // namespace
}  // namespace osel::polybench

// Suite-wide analysis snapshot: coarse invariants pinned for every kernel,
// so a regression anywhere in the analysis stack (loadout, IPDA, MCA
// composition, transfer accounting) trips immediately even when no
// fine-grained unit test covers the exact kernel.
#include <gtest/gtest.h>

#include <array>

#include "compiler/compiler.h"
#include "ipda/ipda.h"
#include "ir/cost_walk.h"
#include "ir/traversal.h"
#include "polybench/polybench.h"

namespace osel::polybench {
namespace {

class SuiteSnapshot : public ::testing::TestWithParam<std::string> {};

TEST_P(SuiteSnapshot, AnalysisInvariantsHoldForEveryKernel) {
  const Benchmark& benchmark = benchmarkByName(GetParam());
  const std::array<mca::MachineModel, 2> models{mca::MachineModel::power9(),
                                                mca::MachineModel::power8()};
  const symbolic::Bindings bindings = benchmark.bindings(200);
  for (const ir::TargetRegion& kernel : benchmark.kernels()) {
    SCOPED_TRACE(kernel.name);
    const auto sites = ir::collectAccesses(kernel);
    EXPECT_FALSE(sites.empty());

    // IPDA covers every access site; every record is either affine with a
    // runtime-resolvable stride or explicitly non-affine.
    const ipda::Analysis ipdaResult = ipda::Analysis::analyze(kernel);
    ASSERT_EQ(ipdaResult.records().size(), sites.size());
    const auto counts = ipdaResult.classifySites(bindings);
    EXPECT_EQ(counts.coalesced + counts.uniform + counts.strided +
                  counts.irregular,
              static_cast<std::int64_t>(sites.size()));

    // Loadout/PAD sanity.
    const pad::RegionAttributes attr = compiler::analyzeRegion(kernel, models);
    EXPECT_GT(attr.loadInstsPerIter + attr.storeInstsPerIter, 0.0);
    EXPECT_GE(attr.compInstsPerIter, 0.0);
    EXPECT_EQ(attr.strides.size(), sites.size());
    EXPECT_GT(attr.bytesTouchedPerIteration, 0.0);
    EXPECT_GT(attr.flatTripCount.evaluate(bindings), 0);
    EXPECT_GE(attr.bytesToDevice.evaluate(bindings), 0);
    EXPECT_GT(attr.bytesFromDevice.evaluate(bindings), 0)
        << "every kernel produces output";

    // MCA composition: positive and mutually sane. (POWER8's shallower
    // FPU actually has *lower* per-op latency than POWER9's; the
    // generational gap comes from width/vector/memory, so the two
    // estimates may order either way but never wildly.)
    const double p9 = attr.machineCyclesPerIter.at("POWER9");
    const double p8 = attr.machineCyclesPerIter.at("POWER8");
    EXPECT_GT(p9, 0.0);
    EXPECT_GT(p8, 0.0);
    EXPECT_LT(p8 / p9, 3.0);
    EXPECT_GT(p8 / p9, 1.0 / 3.0);

    // Runtime-average counts at this size dominate a single statement pass.
    const ir::WalkPolicy policy{ir::WalkPolicy::TripMode::RuntimeAverage,
                                128.0, 0.5};
    const ir::DynamicCounts dynamic =
        ir::estimateDynamicCounts(kernel, bindings, policy);
    EXPECT_GT(dynamic.totalEvents(), 0.0);
    EXPECT_EQ(dynamic.siteCounts.size(), sites.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, SuiteSnapshot,
                         ::testing::Values("GEMM", "MVT", "3MM", "2MM", "ATAX",
                                           "BICG", "2DCONV", "3DCONV", "COVAR",
                                           "GESUMMV", "SYR2K", "SYRK", "CORR"));

}  // namespace
}  // namespace osel::polybench

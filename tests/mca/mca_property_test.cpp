// Property tests over random micro-op blocks: pipeline-simulation invariants
// that must hold for any program and any of the shipped machine models.
#include <gtest/gtest.h>

#include <cstdint>

#include "mca/pipeline_sim.h"
#include "support/rng.h"

namespace osel::mca {
namespace {

MCProgram randomProgram(support::SplitMix64& rng) {
  constexpr MOp kOps[] = {MOp::FAdd, MOp::FMul, MOp::FDiv, MOp::Load,
                          MOp::Store, MOp::IAlu, MOp::FSqrt};
  MCProgram p;
  const int count = 2 + static_cast<int>(rng.nextBelow(14));
  Reg next = 1;  // r0 is a live-in
  for (int i = 0; i < count; ++i) {
    MInst inst;
    inst.op = kOps[rng.nextBelow(std::size(kOps))];
    const int numSrcs = static_cast<int>(rng.nextBelow(3));
    for (int s = 0; s < numSrcs; ++s)
      inst.srcs.push_back(static_cast<Reg>(rng.nextBelow(
          static_cast<std::uint64_t>(next))));
    inst.dest = (inst.op == MOp::Store) ? kInvalidReg : next++;
    p.insts.push_back(std::move(inst));
  }
  p.regCount = next;
  // Occasionally add a loop-carried chain from r0 to the last def.
  if (rng.nextBelow(2) == 0 && next > 1)
    p.loopCarried = {{0, next - 1}};
  return p;
}

class McaProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McaProperty, CyclesMonotoneInIterations) {
  support::SplitMix64 rng(GetParam());
  const MCProgram p = randomProgram(rng);
  const MachineModel model = MachineModel::power9();
  std::uint64_t previous = 0;
  for (const int iterations : {1, 3, 9, 27}) {
    const SimResult r = simulate(p, model, iterations);
    EXPECT_GE(r.totalCycles, previous);
    previous = r.totalCycles;
  }
}

TEST_P(McaProperty, IpcBoundedByDispatchWidth) {
  support::SplitMix64 rng(GetParam() ^ 0xBEEF);
  const MCProgram p = randomProgram(rng);
  for (const MachineModel& model :
       {MachineModel::power9(), MachineModel::power8(),
        MachineModel::scalarLatencySum()}) {
    const SimResult r = simulate(p, model, 8);
    EXPECT_LE(r.ipc, static_cast<double>(model.dispatchWidth) + 1e-9)
        << model.name;
    EXPECT_GT(r.ipc, 0.0);
  }
}

TEST_P(McaProperty, LatencySumModelIsUpperBound) {
  // A machine with zero overlap can never beat one with an OoO window.
  support::SplitMix64 rng(GetParam() ^ 0xFEED);
  const MCProgram p = randomProgram(rng);
  const SimResult smart = simulate(p, MachineModel::power9(), 8);
  const SimResult naive = simulate(p, MachineModel::scalarLatencySum(), 8);
  // Not strictly comparable per-op (latencies match for these two tables),
  // so compare with a small tolerance on equality.
  EXPECT_LE(smart.totalCycles, naive.totalCycles);
}

TEST_P(McaProperty, SteadyStateAtMostFirstIterationCost) {
  support::SplitMix64 rng(GetParam() ^ 0xABBA);
  const MCProgram p = randomProgram(rng);
  const MachineModel model = MachineModel::power9();
  const double warm = steadyStateCyclesPerIteration(p, model, 16);
  const SimResult cold = simulate(p, model, 1);
  EXPECT_LE(warm, static_cast<double>(cold.totalCycles) + 1e-9);
  EXPECT_GE(warm, 0.0);
}

TEST_P(McaProperty, PressureFractionsWithinBounds) {
  support::SplitMix64 rng(GetParam() ^ 0xD00D);
  const MCProgram p = randomProgram(rng);
  const SimResult r = simulate(p, MachineModel::power8(), 8);
  for (const double pressure : r.pipePressure) {
    EXPECT_GE(pressure, 0.0);
    EXPECT_LE(pressure, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McaProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace osel::mca

#include "mca/pipeline_sim.h"

#include <gtest/gtest.h>

#include <sstream>

#include "support/check.h"

namespace osel::mca {
namespace {

/// Builds an MInst quickly.
MInst I(MOp op, Reg dest, std::vector<Reg> srcs = {}) {
  return MInst{op, dest, std::move(srcs)};
}

MachineModel simpleModel() {
  MachineModel m;
  m.name = "simple";
  m.dispatchWidth = 2;
  m.windowSize = 8;
  m.retireWidth = 2;
  m.pipeNames = {"P0", "P1"};
  m.ops = {
      {MOp::FAdd, {3, 0b01, 1}},  {MOp::FMul, {3, 0b01, 1}},
      {MOp::FDiv, {10, 0b01, 8}}, {MOp::FSqrt, {12, 0b01, 10}},
      {MOp::FSpec, {20, 0b01, 16}}, {MOp::Load, {4, 0b10, 1}},
      {MOp::Store, {1, 0b10, 1}}, {MOp::IAlu, {1, 0b11, 1}},
      {MOp::Cmp, {1, 0b11, 1}},   {MOp::Branch, {1, 0b11, 1}},
  };
  return m;
}

TEST(PipelineSim, EmptyProgramIsFree) {
  const SimResult r = simulate(MCProgram{}, simpleModel(), 4);
  EXPECT_EQ(r.totalCycles, 0u);
  EXPECT_EQ(r.instructions, 0u);
}

TEST(PipelineSim, SingleInstructionLatency) {
  MCProgram p;
  p.insts = {I(MOp::FAdd, 0)};
  p.regCount = 1;
  const SimResult r = simulate(p, simpleModel(), 1);
  // Issued at cycle 0, result at cycle 3, retires that cycle.
  EXPECT_EQ(r.totalCycles, 4u);
}

TEST(PipelineSim, DependencyChainSerializes) {
  // r1 = f(r0); r2 = f(r1); r3 = f(r2): 3 x 3-cycle latency.
  MCProgram p;
  p.insts = {I(MOp::FAdd, 1, {0}), I(MOp::FAdd, 2, {1}), I(MOp::FAdd, 3, {2})};
  p.regCount = 4;
  const SimResult chain = simulate(p, simpleModel(), 1);

  // Independent instructions on one pipe: issue back-to-back.
  MCProgram q;
  q.insts = {I(MOp::FAdd, 1, {0}), I(MOp::FAdd, 2, {0}), I(MOp::FAdd, 3, {0})};
  q.regCount = 4;
  const SimResult parallel = simulate(q, simpleModel(), 1);

  EXPECT_GT(chain.totalCycles, parallel.totalCycles);
  EXPECT_GE(chain.totalCycles, 9u);  // 3 chained 3-cycle ops
}

TEST(PipelineSim, LoopCarriedChainBoundsThroughput) {
  // acc = acc + x: loop-carried FAdd; steady state = FAdd latency (3).
  MCProgram p;
  p.insts = {I(MOp::FAdd, 1, {0})};
  p.regCount = 2;
  p.loopCarried = {{0, 1}};
  const double perIter = steadyStateCyclesPerIteration(p, simpleModel(), 32);
  EXPECT_NEAR(perIter, 3.0, 0.2);
}

TEST(PipelineSim, IndependentIterationsPipelineFully) {
  // Without the loop-carried edge the same block pipelines at 1/cycle.
  MCProgram p;
  p.insts = {I(MOp::FAdd, 1, {0})};
  p.regCount = 2;
  const double perIter = steadyStateCyclesPerIteration(p, simpleModel(), 32);
  EXPECT_NEAR(perIter, 1.0, 0.2);
}

TEST(PipelineSim, OccupancyThrottlesUnpipelinedOps) {
  // FDiv occupancy 8 on a single permitted pipe: back-to-back divides cost
  // ~8 cycles each in steady state even without data dependencies.
  MCProgram p;
  p.insts = {I(MOp::FDiv, 1, {0})};
  p.regCount = 2;
  const double perIter = steadyStateCyclesPerIteration(p, simpleModel(), 16);
  EXPECT_NEAR(perIter, 8.0, 0.5);
}

TEST(PipelineSim, IpcNeverExceedsDispatchWidth) {
  MCProgram p;
  // 6 independent IAlu ops (both pipes allowed).
  for (Reg r = 1; r <= 6; ++r) p.insts.push_back(I(MOp::IAlu, r, {0}));
  p.regCount = 7;
  const SimResult r = simulate(p, simpleModel(), 16);
  EXPECT_LE(r.ipc, 2.0 + 1e-9);  // dispatchWidth == 2
  EXPECT_GT(r.ipc, 1.5);         // and it should get close
}

TEST(PipelineSim, PressureIdentifiesBottleneckPipe) {
  MCProgram p;
  // Loads only -> P1 (the LSU-ish pipe) must be the bottleneck.
  for (Reg r = 1; r <= 4; ++r) p.insts.push_back(I(MOp::Load, r));
  p.regCount = 5;
  const SimResult r = simulate(p, simpleModel(), 8);
  EXPECT_EQ(r.bottleneckPipe, "P1");
  EXPECT_GT(r.pipePressure[1], r.pipePressure[0]);
}

TEST(PipelineSim, PressureWithinUnitInterval) {
  MCProgram p;
  p.insts = {I(MOp::Load, 1), I(MOp::FMul, 2, {1}), I(MOp::Store, kInvalidReg, {2})};
  p.regCount = 3;
  const SimResult r = simulate(p, simpleModel(), 16);
  for (const double pressure : r.pipePressure) {
    EXPECT_GE(pressure, 0.0);
    EXPECT_LE(pressure, 1.0 + 1e-9);
  }
}

TEST(PipelineSim, MoreIterationsMoreCycles) {
  MCProgram p;
  p.insts = {I(MOp::FAdd, 1, {0}), I(MOp::Load, 2), I(MOp::FMul, 3, {1, 2})};
  p.regCount = 4;
  const auto model = simpleModel();
  std::uint64_t previous = 0;
  for (int iterations : {1, 2, 4, 8, 16}) {
    const SimResult r = simulate(p, model, iterations);
    EXPECT_GT(r.totalCycles, previous);
    previous = r.totalCycles;
  }
}

TEST(PipelineSim, ScalarLatencySumModelMatchesLatencySum) {
  // The ablation baseline: with a single one-entry window and
  // occupancy==latency, total cycles per iteration equal the plain sum of
  // instruction latencies.
  const MachineModel naive = MachineModel::scalarLatencySum();
  MCProgram p;
  p.insts = {I(MOp::Load, 1), I(MOp::FMul, 2, {1}), I(MOp::FAdd, 3, {2}),
             I(MOp::Store, kInvalidReg, {3})};
  p.regCount = 4;
  const double expected = 5 + 7 + 7 + 1;  // load + fmul + fadd + store
  const double perIter = steadyStateCyclesPerIteration(p, naive, 8);
  EXPECT_NEAR(perIter, expected, 1.0);
}

TEST(PipelineSim, Power9OverlapsBetterThanLatencySum) {
  // The whole point of the MCA integration (paper §IV.A.1): a real
  // scheduler model exposes ILP the naive latency sum cannot see.
  MCProgram p;
  p.insts = {I(MOp::Load, 1),        I(MOp::Load, 2),
             I(MOp::FMul, 3, {1, 2}), I(MOp::FAdd, 4, {0, 3}),
             I(MOp::IAlu, 5, {6})};
  p.regCount = 7;
  p.loopCarried = {{0, 4}, {6, 5}};  // accumulator + induction
  const double smart =
      steadyStateCyclesPerIteration(p, MachineModel::power9(), 32);
  const double naive =
      steadyStateCyclesPerIteration(p, MachineModel::scalarLatencySum(), 32);
  EXPECT_LT(smart, naive);
  // Steady state of a loop-carried FAdd chain on POWER9: 7 cycles.
  EXPECT_NEAR(smart, 7.0, 0.5);
}

TEST(PipelineSim, RejectsZeroIterations) {
  EXPECT_THROW((void)simulate(MCProgram{}, simpleModel(), 0),
               support::PreconditionError);
}

TEST(PipelineSim, ReportContainsSummaryAndPressure) {
  MCProgram p;
  p.insts = {I(MOp::Load, 1), I(MOp::FAdd, 2, {1})};
  p.regCount = 3;
  const MachineModel model = MachineModel::power9();
  const SimResult r = simulate(p, model, 8);
  const std::string report = renderReport(r, model);
  EXPECT_NE(report.find("Target:            POWER9"), std::string::npos);
  EXPECT_NE(report.find("IPC:"), std::string::npos);
  EXPECT_NE(report.find("LSU0"), std::string::npos);
  EXPECT_NE(report.find("bottleneck"), std::string::npos);
}

TEST(PipelineSim, TimelineShowsDispatchExecuteRetire) {
  MCProgram p;
  p.insts = {I(MOp::Load, 1), I(MOp::FAdd, 2, {1})};
  p.regCount = 3;
  const std::string timeline = renderTimeline(p, simpleModel(), 2, 60);
  EXPECT_NE(timeline.find("Timeline"), std::string::npos);
  EXPECT_NE(timeline.find('D'), std::string::npos);
  EXPECT_NE(timeline.find('E'), std::string::npos);
  EXPECT_NE(timeline.find('R'), std::string::npos);
  EXPECT_NE(timeline.find("load"), std::string::npos);
  // One row per dynamic instruction: 2 insts x 2 iterations + header.
  EXPECT_EQ(std::count(timeline.begin(), timeline.end(), '\n'), 5);
}

TEST(PipelineSim, TimelineDependentInstructionStartsAfterProducer) {
  MCProgram p;
  p.insts = {I(MOp::Load, 1), I(MOp::FAdd, 2, {1})};
  p.regCount = 3;
  const std::string timeline = renderTimeline(p, simpleModel(), 1, 60);
  // The consumer's first 'e' must come after the producer's 'E' column.
  const auto lines = [&] {
    std::vector<std::string> out;
    std::istringstream in(timeline);
    std::string line;
    while (std::getline(in, line)) out.push_back(line);
    return out;
  }();
  ASSERT_GE(lines.size(), 3u);
  // Completion and retire can coincide (R overwrites E), so compare the
  // retire columns: in-order retirement of a dependent pair must be
  // strictly later for the consumer.
  const std::size_t producerR = lines[1].find('R');
  const std::size_t consumerR = lines[2].find('R');
  ASSERT_NE(producerR, std::string::npos);
  ASSERT_NE(consumerR, std::string::npos);
  EXPECT_GT(consumerR, producerR);
}

TEST(PipelineSim, TimelineRejectsBadArgs) {
  MCProgram p;
  p.insts = {I(MOp::FAdd, 1)};
  p.regCount = 2;
  EXPECT_THROW((void)renderTimeline(p, simpleModel(), 0), support::PreconditionError);
  EXPECT_THROW((void)renderTimeline(p, simpleModel(), 1, 0),
               support::PreconditionError);
}

TEST(PipelineSim, MachineModelLookupThrowsForMissingOp) {
  MachineModel m;
  m.name = "empty";
  m.pipeNames = {"P0"};
  EXPECT_THROW((void)m.opModel(MOp::FAdd), support::PreconditionError);
}

}  // namespace
}  // namespace osel::mca

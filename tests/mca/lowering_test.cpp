#include "mca/lowering.h"

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "support/check.h"

namespace osel::mca {
namespace {

using namespace osel::ir;

TargetRegion axpyRegion() {
  return RegionBuilder("axpy")
      .param("n")
      .array("x", ScalarType::F64, {sym("n")}, Transfer::To)
      .array("y", ScalarType::F64, {sym("n")}, Transfer::ToFrom)
      .parallelFor("i", sym("n"))
      .statement(Stmt::store("y", {sym("i")},
                             num(2.0) * read("x", {sym("i")}) +
                                 read("y", {sym("i")})))
      .build();
}

std::size_t countOps(const MCProgram& program, MOp op) {
  std::size_t count = 0;
  for (const MInst& inst : program.insts) {
    if (inst.op == op) ++count;
  }
  return count;
}

TEST(Lowering, AxpyOpMix) {
  const TargetRegion region = axpyRegion();
  const MCProgram program = lowerStraightLine(region, region.body);
  EXPECT_EQ(countOps(program, MOp::Load), 2u);
  EXPECT_EQ(countOps(program, MOp::Store), 1u);
  EXPECT_EQ(countOps(program, MOp::FMul), 1u);
  EXPECT_EQ(countOps(program, MOp::FAdd), 1u);
  // Address arithmetic exists for each [i]-indexed access.
  EXPECT_GE(countOps(program, MOp::IAlu), 3u);
}

TEST(Lowering, RejectsControlFlow) {
  const TargetRegion region =
      RegionBuilder("loopy")
          .param("n")
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::seqLoop("k", cst(0), sym("n"),
                                   {Stmt::store("y", {sym("k")}, num(1.0))}))
          .build();
  EXPECT_THROW((void)lowerStraightLine(region, region.body),
               support::PreconditionError);
}

TEST(Lowering, ReductionAccumulatorIsLoopCarried) {
  // Inner GEMM body: acc = acc + A[i][k]*B[k][j], lowered as a loop over k.
  const TargetRegion region =
      RegionBuilder("gemm_inner")
          .param("n")
          .array("A", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
          .array("B", ScalarType::F64, {sym("n"), sym("n")}, Transfer::To)
          .array("C", ScalarType::F64, {sym("n"), sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .parallelFor("j", sym("n"))
          .statement(Stmt::assign("acc", num(0.0)))
          .statement(Stmt::seqLoop(
              "k", cst(0), sym("n"),
              {Stmt::assign("acc", local("acc") +
                                       read("A", {sym("i"), sym("k")}) *
                                           read("B", {sym("k"), sym("j")}))}))
          .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
          .build();
  const MCProgram body =
      lowerLoopBody(region, region.body[1].loopBody(), "k");
  // Two loop-carried chains: the accumulator and the induction variable.
  EXPECT_EQ(body.loopCarried.size(), 2u);
  EXPECT_EQ(countOps(body, MOp::Load), 2u);
  EXPECT_EQ(countOps(body, MOp::FAdd), 1u);
  EXPECT_EQ(countOps(body, MOp::FMul), 1u);
}

TEST(Lowering, StraightLineWithoutReassignmentHasNoLoopCarried) {
  const TargetRegion region = axpyRegion();
  const MCProgram program = lowerStraightLine(region, region.body);
  EXPECT_TRUE(program.loopCarried.empty());
}

TEST(Lowering, ConditionLowersToCmpAndBranch) {
  const TargetRegion region =
      RegionBuilder("guarded")
          .param("n")
          .array("s", ScalarType::F64, {sym("n")}, Transfer::ToFrom)
          .parallelFor("j", sym("n"))
          .statement(Stmt::ifStmt(
              Condition{read("s", {sym("j")}), CmpOp::LE, num(0.1)},
              {Stmt::store("s", {sym("j")}, num(1.0))}))
          .build();
  const MCProgram cond = lowerCondition(region, region.body[0].condition());
  EXPECT_EQ(countOps(cond, MOp::Cmp), 1u);
  EXPECT_EQ(countOps(cond, MOp::Branch), 1u);
  EXPECT_EQ(countOps(cond, MOp::Load), 1u);  // s[j] operand
}

TEST(Lowering, ConstantIndexNeedsNoAddressArithmetic) {
  const TargetRegion region =
      RegionBuilder("fixed")
          .param("n")
          .array("y", ScalarType::F64, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("y", {cst(0)}, num(1.0)))
          .build();
  const MCProgram program = lowerStraightLine(region, region.body);
  EXPECT_EQ(countOps(program, MOp::IAlu), 0u);
  EXPECT_EQ(countOps(program, MOp::Store), 1u);
}

TEST(Lowering, UnaryOpClasses) {
  const TargetRegion region =
      RegionBuilder("unary")
          .param("n")
          .array("y", ScalarType::F64, {sym("n")}, Transfer::ToFrom)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store(
              "y", {sym("i")},
              Value::unary(UnOp::Sqrt,
                           Value::unary(UnOp::Exp,
                                        Value::unary(UnOp::Abs,
                                                     read("y", {sym("i")}))))))
          .build();
  const MCProgram program = lowerStraightLine(region, region.body);
  EXPECT_EQ(countOps(program, MOp::FSqrt), 1u);
  EXPECT_EQ(countOps(program, MOp::FSpec), 1u);
  EXPECT_EQ(countOps(program, MOp::FAdd), 1u);  // Abs maps to the cheap class
}

TEST(Lowering, RegCountCoversAllRegisters) {
  const TargetRegion region = axpyRegion();
  const MCProgram program = lowerStraightLine(region, region.body);
  for (const MInst& inst : program.insts) {
    if (inst.dest != kInvalidReg) {
      EXPECT_LT(inst.dest, program.regCount);
    }
    for (const Reg src : inst.srcs) {
      EXPECT_GE(src, 0);
      EXPECT_LT(src, program.regCount);
    }
  }
}

TEST(Lowering, ProgramToStringListsInstructions) {
  const TargetRegion region = axpyRegion();
  const MCProgram program = lowerStraightLine(region, region.body);
  const std::string text = program.toString();
  EXPECT_NE(text.find("load"), std::string::npos);
  EXPECT_NE(text.find("store"), std::string::npos);
  EXPECT_NE(text.find("fmul"), std::string::npos);
}

}  // namespace
}  // namespace osel::mca

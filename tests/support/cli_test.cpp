#include "support/cli.h"

#include <gtest/gtest.h>

namespace osel::support {
namespace {

CommandLine parseArgs(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CommandLine::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CommandLine, ParsesEqualsForm) {
  const auto cl = parseArgs({"--scale=4"});
  EXPECT_EQ(cl.intOption("scale", 1), 4);
}

TEST(CommandLine, ParsesSpaceForm) {
  const auto cl = parseArgs({"--mode", "benchmark"});
  EXPECT_EQ(cl.stringOption("mode").value_or(""), "benchmark");
}

TEST(CommandLine, BareFlag) {
  const auto cl = parseArgs({"--csv"});
  EXPECT_TRUE(cl.hasFlag("csv"));
  EXPECT_FALSE(cl.hasFlag("json"));
}

TEST(CommandLine, PositionalArguments) {
  const auto cl = parseArgs({"gemm", "mvt", "--csv"});
  ASSERT_EQ(cl.positional().size(), 2u);
  EXPECT_EQ(cl.positional()[0], "gemm");
  EXPECT_EQ(cl.positional()[1], "mvt");
  EXPECT_TRUE(cl.hasFlag("csv"));
}

TEST(CommandLine, OptionGreedilyBindsFollowingToken) {
  // Documented semantics: "--key value" binds, so a bare flag directly
  // before a positional must use the "--key=" or trailing position.
  const auto cl = parseArgs({"--csv", "mvt"});
  EXPECT_EQ(cl.stringOption("csv").value_or(""), "mvt");
  EXPECT_TRUE(cl.positional().empty());
}

TEST(CommandLine, DefaultsWhenAbsent) {
  const auto cl = parseArgs({});
  EXPECT_EQ(cl.intOption("threads", 160), 160);
  EXPECT_DOUBLE_EQ(cl.doubleOption("alpha", 1.5), 1.5);
  EXPECT_FALSE(cl.stringOption("mode").has_value());
}

TEST(CommandLine, DoubleOption) {
  const auto cl = parseArgs({"--alpha=0.25"});
  EXPECT_DOUBLE_EQ(cl.doubleOption("alpha", 0.0), 0.25);
}

TEST(CommandLine, FlagFollowedByOptionDoesNotSwallowIt) {
  const auto cl = parseArgs({"--csv", "--scale", "2"});
  EXPECT_TRUE(cl.hasFlag("csv"));
  EXPECT_EQ(cl.intOption("scale", 1), 2);
}

}  // namespace
}  // namespace osel::support

#include "support/statistics.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "support/check.h"
#include "support/rng.h"

namespace osel::support {
namespace {

TEST(Statistics, MeanOfSingleton) {
  const std::array<double, 1> xs{42.0};
  EXPECT_DOUBLE_EQ(mean(xs), 42.0);
}

TEST(Statistics, MeanOfUniformSequence) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Statistics, MeanRejectsEmpty) {
  EXPECT_THROW((void)mean({}), PreconditionError);
}

TEST(Statistics, GeometricMeanOfEqualValues) {
  const std::array<double, 3> xs{7.0, 7.0, 7.0};
  EXPECT_NEAR(geometricMean(xs), 7.0, 1e-12);
}

TEST(Statistics, GeometricMeanOfSpeedups) {
  // geomean(2, 8) = 4 — the paper's headline metric (§IV.E).
  const std::array<double, 2> xs{2.0, 8.0};
  EXPECT_NEAR(geometricMean(xs), 4.0, 1e-12);
}

TEST(Statistics, GeometricMeanRejectsNonPositive) {
  const std::array<double, 2> xs{2.0, 0.0};
  EXPECT_THROW((void)geometricMean(xs), PreconditionError);
}

TEST(Statistics, GeometricMeanHandlesManyLargeValuesWithoutOverflow) {
  std::vector<double> xs(1000, 1e300);
  EXPECT_NEAR(geometricMean(xs) / 1e300, 1.0, 1e-9);
}

TEST(Statistics, GeometricMeanNeverExceedsArithmeticMean) {
  SplitMix64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<double> xs;
    for (int i = 0; i < 10; ++i) xs.push_back(0.01 + rng.nextDouble() * 100.0);
    EXPECT_LE(geometricMean(xs), mean(xs) + 1e-9);
  }
}

TEST(Statistics, PopulationStdDevOfConstant) {
  const std::array<double, 5> xs{3.0, 3.0, 3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(populationStdDev(xs), 0.0);
}

TEST(Statistics, PopulationStdDevKnownValue) {
  const std::array<double, 2> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(populationStdDev(xs), 1.0);
}

TEST(Statistics, SummarizeReportsAllFields) {
  const std::array<double, 4> xs{4.0, 1.0, 3.0, 2.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Statistics, MapeZeroWhenExact) {
  const std::array<double, 3> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(meanAbsolutePercentageError(a, a), 0.0);
}

TEST(Statistics, MapeKnownValue) {
  const std::array<double, 2> predicted{1.1, 0.9};
  const std::array<double, 2> actual{1.0, 1.0};
  EXPECT_NEAR(meanAbsolutePercentageError(predicted, actual), 10.0, 1e-9);
}

TEST(Statistics, MapeRejectsLengthMismatch) {
  const std::array<double, 2> predicted{1.0, 2.0};
  const std::array<double, 1> actual{1.0};
  EXPECT_THROW((void)meanAbsolutePercentageError(predicted, actual), PreconditionError);
}

TEST(Statistics, AgreementRateCountsDecisionMatches) {
  // Offloading decision agreement at speedup threshold 1.0: the prediction
  // matters only through which side of 1.0 it lands on.
  const std::array<double, 4> predicted{0.5, 1.2, 3.0, 0.9};
  const std::array<double, 4> actual{0.8, 4.0, 0.7, 0.99};
  EXPECT_DOUBLE_EQ(agreementRate(predicted, actual, 1.0), 0.75);
}

TEST(Statistics, AgreementRatePerfectWhenIdentical) {
  const std::array<double, 3> xs{0.5, 1.5, 2.5};
  EXPECT_DOUBLE_EQ(agreementRate(xs, xs, 1.0), 1.0);
}

}  // namespace
}  // namespace osel::support

#include "support/cache_sim.h"

#include <gtest/gtest.h>

#include "support/check.h"
#include "support/rng.h"

namespace osel::support {
namespace {

TEST(CacheSim, ColdMissThenHit) {
  SetAssociativeCache cache(1024, 4, 32);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(31));  // same 32B line
  EXPECT_FALSE(cache.access(32)); // next line
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(CacheSim, LruEvictionOrder) {
  // Direct-mapped-by-set with 2 ways: fill a set, touch way A, insert a
  // third line -> way B evicted.
  SetAssociativeCache cache(/*capacity=*/2 * 32, /*assoc=*/2, /*line=*/32);
  // One set only: lines 0, 1, 2 all map to it.
  EXPECT_FALSE(cache.access(0));        // miss, insert line 0
  EXPECT_FALSE(cache.access(32));       // miss, insert line 1
  EXPECT_TRUE(cache.access(0));         // hit, line 0 becomes MRU
  EXPECT_FALSE(cache.access(64));       // miss, evicts line 1 (LRU)
  EXPECT_TRUE(cache.access(0));         // line 0 survived
  EXPECT_FALSE(cache.access(32));       // line 1 gone
}

TEST(CacheSim, WorkingSetWithinCapacityAllHitsOnSecondPass) {
  SetAssociativeCache cache(64 * 1024, 8, 64);
  for (std::int64_t a = 0; a < 32 * 1024; a += 64) cache.access(a);
  const std::uint64_t missesAfterWarmup = cache.misses();
  for (std::int64_t a = 0; a < 32 * 1024; a += 64) EXPECT_TRUE(cache.access(a));
  EXPECT_EQ(cache.misses(), missesAfterWarmup);
}

TEST(CacheSim, StreamingLargerThanCapacityKeepsMissing) {
  SetAssociativeCache cache(4 * 1024, 4, 64);
  // Two passes over a 64 KiB stream: LRU keeps evicting, second pass
  // mostly misses too.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::int64_t a = 0; a < 64 * 1024; a += 64) cache.access(a);
  }
  EXPECT_LT(cache.hitRate(), 0.05);
}

TEST(CacheSim, ZeroCapacityAlwaysMisses) {
  SetAssociativeCache cache(0, 4, 32);
  for (std::int64_t a = 0; a < 1024; a += 32) EXPECT_FALSE(cache.access(a));
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(CacheSim, ResetClearsContentsAndStats) {
  SetAssociativeCache cache(1024, 4, 32);
  cache.access(0);
  cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.access(0));  // cold again
}

TEST(CacheSim, HitRateComputation) {
  SetAssociativeCache cache(1024, 4, 32);
  EXPECT_DOUBLE_EQ(cache.hitRate(), 0.0);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  cache.access(0);
  EXPECT_DOUBLE_EQ(cache.hitRate(), 0.75);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(SetAssociativeCache(1024, 0, 32), PreconditionError);
  EXPECT_THROW(SetAssociativeCache(1024, 4, 0), PreconditionError);
  EXPECT_THROW(SetAssociativeCache(-1, 4, 32), PreconditionError);
}

TEST(CacheSim, AssociativityReducesConflictMisses) {
  // Pathological stride hitting one set: higher associativity helps.
  auto conflictMisses = [](int assoc) {
    SetAssociativeCache cache(8 * 1024, assoc, 64);
    // Stride = cache capacity / assoc lands every access in the same set.
    const std::int64_t setStride = 8 * 1024 / assoc;
    for (int pass = 0; pass < 4; ++pass) {
      for (int i = 0; i < 4; ++i) cache.access(i * setStride);
    }
    return cache.misses();
  };
  EXPECT_GT(conflictMisses(1), conflictMisses(4));
}

TEST(CacheSim, RandomAccessesNeverCrash) {
  SplitMix64 rng(99);
  SetAssociativeCache cache(16 * 1024, 4, 32);
  for (int i = 0; i < 100000; ++i)
    cache.access(static_cast<std::int64_t>(rng.nextBelow(1u << 24)));
  EXPECT_EQ(cache.hits() + cache.misses(), 100000u);
}

}  // namespace
}  // namespace osel::support

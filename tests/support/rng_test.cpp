#include "support/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace osel::support {
namespace {

TEST(SplitMix64, DeterministicForSameSeed) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GT(differing, 12);
}

TEST(SplitMix64, DoublesInUnitInterval) {
  SplitMix64 rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.nextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(SplitMix64, NextBelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(SplitMix64, NextBelowZeroBound) {
  SplitMix64 rng(7);
  EXPECT_EQ(rng.nextBelow(0), 0u);
}

TEST(SplitMix64, NextBelowCoversRange) {
  SplitMix64 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.nextBelow(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SplitMix64, RoughlyUniformDoubles) {
  SplitMix64 rng(11);
  std::vector<int> histogram(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i)
    ++histogram[static_cast<std::size_t>(rng.nextDouble() * 10.0)];
  for (const int count : histogram) {
    EXPECT_GT(count, kSamples / 10 * 0.9);
    EXPECT_LT(count, kSamples / 10 * 1.1);
  }
}

}  // namespace
}  // namespace osel::support

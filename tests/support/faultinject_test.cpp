// The fault-injection framework itself: arming semantics, deterministic
// firing, counters, the error taxonomy, and the disarmed fast path.
#include "support/faultinject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/check.h"

namespace osel::support {
namespace {

class FaultInjectTest : public ::testing::Test {
 protected:
  void TearDown() override { faultInjector().disarmAll(); }
};

TEST_F(FaultInjectTest, DisarmedPointIsANoOp) {
  EXPECT_FALSE(faultInjector().armed("nowhere"));
  EXPECT_DOUBLE_EQ(faultInjector().hit("nowhere", "GPU"), 0.0);
  EXPECT_EQ(faultInjector().stats("nowhere").hits, 0u);
}

TEST_F(FaultInjectTest, ArmedThrowingFaultFiresTypedError) {
  faultInjector().arm("p", {.kind = FaultKind::TransientLaunch});
  EXPECT_TRUE(faultInjector().armed("p"));
  EXPECT_THROW((void)faultInjector().hit("p", "GPU"), TransientLaunchError);
  faultInjector().arm("p", {.kind = FaultKind::DeviceMemory});
  EXPECT_THROW((void)faultInjector().hit("p", "GPU"), DeviceMemoryError);
  faultInjector().arm("p", {.kind = FaultKind::DeviceLost});
  EXPECT_THROW((void)faultInjector().hit("p", "GPU"), DeviceLostError);
}

TEST_F(FaultInjectTest, ErrorsCarryDeviceAndPoint) {
  faultInjector().arm("gpu.launch", {.kind = FaultKind::DeviceLost});
  try {
    (void)faultInjector().hit("gpu.launch", "GPU");
    FAIL() << "expected DeviceLostError";
  } catch (const DeviceLostError& error) {
    EXPECT_EQ(error.device(), "GPU");
    EXPECT_NE(std::string(error.what()).find("gpu.launch"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("device-lost"), std::string::npos);
  }
}

TEST_F(FaultInjectTest, AllTypedErrorsAreDeviceErrors) {
  faultInjector().arm("p", {.kind = FaultKind::DeviceMemory});
  EXPECT_THROW((void)faultInjector().hit("p", "GPU"), DeviceError);
}

TEST_F(FaultInjectTest, LatencyFaultReturnsSecondsWithoutThrowing) {
  faultInjector().arm("p",
                      {.kind = FaultKind::Latency, .latencySeconds = 2.5e-3});
  EXPECT_DOUBLE_EQ(faultInjector().hit("p", "GPU"), 2.5e-3);
}

TEST_F(FaultInjectTest, MaxFiresCapsThenPassesThrough) {
  faultInjector().arm(
      "p", {.kind = FaultKind::TransientLaunch, .maxFires = 2});
  EXPECT_THROW((void)faultInjector().hit("p", "GPU"), TransientLaunchError);
  EXPECT_THROW((void)faultInjector().hit("p", "GPU"), TransientLaunchError);
  EXPECT_DOUBLE_EQ(faultInjector().hit("p", "GPU"), 0.0);
  EXPECT_DOUBLE_EQ(faultInjector().hit("p", "GPU"), 0.0);
  const FaultStats stats = faultInjector().stats("p");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST_F(FaultInjectTest, ProbabilityZeroNeverFires) {
  faultInjector().arm("p", {.probability = 0.0});
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(faultInjector().hit("p", "GPU"), 0.0);
  EXPECT_EQ(faultInjector().stats("p").fires, 0u);
  EXPECT_EQ(faultInjector().stats("p").hits, 100u);
}

std::vector<bool> firePattern(std::uint64_t seed, double probability, int n) {
  faultInjector().arm("pattern", {.kind = FaultKind::TransientLaunch,
                                  .probability = probability,
                                  .seed = seed});
  std::vector<bool> fired;
  for (int i = 0; i < n; ++i) {
    try {
      (void)faultInjector().hit("pattern", "GPU");
      fired.push_back(false);
    } catch (const TransientLaunchError&) {
      fired.push_back(true);
    }
  }
  faultInjector().disarm("pattern");
  return fired;
}

TEST_F(FaultInjectTest, SeededStreamIsDeterministic) {
  const auto a = firePattern(42, 0.3, 200);
  const auto b = firePattern(42, 0.3, 200);
  EXPECT_EQ(a, b);
  // A different seed produces a different pattern (overwhelmingly likely).
  EXPECT_NE(a, firePattern(43, 0.3, 200));
}

TEST_F(FaultInjectTest, FireRateTracksProbability) {
  const auto fired = firePattern(7, 0.3, 1000);
  const auto count = std::count(fired.begin(), fired.end(), true);
  EXPECT_GT(count, 230);
  EXPECT_LT(count, 370);
}

TEST_F(FaultInjectTest, StatsSurviveDisarm) {
  faultInjector().arm("p", {.kind = FaultKind::Latency, .latencySeconds = 1e-6});
  (void)faultInjector().hit("p", "GPU");
  faultInjector().disarm("p");
  EXPECT_FALSE(faultInjector().armed("p"));
  EXPECT_EQ(faultInjector().stats("p").fires, 1u);
  // Re-arming resets the counters.
  faultInjector().arm("p", {.kind = FaultKind::Latency, .latencySeconds = 1e-6});
  EXPECT_EQ(faultInjector().stats("p").fires, 0u);
}

TEST_F(FaultInjectTest, ScopedFaultDisarmsOnScopeExit) {
  {
    const ScopedFault scoped("p", {.kind = FaultKind::TransientLaunch});
    EXPECT_TRUE(faultInjector().armed("p"));
  }
  EXPECT_FALSE(faultInjector().armed("p"));
}

TEST_F(FaultInjectTest, ArmRejectsMalformedSpecs) {
  EXPECT_THROW(faultInjector().arm("", {}), PreconditionError);
  EXPECT_THROW(faultInjector().arm("p", {.probability = 1.5}),
               PreconditionError);
  EXPECT_THROW(faultInjector().arm("p", {.maxFires = -1}), PreconditionError);
  EXPECT_THROW(faultInjector().arm("p", {.latencySeconds = -1.0}),
               PreconditionError);
}

TEST_F(FaultInjectTest, FaultKindNames) {
  EXPECT_EQ(toString(FaultKind::TransientLaunch), "transient-launch");
  EXPECT_EQ(toString(FaultKind::DeviceMemory), "device-memory");
  EXPECT_EQ(toString(FaultKind::DeviceLost), "device-lost");
  EXPECT_EQ(toString(FaultKind::Latency), "latency");
}

}  // namespace
}  // namespace osel::support

#include "support/format.h"

#include <gtest/gtest.h>

namespace osel::support {
namespace {

TEST(Format, FixedDecimals) {
  EXPECT_EQ(formatFixed(3.14159, 2), "3.14");
  EXPECT_EQ(formatFixed(-1.0, 0), "-1");
  EXPECT_EQ(formatFixed(0.005, 2), "0.01");
}

TEST(Format, SpeedupMatchesPaperStyle) {
  EXPECT_EQ(formatSpeedup(4.41), "4.41x");
  EXPECT_EQ(formatSpeedup(0.47), "0.47x");
  EXPECT_EQ(formatSpeedup(40.69), "40.69x");
}

TEST(Format, SecondsAdaptiveUnits) {
  EXPECT_EQ(formatSeconds(1.5), "1.500 s");
  EXPECT_EQ(formatSeconds(0.0025), "2.500 ms");
  EXPECT_EQ(formatSeconds(3.2e-6), "3.200 us");
  EXPECT_EQ(formatSeconds(5e-9), "5.0 ns");
}

TEST(Format, BytesAdaptiveUnits) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.00 KiB");
  EXPECT_EQ(formatBytes(3u * 1024 * 1024), "3.00 MiB");
  EXPECT_EQ(formatBytes(5ull * 1024 * 1024 * 1024), "5.00 GiB");
}

TEST(Format, CountThousandsSeparators) {
  EXPECT_EQ(formatCount(0), "0");
  EXPECT_EQ(formatCount(999), "999");
  EXPECT_EQ(formatCount(1000), "1,000");
  EXPECT_EQ(formatCount(12345678), "12,345,678");
}

TEST(Format, CsvFieldPassesPlainTextThrough) {
  EXPECT_EQ(csvField("gemm_k1"), "gemm_k1");
  EXPECT_EQ(csvField(""), "");
}

TEST(Format, CsvFieldQuotesRfc4180Specials) {
  EXPECT_EQ(csvField("a,b"), "\"a,b\"");
  EXPECT_EQ(csvField("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csvField("line\nbreak"), "\"line\nbreak\"");
  EXPECT_EQ(csvField("cr\rhere"), "\"cr\rhere\"");
}

TEST(Format, CsvQuoteAppendsInPlaceAndMatchesCsvField) {
  // The append-style primitive the renderers share (metrics CSV, trace CSV,
  // launch-log CSV): same RFC-4180 rules as csvField, no temporary string.
  std::string out = "prefix,";
  csvQuote(out, "plain");
  EXPECT_EQ(out, "prefix,plain");
  csvQuote(out, ",");
  EXPECT_EQ(out, "prefix,plain\",\"");
  for (const char* field :
       {"gemm_k1", "", "a,b", "say \"hi\"", "line\nbreak", "cr\rhere",
        "\"leading", "trailing\""}) {
    std::string appended;
    csvQuote(appended, field);
    EXPECT_EQ(appended, csvField(field)) << field;
  }
}

TEST(Format, Percent) {
  EXPECT_EQ(formatPercent(0.123), "12.3%");
  EXPECT_EQ(formatPercent(1.0), "100.0%");
}

}  // namespace
}  // namespace osel::support

#include "support/table.h"

#include <gtest/gtest.h>

#include "support/check.h"

namespace osel::support {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable table({"Kernel", "Speedup"});
  table.addRow({"GEMM", "4.41x"});
  table.addRow({"CORR", "0.47x"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Kernel"), std::string::npos);
  EXPECT_NE(out.find("GEMM"), std::string::npos);
  EXPECT_NE(out.find("0.47x"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"A", "B"});
  table.addRow({"x", "1"});
  table.addRow({"longer", "22"});
  const std::string out = table.render();
  // Every line has the same width up to trailing content.
  const std::size_t firstNewline = out.find('\n');
  ASSERT_NE(firstNewline, std::string::npos);
  // Right-aligned numeric column: "1" should be preceded by a space pad.
  EXPECT_NE(out.find(" 1\n"), std::string::npos);
}

TEST(TextTable, RejectsColumnCountMismatch) {
  TextTable table({"A", "B"});
  EXPECT_THROW(table.addRow({"only-one"}), PreconditionError);
}

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), PreconditionError);
}

TEST(TextTable, CsvEscapesSpecialCharacters) {
  TextTable table({"name", "value"});
  table.addRow({"a,b", "say \"hi\""});
  const std::string csv = table.renderCsv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TextTable, CsvSkipsSeparators) {
  TextTable table({"h"});
  table.addRow({"1"});
  table.addSeparator();
  table.addRow({"2"});
  const std::string csv = table.renderCsv();
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(TextTable, SeparatorRendersDashes) {
  TextTable table({"h"});
  table.addRow({"1"});
  table.addSeparator();
  const std::string out = table.render();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TextTable, IndentAppliesToEveryLine) {
  TextTable table({"h"});
  table.addRow({"1"});
  const std::string out = table.render(4);
  EXPECT_EQ(out.rfind("    h", 0), 0u);
  EXPECT_NE(out.find("\n    "), std::string::npos);
}

TEST(TextTable, AlignmentOverrideRespected) {
  TextTable table({"n", "v"});
  table.setAlignment({Align::Right, Align::Left});
  table.addRow({"1", "x"});
  table.addRow({"22", "yy"});
  const std::string out = table.render();
  EXPECT_NE(out.find(" 1"), std::string::npos);
}

TEST(TextTable, SetAlignmentRejectsWrongArity) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.setAlignment({Align::Left}), PreconditionError);
}

}  // namespace
}  // namespace osel::support

// loadgen_oseld — open-loop load generator for the oseld wire protocol.
//
// Sweeps connection counts × frame batch sizes over the workload::
// generators (or a recorded trace) against a live daemon — or, by default,
// an in-process loopback service::Server — and reports decisions/sec plus
// p50/p99/p999 of the amortized per-decision exchange latency. This is the
// socket-layer counterpart of suite_batch_decide: the same streams, but
// every decision crosses the wire. docs/SERVICE.md §Benchmarking shows
// sample output.
//
// Options:
//   --socket PATH     aim at an external daemon instead of the loopback
//                     server (then --check assumes it runs the default
//                     oseld model configuration)
//   --clients LIST    comma list of concurrent connections
//                     (default 1,8,32,64)
//   --batch LIST      comma list of rows per frame; 1 = scalar
//                     DecideRequest frames (default 1,64)
//   --requests N      decisions per client per run (default 4096)
//   --workload W      uniform | zipfian | bursty (default uniform; bursty
//                     honors gaps, which open-loop throughput then reflects)
//   --seed S          generator seed (default 2019); client c uses S + c so
//                     connections do not send identical streams
//   --zipf-s S        Zipf exponent (default 1.2)
//   --trace-in FILE   replay a versioned workload trace (#!osel-trace;
//                     mismatched versions are rejected) instead of
//                     generating
//   --check           also decide the whole stream through an identically
//                     configured in-process TargetRuntime and fail unless
//                     every socket decision is bit-identical
//   --policy P        selection policy for the loopback server:
//                     model-compare (default) | calibrated | hysteresis |
//                     epsilon-greedy (docs/POLICIES.md). Rejected with
//                     --socket (configure an external daemon via
//                     `oseld --policy`) and, for stateful policies, with
//                     --check (the bit-identity contract is defined
//                     against the deterministic model-compare choice)
//   --guard-min-per-sec X    exit 1 unless the best batched row sustains
//                            at least X decisions/sec
//   --guard-batch-speedup X  exit 1 unless the largest batch size sustains
//                            at least X times the batch=1 throughput at
//                            the same client count (the perf-smoke guard)
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <latch>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/common/policy_flag.h"
#include "compiler/compiler.h"
#include "obs/quantile.h"
#include "polybench/polybench.h"
#include "runtime/batch.h"
#include "service/client.h"
#include "service/server.h"
#include "support/cli.h"
#include "workload/workload.h"

namespace {

using namespace osel;
using Clock = std::chrono::steady_clock;

constexpr std::array<std::int64_t, 4> kSizes{256, 512, 1024, 2048};

std::vector<workload::Candidate> makeCandidates() {
  std::vector<workload::Candidate> candidates;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    std::vector<symbolic::Bindings> choices;
    choices.reserve(kSizes.size());
    for (const std::int64_t n : kSizes) {
      choices.push_back(benchmark.bindings(n));
    }
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      candidates.push_back({kernel.name, choices});
    }
  }
  return candidates;
}

/// The model configuration both the loopback server and the --check
/// reference runtime share (and `oseld`'s defaults match).
runtime::RuntimeOptions referenceOptions() {
  runtime::RuntimeOptions options;
  options.selector.cpuThreads = 160;
  options.cpuSimThreads = 160;
  return options;
}

std::vector<ir::TargetRegion> suiteRegions() {
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      regions.push_back(kernel);
    }
  }
  return regions;
}

pad::AttributeDatabase makeDatabase() {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  return compiler::compileAll(suiteRegions(), models);
}

/// One wire-ready DecideBatch frame: up to `batch` rows for a single
/// region, already slot-major. `positions` maps frame row -> stream index
/// so --check can restore stream order. Views alias the source item vector,
/// which outlives the run.
struct PreparedFrame {
  std::string_view region;
  std::vector<std::string_view> slots;
  std::uint32_t rows = 0;
  std::vector<std::int64_t> values;
  std::vector<std::size_t> positions;
  double gapSeconds = 0.0;  ///< summed pacing gaps of the frame's items
};

/// Batches the stream the way a real batching client would: per-region
/// accumulation in stream order, flushing a DecideBatch frame whenever a
/// region collects `batch` rows (the wire carries one region per frame),
/// with partial frames flushed at end of stream. Done before the clock
/// starts: the timed loop should measure framing + syscalls + server work,
/// not this bookkeeping.
std::vector<PreparedFrame> prepareFrames(
    const std::vector<workload::Item>& items, std::size_t batch) {
  std::vector<PreparedFrame> frames;
  frames.reserve(items.size() / batch + 1);
  std::map<std::string_view, std::vector<std::size_t>> pending;
  const auto flush = [&](std::string_view region,
                         std::vector<std::size_t>& rows) {
    PreparedFrame frame;
    frame.region = region;
    frame.rows = static_cast<std::uint32_t>(rows.size());
    for (const auto& [symbol, value] : items[rows.front()].bindings) {
      frame.slots.push_back(symbol);
    }
    frame.values.assign(frame.slots.size() * rows.size(), 0);
    for (std::size_t row = 0; row < rows.size(); ++row) {
      const symbolic::Bindings& bindings = items[rows[row]].bindings;
      frame.gapSeconds += items[rows[row]].gapSeconds;
      for (std::size_t slot = 0; slot < frame.slots.size(); ++slot) {
        frame.values[slot * rows.size() + row] =
            bindings.at(std::string(frame.slots[slot]));
      }
    }
    frame.positions = std::move(rows);
    rows.clear();
    frames.push_back(std::move(frame));
  };
  for (std::size_t i = 0; i < items.size(); ++i) {
    std::vector<std::size_t>& rows = pending[items[i].region];
    rows.push_back(i);
    if (rows.size() >= batch) flush(items[i].region, rows);
  }
  for (auto& [region, rows] : pending) {
    if (!rows.empty()) flush(region, rows);
  }
  return frames;
}

/// Distinct per-request trace ids for --check: the client verifies every
/// reply echoes its request's id, so a pass proves end-to-end correlation,
/// not just that a block survived the round trip. Every 16th request is
/// marked sampled to exercise server-side span + slow-ring capture too.
/// traceBase == 0 disables trace attachment (the timed sweep runs).
service::TraceContextBlock makeTrace(std::uint64_t id) {
  service::TraceContextBlock block;
  block.traceId = id;
  block.flags = id % 16 == 0 ? service::kTraceFlagSampled : 0u;
  return block;
}

/// Scalar mode: one DecideRequest frame per item, one latency sample each.
void driveScalar(service::Client& client,
                 const std::vector<workload::Item>& items,
                 std::vector<double>& latencies,
                 std::vector<runtime::Decision>* decisions,
                 std::uint64_t traceBase = 0) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    const workload::Item& item = items[i];
    if (item.gapSeconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(item.gapSeconds));
    }
    service::TraceContextBlock trace;
    if (traceBase != 0) trace = makeTrace(traceBase + i);
    const Clock::time_point t0 = Clock::now();
    runtime::Decision decision = client.decide(
        item.region, item.bindings, traceBase != 0 ? &trace : nullptr);
    latencies.push_back(
        std::chrono::duration<double>(Clock::now() - t0).count());
    if (decisions != nullptr) (*decisions)[i] = std::move(decision);
  }
}

/// Batched mode: sends the prepared frames, recording each frame's
/// amortized per-decision latency; decisions land at their stream positions
/// when non-null.
void driveBatched(service::Client& client,
                  const std::vector<PreparedFrame>& frames,
                  std::vector<double>& latencies,
                  std::vector<runtime::Decision>* decisions,
                  std::uint64_t traceBase = 0) {
  std::vector<runtime::Decision> frameDecisions;
  for (std::size_t f = 0; f < frames.size(); ++f) {
    const PreparedFrame& frame = frames[f];
    if (frame.gapSeconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(frame.gapSeconds));
    }
    service::TraceContextBlock trace;
    if (traceBase != 0) trace = makeTrace(traceBase + f);
    const Clock::time_point t0 = Clock::now();
    client.decideBatch(frame.region, frame.slots, frame.rows, frame.values,
                       frameDecisions, traceBase != 0 ? &trace : nullptr);
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    latencies.push_back(dt / static_cast<double>(frame.rows));
    if (decisions != nullptr) {
      for (std::size_t row = 0; row < frame.positions.size(); ++row) {
        (*decisions)[frame.positions[row]] = std::move(frameDecisions[row]);
      }
    }
  }
}

struct RunResult {
  double decisionsPerSec = 0.0;
  double p50Us = 0.0;
  double p99Us = 0.0;
  double p999Us = 0.0;
  bool failed = false;
};

std::vector<workload::Item> streamForClient(
    const std::vector<workload::Item>* trace,
    const std::vector<workload::Candidate>& candidates, workload::Shape shape,
    std::size_t requests, std::uint64_t seed, double zipfS,
    std::size_t clientIndex) {
  if (trace != nullptr) {
    // Every client replays the recorded trace, rotated so connections do
    // not move in lockstep, cycling when the trace is shorter than the run.
    std::vector<workload::Item> items;
    items.reserve(requests);
    const std::size_t offset = (clientIndex * 17) % trace->size();
    for (std::size_t i = 0; i < requests; ++i) {
      items.push_back((*trace)[(offset + i) % trace->size()]);
    }
    return items;
  }
  workload::GeneratorOptions options;
  options.seed = seed + clientIndex;
  options.zipfExponent = zipfS;
  workload::Generator generator(shape, candidates, options);
  return generator.take(requests);
}

RunResult runSweepPoint(const std::string& socketPath,
                        const std::vector<std::vector<workload::Item>>& streams,
                        std::size_t clients, std::size_t batch,
                        std::size_t requests) {
  // Streams are pregenerated and every connection is established before the
  // clock starts, so the wall window times only the wire exchanges.
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<bool> failed{false};
  std::latch connected(static_cast<std::ptrdiff_t>(clients));
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      std::optional<service::Client> client;
      std::vector<PreparedFrame> frames;
      try {
        if (batch > 1) frames = prepareFrames(streams[c], batch);
        client.emplace(service::Client::connect(socketPath));
      } catch (const std::exception& error) {
        std::fprintf(stderr, "loadgen_oseld: client %zu connect: %s\n", c,
                     error.what());
        failed.store(true);
      }
      connected.count_down();
      if (!client.has_value()) return;
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      try {
        latencies[c].reserve(requests / std::max<std::size_t>(1, batch) + 1);
        if (batch > 1) {
          driveBatched(*client, frames, latencies[c], nullptr);
        } else {
          driveScalar(*client, streams[c], latencies[c], nullptr);
        }
      } catch (const std::exception& error) {
        std::fprintf(stderr, "loadgen_oseld: client %zu: %s\n", c,
                     error.what());
        failed.store(true);
      }
    });
  }
  connected.wait();
  const Clock::time_point wallStart = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& thread : threads) thread.join();
  const double wallSeconds =
      std::chrono::duration<double>(Clock::now() - wallStart).count();

  std::vector<double> merged;
  for (std::vector<double>& perClient : latencies) {
    merged.insert(merged.end(), perClient.begin(), perClient.end());
  }
  std::sort(merged.begin(), merged.end());
  RunResult result;
  result.failed = failed.load();
  result.decisionsPerSec =
      wallSeconds > 0.0
          ? static_cast<double>(clients * requests) / wallSeconds
          : 0.0;
  result.p50Us = obs::percentileOfSorted(merged, 0.50) * 1e6;
  result.p99Us = obs::percentileOfSorted(merged, 0.99) * 1e6;
  result.p999Us = obs::percentileOfSorted(merged, 0.999) * 1e6;
  return result;
}

/// --check: every decision from the socket must be bit-identical to the
/// same stream through an in-process decideBatch (device, validity,
/// diagnostic, and bit-exact model predictions; overheadSeconds is wall
/// time and excluded, as in the in-process equivalence contract).
bool checkBitIdentical(const std::string& socketPath,
                       const std::vector<workload::Item>& items,
                       std::size_t batch) {
  std::vector<runtime::Decision> socketDecisions(items.size());
  std::vector<double> scratch;
  service::Client client = service::Client::connect(socketPath);
  // With the feature granted, the client asserts every reply echoes its
  // request's trace id — the check also proves end-to-end correlation.
  const bool traced = client.traceContextGranted();
  driveBatched(client, prepareFrames(items, std::max<std::size_t>(batch, 2)),
               scratch, &socketDecisions, traced ? 1 : 0);

  runtime::TargetRuntime reference(makeDatabase(), referenceOptions());
  for (ir::TargetRegion& region : suiteRegions()) {
    reference.registerRegion(std::move(region));
  }
  std::vector<runtime::DecideRequest> requests(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    requests[i] = {items[i].region, &items[i].bindings};
  }
  std::vector<runtime::Decision> expected(items.size());
  reference.decideBatch(requests, expected);

  for (std::size_t i = 0; i < items.size(); ++i) {
    const runtime::Decision& socket = socketDecisions[i];
    const runtime::Decision& local = expected[i];
    if (socket.device != local.device || socket.valid != local.valid ||
        socket.diagnostic != local.diagnostic ||
        std::memcmp(&socket.cpu.seconds, &local.cpu.seconds,
                    sizeof(double)) != 0 ||
        std::memcmp(&socket.gpu.totalSeconds, &local.gpu.totalSeconds,
                    sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "loadgen_oseld: check FAILED at item %zu (%s): socket "
                   "{%d %d %.17g %.17g} vs in-process {%d %d %.17g %.17g}\n",
                   i, items[i].region.c_str(),
                   static_cast<int>(socket.device),
                   static_cast<int>(socket.valid), socket.cpu.seconds,
                   socket.gpu.totalSeconds, static_cast<int>(local.device),
                   static_cast<int>(local.valid), local.cpu.seconds,
                   local.gpu.totalSeconds);
      return false;
    }
  }
  std::printf("check: PASS (%zu socket decisions bit-identical to "
              "in-process decideBatch%s)\n",
              items.size(),
              traced ? "; trace-context echo verified on every frame" : "");
  return true;
}

std::vector<std::size_t> parseList(const std::string& text,
                                   const char* flag) {
  std::vector<std::size_t> values;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string field = text.substr(start, comma - start);
    start = comma + 1;
    if (field.empty()) continue;
    const long long value = std::atoll(field.c_str());
    if (value <= 0) {
      std::fprintf(stderr, "loadgen_oseld: bad %s entry '%s'\n", flag,
                   field.c_str());
      return {};
    }
    values.push_back(static_cast<std::size_t>(value));
  }
  return values;
}

}  // namespace

int main(int argc, char** argv) {
  const support::CommandLine cl = support::CommandLine::parse(argc, argv);
  const std::string externalSocket = cl.stringOption("socket").value_or("");
  const auto requests = static_cast<std::size_t>(cl.intOption("requests", 4096));
  const auto seed = static_cast<std::uint64_t>(cl.intOption("seed", 2019));
  const double zipfS = cl.doubleOption("zipf-s", 1.2);
  const std::string workloadName =
      cl.stringOption("workload").value_or("uniform");
  const std::string traceIn = cl.stringOption("trace-in").value_or("");
  const bool check = cl.hasFlag("check");
  const double guardMinPerSec = cl.doubleOption("guard-min-per-sec", 0.0);
  const double guardBatchSpeedup =
      cl.doubleOption("guard-batch-speedup", 0.0);
  if (requests == 0) {
    std::fprintf(stderr, "loadgen_oseld: --requests must be >= 1\n");
    return 2;
  }
  const std::vector<std::size_t> clientCounts =
      parseList(cl.stringOption("clients").value_or("1,8,32,64"), "--clients");
  const std::vector<std::size_t> batchSizes =
      parseList(cl.stringOption("batch").value_or("1,64"), "--batch");
  if (clientCounts.empty() || batchSizes.empty()) return 2;
  // Decide-only bench: --policy takes selection-policy names and applies to
  // the loopback server's selector.
  const auto policySelection = bench::parsePolicyFlag(cl, "loadgen_oseld", false);
  if (!policySelection.has_value()) return 2;
  if (policySelection->selection != nullptr) {
    if (!externalSocket.empty()) {
      std::fprintf(stderr,
                   "loadgen_oseld: --policy configures the loopback server; "
                   "start the external daemon with `oseld --policy` instead\n");
      return 2;
    }
    if (check && policySelection->selection->kind() !=
                     runtime::policy::PolicyKind::ModelCompare) {
      // The --check contract is bit-identity against an in-process
      // model-compare decideBatch; a stateful server policy would diverge by
      // design (probes, sticky memory), so the combination is a usage error.
      std::fprintf(stderr,
                   "loadgen_oseld: --check requires the model-compare "
                   "policy\n");
      return 2;
    }
  }

  workload::Shape shape = workload::Shape::Uniform;
  std::vector<workload::Item> traceItems;
  const std::vector<workload::Item>* trace = nullptr;
  try {
    if (!traceIn.empty()) {
      std::FILE* in = std::fopen(traceIn.c_str(), "rb");
      if (in == nullptr) {
        std::fprintf(stderr, "loadgen_oseld: cannot open %s\n",
                     traceIn.c_str());
        return 2;
      }
      std::string text;
      char buffer[4096];
      std::size_t got = 0;
      while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
        text.append(buffer, got);
      }
      std::fclose(in);
      workload::TraceHeader header;
      traceItems = workload::parseTrace(text, &header);  // rejects foreign versions
      if (traceItems.empty()) {
        std::fprintf(stderr, "loadgen_oseld: %s holds no items\n",
                     traceIn.c_str());
        return 2;
      }
      trace = &traceItems;
      std::fprintf(stderr,
                   "loadgen_oseld: replaying %zu items from %s (format v%u, "
                   "seed %llu)\n",
                   traceItems.size(), traceIn.c_str(), header.version,
                   static_cast<unsigned long long>(header.seed));
    } else {
      shape = workload::parseShape(workloadName);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "loadgen_oseld: %s\n", error.what());
    return 2;
  }

  // Loopback default: an in-process Server wired exactly like oseld.
  std::unique_ptr<service::Server> loopback;
  std::string socketPath = externalSocket;
  if (socketPath.empty()) {
    service::ServiceOptions serviceOptions;
    serviceOptions.socketPath = "/tmp/loadgen_oseld_" +
                                std::to_string(::getpid()) + ".sock";
    serviceOptions.workerThreads =
        *std::max_element(clientCounts.begin(), clientCounts.end());
    serviceOptions.maxPendingConnections = serviceOptions.workerThreads + 8;
    runtime::RuntimeOptions loopbackOptions = referenceOptions();
    loopbackOptions.selector.policy = policySelection->selection;
    loopback = std::make_unique<service::Server>(
        makeDatabase(), loopbackOptions, serviceOptions);
    for (ir::TargetRegion& region : suiteRegions()) {
      loopback->registerRegion(std::move(region));
    }
    try {
      loopback->start();
    } catch (const std::exception& error) {
      std::fprintf(stderr, "loadgen_oseld: cannot start loopback server: %s\n",
                   error.what());
      return 1;
    }
    socketPath = serviceOptions.socketPath;
  }

  // Pregenerate every client's stream once: generation stays outside the
  // timed window, and the same streams feed every sweep point so rows are
  // comparable.
  const std::vector<workload::Candidate> candidates =
      trace != nullptr ? std::vector<workload::Candidate>{} : makeCandidates();
  const std::size_t maxClients =
      *std::max_element(clientCounts.begin(), clientCounts.end());
  const std::size_t largestBatch =
      *std::max_element(batchSizes.begin(), batchSizes.end());
  std::vector<std::vector<workload::Item>> streams;
  streams.reserve(maxClients);
  for (std::size_t c = 0; c < maxClients; ++c) {
    streams.push_back(
        streamForClient(trace, candidates, shape, requests, seed, zipfS, c));
  }

  int exitCode = 0;
  if (check) {
    try {
      if (!checkBitIdentical(socketPath, streams[0], largestBatch)) {
        exitCode = 1;
      }
    } catch (const std::exception& error) {
      std::fprintf(stderr, "loadgen_oseld: check errored: %s\n", error.what());
      exitCode = 1;
    }
  }

  // Warm pass: replay client 0's stream batched once so every sweep row
  // (including the first) measures the server's steady state, not a cold
  // decision cache.
  try {
    service::Client warm = service::Client::connect(socketPath);
    std::vector<double> scratch;
    driveBatched(warm,
                 prepareFrames(streams[0],
                               std::max<std::size_t>(largestBatch, 2)),
                 scratch, nullptr);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "loadgen_oseld: warm-up failed: %s\n", error.what());
    return 1;
  }

  std::printf("workload  clients  batch  decisions/s      p50(us)    p99(us)   p999(us)\n");
  // best/baseline per client count feed the --guard-* checks.
  std::map<std::size_t, double> singleFrameRate;
  std::map<std::size_t, double> largestBatchRate;
  double bestBatched = 0.0;
  const char* streamName =
      trace != nullptr ? "trace" : workload::toString(shape).data();
  for (const std::size_t clients : clientCounts) {
    for (const std::size_t batch : batchSizes) {
      const RunResult result =
          runSweepPoint(socketPath, streams, clients, batch, requests);
      if (result.failed) {
        std::fprintf(stderr, "loadgen_oseld: run failed (clients=%zu "
                             "batch=%zu)\n",
                     clients, batch);
        exitCode = 1;
        continue;
      }
      std::printf("%-8s  %7zu  %5zu  %11.0f  %11.2f  %9.2f  %9.2f\n",
                  streamName, clients, batch, result.decisionsPerSec,
                  result.p50Us, result.p99Us, result.p999Us);
      std::fflush(stdout);
      if (batch == 1) singleFrameRate[clients] = result.decisionsPerSec;
      if (batch == largestBatch) {
        largestBatchRate[clients] = result.decisionsPerSec;
      }
      if (batch > 1) bestBatched = std::max(bestBatched, result.decisionsPerSec);
    }
  }

  if (guardBatchSpeedup > 0.0) {
    for (const auto& [clients, single] : singleFrameRate) {
      const auto batched = largestBatchRate.find(clients);
      if (batched == largestBatchRate.end() || single <= 0.0) continue;
      const double speedup = batched->second / single;
      if (speedup < guardBatchSpeedup) {
        std::fprintf(stderr,
                     "loadgen_oseld: GUARD FAILED: batch=%zu at %zu clients "
                     "is %.2fx single-frame throughput, need >= %.2fx\n",
                     largestBatch, clients, speedup, guardBatchSpeedup);
        exitCode = 1;
      } else {
        std::printf("guard: batch=%zu at %zu clients sustains %.2fx "
                    "single-frame throughput (>= %.2fx)\n",
                    largestBatch, clients, speedup, guardBatchSpeedup);
      }
    }
  }
  if (guardMinPerSec > 0.0) {
    if (bestBatched < guardMinPerSec) {
      std::fprintf(stderr,
                   "loadgen_oseld: GUARD FAILED: best batched throughput "
                   "%.0f/s under the %.0f/s floor\n",
                   bestBatched, guardMinPerSec);
      exitCode = 1;
    } else {
      std::printf("guard: best batched throughput %.0f/s clears the %.0f/s "
                  "floor\n",
                  bestBatched, guardMinPerSec);
    }
  }

  if (loopback != nullptr) loopback->stop();
  return exitCode;
}

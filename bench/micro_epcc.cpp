// EPCC-style overhead calibration (paper §IV.A: "values of its parameters
// can be obtained from micro-benchmarks... We used the EPCC OpenMP
// micro-benchmark suite to measure scheduling and synchronization overhead
// parameters").
//
// This bench plays the EPCC role against the repository's substitute for
// the real machine — the ground-truth CPU simulator: it times a
// do-almost-nothing parallel region across thread counts, subtracts the
// work, and reports the fork/schedule overhead a model deployment would
// paste into its Table II. The last column shows what the analytical model
// currently assumes, making calibration drift visible.
#include <cstdio>

#include "cpumodel/cpu_model.h"
#include "cpusim/cpu_simulator.h"
#include "ir/builder.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace osel;
  using namespace osel::ir;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto n = cl.intOption("n", 4096);

  // The EPCC "schedule" kernel shape: trivial body, measurable fork cost.
  const TargetRegion kernel =
      RegionBuilder("epcc_schedule")
          .param("n")
          .array("x", ScalarType::F32, {sym("n")}, Transfer::To)
          .array("y", ScalarType::F32, {sym("n")}, Transfer::From)
          .parallelFor("i", sym("n"))
          .statement(Stmt::store("y", {sym("i")}, read("x", {sym("i")})))
          .build();
  const symbolic::Bindings bindings{{"n", n}};

  std::printf("EPCC-style overhead calibration on the simulated POWER9 host "
              "(kernel: trivial copy, n=%lld)\n\n",
              static_cast<long long>(n));

  const cpumodel::CpuModelParams modelParams = cpumodel::CpuModelParams::power9();
  support::TextTable table({"Threads", "Region time", "Overhead (measured)",
                            "Model assumes"});
  for (const int threads : {1, 2, 4, 8, 16, 32, 64, 128, 160}) {
    ir::ArrayStore store = allocateArrays(kernel, bindings);
    const cpusim::CpuSimulator sim(cpusim::CpuSimParams::power9(), threads);
    const cpusim::CpuSimResult result = sim.simulate(kernel, bindings, store);
    const double overheadSec = result.overheadCycles / 3.0e9;
    const double modelOverheadCycles = modelParams.parStartupCycles +
                                       modelParams.synchronizationOverheadCycles +
                                       modelParams.parScheduleOverheadStaticCycles +
                                       modelParams.overheadPerThreadCycles * threads;
    table.addRow({std::to_string(threads),
                  support::formatSeconds(result.seconds),
                  support::formatSeconds(overheadSec),
                  support::formatSeconds(modelOverheadCycles / 3.0e9)});
  }
  std::fputs(table.render(2).c_str(), stdout);
  std::printf(
      "\nTable II base figures (paper): schedule 10154, sync 4000, startup "
      "3000 cycles;\nthe per-thread component dominates beyond ~32 threads "
      "on SMT8 hosts.\n");
  return 0;
}

// drift_scenario — the closed drift loop, end to end, as a pass/fail guard.
//
// Scenario: a deployment calibrates against a healthy device, then the
// environment degrades mid-run — here the simulated GPU's DRAM service
// latency rises by --dram-factor (thermal throttling / a neighbor saturating
// memory bandwidth), while the analytical models keep predicting the
// healthy device. Every launch runs under the Oracle launch policy so both
// devices are measured: mispredictions (the model-chosen device was the
// slower one) are directly observable, and the runtime feeds every
// measurement back through the selection policy's observe() hook.
//
// The same two-phase stream runs twice: once under model-compare (the
// paper's static rule — it can only keep mispredicting after the shift) and
// once under calibrated (docs/POLICIES.md), whose per-region multiplicative
// correction must refit when the drift detector's CUSUM alarm latches and
// then decide post-shift launches correctly. The guard (exit 1 on failure):
//   * calibrated records strictly fewer post-shift mispredictions than
//     model-compare,
//   * at least one refit happened (policy.refit visible),
//   * the refit is visible in drift state as latched-then-reset: some
//     region alarmed and is no longer alarming under calibrated.
//
// Options:
//   --phase1 N        healthy passes over the suite (default 4 — exactly
//                     arms the 8-sample drift baseline at two samples per
//                     Oracle launch)
//   --phase2 N        degraded passes (default 6)
//   --dram-factor F   DRAM service-latency multiplier for phase 2
//                     (default 6.0)
//   --threads T       CPU model/simulator threads (default 160)
//   --benchmarks K    only the first K suite benchmarks (0 = all; the ctest
//                     registration trims for speed)
//   --verbose         also print the calibrated run's drift report and
//                     calibration factors
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "polybench/polybench.h"
#include "runtime/policy/policy.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"
#include "support/table.h"

namespace {

using namespace osel;

struct ScenarioResult {
  std::string policy;
  int preMispredictions = 0;
  int postMispredictions = 0;
  int postLaunches = 0;
  std::uint64_t refits = 0;
  std::uint64_t alarms = 0;        ///< drift alarm transitions, whole run
  int alarmingRegions = 0;         ///< still latched at the end
  int resetAfterAlarmRegions = 0;  ///< alarmed at some point, not latched now
  std::string driftReport;
  std::string statsSummary;
};

pad::AttributeDatabase makeDatabase(
    const std::vector<ir::TargetRegion>& regions) {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  return compiler::compileAll(regions, models);
}

/// Oracle-launches every kernel of the chosen benchmarks `passes` times.
void runPasses(runtime::TargetRuntime& rt,
               const std::vector<const polybench::Benchmark*>& benchmarks,
               int passes) {
  std::map<std::string, ir::ArrayStore> stores;
  for (int pass = 0; pass < passes; ++pass) {
    for (const polybench::Benchmark* benchmark : benchmarks) {
      const std::int64_t n = benchmark->size(polybench::Mode::Test);
      const symbolic::Bindings bindings = benchmark->bindings(n);
      auto [it, inserted] = stores.try_emplace(benchmark->name());
      if (inserted) {
        it->second = benchmark->allocate(bindings);
        polybench::initializeInputs(*benchmark, bindings, it->second);
      }
      for (const ir::TargetRegion& kernel : benchmark->kernels()) {
        (void)rt.launch(kernel.name, bindings, it->second,
                        runtime::Policy::Oracle);
      }
    }
  }
}

int countMispredictions(const std::vector<runtime::LaunchRecord>& log) {
  int count = 0;
  for (const runtime::LaunchRecord& record : log) {
    if (!record.cpuMeasured || !record.gpuMeasured) continue;
    if (record.actualCpuSeconds <= 0.0 || record.actualGpuSeconds <= 0.0)
      continue;
    const bool gpuFaster = record.actualGpuSeconds < record.actualCpuSeconds;
    const bool choseGpu = record.decision.device == runtime::Device::Gpu;
    if (gpuFaster != choseGpu) ++count;
  }
  return count;
}

ScenarioResult runScenario(
    runtime::policy::PolicyKind kind,
    const std::vector<const polybench::Benchmark*>& benchmarks,
    const std::vector<ir::TargetRegion>& regions, int threads, int phase1,
    int phase2, double dramFactor) {
  ScenarioResult result;
  result.policy = std::string(runtime::policy::toString(kind));

  // One session and one policy instance span both phases: the drift
  // baseline established against the healthy device is exactly what the
  // degraded phase must alarm against, and the policy's per-region state
  // must survive the (simulated) environment change.
  obs::TraceSession session;
  runtime::policy::PolicyOptions policyOptions;
  policyOptions.kind = kind;
  const auto policy = runtime::policy::makePolicy(policyOptions);

  runtime::RuntimeOptions options;
  options.selector.cpuThreads = threads;
  options.selector.policy = policy;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.cpuSimThreads = threads;
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  options.trace = &session;

  {
    runtime::TargetRuntime healthy(makeDatabase(regions), options);
    for (const ir::TargetRegion& region : regions)
      healthy.registerRegion(region);
    runPasses(healthy, benchmarks, phase1);
    result.preMispredictions = countMispredictions(healthy.log());
  }

  // Phase 2: same session, same policy, degraded DRAM. A fresh runtime is
  // the honest shape — simulator parameters are construction-time — and its
  // log isolates the post-shift launches the guard scores.
  runtime::RuntimeOptions degraded = options;
  degraded.gpuSim.memory.dramCycles *= dramFactor;
  {
    runtime::TargetRuntime shifted(makeDatabase(regions), degraded);
    for (const ir::TargetRegion& region : regions)
      shifted.registerRegion(region);
    runPasses(shifted, benchmarks, phase2);
    const std::vector<runtime::LaunchRecord> log = shifted.log();
    result.postMispredictions = countMispredictions(log);
    result.postLaunches = static_cast<int>(log.size());
  }

  result.refits = policy->refits();
  for (const obs::RegionDriftStats& stats : session.driftStats()) {
    result.alarms += stats.alarms;
    if (stats.alarming) ++result.alarmingRegions;
    if (stats.alarms > 0 && !stats.alarming) ++result.resetAfterAlarmRegions;
  }
  result.driftReport = obs::renderDriftReport(session);
  result.statsSummary = obs::renderStatsSummary(session);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const int phase1 = static_cast<int>(cl.intOption("phase1", 4));
  const int phase2 = static_cast<int>(cl.intOption("phase2", 6));
  const double dramFactor = cl.doubleOption("dram-factor", 6.0);
  const int threads = static_cast<int>(cl.intOption("threads", 160));
  const auto benchmarkCount =
      static_cast<std::size_t>(cl.intOption("benchmarks", 0));
  const bool verbose = cl.hasFlag("verbose");
  if (phase1 < 1 || phase2 < 1 || dramFactor <= 1.0) {
    std::fprintf(stderr,
                 "drift_scenario: need --phase1 >= 1, --phase2 >= 1, "
                 "--dram-factor > 1\n");
    return 2;
  }

  std::vector<const polybench::Benchmark*> benchmarks;
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    if (benchmarkCount > 0 && benchmarks.size() >= benchmarkCount) break;
    benchmarks.push_back(&benchmark);
    for (const ir::TargetRegion& kernel : benchmark.kernels())
      regions.push_back(kernel);
  }

  std::printf(
      "drift scenario: %zu benchmark(s), %d healthy pass(es), then DRAM "
      "service latency x%.1f for %d pass(es); Oracle launches, "
      "mispredictions vs ground truth\n\n",
      benchmarks.size(), phase1, dramFactor, phase2);

  const ScenarioResult modelCompare =
      runScenario(runtime::policy::PolicyKind::ModelCompare, benchmarks,
                  regions, threads, phase1, phase2, dramFactor);
  const ScenarioResult calibrated =
      runScenario(runtime::policy::PolicyKind::Calibrated, benchmarks,
                  regions, threads, phase1, phase2, dramFactor);

  support::TextTable table({"Policy", "Pre-shift misses", "Post-shift misses",
                            "Post launches", "Refits", "Alarms",
                            "Alarming now"});
  for (const ScenarioResult* result : {&modelCompare, &calibrated}) {
    table.addRow({result->policy, std::to_string(result->preMispredictions),
                  std::to_string(result->postMispredictions),
                  std::to_string(result->postLaunches),
                  std::to_string(result->refits),
                  std::to_string(result->alarms),
                  std::to_string(result->alarmingRegions)});
  }
  std::fputs(table.render(2).c_str(), stdout);
  std::printf("\n");

  if (verbose) {
    std::printf("--- calibrated run drift report ---\n%s\n",
                calibrated.driftReport.c_str());
    std::printf("--- calibrated run stats ---\n%s\n",
                calibrated.statsSummary.c_str());
  }

  int failures = 0;
  if (calibrated.postMispredictions < modelCompare.postMispredictions) {
    std::printf("guard: calibrated post-shift mispredictions %d < "
                "model-compare %d\n",
                calibrated.postMispredictions,
                modelCompare.postMispredictions);
  } else {
    std::fprintf(stderr,
                 "drift_scenario: GUARD FAILED: calibrated post-shift "
                 "mispredictions %d not strictly below model-compare %d\n",
                 calibrated.postMispredictions,
                 modelCompare.postMispredictions);
    ++failures;
  }
  if (calibrated.refits > 0) {
    std::printf("guard: calibrated refit %llu time(s)\n",
                static_cast<unsigned long long>(calibrated.refits));
  } else {
    std::fprintf(stderr,
                 "drift_scenario: GUARD FAILED: calibrated never refit\n");
    ++failures;
  }
  if (calibrated.alarms > 0 && calibrated.resetAfterAlarmRegions > 0) {
    std::printf("guard: drift alarm latched then reset by refit in %d "
                "region(s) (%llu alarm transition(s) total)\n",
                calibrated.resetAfterAlarmRegions,
                static_cast<unsigned long long>(calibrated.alarms));
  } else {
    std::fprintf(stderr,
                 "drift_scenario: GUARD FAILED: no latched-then-reset drift "
                 "alarm under calibrated (alarms=%llu, reset regions=%d)\n",
                 static_cast<unsigned long long>(calibrated.alarms),
                 calibrated.resetAfterAlarmRegions);
    ++failures;
  }
  return failures == 0 ? 0 : 1;
}

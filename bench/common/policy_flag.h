// bench/common/policy_flag.h — the shared `--policy NAME` surface of the
// bench harnesses.
//
// Two policy namespaces meet at this flag: the launch-path Policy enum
// (always-cpu / always-gpu / model-guided / oracle — which devices actually
// execute) and the selection-policy layer (model-compare / calibrated /
// hysteresis / epsilon-greedy — how the model-guided choice is made; see
// docs/POLICIES.md). Benches that launch accept the union: a selection-
// policy name implies the ModelGuided launch policy with that selection
// policy installed in the selector. Decide-only benches accept only the
// selection-policy names.
//
// Every consumer shares one parser so the accepted spellings and the
// exit-code contract (unknown name -> diagnostic on stderr, caller exits 2)
// cannot drift between binaries.
#pragma once

#include <memory>
#include <optional>

#include "runtime/policy/policy.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"

namespace osel::bench {

/// What --policy resolved to.
struct PolicySelection {
  /// The launch-path policy (ModelGuided unless a launch-policy name was
  /// given and allowed).
  runtime::Policy launch = runtime::Policy::ModelGuided;
  /// The selection policy to install in SelectorConfig::policy; null keeps
  /// the selector default (ModelCompare).
  std::shared_ptr<runtime::policy::SelectionPolicy> selection;
};

/// Parses the --policy flag of `cl`. `allowLaunchPolicies` admits the
/// launch-policy names next to the selection-policy names (benches that
/// only decide pass false). An absent flag yields the defaults. An unknown
/// name prints `<tool>: unknown --policy ...` listing every accepted
/// spelling and returns nullopt — the caller exits 2.
[[nodiscard]] std::optional<PolicySelection> parsePolicyFlag(
    const support::CommandLine& cl, const char* tool,
    bool allowLaunchPolicies);

}  // namespace osel::bench

// bench/common/platform.h — the two experimental platforms of the paper and
// the shared measurement harness behind every table/figure bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpumodel/cpu_model.h"
#include "cpusim/cpu_simulator.h"
#include "gpumodel/gpu_model.h"
#include "gpusim/gpu_simulator.h"
#include "mca/machine_model.h"
#include "polybench/polybench.h"

namespace osel::bench {

/// A host + accelerator pairing: ground-truth simulators on one side,
/// analytical models (and the MCA machine model feeding them) on the other.
struct Platform {
  std::string name;
  cpusim::CpuSimParams cpuSim;
  gpusim::GpuSimParams gpuSim;
  cpumodel::CpuModelParams cpuModel;
  gpumodel::GpuDeviceParams gpuModel;
  mca::MachineModel mcaModel;
  int threads = 160;

  /// Platform 2 of §III / the §IV testbed: POWER9 (AC922) + V100 (NVLink2).
  static Platform power9V100(int threads);
  /// Platform 1 of §III: POWER8 + K80 (PCIe3).
  static Platform power8K80(int threads);
};

/// Per-kernel joined measurement: ground truth (simulators) next to the
/// analytical predictions, both "including data transfer, excluding context
/// initialization" (§III).
struct KernelMeasurement {
  std::string benchmark;
  std::string kernel;
  std::int64_t n = 0;
  double actualCpuSeconds = 0.0;
  double actualGpuSeconds = 0.0;
  double predictedCpuSeconds = 0.0;
  double predictedGpuSeconds = 0.0;

  /// True GPU-offloading speedup (>1: offloading wins).
  [[nodiscard]] double actualSpeedup() const {
    return actualCpuSeconds / actualGpuSeconds;
  }
  [[nodiscard]] double predictedSpeedup() const {
    return predictedCpuSeconds / predictedGpuSeconds;
  }
};

/// Measures every kernel of `benchmark` at size `n` on `platform`.
///
/// Input arrays are initialized once; each kernel is then timed on both
/// simulated devices in pipeline order. Intermediate arrays are only
/// partially materialized by the sampled simulation — timing is insensitive
/// to the missing values because address streams are value-independent and
/// the only data-dependent branch in the suite (CORR's eps guard) resolves
/// identically either way.
[[nodiscard]] std::vector<KernelMeasurement> measureBenchmark(
    const polybench::Benchmark& benchmark, std::int64_t n,
    const Platform& platform);

/// Applies `--scale` to a benchmark-mode size (test mode is never scaled).
[[nodiscard]] std::int64_t scaledSize(const polybench::Benchmark& benchmark,
                                      polybench::Mode mode, std::int64_t scale);

}  // namespace osel::bench

#include "bench/common/thread_pool.h"

#include <limits>

namespace osel::bench {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workerCount_ = workers;
  threads_.reserve(workerCount_ - 1);
  for (unsigned i = 1; i < workerCount_; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::runIndices(const std::function<void(std::size_t)>& fn,
                            std::size_t count) {
  for (;;) {
    const std::size_t i = nextIndex_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    try {
      fn(i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_ || i < errorIndex_) {
        error_ = std::current_exception();
        errorIndex_ = i;
      }
    }
  }
}

void ThreadPool::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
      count = jobCount_;
    }
    runIndices(*job, count);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (--active_ == 0) done_.notify_all();
    }
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    jobCount_ = count;
    nextIndex_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    errorIndex_ = std::numeric_limits<std::size_t>::max();
    active_ = threads_.size();
    ++generation_;
  }
  wake_.notify_all();
  runIndices(fn, count);  // the caller is one of the workers
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return active_ == 0; });
  if (error_) {
    const std::exception_ptr error = error_;
    error_ = nullptr;
    std::rethrow_exception(error);
  }
}

}  // namespace osel::bench

#include "bench/common/policy_flag.h"

#include <cstdio>
#include <string>

namespace osel::bench {

std::optional<PolicySelection> parsePolicyFlag(const support::CommandLine& cl,
                                               const char* tool,
                                               bool allowLaunchPolicies) {
  PolicySelection result;
  const auto name = cl.stringOption("policy");
  if (!name.has_value() || name->empty()) return result;

  if (allowLaunchPolicies) {
    if (*name == "always-cpu") {
      result.launch = runtime::Policy::AlwaysCpu;
      return result;
    }
    if (*name == "always-gpu") {
      result.launch = runtime::Policy::AlwaysGpu;
      return result;
    }
    if (*name == "model-guided") return result;
    if (*name == "oracle") {
      result.launch = runtime::Policy::Oracle;
      return result;
    }
  }
  if (const auto kind = runtime::policy::parsePolicyKind(*name)) {
    runtime::policy::PolicyOptions options;
    options.kind = *kind;
    result.selection = runtime::policy::makePolicy(options);
    return result;
  }
  std::string accepted;
  if (allowLaunchPolicies) {
    accepted = "always-cpu, always-gpu, model-guided, oracle, ";
  }
  accepted += runtime::policy::policyKindNames();
  std::fprintf(stderr, "%s: unknown --policy '%s' (expected %s)\n", tool,
               name->c_str(), accepted.c_str());
  return std::nullopt;
}

}  // namespace osel::bench

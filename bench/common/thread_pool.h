// bench/common/thread_pool.h — a small fixed-size worker pool for the
// evaluation benches.
//
// The benches sweep independent (benchmark, platform, config) cells whose
// measurements are self-contained; the pool runs those cells concurrently
// while keeping output deterministic: parallelFor hands each callback its
// index, so callers write results into pre-sized index-addressed storage
// and render them serially afterwards — the printed tables and CSVs are
// byte-identical to a serial run regardless of scheduling.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace osel::bench {

/// Fixed-size thread pool with an index-based parallel-for.
///
/// Not reentrant: parallelFor must not be called concurrently or from
/// inside a pool callback.
class ThreadPool {
 public:
  /// `workers` is the total concurrency of parallelFor (the calling thread
  /// participates, so `workers - 1` threads are spawned); 0 means
  /// hardware_concurrency. With one worker, parallelFor runs inline.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned workers() const { return workerCount_; }

  /// Runs fn(0), fn(1), ..., fn(count - 1) across the pool and blocks until
  /// every index has run. Every index is attempted even when some throw;
  /// afterwards the exception from the lowest-index failure is rethrown
  /// (deterministic for deterministic callbacks).
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();
  void runIndices(const std::function<void(std::size_t)>& fn,
                  std::size_t count);

  unsigned workerCount_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;  // spawned workers still inside the current job
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t jobCount_ = 0;
  std::atomic<std::size_t> nextIndex_{0};
  std::size_t errorIndex_ = 0;
  std::exception_ptr error_;
};

}  // namespace osel::bench

#include "bench/common/platform.h"

#include <algorithm>
#include <array>

#include "compiler/compiler.h"
#include "runtime/selector.h"

namespace osel::bench {

Platform Platform::power9V100(int threads) {
  Platform p;
  p.name = "POWER9 + Tesla V100 (NVLink2)";
  p.cpuSim = cpusim::CpuSimParams::power9();
  p.gpuSim = gpusim::GpuSimParams::teslaV100();
  p.cpuModel = cpumodel::CpuModelParams::power9();
  p.gpuModel = gpumodel::GpuDeviceParams::teslaV100();
  p.mcaModel = mca::MachineModel::power9();
  p.threads = threads;
  return p;
}

Platform Platform::power8K80(int threads) {
  Platform p;
  p.name = "POWER8 + Tesla K80 (PCIe3)";
  p.cpuSim = cpusim::CpuSimParams::power8();
  p.gpuSim = gpusim::GpuSimParams::teslaK80();
  p.cpuModel = cpumodel::CpuModelParams::power8();
  p.gpuModel = gpumodel::GpuDeviceParams::teslaK80();
  p.mcaModel = mca::MachineModel::power8();
  p.threads = threads;
  return p;
}

std::vector<KernelMeasurement> measureBenchmark(
    const polybench::Benchmark& benchmark, std::int64_t n,
    const Platform& platform) {
  const symbolic::Bindings bindings = benchmark.bindings(n);
  ir::ArrayStore store = benchmark.allocate(bindings);
  polybench::initializeInputs(benchmark, bindings, store);

  const cpusim::CpuSimulator cpuSim(platform.cpuSim, platform.threads);
  const gpusim::GpuSimulator gpuSim(platform.gpuSim);

  const std::array<mca::MachineModel, 1> models{platform.mcaModel};
  runtime::SelectorConfig config;
  config.cpuParams = platform.cpuModel;
  config.cpuThreads = platform.threads;
  config.gpuParams = platform.gpuModel;
  config.mcaModelName = platform.mcaModel.name;
  const runtime::OffloadSelector selector(config);

  std::vector<KernelMeasurement> results;
  for (const ir::TargetRegion& kernel : benchmark.kernels()) {
    KernelMeasurement m;
    m.benchmark = benchmark.name();
    m.kernel = kernel.name;
    m.n = n;
    m.actualCpuSeconds = cpuSim.simulate(kernel, bindings, store).seconds;
    m.actualGpuSeconds = gpuSim.simulate(kernel, bindings, store).totalSeconds;

    const pad::RegionAttributes attr = compiler::analyzeRegion(kernel, models);
    const runtime::Decision decision =
        selector.decide(runtime::RegionHandle(attr), bindings);
    m.predictedCpuSeconds = decision.cpu.seconds;
    m.predictedGpuSeconds = decision.gpu.totalSeconds;
    results.push_back(m);
  }
  return results;
}

std::int64_t scaledSize(const polybench::Benchmark& benchmark,
                        polybench::Mode mode, std::int64_t scale) {
  const std::int64_t base = benchmark.size(mode);
  if (mode == polybench::Mode::Test || scale <= 1) return base;
  return std::max<std::int64_t>(16, base / scale);
}

}  // namespace osel::bench

// Reproduces the paper's §IV.E adaptability observation: the same models,
// fed a different host thread count (the paper contrasts the full
// 160-thread machine with a restricted 4-thread environment), change their
// offloading decisions in step with the ground truth — "a scenario that
// resembles a more typical execution environment".
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace osel;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto mode = polybench::Mode::Test;

  std::printf("Adaptability — decisions across host thread counts "
              "(POWER9 + V100, %s mode)\n\n",
              polybench::toString(mode).c_str());

  struct PerThreads {
    std::vector<bench::KernelMeasurement> measurements;
  };
  const std::vector<int> threadCounts{4, 160};
  std::vector<PerThreads> results(threadCounts.size());
  std::vector<std::string> kernelNames;
  for (std::size_t t = 0; t < threadCounts.size(); ++t) {
    const bench::Platform platform = bench::Platform::power9V100(threadCounts[t]);
    for (const polybench::Benchmark& benchmark : polybench::suite()) {
      const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
      for (auto& m : bench::measureBenchmark(benchmark, n, platform)) {
        if (t == 0) kernelNames.push_back(m.kernel);
        results[t].measurements.push_back(std::move(m));
      }
    }
  }

  support::TextTable table({"Kernel", "actual@4", "model@4", "actual@160",
                            "model@160", "decision flips with threads?"});
  int adaptiveKernels = 0;
  std::vector<double> agreements;
  for (std::size_t k = 0; k < kernelNames.size(); ++k) {
    const auto& at4 = results[0].measurements[k];
    const auto& at160 = results[1].measurements[k];
    const bool actualFlips =
        (at4.actualSpeedup() > 1.0) != (at160.actualSpeedup() > 1.0);
    const bool modelFlips =
        (at4.predictedSpeedup() > 1.0) != (at160.predictedSpeedup() > 1.0);
    if (actualFlips) ++adaptiveKernels;
    table.addRow({kernelNames[k], support::formatSpeedup(at4.actualSpeedup()),
                  support::formatSpeedup(at4.predictedSpeedup()),
                  support::formatSpeedup(at160.actualSpeedup()),
                  support::formatSpeedup(at160.predictedSpeedup()),
                  actualFlips ? (modelFlips ? "yes, model follows" : "yes, model MISSES")
                              : "-"});
  }
  std::fputs(table.render(2).c_str(), stdout);

  for (std::size_t t = 0; t < threadCounts.size(); ++t) {
    std::vector<double> actual;
    std::vector<double> predicted;
    for (const auto& m : results[t].measurements) {
      actual.push_back(m.actualSpeedup());
      predicted.push_back(m.predictedSpeedup());
    }
    std::printf("\n  @%d threads: decision agreement %s (actual geomean %s, "
                "predicted %s)",
                threadCounts[t],
                support::formatPercent(
                    support::agreementRate(predicted, actual, 1.0))
                    .c_str(),
                support::formatSpeedup(support::geometricMean(actual)).c_str(),
                support::formatSpeedup(support::geometricMean(predicted)).c_str());
  }
  std::printf("\n  kernels whose true best device depends on the thread "
              "count: %d\n",
              adaptiveKernels);
  return 0;
}

// Reproduces Figures 6 and 7: actual versus predicted GPU-offloading
// speedup for every Polybench kernel against a 4-thread host (POWER9 +
// V100). Figure 6 is `test` mode, Figure 7 `benchmark` mode — this binary
// emits both (select with --mode test|benchmark|both).
//
// The paper's reading of these figures: absolute errors are expected (the
// models assume 128-iteration loops, 50% branches, and no cache
// hierarchy), but the *relative* ranking — which side of 1.0x a kernel
// lands on — should mostly agree. Known misses reproduced here include
// SYRK-style kernels whose uncoalesced accesses the GPU model over-charges
// because it cannot see cache hits (§IV.E).
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

namespace {

using namespace osel;

void runMode(polybench::Mode mode, std::int64_t scale, int threads, bool csv,
             obs::TraceSession* stats) {
  const bench::Platform platform = bench::Platform::power9V100(threads);
  std::printf("Figure %d — actual vs predicted GPU offloading speedup (%s mode, "
              "%d-thread host, %s)\n\n",
              mode == polybench::Mode::Test ? 6 : 7,
              polybench::toString(mode).c_str(), threads, platform.name.c_str());

  support::TextTable table({"Kernel", "Actual speedup", "Predicted speedup",
                            "Decision agrees?"});
  std::vector<double> actual;
  std::vector<double> predicted;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
    for (const bench::KernelMeasurement& m :
         bench::measureBenchmark(benchmark, n, platform)) {
      const bool agrees = (m.actualSpeedup() > 1.0) == (m.predictedSpeedup() > 1.0);
      table.addRow({m.kernel, support::formatSpeedup(m.actualSpeedup()),
                    support::formatSpeedup(m.predictedSpeedup()),
                    agrees ? "yes" : "NO"});
      actual.push_back(m.actualSpeedup());
      predicted.push_back(m.predictedSpeedup());
      if (stats != nullptr) {
        stats->recordPrediction(m.kernel + "/cpu", m.predictedCpuSeconds,
                                m.actualCpuSeconds);
        stats->recordPrediction(m.kernel + "/gpu", m.predictedGpuSeconds,
                                m.actualGpuSeconds);
      }
    }
  }
  table.addSeparator();
  table.addRow({"geomean", support::formatSpeedup(support::geometricMean(actual)),
                support::formatSpeedup(support::geometricMean(predicted)), "-"});
  if (csv) {
    std::fputs(table.renderCsv().c_str(), stdout);
  } else {
    std::fputs(table.render(2).c_str(), stdout);
  }
  std::printf("\n  decision agreement: %s   speedup MAPE: %s\n\n",
              support::formatPercent(
                  support::agreementRate(predicted, actual, 1.0))
                  .c_str(),
              support::formatFixed(
                  support::meanAbsolutePercentageError(predicted, actual), 1)
                  .c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 4));
  const std::string mode = cl.stringOption("mode").value_or("both");
  const bool csv = cl.hasFlag("csv");
  // --stats: accumulate per-kernel predicted-vs-actual error (per device)
  // in an obs::TraceSession and print the summary to stderr at the end —
  // the online counterpart of the figures' offline comparison.
  osel::obs::TraceSession session;
  osel::obs::TraceSession* stats = cl.hasFlag("stats") ? &session : nullptr;
  if (mode == "test" || mode == "both")
    runMode(polybench::Mode::Test, scale, threads, csv, stats);
  if (mode == "benchmark" || mode == "both")
    runMode(polybench::Mode::Benchmark, scale, threads, csv, stats);
  if (stats != nullptr)
    std::fputs(osel::obs::renderStatsSummary(session).c_str(), stderr);
  return 0;
}

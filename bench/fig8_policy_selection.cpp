// Reproduces Figure 8: whole-benchmark speedup over host-only execution
// under the compiler's default policy (always offload every target region)
// versus the paper's model-guided selection, on the POWER9 + V100 platform
// with a 160-thread host. An oracle column (always pick the truly faster
// device) bounds what any selector could achieve.
//
// Paper's headline: always-offload geomean 10.2x (test) / 2.9x (benchmark);
// model-guided 14.2x / 3.7x — selection captures the GPU's wins while
// dodging its losses. Known model miss reproduced: close-call kernels (the
// convolutions around the 1.0x boundary) can be decided wrongly.
//
// The second table per mode is the selection-policy head-to-head
// (docs/POLICIES.md): the four SelectionPolicy implementations replayed
// over the same measurement streams (--rounds passes, default 3, so the
// stateful policies have history to act on), each fed the launch feedback
// it would see live, scored by achieved speedup and by choices that
// disagree with the oracle. Without drift there are no CUSUM alarms, so
// Calibrated matches model-compare here by design — the drift_scenario
// bench is where it separates; this table shows the steady-state cost of
// hysteresis stickiness and epsilon probing instead.
#include <algorithm>
#include <array>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/common/platform.h"
#include "bench/common/thread_pool.h"
#include "runtime/policy/policy.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

namespace {

using namespace osel;

constexpr std::array<runtime::policy::PolicyKind, 4> kSelectionKinds{
    runtime::policy::PolicyKind::ModelCompare,
    runtime::policy::PolicyKind::Calibrated,
    runtime::policy::PolicyKind::Hysteresis,
    runtime::policy::PolicyKind::EpsilonGreedy,
};

struct BenchmarkTimes {
  std::string name;
  double cpuOnly = 0.0;
  double gpuOnly = 0.0;
  double modelGuided = 0.0;
  double oracle = 0.0;
  int offloadedByModel = 0;
  int kernels = 0;
  /// Head-to-head: per-policy summed actual seconds over --rounds passes,
  /// and how many choices disagreed with the oracle device.
  std::array<double, kSelectionKinds.size()> policySeconds{};
  std::array<int, kSelectionKinds.size()> policyMisses{};
  /// The same stream's host-only and oracle baselines (rounds included).
  double cpuOnlyStream = 0.0;
  double oracleStream = 0.0;
};

BenchmarkTimes evaluate(
    const polybench::Benchmark& benchmark, std::int64_t n,
    const bench::Platform& platform, int rounds,
    const std::array<std::shared_ptr<runtime::policy::SelectionPolicy>,
                     kSelectionKinds.size()>& policies) {
  BenchmarkTimes t;
  t.name = benchmark.name();
  const std::vector<bench::KernelMeasurement> measurements =
      bench::measureBenchmark(benchmark, n, platform);
  for (const bench::KernelMeasurement& m : measurements) {
    t.cpuOnly += m.actualCpuSeconds;
    t.gpuOnly += m.actualGpuSeconds;
    const bool offload = m.predictedGpuSeconds < m.predictedCpuSeconds;
    t.modelGuided += offload ? m.actualGpuSeconds : m.actualCpuSeconds;
    t.oracle += std::min(m.actualCpuSeconds, m.actualGpuSeconds);
    if (offload) ++t.offloadedByModel;
    ++t.kernels;
  }
  // Head-to-head replay: every policy sees the identical stream (rounds
  // suite-order passes) and the feedback a live runtime would feed back.
  for (int round = 0; round < rounds; ++round) {
    for (const bench::KernelMeasurement& m : measurements) {
      t.cpuOnlyStream += m.actualCpuSeconds;
      t.oracleStream += std::min(m.actualCpuSeconds, m.actualGpuSeconds);
      const runtime::Device oracleDevice =
          m.actualGpuSeconds < m.actualCpuSeconds ? runtime::Device::Gpu
                                                  : runtime::Device::Cpu;
      for (std::size_t p = 0; p < kSelectionKinds.size(); ++p) {
        const runtime::policy::PolicyChoice choice = policies[p]->choose(
            {m.kernel, m.predictedCpuSeconds, m.predictedGpuSeconds});
        const bool gpu = choice.device == runtime::Device::Gpu;
        t.policySeconds[p] += gpu ? m.actualGpuSeconds : m.actualCpuSeconds;
        if (choice.device != oracleDevice) ++t.policyMisses[p];
        (void)policies[p]->observe(
            {m.kernel, choice.device,
             gpu ? m.predictedGpuSeconds : m.predictedCpuSeconds,
             gpu ? m.actualGpuSeconds : m.actualCpuSeconds,
             /*alarmRaised=*/false});
      }
    }
  }
  return t;
}

void runMode(polybench::Mode mode, std::int64_t scale, int threads, bool csv,
             int rounds, bench::ThreadPool& pool) {
  const bench::Platform platform = bench::Platform::power9V100(threads);
  std::printf(
      "Figure 8 — suite speedup over host-only execution (%s mode, %d-thread "
      "host, %s)\n\n",
      polybench::toString(mode).c_str(), threads, platform.name.c_str());

  // One policy instance per kind per mode, shared across benchmarks like a
  // live runtime's selector would be. Kernel names are unique across the
  // suite, so concurrent evaluate() calls touch disjoint per-region state
  // (the policies are internally synchronized regardless).
  std::array<std::shared_ptr<runtime::policy::SelectionPolicy>,
             kSelectionKinds.size()>
      policies;
  for (std::size_t p = 0; p < kSelectionKinds.size(); ++p) {
    runtime::policy::PolicyOptions options;
    options.kind = kSelectionKinds[p];
    policies[p] = runtime::policy::makePolicy(options);
  }

  // Measure benchmarks concurrently (each evaluate() is self-contained),
  // collecting into suite-order slots so the table is scheduling-invariant.
  const std::vector<polybench::Benchmark>& suite = polybench::suite();
  std::vector<BenchmarkTimes> times(suite.size());
  pool.parallelFor(suite.size(), [&](std::size_t i) {
    const std::int64_t n = bench::scaledSize(suite[i], mode, scale);
    times[i] = evaluate(suite[i], n, platform, rounds, policies);
  });

  support::TextTable table({"Benchmark", "Always-GPU", "Model-guided", "Oracle",
                            "Offloaded kernels"});
  std::vector<double> gpuSpeedups;
  std::vector<double> guidedSpeedups;
  std::vector<double> oracleSpeedups;
  for (const BenchmarkTimes& t : times) {
    const double gpuSpeedup = t.cpuOnly / t.gpuOnly;
    const double guidedSpeedup = t.cpuOnly / t.modelGuided;
    const double oracleSpeedup = t.cpuOnly / t.oracle;
    table.addRow({t.name, support::formatSpeedup(gpuSpeedup),
                  support::formatSpeedup(guidedSpeedup),
                  support::formatSpeedup(oracleSpeedup),
                  std::to_string(t.offloadedByModel) + "/" +
                      std::to_string(t.kernels)});
    gpuSpeedups.push_back(gpuSpeedup);
    guidedSpeedups.push_back(guidedSpeedup);
    oracleSpeedups.push_back(oracleSpeedup);
  }
  table.addSeparator();
  table.addRow({"geomean",
                support::formatSpeedup(support::geometricMean(gpuSpeedups)),
                support::formatSpeedup(support::geometricMean(guidedSpeedups)),
                support::formatSpeedup(support::geometricMean(oracleSpeedups)),
                "-"});
  if (csv) {
    std::fputs(table.renderCsv().c_str(), stdout);
  } else {
    std::fputs(table.render(2).c_str(), stdout);
  }
  std::printf("\n");

  // Selection-policy head-to-head over the same streams.
  std::printf(
      "Selection-policy head-to-head (%d round(s) per benchmark; speedup "
      "over host-only, oracle-disagreeing choices in parentheses)\n\n",
      rounds);
  std::vector<std::string> header{"Benchmark"};
  for (const runtime::policy::PolicyKind kind : kSelectionKinds) {
    header.push_back(std::string(runtime::policy::toString(kind)));
  }
  header.push_back("Oracle");
  support::TextTable headToHead(header);
  std::array<std::vector<double>, kSelectionKinds.size()> policySpeedups;
  std::array<int, kSelectionKinds.size()> totalMisses{};
  std::vector<double> oracleStreamSpeedups;
  for (const BenchmarkTimes& t : times) {
    std::vector<std::string> row{t.name};
    for (std::size_t p = 0; p < kSelectionKinds.size(); ++p) {
      const double speedup = t.cpuOnlyStream / t.policySeconds[p];
      policySpeedups[p].push_back(speedup);
      totalMisses[p] += t.policyMisses[p];
      row.push_back(support::formatSpeedup(speedup) + " (" +
                    std::to_string(t.policyMisses[p]) + ")");
    }
    const double oracleSpeedup = t.cpuOnlyStream / t.oracleStream;
    oracleStreamSpeedups.push_back(oracleSpeedup);
    row.push_back(support::formatSpeedup(oracleSpeedup));
    headToHead.addRow(row);
  }
  headToHead.addSeparator();
  std::vector<std::string> geomeanRow{"geomean"};
  for (std::size_t p = 0; p < kSelectionKinds.size(); ++p) {
    geomeanRow.push_back(
        support::formatSpeedup(support::geometricMean(policySpeedups[p])) +
        " (" + std::to_string(totalMisses[p]) + ")");
  }
  geomeanRow.push_back(
      support::formatSpeedup(support::geometricMean(oracleStreamSpeedups)));
  headToHead.addRow(geomeanRow);
  if (csv) {
    std::fputs(headToHead.renderCsv().c_str(), stdout);
  } else {
    std::fputs(headToHead.render(2).c_str(), stdout);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  const std::string mode = cl.stringOption("mode").value_or("both");
  const bool csv = cl.hasFlag("csv");
  // --rounds R: head-to-head passes over each benchmark's stream (>= 1).
  const int rounds = static_cast<int>(cl.intOption("rounds", 3));
  if (rounds < 1) {
    std::fprintf(stderr, "fig8_policy_selection: --rounds must be >= 1\n");
    return 2;
  }
  // --jobs J: measurement concurrency (0 = hardware threads, 1 = serial).
  bench::ThreadPool pool(static_cast<unsigned>(cl.intOption("jobs", 0)));
  if (mode == "test" || mode == "both")
    runMode(polybench::Mode::Test, scale, threads, csv, rounds, pool);
  if (mode == "benchmark" || mode == "both")
    runMode(polybench::Mode::Benchmark, scale, threads, csv, rounds, pool);
  return 0;
}

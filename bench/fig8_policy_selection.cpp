// Reproduces Figure 8: whole-benchmark speedup over host-only execution
// under the compiler's default policy (always offload every target region)
// versus the paper's model-guided selection, on the POWER9 + V100 platform
// with a 160-thread host. An oracle column (always pick the truly faster
// device) bounds what any selector could achieve.
//
// Paper's headline: always-offload geomean 10.2x (test) / 2.9x (benchmark);
// model-guided 14.2x / 3.7x — selection captures the GPU's wins while
// dodging its losses. Known model miss reproduced: close-call kernels (the
// convolutions around the 1.0x boundary) can be decided wrongly.
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "bench/common/thread_pool.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

namespace {

using namespace osel;

struct BenchmarkTimes {
  std::string name;
  double cpuOnly = 0.0;
  double gpuOnly = 0.0;
  double modelGuided = 0.0;
  double oracle = 0.0;
  int offloadedByModel = 0;
  int kernels = 0;
};

BenchmarkTimes evaluate(const polybench::Benchmark& benchmark, std::int64_t n,
                        const bench::Platform& platform) {
  BenchmarkTimes t;
  t.name = benchmark.name();
  for (const bench::KernelMeasurement& m :
       bench::measureBenchmark(benchmark, n, platform)) {
    t.cpuOnly += m.actualCpuSeconds;
    t.gpuOnly += m.actualGpuSeconds;
    const bool offload = m.predictedGpuSeconds < m.predictedCpuSeconds;
    t.modelGuided += offload ? m.actualGpuSeconds : m.actualCpuSeconds;
    t.oracle += std::min(m.actualCpuSeconds, m.actualGpuSeconds);
    if (offload) ++t.offloadedByModel;
    ++t.kernels;
  }
  return t;
}

void runMode(polybench::Mode mode, std::int64_t scale, int threads, bool csv,
             bench::ThreadPool& pool) {
  const bench::Platform platform = bench::Platform::power9V100(threads);
  std::printf(
      "Figure 8 — suite speedup over host-only execution (%s mode, %d-thread "
      "host, %s)\n\n",
      polybench::toString(mode).c_str(), threads, platform.name.c_str());

  // Measure benchmarks concurrently (each evaluate() is self-contained),
  // collecting into suite-order slots so the table is scheduling-invariant.
  const std::vector<polybench::Benchmark>& suite = polybench::suite();
  std::vector<BenchmarkTimes> times(suite.size());
  pool.parallelFor(suite.size(), [&](std::size_t i) {
    const std::int64_t n = bench::scaledSize(suite[i], mode, scale);
    times[i] = evaluate(suite[i], n, platform);
  });

  support::TextTable table({"Benchmark", "Always-GPU", "Model-guided", "Oracle",
                            "Offloaded kernels"});
  std::vector<double> gpuSpeedups;
  std::vector<double> guidedSpeedups;
  std::vector<double> oracleSpeedups;
  for (const BenchmarkTimes& t : times) {
    const double gpuSpeedup = t.cpuOnly / t.gpuOnly;
    const double guidedSpeedup = t.cpuOnly / t.modelGuided;
    const double oracleSpeedup = t.cpuOnly / t.oracle;
    table.addRow({t.name, support::formatSpeedup(gpuSpeedup),
                  support::formatSpeedup(guidedSpeedup),
                  support::formatSpeedup(oracleSpeedup),
                  std::to_string(t.offloadedByModel) + "/" +
                      std::to_string(t.kernels)});
    gpuSpeedups.push_back(gpuSpeedup);
    guidedSpeedups.push_back(guidedSpeedup);
    oracleSpeedups.push_back(oracleSpeedup);
  }
  table.addSeparator();
  table.addRow({"geomean",
                support::formatSpeedup(support::geometricMean(gpuSpeedups)),
                support::formatSpeedup(support::geometricMean(guidedSpeedups)),
                support::formatSpeedup(support::geometricMean(oracleSpeedups)),
                "-"});
  if (csv) {
    std::fputs(table.renderCsv().c_str(), stdout);
  } else {
    std::fputs(table.render(2).c_str(), stdout);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  const std::string mode = cl.stringOption("mode").value_or("both");
  const bool csv = cl.hasFlag("csv");
  // --jobs J: measurement concurrency (0 = hardware threads, 1 = serial).
  bench::ThreadPool pool(static_cast<unsigned>(cl.intOption("jobs", 0)));
  if (mode == "test" || mode == "both")
    runMode(polybench::Mode::Test, scale, threads, csv, pool);
  if (mode == "benchmark" || mode == "both")
    runMode(polybench::Mode::Benchmark, scale, threads, csv, pool);
  return 0;
}

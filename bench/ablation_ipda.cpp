// Ablation for the paper's §IV.C claim: runtime-resolved IPDA strides give
// the GPU model better memory-coalescing inputs than the crude assumptions
// existing analytical models fall back to.
//
// Three variants of the Hong-Kim inputs per kernel:
//   * ipda          — the hybrid split (what the framework ships),
//   * all-coalesced — assume every access coalesces (optimistic),
//   * all-uncoal    — assume none do (pessimistic),
// compared against the ground-truth GPU simulator on prediction error and
// on the CPU/GPU decision each variant implies.
#include <array>
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "compiler/compiler.h"
#include "runtime/selector.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

namespace {

using namespace osel;

enum class Variant { Ipda, AllCoalesced, AllUncoalesced };

gpumodel::GpuWorkload applyVariant(gpumodel::GpuWorkload workload, Variant v) {
  const double total =
      workload.coalMemInstsPerThread + workload.uncoalMemInstsPerThread;
  switch (v) {
    case Variant::Ipda:
      break;
    case Variant::AllCoalesced:
      workload.coalMemInstsPerThread = total;
      workload.uncoalMemInstsPerThread = 0.0;
      break;
    case Variant::AllUncoalesced:
      workload.coalMemInstsPerThread = 0.0;
      workload.uncoalMemInstsPerThread = total;
      break;
  }
  return workload;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto n = cl.intOption("n", 2200);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));

  const bench::Platform platform = bench::Platform::power9V100(threads);
  const gpusim::GpuSimulator gpuSim(platform.gpuSim);
  const cpusim::CpuSimulator cpuSim(platform.cpuSim, threads);
  const gpumodel::GpuCostModel gpuModel(platform.gpuModel);
  const std::array<mca::MachineModel, 1> models{platform.mcaModel};
  runtime::SelectorConfig config;
  config.cpuParams = platform.cpuModel;
  config.cpuThreads = threads;
  config.gpuParams = platform.gpuModel;
  config.mcaModelName = platform.mcaModel.name;
  const runtime::OffloadSelector selector(config);

  std::printf("Ablation — GPU-model coalescing inputs: IPDA vs crude "
              "assumptions (n=%lld, %s)\n\n",
              static_cast<long long>(n), platform.name.c_str());

  support::TextTable table({"Kernel", "Actual GPU", "IPDA", "All-coal",
                            "All-uncoal"});
  std::vector<double> actualSpeedups;
  std::map<Variant, std::vector<double>> errors;
  std::map<Variant, std::vector<double>> predictedSpeedups;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    const std::int64_t size = benchmark.name() == "3DCONV" ? 256 : n;
    const auto bindings = benchmark.bindings(size);
    ir::ArrayStore store = benchmark.allocate(bindings);
    polybench::initializeInputs(benchmark, bindings, store);
    for (const auto& kernel : benchmark.kernels()) {
      const double actualGpu =
          gpuSim.simulate(kernel, bindings, store).totalSeconds;
      const double actualCpu = cpuSim.simulate(kernel, bindings, store).seconds;
      actualSpeedups.push_back(actualCpu / actualGpu);
      const auto attr = compiler::analyzeRegion(kernel, models);
      const auto base = selector.gpuWorkload(attr, bindings);
      const double cpuPredicted =
          selector.decide(runtime::RegionHandle(attr), bindings).cpu.seconds;
      std::vector<std::string> row{
          kernel.name, support::formatSeconds(actualGpu)};
      for (const Variant v :
           {Variant::Ipda, Variant::AllCoalesced, Variant::AllUncoalesced}) {
        const double predicted =
            gpuModel.predict(applyVariant(base, v)).totalSeconds;
        row.push_back(support::formatSeconds(predicted));
        const double ratio = predicted / actualGpu;
        errors[v].push_back(ratio > 1 ? ratio : 1.0 / ratio);
        predictedSpeedups[v].push_back(cpuPredicted / predicted);
      }
      table.addRow(std::move(row));
    }
  }
  table.addSeparator();
  table.addRow({"geomean |err|", "-",
                support::formatFixed(
                    support::geometricMean(errors[Variant::Ipda]), 2) + "x",
                support::formatFixed(
                    support::geometricMean(errors[Variant::AllCoalesced]), 2) + "x",
                support::formatFixed(
                    support::geometricMean(errors[Variant::AllUncoalesced]), 2) +
                    "x"});
  if (cl.hasFlag("csv")) {
    std::fputs(table.renderCsv().c_str(), stdout);
  } else {
    std::fputs(table.render(2).c_str(), stdout);
  }
  std::printf("\n  offloading-decision agreement with ground truth:\n");
  for (const auto& [variant, name] :
       std::vector<std::pair<Variant, std::string>>{
           {Variant::Ipda, "ipda"},
           {Variant::AllCoalesced, "all-coalesced"},
           {Variant::AllUncoalesced, "all-uncoalesced"}}) {
    std::printf("    %-15s %s\n", name.c_str(),
                support::formatPercent(
                    support::agreementRate(predictedSpeedups[variant],
                                           actualSpeedups, 1.0))
                    .c_str());
  }
  return 0;
}

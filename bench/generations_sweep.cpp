// The §III.A evolution story, isolated to the accelerator: the same host
// (simulated POWER9, 160 threads) paired with three GPU generations —
// K80 (Kepler/PCIe3), P100 (Pascal/NVLink1), V100 (Volta/NVLink2) — so the
// per-kernel offloading benefit's growth tracks GPU/interconnect evolution
// alone. "Year-over-year advances in GPU generations are far outpacing
// development of CPU architecture."
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "bench/common/thread_pool.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace osel;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  const auto mode = polybench::Mode::Benchmark;

  // Same host everywhere; swap the GPU.
  std::vector<bench::Platform> platforms;
  for (int g = 0; g < 3; ++g) platforms.push_back(bench::Platform::power9V100(threads));
  platforms[0].gpuSim = gpusim::GpuSimParams::teslaK80();
  platforms[0].gpuModel = gpumodel::GpuDeviceParams::teslaK80();
  platforms[1].gpuSim = gpusim::GpuSimParams::teslaP100();
  platforms[1].gpuModel = gpumodel::GpuDeviceParams::teslaP100();

  std::printf("GPU generations sweep — fixed POWER9 host (%d threads), "
              "%s mode, --scale=%lld\n\n",
              threads, polybench::toString(mode).c_str(),
              static_cast<long long>(scale));

  support::TextTable table({"Kernel", "K80 (Kepler)", "P100 (Pascal)",
                            "V100 (Volta)", "monotone?"});
  // The (generation, benchmark) grid is embarrassingly parallel — each
  // measureBenchmark call builds its own simulators and stores. Cells land
  // in a pre-indexed grid, so concatenation order (and hence the table) is
  // identical to the serial sweep. --jobs 1 forces the serial path.
  const std::vector<polybench::Benchmark>& suite = polybench::suite();
  struct Cell {
    std::vector<std::string> kernels;
    std::vector<double> speedups;
  };
  std::vector<Cell> cells(3 * suite.size());
  bench::ThreadPool pool(static_cast<unsigned>(cl.intOption("jobs", 0)));
  pool.parallelFor(cells.size(), [&](std::size_t idx) {
    const std::size_t g = idx / suite.size();
    const polybench::Benchmark& benchmark = suite[idx % suite.size()];
    const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
    Cell& cell = cells[idx];
    for (const auto& m : bench::measureBenchmark(benchmark, n, platforms[g])) {
      cell.kernels.push_back(m.kernel);
      cell.speedups.push_back(m.actualSpeedup());
    }
  });
  std::vector<std::vector<double>> speedups(3);
  std::vector<std::string> names;
  for (std::size_t g = 0; g < 3; ++g) {
    for (std::size_t b = 0; b < suite.size(); ++b) {
      const Cell& cell = cells[g * suite.size() + b];
      if (g == 0) {
        names.insert(names.end(), cell.kernels.begin(), cell.kernels.end());
      }
      speedups[g].insert(speedups[g].end(), cell.speedups.begin(),
                         cell.speedups.end());
    }
  }
  int monotone = 0;
  for (std::size_t k = 0; k < names.size(); ++k) {
    const bool mono =
        speedups[0][k] <= speedups[1][k] && speedups[1][k] <= speedups[2][k];
    if (mono) ++monotone;
    table.addRow({names[k], support::formatSpeedup(speedups[0][k]),
                  support::formatSpeedup(speedups[1][k]),
                  support::formatSpeedup(speedups[2][k]), mono ? "yes" : "-"});
  }
  table.addSeparator();
  table.addRow({"geomean",
                support::formatSpeedup(support::geometricMean(speedups[0])),
                support::formatSpeedup(support::geometricMean(speedups[1])),
                support::formatSpeedup(support::geometricMean(speedups[2])),
                std::to_string(monotone) + "/" + std::to_string(names.size())});
  std::fputs(table.render(2).c_str(), stdout);
  return 0;
}

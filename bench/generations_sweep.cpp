// The §III.A evolution story, isolated to the accelerator: the same host
// (simulated POWER9, 160 threads) paired with three GPU generations —
// K80 (Kepler/PCIe3), P100 (Pascal/NVLink1), V100 (Volta/NVLink2) — so the
// per-kernel offloading benefit's growth tracks GPU/interconnect evolution
// alone. "Year-over-year advances in GPU generations are far outpacing
// development of CPU architecture."
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace osel;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  const auto mode = polybench::Mode::Benchmark;

  // Same host everywhere; swap the GPU.
  std::vector<bench::Platform> platforms;
  for (int g = 0; g < 3; ++g) platforms.push_back(bench::Platform::power9V100(threads));
  platforms[0].gpuSim = gpusim::GpuSimParams::teslaK80();
  platforms[0].gpuModel = gpumodel::GpuDeviceParams::teslaK80();
  platforms[1].gpuSim = gpusim::GpuSimParams::teslaP100();
  platforms[1].gpuModel = gpumodel::GpuDeviceParams::teslaP100();

  std::printf("GPU generations sweep — fixed POWER9 host (%d threads), "
              "%s mode, --scale=%lld\n\n",
              threads, polybench::toString(mode).c_str(),
              static_cast<long long>(scale));

  support::TextTable table({"Kernel", "K80 (Kepler)", "P100 (Pascal)",
                            "V100 (Volta)", "monotone?"});
  std::vector<std::vector<double>> speedups(3);
  std::vector<std::string> names;
  for (std::size_t g = 0; g < 3; ++g) {
    for (const polybench::Benchmark& benchmark : polybench::suite()) {
      const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
      for (const auto& m : bench::measureBenchmark(benchmark, n, platforms[g])) {
        if (g == 0) names.push_back(m.kernel);
        speedups[g].push_back(m.actualSpeedup());
      }
    }
  }
  int monotone = 0;
  for (std::size_t k = 0; k < names.size(); ++k) {
    const bool mono =
        speedups[0][k] <= speedups[1][k] && speedups[1][k] <= speedups[2][k];
    if (mono) ++monotone;
    table.addRow({names[k], support::formatSpeedup(speedups[0][k]),
                  support::formatSpeedup(speedups[1][k]),
                  support::formatSpeedup(speedups[2][k]), mono ? "yes" : "-"});
  }
  table.addSeparator();
  table.addRow({"geomean",
                support::formatSpeedup(support::geometricMean(speedups[0])),
                support::formatSpeedup(support::geometricMean(speedups[1])),
                support::formatSpeedup(support::geometricMean(speedups[2])),
                std::to_string(monotone) + "/" + std::to_string(names.size())});
  std::fputs(table.render(2).c_str(), stdout);
  return 0;
}

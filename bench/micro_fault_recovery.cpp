// Micro-benchmarks for the fault-tolerant launch path: what does the
// LaunchGuard cost when nothing goes wrong (the common case must stay
// negligible next to the decision overhead itself), and how expensive are
// the recovery paths — transient retry, fatal CPU fallback, and a launch
// refused by the open circuit breaker.
#include <benchmark/benchmark.h>

#include "runtime/launch_guard.h"
#include "support/check.h"
#include "support/faultinject.h"

namespace {

using namespace osel;
using runtime::Device;
using runtime::DeviceHealthTracker;
using runtime::GuardedExecution;
using runtime::HealthPolicy;
using runtime::LaunchGuard;
using runtime::RetryPolicy;

void BM_GuardHealthyLaunch(benchmark::State& state) {
  const LaunchGuard guard;
  for (auto _ : state) {
    GuardedExecution out = guard.execute(Device::Gpu, [](Device) { return 1.0; });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GuardHealthyLaunch);

void BM_GuardTransientRetry(benchmark::State& state) {
  // Two transient hiccups, success on the third attempt.
  const LaunchGuard guard;
  for (auto _ : state) {
    int calls = 0;
    GuardedExecution out = guard.execute(Device::Gpu, [&](Device) {
      if (++calls < 3) throw support::TransientLaunchError("GPU", "hiccup");
      return 1.0;
    });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GuardTransientRetry);

void BM_GuardFatalFallback(benchmark::State& state) {
  // Device-memory exhaustion on the GPU, immediate CPU fallback.
  const LaunchGuard guard;
  for (auto _ : state) {
    GuardedExecution out = guard.execute(Device::Gpu, [](Device device) {
      if (device == Device::Gpu)
        throw support::DeviceMemoryError("GPU", "out of device memory");
      return 1.0;
    });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_GuardFatalFallback);

void BM_BreakerAdmitWhileOpen(benchmark::State& state) {
  // Cost of the admission check against a (mostly) open breaker.
  HealthPolicy policy;
  policy.quarantineThreshold = 1;
  policy.quarantineLaunches = 1 << 30;
  DeviceHealthTracker health(policy);
  health.recordGpuFatal();  // open it
  for (auto _ : state) {
    benchmark::DoNotOptimize(health.admitGpu());
  }
}
BENCHMARK(BM_BreakerAdmitWhileOpen);

void BM_FaultPointDisarmed(benchmark::State& state) {
  // The fast path every simulator launch pays when no fault is armed:
  // must stay a single atomic load.
  support::faultInjector().disarmAll();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        support::faultInjector().hit(support::faultpoints::kGpuLaunch, "GPU"));
  }
}
BENCHMARK(BM_FaultPointDisarmed);

void BM_FaultPointArmedMiss(benchmark::State& state) {
  // Armed but probability 0: pays the map lookup + RNG draw, never throws.
  support::faultInjector().arm(
      "bench.miss", {.kind = support::FaultKind::TransientLaunch,
                     .probability = 0.0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(support::faultInjector().hit("bench.miss", "GPU"));
  }
  support::faultInjector().disarm("bench.miss");
}
BENCHMARK(BM_FaultPointArmedMiss);

}  // namespace

BENCHMARK_MAIN();

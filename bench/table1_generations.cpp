// Reproduces Table I: GPU offloading speedup per Polybench kernel on the
// two generational platforms (POWER8 + K80/PCIe3 vs POWER9 + V100/NVLink2),
// in both dataset modes. The paper's headline observations to look for:
//   * 3DCONV (benchmark): K80 *slowdown* flipping to a clear V100 speedup
//     (memory-bound kernel, 900 vs 240 GB/s);
//   * CORR (benchmark): offloading profitable on the POWER8 box but not on
//     POWER9 (better host vectorization of the sequential inner loops);
//   * ATAX k2 (test): same decision, drastically larger magnitude on V100.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/common/platform.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

namespace {

using namespace osel;

struct Row {
  std::string kernel;
  polybench::Mode mode;
  double k80Speedup = 0.0;
  double v100Speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));

  const bench::Platform k80 = bench::Platform::power8K80(threads);
  const bench::Platform v100 = bench::Platform::power9V100(threads);

  std::printf("Table I — GPU offloading speedup across GPU generations\n");
  std::printf("  platforms: [%s] vs [%s]\n", k80.name.c_str(), v100.name.c_str());
  std::printf("  host threads: %d; benchmark-mode sizes divided by --scale=%lld\n\n",
              threads, static_cast<long long>(scale));

  std::vector<Row> rows;
  for (const polybench::Mode mode :
       {polybench::Mode::Test, polybench::Mode::Benchmark}) {
    for (const polybench::Benchmark& benchmark : polybench::suite()) {
      const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
      const auto onK80 = bench::measureBenchmark(benchmark, n, k80);
      const auto onV100 = bench::measureBenchmark(benchmark, n, v100);
      for (std::size_t i = 0; i < onK80.size(); ++i) {
        Row row;
        row.kernel = onK80[i].kernel;
        row.mode = mode;
        row.k80Speedup = onK80[i].actualSpeedup();
        row.v100Speedup = onV100[i].actualSpeedup();
        rows.push_back(row);
      }
    }
  }

  support::TextTable table(
      {"Kernel", "Mode", "P8+K80 speedup", "P9+V100 speedup", "Decision flip?"});
  std::vector<double> k80Speedups;
  std::vector<double> v100Speedups;
  for (const Row& row : rows) {
    const bool flips = (row.k80Speedup > 1.0) != (row.v100Speedup > 1.0);
    table.addRow({row.kernel, polybench::toString(row.mode),
                  support::formatSpeedup(row.k80Speedup),
                  support::formatSpeedup(row.v100Speedup),
                  flips ? "YES" : "-"});
    k80Speedups.push_back(row.k80Speedup);
    v100Speedups.push_back(row.v100Speedup);
  }
  table.addSeparator();
  table.addRow({"geomean", "all", support::formatSpeedup(
                                      support::geometricMean(k80Speedups)),
                support::formatSpeedup(support::geometricMean(v100Speedups)),
                "-"});
  if (cl.hasFlag("csv")) {
    std::fputs(table.renderCsv().c_str(), stdout);
  } else {
    std::fputs(table.render(2).c_str(), stdout);
  }
  return 0;
}

// Open-loop concurrency bench for the decide hot path — the numbers a
// multi-caller selector service (`oseld`, see ROADMAP) will be judged
// against. Each worker thread hammers TargetRuntime::decide and records
// per-call latency; the report shows decisions/sec plus p50/p99/p999 per
// thread count, so a global-lock collapse (throughput flat or falling with
// threads while tail latency explodes) is immediately visible.
//
// Options:
//   --threads-max T    highest thread count swept (default 64; the sweep is
//                      1,2,4,... up to T)
//   --per-thread N     decide calls per thread per run (default 20000)
//   --regions R        distinct regions decided over (default 8, spreading
//                      load across registry shards; 1 = worst-case single
//                      shard/cache stripe)
//   --rate HZ          open-loop arrival pacing per thread (0 = closed loop,
//                      the default): each call is scheduled at start +
//                      i/rate and latency is measured from the *scheduled*
//                      time, so queueing delay counts (coordinated omission
//                      stays visible)
//   --shed-demo        run an admission-control demo after the sweep: an
//                      in-flight budget of 2 under 8 launching threads,
//                      reporting how many launches shed to the safe default
//   --workload W       draw (region, bindings) pairs from a workload::
//                      generator (uniform | zipfian | bursty) instead of
//                      round-robin over the regions with one fixed size;
//                      per-thread streams are seeded --workload-seed + the
//                      thread index, so runs are deterministic. Bursty idle
//                      gaps are slept in closed-loop mode (latency is
//                      measured from after the gap) and ignored when --rate
//                      paces arrivals
//   --batch N          issue decisions through decideBatch in groups of N
//                      (default 1 = scalar decide); each latency sample is
//                      then one batch, and decisions/sec counts N decisions
//                      per call
//   --workload-seed S  base seed for --workload streams (default 2019)
//   --policy P         selection policy under contention: model-compare
//                      (default) | calibrated | hysteresis | epsilon-greedy
//                      (docs/POLICIES.md; epsilon-greedy also exercises the
//                      cache-bypass path under load)
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench/common/policy_flag.h"
#include "compiler/compiler.h"
#include "ir/builder.h"
#include "obs/quantile.h"
#include "ir/interpreter.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"
#include "workload/workload.h"

namespace {

using namespace osel;
using Clock = std::chrono::steady_clock;

ir::TargetRegion makeKernel(const std::string& name) {
  using namespace osel::ir;
  return RegionBuilder(name)
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

runtime::TargetRuntime makeRuntime(const std::vector<std::string>& names,
                                   runtime::RuntimeOptions options = {}) {
  std::vector<ir::TargetRegion> regions;
  regions.reserve(names.size());
  for (const std::string& name : names) regions.push_back(makeKernel(name));
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  runtime::TargetRuntime rt(compiler::compileAll(regions, models), options);
  for (ir::TargetRegion& region : regions) rt.registerRegion(std::move(region));
  return rt;
}

struct SweepResult {
  int threads = 0;
  double decisionsPerSec = 0.0;
  double p50Us = 0.0;
  double p99Us = 0.0;
  double p999Us = 0.0;
};

/// Extra traffic shaping: when `shape` is set, each worker draws its
/// (region, bindings) stream from a deterministic workload generator; when
/// `batch > 1`, arrivals go through decideBatch in groups.
struct TrafficOptions {
  std::optional<workload::Shape> shape;
  std::uint64_t seed = 2019;
  std::size_t batch = 1;
};

std::vector<workload::Candidate> makeCandidates(
    const std::vector<std::string>& names) {
  // A few recurring sizes per region keeps the steady state cache-hit
  // dominated, like the fixed n=96 of the round-robin path.
  std::vector<symbolic::Bindings> choices;
  for (const std::int64_t n : {64, 96, 128, 160}) {
    choices.push_back(symbolic::Bindings{{"n", n}});
  }
  std::vector<workload::Candidate> candidates;
  candidates.reserve(names.size());
  for (const std::string& name : names) candidates.push_back({name, choices});
  return candidates;
}

SweepResult runSweep(runtime::TargetRuntime& rt,
                     const std::vector<std::string>& names, int threads,
                     int perThread, double rateHz,
                     const TrafficOptions& traffic) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  const std::size_t batch = traffic.batch;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(perThread));
      const symbolic::Bindings bindings{{"n", 96}};
      std::optional<workload::Generator> generator;
      if (traffic.shape.has_value()) {
        workload::GeneratorOptions genOptions;
        genOptions.seed = traffic.seed + static_cast<std::uint64_t>(t);
        generator.emplace(*traffic.shape, makeCandidates(names), genOptions);
      }
      std::vector<workload::Item> items(batch);
      std::vector<runtime::DecideRequest> requests(batch);
      std::vector<runtime::Decision> out(batch);
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const Clock::time_point start = Clock::now();
      for (int i = 0; i < perThread; ++i) {
        // Fill this arrival's requests before taking the timestamp so
        // generator drawing doesn't count as decide latency.
        double gapSeconds = 0.0;
        for (std::size_t j = 0; j < batch; ++j) {
          if (generator.has_value()) {
            generator->next(items[j]);
            gapSeconds += items[j].gapSeconds;
            requests[j] = {items[j].region, &items[j].bindings};
          } else {
            requests[j] = {
                names[(static_cast<std::size_t>(t + i) + j) % names.size()],
                &bindings};
          }
        }
        Clock::time_point scheduled = start;
        if (rateHz > 0.0) {
          // Open loop: arrival i is due at start + i/rate regardless of how
          // long earlier calls took; latency measured from the due time
          // includes queueing delay.
          scheduled += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(static_cast<double>(i) / rateHz));
          std::this_thread::sleep_until(scheduled);
        } else {
          if (gapSeconds > 0.0) {
            // Bursty idle gap: the closed loop honors the generator's
            // pacing; latency is measured from after the sleep.
            std::this_thread::sleep_for(
                std::chrono::duration<double>(gapSeconds));
          }
          scheduled = Clock::now();
        }
        if (batch == 1 && !generator.has_value()) {
          (void)rt.decide(
              names[static_cast<std::size_t>(t + i) % names.size()], bindings);
        } else {
          rt.decideBatch(std::span<const runtime::DecideRequest>(requests),
                         std::span<runtime::Decision>(out));
        }
        mine.push_back(
            std::chrono::duration<double>(Clock::now() - scheduled).count());
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  const Clock::time_point wallStart = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  const double wallSeconds =
      std::chrono::duration<double>(Clock::now() - wallStart).count();

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(threads) *
              static_cast<std::size_t>(perThread));
  for (std::vector<double>& perThreadLatencies : latencies) {
    all.insert(all.end(), perThreadLatencies.begin(),
               perThreadLatencies.end());
  }
  std::sort(all.begin(), all.end());
  SweepResult result;
  result.threads = threads;
  result.decisionsPerSec =
      wallSeconds > 0.0
          ? static_cast<double>(all.size() * batch) / wallSeconds
          : 0.0;
  result.p50Us = obs::percentileOfSorted(all, 0.50) * 1e6;
  result.p99Us = obs::percentileOfSorted(all, 0.99) * 1e6;
  result.p999Us = obs::percentileOfSorted(all, 0.999) * 1e6;
  return result;
}

void runShedDemo() {
  runtime::RuntimeOptions options;
  options.admission.maxInFlight = 2;
  std::vector<std::string> names{"shed_demo"};
  runtime::TargetRuntime rt = makeRuntime(names, options);
  const ir::TargetRegion kernel = makeKernel("shed_demo");
  const symbolic::Bindings bindings{{"n", 96}};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ir::ArrayStore store = ir::allocateArrays(kernel, bindings);
      for (int i = 0; i < kPerThread; ++i) {
        (void)rt.launch("shed_demo", bindings, store,
                        runtime::Policy::ModelGuided);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const runtime::AdmissionController& admission = rt.admission();
  std::printf(
      "\nshed demo: budget=2 threads=%d launches=%d -> admitted=%llu "
      "shed=%llu (%.1f%%)\n",
      kThreads, kThreads * kPerThread,
      static_cast<unsigned long long>(admission.admitted()),
      static_cast<unsigned long long>(admission.shed()),
      100.0 * static_cast<double>(admission.shed()) /
          static_cast<double>(kThreads * kPerThread));
  // The flag is also in the CSV (last column, `shed`).
  std::size_t shedRows = 0;
  for (const runtime::LaunchRecord& record : rt.logSnapshot()) {
    if (record.shed) ++shedRows;
  }
  std::printf("shed demo: %zu launch records carry shed=1\n", shedRows);
}

}  // namespace

int main(int argc, char** argv) {
  const support::CommandLine cl = support::CommandLine::parse(argc, argv);
  const int threadsMax =
      static_cast<int>(cl.intOption("threads-max", 64));
  const int perThread = static_cast<int>(cl.intOption("per-thread", 20000));
  const int regionCount = static_cast<int>(cl.intOption("regions", 8));
  const double rateHz = cl.doubleOption("rate", 0.0);
  const auto batch = static_cast<std::size_t>(cl.intOption("batch", 1));
  if (threadsMax < 1 || perThread < 1 || regionCount < 1 || batch < 1) {
    std::fprintf(stderr,
                 "micro_concurrent_decide: --threads-max, --per-thread, "
                 "--regions and --batch must be >= 1\n");
    return 2;
  }
  TrafficOptions traffic;
  traffic.batch = batch;
  traffic.seed = static_cast<std::uint64_t>(cl.intOption("workload-seed", 2019));
  const std::string workloadName = cl.stringOption("workload").value_or("");
  if (!workloadName.empty()) {
    traffic.shape = workload::parseShape(workloadName);  // throws on unknown
  }
  // Decide-only bench: only selection-policy names are meaningful here.
  const auto policySelection =
      bench::parsePolicyFlag(cl, "micro_concurrent_decide", false);
  if (!policySelection.has_value()) return 2;

  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(regionCount));
  for (int i = 0; i < regionCount; ++i) {
    names.push_back("concurrent" + std::to_string(i));
  }
  runtime::RuntimeOptions rtOptions;
  rtOptions.selector.policy = policySelection->selection;
  runtime::TargetRuntime rt = makeRuntime(names, rtOptions);

  std::printf(
      "# decide hot path, %s loop, %d region(s), %d calls/thread, "
      "workload=%s, batch=%zu, policy=%s\n",
      rateHz > 0.0 ? "open" : "closed", regionCount, perThread,
      workloadName.empty() ? "round-robin" : workloadName.c_str(), batch,
      std::string(rt.selector().policy().name()).c_str());
  std::printf("threads,decisions_per_sec,p50_us,p99_us,p999_us\n");
  for (int threads = 1; threads <= threadsMax; threads *= 2) {
    const SweepResult result =
        runSweep(rt, names, threads, perThread, rateHz, traffic);
    std::printf("%d,%.0f,%.3f,%.3f,%.3f\n", result.threads,
                result.decisionsPerSec, result.p50Us, result.p99Us,
                result.p999Us);
    std::fflush(stdout);
  }

  if (cl.hasFlag("shed-demo")) runShedDemo();
  return 0;
}

// Open-loop concurrency bench for the decide hot path — the numbers a
// multi-caller selector service (`oseld`, see ROADMAP) will be judged
// against. Each worker thread hammers TargetRuntime::decide and records
// per-call latency; the report shows decisions/sec plus p50/p99/p999 per
// thread count, so a global-lock collapse (throughput flat or falling with
// threads while tail latency explodes) is immediately visible.
//
// Options:
//   --threads-max T    highest thread count swept (default 64; the sweep is
//                      1,2,4,... up to T)
//   --per-thread N     decide calls per thread per run (default 20000)
//   --regions R        distinct regions decided over (default 8, spreading
//                      load across registry shards; 1 = worst-case single
//                      shard/cache stripe)
//   --rate HZ          open-loop arrival pacing per thread (0 = closed loop,
//                      the default): each call is scheduled at start +
//                      i/rate and latency is measured from the *scheduled*
//                      time, so queueing delay counts (coordinated omission
//                      stays visible)
//   --shed-demo        run an admission-control demo after the sweep: an
//                      in-flight budget of 2 under 8 launching threads,
//                      reporting how many launches shed to the safe default
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "ir/builder.h"
#include "ir/interpreter.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"

namespace {

using namespace osel;
using Clock = std::chrono::steady_clock;

ir::TargetRegion makeKernel(const std::string& name) {
  using namespace osel::ir;
  return RegionBuilder(name)
      .param("n")
      .array("x", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("y", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::store("y", {sym("i"), sym("j")},
                             read("x", {sym("i"), sym("j")}) * num(3.0)))
      .build();
}

runtime::TargetRuntime makeRuntime(const std::vector<std::string>& names,
                                   runtime::RuntimeOptions options = {}) {
  std::vector<ir::TargetRegion> regions;
  regions.reserve(names.size());
  for (const std::string& name : names) regions.push_back(makeKernel(name));
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  options.selector.cpuThreads = 160;
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  runtime::TargetRuntime rt(compiler::compileAll(regions, models), options);
  for (ir::TargetRegion& region : regions) rt.registerRegion(std::move(region));
  return rt;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

struct SweepResult {
  int threads = 0;
  double decisionsPerSec = 0.0;
  double p50Us = 0.0;
  double p99Us = 0.0;
  double p999Us = 0.0;
};

SweepResult runSweep(runtime::TargetRuntime& rt,
                     const std::vector<std::string>& names, int threads,
                     int perThread, double rateHz) {
  std::vector<std::vector<double>> latencies(
      static_cast<std::size_t>(threads));
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double>& mine = latencies[static_cast<std::size_t>(t)];
      mine.reserve(static_cast<std::size_t>(perThread));
      const symbolic::Bindings bindings{{"n", 96}};
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const Clock::time_point start = Clock::now();
      for (int i = 0; i < perThread; ++i) {
        Clock::time_point scheduled = start;
        if (rateHz > 0.0) {
          // Open loop: arrival i is due at start + i/rate regardless of how
          // long earlier calls took; latency measured from the due time
          // includes queueing delay.
          scheduled += std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(static_cast<double>(i) / rateHz));
          std::this_thread::sleep_until(scheduled);
        } else {
          scheduled = Clock::now();
        }
        (void)rt.decide(names[static_cast<std::size_t>(t + i) % names.size()],
                        bindings);
        mine.push_back(
            std::chrono::duration<double>(Clock::now() - scheduled).count());
      }
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  const Clock::time_point wallStart = Clock::now();
  go.store(true, std::memory_order_release);
  for (std::thread& worker : workers) worker.join();
  const double wallSeconds =
      std::chrono::duration<double>(Clock::now() - wallStart).count();

  std::vector<double> all;
  all.reserve(static_cast<std::size_t>(threads) *
              static_cast<std::size_t>(perThread));
  for (std::vector<double>& perThreadLatencies : latencies) {
    all.insert(all.end(), perThreadLatencies.begin(),
               perThreadLatencies.end());
  }
  std::sort(all.begin(), all.end());
  SweepResult result;
  result.threads = threads;
  result.decisionsPerSec =
      wallSeconds > 0.0
          ? static_cast<double>(all.size()) / wallSeconds
          : 0.0;
  result.p50Us = percentile(all, 0.50) * 1e6;
  result.p99Us = percentile(all, 0.99) * 1e6;
  result.p999Us = percentile(all, 0.999) * 1e6;
  return result;
}

void runShedDemo() {
  runtime::RuntimeOptions options;
  options.admission.maxInFlight = 2;
  std::vector<std::string> names{"shed_demo"};
  runtime::TargetRuntime rt = makeRuntime(names, options);
  const ir::TargetRegion kernel = makeKernel("shed_demo");
  const symbolic::Bindings bindings{{"n", 96}};
  constexpr int kThreads = 8;
  constexpr int kPerThread = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ir::ArrayStore store = ir::allocateArrays(kernel, bindings);
      for (int i = 0; i < kPerThread; ++i) {
        (void)rt.launch("shed_demo", bindings, store,
                        runtime::Policy::ModelGuided);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const runtime::AdmissionController& admission = rt.admission();
  std::printf(
      "\nshed demo: budget=2 threads=%d launches=%d -> admitted=%llu "
      "shed=%llu (%.1f%%)\n",
      kThreads, kThreads * kPerThread,
      static_cast<unsigned long long>(admission.admitted()),
      static_cast<unsigned long long>(admission.shed()),
      100.0 * static_cast<double>(admission.shed()) /
          static_cast<double>(kThreads * kPerThread));
  // The flag is also in the CSV (last column, `shed`).
  std::size_t shedRows = 0;
  for (const runtime::LaunchRecord& record : rt.logSnapshot()) {
    if (record.shed) ++shedRows;
  }
  std::printf("shed demo: %zu launch records carry shed=1\n", shedRows);
}

}  // namespace

int main(int argc, char** argv) {
  const support::CommandLine cl = support::CommandLine::parse(argc, argv);
  const int threadsMax =
      static_cast<int>(cl.intOption("threads-max", 64));
  const int perThread = static_cast<int>(cl.intOption("per-thread", 20000));
  const int regionCount = static_cast<int>(cl.intOption("regions", 8));
  const double rateHz = cl.doubleOption("rate", 0.0);
  if (threadsMax < 1 || perThread < 1 || regionCount < 1) {
    std::fprintf(stderr,
                 "micro_concurrent_decide: --threads-max, --per-thread and "
                 "--regions must be >= 1\n");
    return 2;
  }

  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(regionCount));
  for (int i = 0; i < regionCount; ++i) {
    names.push_back("concurrent" + std::to_string(i));
  }
  runtime::TargetRuntime rt = makeRuntime(names);

  std::printf("# decide hot path, %s loop, %d region(s), %d calls/thread\n",
              rateHz > 0.0 ? "open" : "closed", regionCount, perThread);
  std::printf("threads,decisions_per_sec,p50_us,p99_us,p999_us\n");
  for (int threads = 1; threads <= threadsMax; threads *= 2) {
    const SweepResult result = runSweep(rt, names, threads, perThread, rateHz);
    std::printf("%d,%.0f,%.3f,%.3f,%.3f\n", result.threads,
                result.decisionsPerSec, result.p50Us, result.p99Us,
                result.p999Us);
    std::fflush(stdout);
  }

  if (cl.hasFlag("shed-demo")) runShedDemo();
  return 0;
}

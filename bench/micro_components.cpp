// Infrastructure micro-benchmarks: throughput of the building blocks the
// simulators and analyses lean on. Useful for keeping the framework fast
// enough that the evaluation harness stays interactive.
#include <benchmark/benchmark.h>

#include "ir/builder.h"
#include "ipda/ipda.h"
#include "ir/interpreter.h"
#include "mca/lowering.h"
#include "mca/pipeline_sim.h"
#include "support/cache_sim.h"
#include "support/rng.h"
#include "symbolic/compiled_expr.h"
#include "symbolic/expr.h"

namespace {

using namespace osel;
using namespace osel::ir;

void BM_ExprPolynomialArithmetic(benchmark::State& state) {
  const symbolic::Expr a =
      symbolic::Expr::symbol("n") * symbolic::Expr::symbol("i") +
      symbolic::Expr::symbol("j");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.differenceIn("i"));
  }
}
BENCHMARK(BM_ExprPolynomialArithmetic);

void BM_CompiledExprEvaluate(benchmark::State& state) {
  symbolic::SlotMap slots;
  const symbolic::CompiledExpr expr(
      symbolic::Expr::symbol("n") * symbolic::Expr::symbol("i") +
          symbolic::Expr::symbol("j"),
      slots);
  std::array<std::int64_t, 3> values{9600, 123, 456};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr.evaluate(values));
    values[1] = (values[1] + 1) & 1023;
  }
}
BENCHMARK(BM_CompiledExprEvaluate);

TargetRegion gemmRegion() {
  return RegionBuilder("gemm")
      .param("n")
      .array("A", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("B", ScalarType::F32, {sym("n"), sym("n")}, Transfer::To)
      .array("C", ScalarType::F32, {sym("n"), sym("n")}, Transfer::From)
      .parallelFor("i", sym("n"))
      .parallelFor("j", sym("n"))
      .statement(Stmt::assign("acc", num(0.0)))
      .statement(Stmt::seqLoop(
          "k", cst(0), sym("n"),
          {Stmt::assign("acc", local("acc") + read("A", {sym("i"), sym("k")}) *
                                                  read("B", {sym("k"), sym("j")}))}))
      .statement(Stmt::store("C", {sym("i"), sym("j")}, local("acc")))
      .build();
}

void BM_InterpreterGemmPoint(benchmark::State& state) {
  // Events per second of the functional interpreter: one GEMM parallel
  // iteration with a 256-deep reduction loop (~1.3k events).
  const TargetRegion region = gemmRegion();
  const symbolic::Bindings bindings{{"n", 256}};
  ArrayStore store = allocateArrays(region, bindings);
  const CompiledRegion compiled(region, bindings);
  ExecutionContext context = compiled.makeContext(store);
  std::int64_t point = 0;
  for (auto _ : state) {
    compiled.runPoint(context, point);
    point = (point + 1) % compiled.flatTripCount();
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_InterpreterGemmPoint);

void BM_CacheSimAccess(benchmark::State& state) {
  support::SetAssociativeCache cache(6 * 1024 * 1024, 16, 32);
  support::SplitMix64 rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.access(static_cast<std::int64_t>(rng.nextBelow(1u << 26))));
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_McaSteadyState(benchmark::State& state) {
  const TargetRegion region = gemmRegion();
  const mca::MCProgram body =
      mca::lowerLoopBody(region, region.body[1].loopBody(), "k");
  const mca::MachineModel model = mca::MachineModel::power9();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mca::steadyStateCyclesPerIteration(body, model, 32));
  }
}
BENCHMARK(BM_McaSteadyState);

void BM_IpdaAnalyzeGemm(benchmark::State& state) {
  const TargetRegion region = gemmRegion();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ipda::Analysis::analyze(region));
  }
}
BENCHMARK(BM_IpdaAnalyzeGemm);

}  // namespace

BENCHMARK_MAIN();

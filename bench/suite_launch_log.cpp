// Runs the whole Polybench suite through the target runtime under a chosen
// policy and prints the launch log as CSV — the observability surface a
// production deployment of the paper's framework would scrape (cf. the
// OMPT discussion in §V.A). Not one of the paper's figures; a harness
// utility.
//
// --policy accepts the launch policies (always-cpu | always-gpu |
// model-guided | oracle) and the selection policies (model-compare |
// calibrated | hysteresis | epsilon-greedy, docs/POLICIES.md); a selection
// name runs model-guided with that policy installed in the selector.
//
// Options beyond policy/mode/scale/threads:
//   --jobs J                 benchmark-level concurrency (0 = hardware
//                            threads, 1 = serial); faulty runs are always
//                            serial, see below
//   --decisions compiled|interpreted
//                            decision path: compiled region plans (default)
//                            or the interpreted symbolic oracle
//   --no-decision-cache      disable per-region decision memoization
//   --trace-out <file>       attach an obs::TraceSession and write a Chrome
//                            trace_event JSON of the run (forces serial)
//   --stats                  print metrics + prediction-accuracy summary to
//                            stderr after the run (forces serial)
//   --drift-report           print the per-region drift report (EWMA/CUSUM
//                            over prediction error, mispredictions) to
//                            stderr after the run (forces serial; pair with
//                            --policy oracle for misprediction counts)
//   --prom-out <file>        write a Prometheus text exposition (0.0.4) of
//                            the session after the run (forces serial)
//   --stats-file <file>      attach an obs::SnapshotWriter that atomically
//                            rewrites <file> with the stats summary every
//                            --stats-every launches (default 16; forces
//                            serial)
//   --workload W             launch a generated stream instead of one pass
//                            in suite order: uniform | zipfian | bursty over
//                            all suite kernels at the mode/scale size
//                            (forces serial; deterministic by
//                            --workload-seed, default 2019)
//   --workload-requests N    stream length for --workload (default 64)
//   --batch B                pre-decide each group of B upcoming stream
//                            launches through decideBatch before launching
//                            them, so the per-launch decisions hit the
//                            memoization cache (requires --workload; the
//                            log's decision_cache_hit column shows the
//                            effect)
//   --record-trace <file>    write the generated --workload stream as a
//                            versioned workload trace file (#!osel-trace
//                            header carrying the generator seed) for later
//                            replay through suite_batch_decide --trace-in
//                            or loadgen_oseld --trace-in (requires
//                            --workload)
#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench/common/platform.h"
#include "bench/common/policy_flag.h"
#include "bench/common/thread_pool.h"
#include "compiler/compiler.h"
#include "obs/export.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"
#include "support/faultinject.h"
#include "workload/workload.h"

namespace {

using namespace osel;

/// Launches every kernel of `benchmark` through `rt` under `policy`.
void launchBenchmark(runtime::TargetRuntime& rt,
                     const polybench::Benchmark& benchmark,
                     polybench::Mode mode, std::int64_t scale,
                     runtime::Policy policy) {
  const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
  const auto bindings = benchmark.bindings(n);
  ir::ArrayStore store = benchmark.allocate(bindings);
  polybench::initializeInputs(benchmark, bindings, store);
  for (const auto& kernel : benchmark.kernels())
    (void)rt.launch(kernel.name, bindings, store, policy);
}

/// Launches a --workload stream: kernels drawn by the generator, each
/// benchmark's data environment allocated lazily on first touch and reused
/// across the stream. With batch > 0, every group of `batch` upcoming
/// launches is pre-decided through decideBatch first, so the launches'
/// decisions come from the memoization cache.
void launchStream(runtime::TargetRuntime& rt,
                  const std::vector<workload::Item>& stream,
                  const std::map<std::string, const polybench::Benchmark*>&
                      benchmarkByKernel,
                  runtime::Policy policy, std::size_t batch) {
  std::map<std::string, ir::ArrayStore> stores;
  std::vector<runtime::DecideRequest> requests;
  std::vector<runtime::Decision> decisions;
  for (std::size_t pos = 0; pos < stream.size(); ++pos) {
    if (batch > 0 && pos % batch == 0) {
      const std::size_t n = std::min(batch, stream.size() - pos);
      requests.resize(n);
      decisions.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        requests[i] = {stream[pos + i].region, &stream[pos + i].bindings};
      }
      rt.decideBatch(requests, decisions);
    }
    const workload::Item& item = stream[pos];
    const polybench::Benchmark& benchmark = *benchmarkByKernel.at(item.region);
    auto [it, inserted] = stores.try_emplace(benchmark.name());
    if (inserted) {
      it->second = benchmark.allocate(item.bindings);
      polybench::initializeInputs(benchmark, item.bindings, it->second);
    }
    (void)rt.launch(item.region, item.bindings, it->second, policy);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  // --gpu-fault-rate R injects transient GPU launch failures with
  // probability R, exercising the retry/fallback columns of the log.
  const double gpuFaultRate = cl.doubleOption("gpu-fault-rate", 0.0);
  if (gpuFaultRate < 0.0 || gpuFaultRate > 1.0) {
    std::fprintf(stderr, "suite_launch_log: --gpu-fault-rate must be in [0, 1], got %g\n",
                 gpuFaultRate);
    return 2;
  }
  if (gpuFaultRate > 0.0) {
    support::faultInjector().arm(
        support::faultpoints::kGpuLaunch,
        {.kind = support::FaultKind::TransientLaunch,
         .probability = gpuFaultRate,
         .seed = static_cast<std::uint64_t>(cl.intOption("fault-seed", 2019))});
  }
  // --policy accepts launch-policy names and selection-policy names
  // (docs/POLICIES.md); a selection name runs ModelGuided with that policy
  // installed in the selector. Unknown names are a usage error.
  const auto policySelection =
      bench::parsePolicyFlag(cl, "suite_launch_log", true);
  if (!policySelection.has_value()) return 2;
  const runtime::Policy policy = policySelection->launch;
  const auto mode = cl.stringOption("mode").value_or("test") == "benchmark"
                        ? polybench::Mode::Benchmark
                        : polybench::Mode::Test;
  const std::string decisions =
      cl.stringOption("decisions").value_or("compiled");
  if (decisions != "compiled" && decisions != "interpreted") {
    std::fprintf(stderr,
                 "suite_launch_log: --decisions must be 'compiled' or "
                 "'interpreted', got %s\n",
                 decisions.c_str());
    return 2;
  }
  const std::string workloadName = cl.stringOption("workload").value_or("");
  const auto workloadRequests =
      static_cast<std::size_t>(cl.intOption("workload-requests", 64));
  const auto workloadSeed =
      static_cast<std::uint64_t>(cl.intOption("workload-seed", 2019));
  const auto batch = static_cast<std::size_t>(cl.intOption("batch", 0));
  if (!workloadName.empty() && workloadRequests == 0) {
    std::fprintf(stderr,
                 "suite_launch_log: --workload-requests must be >= 1\n");
    return 2;
  }
  if (batch > 0 && workloadName.empty()) {
    std::fprintf(stderr, "suite_launch_log: --batch requires --workload\n");
    return 2;
  }
  const std::string recordTrace = cl.stringOption("record-trace").value_or("");
  if (!recordTrace.empty() && workloadName.empty()) {
    std::fprintf(stderr,
                 "suite_launch_log: --record-trace requires --workload\n");
    return 2;
  }

  // Compile the whole suite into one PAD, then drive the runtime.
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const auto& kernel : benchmark.kernels()) regions.push_back(kernel);
  }
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);

  runtime::RuntimeOptions options;
  options.selector.cpuThreads = threads;
  options.selector.policy = policySelection->selection;
  options.selector.useCompiledPlans = decisions == "compiled";
  options.cpuSim = cpusim::CpuSimParams::power9();
  options.cpuSimThreads = threads;
  options.gpuSim = gpusim::GpuSimParams::teslaV100();
  options.decisionCacheEnabled = !cl.hasFlag("no-decision-cache");

  const std::string traceOut = cl.stringOption("trace-out").value_or("");
  const bool wantStats = cl.hasFlag("stats");
  const bool wantDrift = cl.hasFlag("drift-report");
  const std::string promOut = cl.stringOption("prom-out").value_or("");
  const std::string statsFile = cl.stringOption("stats-file").value_or("");
  const auto statsEvery = cl.intOption("stats-every", 16);
  if (!statsFile.empty() && statsEvery <= 0) {
    std::fprintf(stderr, "suite_launch_log: --stats-every must be > 0, got %lld\n",
                 static_cast<long long>(statsEvery));
    return 2;
  }
  obs::TraceSession session;
  if (!traceOut.empty() || wantStats || wantDrift || !promOut.empty() ||
      !statsFile.empty()) {
    options.trace = &session;
    session.observeFaultInjector();
  }
  // Periodic snapshot: the writer re-renders the stats summary and
  // atomically replaces the file every N launches.
  std::unique_ptr<obs::SnapshotWriter> snapshotWriter;
  if (!statsFile.empty()) {
    snapshotWriter = std::make_unique<obs::SnapshotWriter>(
        obs::SnapshotOptions{statsFile,
                             static_cast<std::uint64_t>(statsEvery)},
        [&session] { return obs::renderStatsSummary(session); });
    session.attachSnapshotWriter(snapshotWriter.get());
  }

  const auto jobs = static_cast<unsigned>(cl.intOption("jobs", 0));
  const std::vector<polybench::Benchmark>& suite = polybench::suite();

  // Fault injection draws from one global seeded stream and feeds shared
  // circuit-breaker state, so the fault sequence is launch-order dependent:
  // faulty runs stay on the serial single-runtime path for reproducibility.
  // A trace session likewise records one runtime's pipeline, so observed
  // runs are serial too. When the user asked for parallel jobs, say why the
  // request is being overridden instead of silently ignoring it (see
  // docs/PERFORMANCE.md §4 for the full interaction table).
  // A --workload stream is one ordered sequence over one runtime, so it is
  // serial by construction, like the faulty and observed runs.
  if (gpuFaultRate > 0.0 || jobs == 1 || options.trace != nullptr ||
      !workloadName.empty()) {
    if (jobs > 1) {
      const char* cause =
          gpuFaultRate > 0.0
              ? "--gpu-fault-rate needs the launch-order-deterministic fault "
                "stream"
          : !workloadName.empty()
              ? "--workload replays one ordered stream through one runtime"
              : "observability output (--trace-out/--stats/--drift-report/"
                "--prom-out/--stats-file) records a single runtime's pipeline";
      std::fprintf(stderr,
                   "suite_launch_log: running serial because %s; ignoring "
                   "--jobs %u\n",
                   cause, jobs);
    }
    runtime::TargetRuntime rt(std::move(db), options);
    for (ir::TargetRegion& region : regions)
      rt.registerRegion(std::move(region));
    if (!workloadName.empty()) {
      const workload::Shape shape =
          workload::parseShape(workloadName);  // throws on unknown
      std::vector<workload::Candidate> candidates;
      std::map<std::string, const polybench::Benchmark*> benchmarkByKernel;
      for (const polybench::Benchmark& benchmark : suite) {
        const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
        const symbolic::Bindings bindings = benchmark.bindings(n);
        for (const auto& kernel : benchmark.kernels()) {
          candidates.push_back({kernel.name, {bindings}});
          benchmarkByKernel[kernel.name] = &benchmark;
        }
      }
      workload::GeneratorOptions genOptions;
      genOptions.seed = workloadSeed;
      workload::Generator generator(shape, std::move(candidates), genOptions);
      const std::vector<workload::Item> stream =
          generator.take(workloadRequests);
      if (!recordTrace.empty()) {
        std::FILE* out = std::fopen(recordTrace.c_str(), "w");
        if (out == nullptr) {
          std::fprintf(stderr,
                       "suite_launch_log: cannot open %s for writing\n",
                       recordTrace.c_str());
          return 1;
        }
        const std::string text =
            workload::serializeTrace(stream, {.seed = workloadSeed});
        std::fputs(text.c_str(), out);
        std::fclose(out);
        std::fprintf(stderr,
                     "suite_launch_log: recorded %zu-item %s trace to %s\n",
                     stream.size(), workloadName.c_str(), recordTrace.c_str());
      }
      launchStream(rt, stream, benchmarkByKernel, policy, batch);
    } else {
      for (const polybench::Benchmark& benchmark : suite)
        launchBenchmark(rt, benchmark, mode, scale, policy);
    }
    std::fputs(runtime::renderLogCsv(rt.log()).c_str(), stdout);
    if (!traceOut.empty()) {
      std::FILE* out = std::fopen(traceOut.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "suite_launch_log: cannot open %s for writing\n",
                     traceOut.c_str());
        return 1;
      }
      std::fputs(obs::renderChromeTrace(session).c_str(), out);
      std::fclose(out);
      std::fprintf(stderr, "suite_launch_log: wrote %llu trace events to %s\n",
                   static_cast<unsigned long long>(session.recorded()),
                   traceOut.c_str());
    }
    if (wantStats) std::fputs(obs::renderStatsSummary(session).c_str(), stderr);
    if (wantDrift) std::fputs(obs::renderDriftReport(session).c_str(), stderr);
    if (!promOut.empty()) {
      std::FILE* out = std::fopen(promOut.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "suite_launch_log: cannot open %s for writing\n",
                     promOut.c_str());
        return 1;
      }
      std::fputs(obs::renderPrometheus(session).c_str(), out);
      std::fclose(out);
    }
    if (snapshotWriter != nullptr) {
      // Final state beats a mid-run snapshot: flush once more at exit.
      if (!snapshotWriter->flush()) {
        std::fprintf(stderr, "suite_launch_log: cannot write %s\n",
                     statsFile.c_str());
        return 1;
      }
    }
    return 0;
  }

  // Healthy path: one self-contained runtime per benchmark (own PAD copy,
  // simulators, caches), run concurrently; logs concatenate in suite order,
  // so the CSV is byte-identical to the serial run.
  bench::ThreadPool pool(jobs);
  std::vector<std::vector<runtime::LaunchRecord>> logs(suite.size());
  pool.parallelFor(suite.size(), [&](std::size_t i) {
    const polybench::Benchmark& benchmark = suite[i];
    pad::AttributeDatabase dbCopy = db;
    runtime::TargetRuntime rt(std::move(dbCopy), options);
    for (const auto& kernel : benchmark.kernels()) rt.registerRegion(kernel);
    launchBenchmark(rt, benchmark, mode, scale, policy);
    logs[i] = rt.log();
  });
  std::vector<runtime::LaunchRecord> merged;
  for (const auto& log : logs)
    merged.insert(merged.end(), log.begin(), log.end());
  std::fputs(runtime::renderLogCsv(merged).c_str(), stdout);
  return 0;
}

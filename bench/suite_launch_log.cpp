// Runs the whole Polybench suite through the target runtime under a chosen
// policy and prints the launch log as CSV — the observability surface a
// production deployment of the paper's framework would scrape (cf. the
// OMPT discussion in §V.A). Not one of the paper's figures; a harness
// utility.
#include <array>
#include <cstdio>

#include "bench/common/platform.h"
#include "compiler/compiler.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"
#include "support/faultinject.h"

int main(int argc, char** argv) {
  using namespace osel;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto scale = cl.intOption("scale", 4);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  // --gpu-fault-rate R injects transient GPU launch failures with
  // probability R, exercising the retry/fallback columns of the log.
  const double gpuFaultRate = cl.doubleOption("gpu-fault-rate", 0.0);
  if (gpuFaultRate < 0.0 || gpuFaultRate > 1.0) {
    std::fprintf(stderr, "suite_launch_log: --gpu-fault-rate must be in [0, 1], got %g\n",
                 gpuFaultRate);
    return 2;
  }
  if (gpuFaultRate > 0.0) {
    support::faultInjector().arm(
        support::faultpoints::kGpuLaunch,
        {.kind = support::FaultKind::TransientLaunch,
         .probability = gpuFaultRate,
         .seed = static_cast<std::uint64_t>(cl.intOption("fault-seed", 2019))});
  }
  const std::string policyName =
      cl.stringOption("policy").value_or("model-guided");
  runtime::Policy policy = runtime::Policy::ModelGuided;
  if (policyName == "always-cpu") policy = runtime::Policy::AlwaysCpu;
  if (policyName == "always-gpu") policy = runtime::Policy::AlwaysGpu;
  if (policyName == "oracle") policy = runtime::Policy::Oracle;
  const auto mode = cl.stringOption("mode").value_or("test") == "benchmark"
                        ? polybench::Mode::Benchmark
                        : polybench::Mode::Test;

  // Compile the whole suite into one PAD, then drive the runtime.
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const auto& kernel : benchmark.kernels()) regions.push_back(kernel);
  }
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  pad::AttributeDatabase db = compiler::compileAll(regions, models);

  runtime::SelectorConfig config;
  config.cpuThreads = threads;
  runtime::TargetRuntime rt(std::move(db), config,
                            cpusim::CpuSimParams::power9(), threads,
                            gpusim::GpuSimParams::teslaV100());
  for (ir::TargetRegion& region : regions) rt.registerRegion(std::move(region));

  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    const std::int64_t n = bench::scaledSize(benchmark, mode, scale);
    const auto bindings = benchmark.bindings(n);
    ir::ArrayStore store = benchmark.allocate(bindings);
    polybench::initializeInputs(benchmark, bindings, store);
    for (const auto& kernel : benchmark.kernels())
      (void)rt.launch(kernel.name, bindings, store, policy);
  }
  std::fputs(runtime::renderLogCsv(rt.log()).c_str(), stdout);
  return 0;
}

// Batched-decide throughput/latency suite: replays a synthetic decision
// stream over the full Polybench region set and reports decisions/sec plus
// p50/p99/p999 of the *amortized per-decision* latency for each batch size
// (1/8/64/512) under each workload shape, next to a looped scalar decide()
// baseline. This is the macro view of the decideBatch win the perf-smoke
// guard pins (see guard_batch_decide and docs/PERFORMANCE.md §"Batched
// deciding").
//
// Options:
//   --workload W      uniform | zipfian | bursty | all (default all)
//   --batch N         single batch size instead of the 1/8/64/512 sweep
//   --requests N      stream length per run (default 16384)
//   --seed S          workload generator seed (default 2019); the same seed
//                     is reused for every batch size, so each row of a
//                     workload sees byte-identical traffic
//   --zipf-s S        Zipf exponent for the zipfian shape (default 1.2)
//   --trace-out FILE  serialize the generated stream (workload trace
//                     format) and exit; pair with --trace-in to replay
//   --trace-in FILE   replay a recorded trace instead of generating
//                     (reported under workload name "trace")
//
// Bursty gaps are honored between batches (sleep), but decisions/sec is
// computed over decide time only, so the on/off pacing does not deflate the
// throughput column.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "obs/quantile.h"
#include "polybench/polybench.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"
#include "workload/workload.h"

namespace {

using namespace osel;
using Clock = std::chrono::steady_clock;

/// Decide-only candidate set: every Polybench kernel at four recurring
/// problem sizes. Decide never executes, so the sizes can span the paper's
/// test-to-benchmark range without allocating arrays.
constexpr std::array<std::int64_t, 4> kSizes{256, 512, 1024, 2048};

std::vector<workload::Candidate> makeCandidates() {
  std::vector<workload::Candidate> candidates;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    std::vector<symbolic::Bindings> choices;
    choices.reserve(kSizes.size());
    for (const std::int64_t n : kSizes) choices.push_back(benchmark.bindings(n));
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      candidates.push_back({kernel.name, choices});
    }
  }
  return candidates;
}

runtime::TargetRuntime makeRuntime() {
  std::vector<ir::TargetRegion> regions;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      regions.push_back(kernel);
    }
  }
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  runtime::RuntimeOptions options;
  options.selector.cpuThreads = 160;
  runtime::TargetRuntime rt(compiler::compileAll(regions, models), options);
  for (ir::TargetRegion& region : regions) rt.registerRegion(std::move(region));
  return rt;
}

struct RunResult {
  double decisionsPerSec = 0.0;
  double p50Us = 0.0;
  double p99Us = 0.0;
  double p999Us = 0.0;
};

RunResult summarize(std::vector<double>& amortizedSeconds, std::size_t items,
                    double busySeconds) {
  std::sort(amortizedSeconds.begin(), amortizedSeconds.end());
  RunResult result;
  result.decisionsPerSec = busySeconds > 0.0
                               ? static_cast<double>(items) / busySeconds
                               : 0.0;
  result.p50Us = obs::percentileOfSorted(amortizedSeconds, 0.50) * 1e6;
  result.p99Us = obs::percentileOfSorted(amortizedSeconds, 0.99) * 1e6;
  result.p999Us = obs::percentileOfSorted(amortizedSeconds, 0.999) * 1e6;
  return result;
}

RunResult runLooped(runtime::TargetRuntime& rt,
                    const std::vector<workload::Item>& items) {
  std::vector<double> latencies;
  latencies.reserve(items.size());
  double busySeconds = 0.0;
  for (const workload::Item& item : items) {
    if (item.gapSeconds > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(item.gapSeconds));
    }
    const Clock::time_point start = Clock::now();
    (void)rt.decide(item.region, item.bindings);
    const double dt =
        std::chrono::duration<double>(Clock::now() - start).count();
    busySeconds += dt;
    latencies.push_back(dt);
  }
  return summarize(latencies, items.size(), busySeconds);
}

RunResult runBatched(runtime::TargetRuntime& rt,
                     const std::vector<workload::Item>& items,
                     std::size_t batch) {
  std::vector<runtime::DecideRequest> requests(batch);
  std::vector<runtime::Decision> out(batch);
  std::vector<double> amortized;
  amortized.reserve(items.size() / batch + 1);
  double busySeconds = 0.0;
  for (std::size_t start = 0; start < items.size(); start += batch) {
    const std::size_t n = std::min(batch, items.size() - start);
    double gap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const workload::Item& item = items[start + i];
      gap += item.gapSeconds;
      requests[i] = {item.region, &item.bindings};
    }
    if (gap > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(gap));
    }
    const Clock::time_point t0 = Clock::now();
    rt.decideBatch(std::span(requests.data(), n), std::span(out.data(), n));
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    busySeconds += dt;
    amortized.push_back(dt / static_cast<double>(n));
  }
  return summarize(amortized, items.size(), busySeconds);
}

std::vector<workload::Item> makeStream(workload::Shape shape,
                                       std::size_t requests,
                                       std::uint64_t seed, double zipfS) {
  workload::GeneratorOptions options;
  options.seed = seed;
  options.zipfExponent = zipfS;
  workload::Generator generator(shape, makeCandidates(), options);
  return generator.take(requests);
}

}  // namespace

int main(int argc, char** argv) {
  const support::CommandLine cl = support::CommandLine::parse(argc, argv);
  const auto requests = static_cast<std::size_t>(cl.intOption("requests", 16384));
  const auto seed = static_cast<std::uint64_t>(cl.intOption("seed", 2019));
  const double zipfS = cl.doubleOption("zipf-s", 1.2);
  const auto singleBatch = static_cast<std::size_t>(cl.intOption("batch", 0));
  const std::string workloadName = cl.stringOption("workload").value_or("all");
  const std::string traceOut = cl.stringOption("trace-out").value_or("");
  const std::string traceIn = cl.stringOption("trace-in").value_or("");
  if (requests == 0) {
    std::fprintf(stderr, "suite_batch_decide: --requests must be >= 1\n");
    return 2;
  }

  std::vector<workload::Shape> shapes;
  if (traceIn.empty()) {
    if (workloadName == "all") {
      shapes = {workload::Shape::Uniform, workload::Shape::Zipfian,
                workload::Shape::Bursty};
    } else {
      shapes = {workload::parseShape(workloadName)};  // throws on unknown
    }
  }

  if (!traceOut.empty()) {
    // Record mode: serialize the stream the first requested shape would
    // produce, for later --trace-in replay (deterministic by seed).
    const workload::Shape shape =
        shapes.empty() ? workload::Shape::Uniform : shapes.front();
    const std::vector<workload::Item> items =
        makeStream(shape, requests, seed, zipfS);
    std::FILE* out = std::fopen(traceOut.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "suite_batch_decide: cannot open %s for writing\n",
                   traceOut.c_str());
      return 1;
    }
    const std::string text = workload::serializeTrace(
        items, {.seed = static_cast<std::uint64_t>(seed)});
    std::fputs(text.c_str(), out);
    std::fclose(out);
    std::fprintf(stderr, "suite_batch_decide: wrote %zu items to %s\n",
                 items.size(), traceOut.c_str());
    return 0;
  }

  runtime::TargetRuntime rt = makeRuntime();

  struct NamedStream {
    std::string name;
    std::vector<workload::Item> items;
  };
  std::vector<NamedStream> streams;
  if (!traceIn.empty()) {
    std::FILE* in = std::fopen(traceIn.c_str(), "rb");
    if (in == nullptr) {
      std::fprintf(stderr, "suite_batch_decide: cannot open %s\n",
                   traceIn.c_str());
      return 1;
    }
    std::string text;
    char buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
      text.append(buffer, got);
    }
    std::fclose(in);
    streams.push_back({"trace", workload::parseTrace(text)});
  } else {
    for (const workload::Shape shape : shapes) {
      streams.push_back({std::string(workload::toString(shape)),
                         makeStream(shape, requests, seed, zipfS)});
    }
  }

  std::vector<std::size_t> batchSizes{1, 8, 64, 512};
  if (singleBatch > 0) batchSizes = {singleBatch};

  std::printf("# batched decide over %zu Polybench regions, seed %llu\n",
              makeCandidates().size(),
              static_cast<unsigned long long>(seed));
  std::printf("workload,mode,batch,decisions_per_sec,p50_us,p99_us,p999_us\n");
  for (const NamedStream& stream : streams) {
    // Warm pass (scalar) populates the decision caches so every mode below
    // measures the same steady state over byte-identical traffic.
    for (const workload::Item& item : stream.items) {
      (void)rt.decide(item.region, item.bindings);
    }
    const RunResult looped = runLooped(rt, stream.items);
    std::printf("%s,looped,1,%.0f,%.3f,%.3f,%.3f\n", stream.name.c_str(),
                looped.decisionsPerSec, looped.p50Us, looped.p99Us,
                looped.p999Us);
    for (const std::size_t batch : batchSizes) {
      const RunResult result = runBatched(rt, stream.items, batch);
      std::printf("%s,batched,%zu,%.0f,%.3f,%.3f,%.3f\n", stream.name.c_str(),
                  batch, result.decisionsPerSec, result.p50Us, result.p99Us,
                  result.p999Us);
    }
    std::fflush(stdout);
  }
  return 0;
}

// Diagnostic dump: per-kernel ground-truth component breakdowns and model
// predictions side by side, for calibration and debugging. Not one of the
// paper's tables — a maintenance tool.
#include <cstdio>
#include <string>

#include "bench/common/platform.h"
#include "compiler/compiler.h"
#include "runtime/selector.h"
#include "support/cli.h"
#include "support/format.h"

int main(int argc, char** argv) {
  using namespace osel;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto n = cl.intOption("n", 1100);
  const auto threads = static_cast<int>(cl.intOption("threads", 160));
  const std::string only = cl.stringOption("benchmark").value_or("");

  const bench::Platform platform =
      cl.stringOption("platform").value_or("v100") == "k80"
          ? bench::Platform::power8K80(threads)
          : bench::Platform::power9V100(threads);
  const cpusim::CpuSimulator cpuSim(platform.cpuSim, platform.threads);
  const gpusim::GpuSimulator gpuSim(platform.gpuSim);
  const std::array<mca::MachineModel, 1> models{platform.mcaModel};
  runtime::SelectorConfig config;
  config.cpuParams = platform.cpuModel;
  config.cpuThreads = platform.threads;
  config.gpuParams = platform.gpuModel;
  config.mcaModelName = platform.mcaModel.name;
  const runtime::OffloadSelector selector(config);

  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    if (!only.empty() && benchmark.name() != only) continue;
    const auto bindings = benchmark.bindings(n);
    ir::ArrayStore store = benchmark.allocate(bindings);
    polybench::initializeInputs(benchmark, bindings, store);
    for (const auto& kernel : benchmark.kernels()) {
      std::printf("== %s (n=%lld, threads=%d)\n", kernel.name.c_str(),
                  static_cast<long long>(n), threads);
      const auto cpu = cpuSim.simulate(kernel, bindings, store);
      std::printf("  %s\n", cpu.toString().c_str());
      std::printf("    overhead=%.0f compute=%.0f stall=%.0f bw=%.0f cycles\n",
                  cpu.overheadCycles, cpu.computeCycles, cpu.stallCycles,
                  cpu.bandwidthCycles);
      const auto gpu = gpuSim.simulate(kernel, bindings, store);
      std::printf("  %s\n", gpu.toString().c_str());
      std::printf("    bounds: issue=%.2f latency=%.2f bandwidth=%.2f\n",
                  gpu.issueBoundFraction, gpu.latencyBoundFraction,
                  gpu.bandwidthBoundFraction);
      const auto attr = compiler::analyzeRegion(kernel, models);
      const auto decision =
          selector.decide(runtime::RegionHandle(attr), bindings);
      std::printf("  model: %s\n  model: %s\n",
                  decision.cpu.toString().c_str(),
                  decision.gpu.toString().c_str());
      std::printf("  actual speedup %.2fx | predicted %.2fx\n\n",
                  cpu.seconds / gpu.totalSeconds, decision.predictedSpeedup());
    }
  }
  return 0;
}

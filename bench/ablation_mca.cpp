// Ablation for the paper's §IV.A.1 claim: feeding the CPU cost model with
// MCA pipeline-simulated cycles-per-iteration beats the naive
// sum-of-instruction-latencies estimate the MCA integration replaced.
//
// For every Polybench kernel we compare three per-parallel-iteration cycle
// estimates against the ground-truth CPU simulator (single thread, so no
// SMT/fork effects):
//   * MCA        — out-of-order pipeline simulation (POWER9 model),
//   * latency-sum — the same micro-ops priced on the scalarLatencySum
//                   machine (no overlap),
// both evaluated with the *true* inner trip counts so the comparison
// isolates pipeline modelling from the trip-count abstraction.
#include <cstdio>
#include <vector>

#include "bench/common/platform.h"
#include "compiler/cache_aware_mca.h"
#include "compiler/compiler.h"
#include "support/cli.h"
#include "support/format.h"
#include "support/statistics.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace osel;
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto n = cl.intOption("n", 550);

  const cpusim::CpuSimulator groundTruth(cpusim::CpuSimParams::power9(), 1);
  const mca::MachineModel smart = mca::MachineModel::power9();
  const mca::MachineModel naive = mca::MachineModel::scalarLatencySum();

  std::printf("Ablation — Machine_cycles_per_iter: MCA pipeline simulation vs "
              "latency summation (n=%lld, vs 1-thread ground truth)\n\n",
              static_cast<long long>(n));

  support::TextTable table({"Kernel", "Ground truth", "MCA", "MCA+cache",
                            "Latency-sum", "MCA err", "MCA+cache err",
                            "Latency-sum err"});
  std::vector<double> mcaErrors;
  std::vector<double> cacheErrors;
  std::vector<double> naiveErrors;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    const std::int64_t size = benchmark.name() == "3DCONV" ? 64 : n;
    const auto bindings = benchmark.bindings(size);
    ir::ArrayStore store = benchmark.allocate(bindings);
    polybench::initializeInputs(benchmark, bindings, store);
    for (const auto& kernel : benchmark.kernels()) {
      const cpusim::CpuSimResult sim =
          groundTruth.simulate(kernel, bindings, store);
      const double truthPerIter =
          (sim.totalCycles - sim.overheadCycles) /
          static_cast<double>(kernel.flatTripCount(bindings));

      // Evaluate both estimators with the kernel's true trip counts.
      compiler::CompileOptions options;
      options.assumedLoopTrips = static_cast<double>(size);
      const double mcaCycles =
          compiler::machineCyclesPerIteration(kernel, smart, options);
      // The future-work extension (paper SIV.A.1): MCA with a footprint-
      // derived effective load latency instead of the flat L1 figure.
      const mca::MachineModel aware = compiler::cacheAwareMachineModel(
          smart, kernel, bindings, compiler::CacheGeometry::power9());
      const double cacheCycles =
          compiler::machineCyclesPerIteration(kernel, aware, options);
      const double naiveCycles =
          compiler::machineCyclesPerIteration(kernel, naive, options);

      const double mcaErr = mcaCycles / truthPerIter;
      const double cacheErr = cacheCycles / truthPerIter;
      const double naiveErr = naiveCycles / truthPerIter;
      table.addRow({kernel.name, support::formatFixed(truthPerIter, 0),
                    support::formatFixed(mcaCycles, 0),
                    support::formatFixed(cacheCycles, 0),
                    support::formatFixed(naiveCycles, 0),
                    support::formatFixed(mcaErr, 2) + "x",
                    support::formatFixed(cacheErr, 2) + "x",
                    support::formatFixed(naiveErr, 2) + "x"});
      mcaErrors.push_back(mcaErr > 1 ? mcaErr : 1.0 / mcaErr);
      cacheErrors.push_back(cacheErr > 1 ? cacheErr : 1.0 / cacheErr);
      naiveErrors.push_back(naiveErr > 1 ? naiveErr : 1.0 / naiveErr);
    }
  }
  table.addSeparator();
  table.addRow({"geomean |err|", "-", "-", "-", "-",
                support::formatFixed(support::geometricMean(mcaErrors), 2) + "x",
                support::formatFixed(support::geometricMean(cacheErrors), 2) + "x",
                support::formatFixed(support::geometricMean(naiveErrors), 2) + "x"});
  if (cl.hasFlag("csv")) {
    std::fputs(table.renderCsv().c_str(), stdout);
  } else {
    std::fputs(table.render(2).c_str(), stdout);
  }
  return 0;
}

// Micro-benchmarks for the paper's §IV.D claim: evaluating the analytical
// models at launch time is "equivalent to solving an equation" — negligible
// next to the work the OpenMP runtime already does to start parallel
// execution (and next to the ~8 us kernel-launch overhead, let alone the
// ML-inference alternative §V.B dismisses).
#include <benchmark/benchmark.h>

#include <array>

#include "compiler/compiler.h"
#include "mca/pipeline_sim.h"
#include "polybench/polybench.h"
#include "runtime/selector.h"

namespace {

using namespace osel;

const pad::RegionAttributes& gemmAttributes() {
  static const pad::RegionAttributes attr = [] {
    const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
    return compiler::analyzeRegion(
        polybench::benchmarkByName("GEMM").kernels()[0], models);
  }();
  return attr;
}

const runtime::OffloadSelector& selector() {
  static const runtime::OffloadSelector instance{runtime::SelectorConfig{}};
  return instance;
}

void BM_FullDecision(benchmark::State& state) {
  const symbolic::Bindings bindings{{"n", 9600}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector().decide(gemmAttributes(), bindings));
  }
}
BENCHMARK(BM_FullDecision);

void BM_CpuModelPredict(benchmark::State& state) {
  const symbolic::Bindings bindings{{"n", 9600}};
  const cpumodel::CpuCostModel model(cpumodel::CpuModelParams::power9(), 160);
  const cpumodel::CpuWorkload workload =
      selector().cpuWorkload(gemmAttributes(), bindings);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(workload));
  }
}
BENCHMARK(BM_CpuModelPredict);

void BM_GpuModelPredict(benchmark::State& state) {
  const symbolic::Bindings bindings{{"n", 9600}};
  const gpumodel::GpuCostModel model(gpumodel::GpuDeviceParams::teslaV100());
  const gpumodel::GpuWorkload workload =
      selector().gpuWorkload(gemmAttributes(), bindings);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(workload));
  }
}
BENCHMARK(BM_GpuModelPredict);

void BM_RuntimeStrideResolution(benchmark::State& state) {
  // Binding the stored symbolic strides with runtime values — the per-launch
  // cost of the hybrid IPDA path.
  const symbolic::Bindings bindings{{"n", 9600}};
  for (auto _ : state) {
    for (const pad::StrideAttribute& stride : gemmAttributes().strides) {
      benchmark::DoNotOptimize(
          stride.stride.substituteAll(bindings).tryConstant());
    }
  }
}
BENCHMARK(BM_RuntimeStrideResolution);

void BM_PadSerializeDeserialize(benchmark::State& state) {
  pad::AttributeDatabase db;
  db.insert(gemmAttributes());
  const std::string text = db.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pad::AttributeDatabase::deserialize(text));
  }
}
BENCHMARK(BM_PadSerializeDeserialize);

void BM_CompileTimeAnalysis(benchmark::State& state) {
  // The *compile-time* half (loadout + IPDA + MCA) for context: expensive
  // relative to the launch-time decision, but paid once per program.
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const ir::TargetRegion& kernel = polybench::benchmarkByName("GEMM").kernels()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::analyzeRegion(kernel, models));
  }
}
BENCHMARK(BM_CompileTimeAnalysis);

}  // namespace

BENCHMARK_MAIN();

// Micro-benchmarks for the paper's §IV.D claim: evaluating the analytical
// models at launch time is "equivalent to solving an equation" — negligible
// next to the work the OpenMP runtime already does to start parallel
// execution (and next to the ~8 us kernel-launch overhead, let alone the
// ML-inference alternative §V.B dismisses).
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "mca/pipeline_sim.h"
#include "obs/trace.h"
#include "polybench/polybench.h"
#include "runtime/decision_cache.h"
#include "runtime/policy/policy.h"
#include "runtime/selector.h"
#include "runtime/target_runtime.h"
#include "service/client.h"
#include "service/server.h"

namespace {

using namespace osel;

const pad::RegionAttributes& gemmAttributes() {
  static const pad::RegionAttributes attr = [] {
    const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
    return compiler::analyzeRegion(
        polybench::benchmarkByName("GEMM").kernels()[0], models);
  }();
  return attr;
}

const runtime::OffloadSelector& selector() {
  static const runtime::OffloadSelector instance{runtime::SelectorConfig{}};
  return instance;
}

void BM_InterpretedDecision(benchmark::State& state) {
  // The original launch-time path: substitute bindings into the stored
  // symbolic expressions and walk them (allocates on every call).
  const symbolic::Bindings bindings{{"n", 9600}};
  const runtime::RegionHandle region(gemmAttributes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector().decide(region, bindings));
  }
}
BENCHMARK(BM_InterpretedDecision);

void BM_CompiledDecision(benchmark::State& state) {
  // The compiled path: slot-based expression evaluation over a stack
  // buffer; zero heap allocation, zero string hashing per call.
  const symbolic::Bindings bindings{{"n", 9600}};
  const runtime::CompiledRegionPlan plan = selector().compile(gemmAttributes());
  const runtime::RegionHandle region(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector().decide(region, bindings));
  }
}
BENCHMARK(BM_CompiledDecision);

void BM_PolicyChoice(benchmark::State& state) {
  // The selection-policy seam's cost on the compiled decide path. Arg 0 is
  // model-compare, which the selector devirtualizes back to the inline
  // compare — the perf-smoke entry pins it next to BM_CompiledDecision so a
  // reintroduced virtual call on the default path shows up as a smoke
  // regression. The other kinds pay the virtual choose() plus their state
  // lookups (sharded map for hysteresis, counter hash for epsilon-greedy).
  const auto kind = static_cast<runtime::policy::PolicyKind>(state.range(0));
  runtime::SelectorConfig config;
  runtime::policy::PolicyOptions policyOptions;
  policyOptions.kind = kind;
  config.policy = runtime::policy::makePolicy(policyOptions);
  const runtime::OffloadSelector sel(config);
  const symbolic::Bindings bindings{{"n", 9600}};
  const runtime::CompiledRegionPlan plan = sel.compile(gemmAttributes());
  const runtime::RegionHandle region(plan);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sel.decide(region, bindings));
  }
  state.SetLabel(std::string(config.policy->name()));
}
BENCHMARK(BM_PolicyChoice)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

void BM_TracedDecision(benchmark::State& state) {
  // The compiled path plus the runtime's full observability hook set: one
  // decision span, one histogram sample, AND one DecisionExplain forensics
  // record (model-term attribution filled by the selector's explain sink,
  // pushed into the session's ring) per decide. The delta against
  // BM_CompiledDecision is the per-decision cost of tracing; with no
  // session attached the hooks are a single branch (see the <2% pin in
  // perf-smoke and the allocation test in test_obs).
  const symbolic::Bindings bindings{{"n", 9600}};
  const runtime::CompiledRegionPlan plan = selector().compile(gemmAttributes());
  const runtime::RegionHandle region(plan);
  obs::TraceSession session({.capacity = 1024});
  obs::Histogram& overhead = session.metrics().histogram(
      "decision.overhead_s", {1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2});
  obs::DecisionExplain explain;
  for (auto _ : state) {
    const std::int64_t start = session.nowNs();
    const runtime::Decision decision =
        selector().decide(region, bindings, &explain);
    session.recordSpan("decide", "compiled", "gemm_k1", start,
                       session.nowNs() - start,
                       {"overhead_s", decision.overheadSeconds},
                       {"valid", decision.valid ? 1.0 : 0.0});
    session.recordExplain(explain);
    overhead.record(decision.overheadSeconds);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_TracedDecision);

void BM_DecisionCacheHit(benchmark::State& state) {
  // Steady-state repeated launch: bind slots + memoization-cache lookup.
  const symbolic::Bindings bindings{{"n", 9600}};
  const runtime::CompiledRegionPlan plan = selector().compile(gemmAttributes());
  runtime::DecisionCache cache(64);
  std::array<std::int64_t, runtime::CompiledRegionPlan::kMaxSlots> storage{};
  const std::span<std::int64_t> slots(storage.data(), plan.slotCount());
  std::uint64_t boundMask = 0;
  plan.bindSlots(bindings, slots, boundMask);
  cache.insert(boundMask, slots,
               selector().decide(runtime::RegionHandle(plan), bindings));
  runtime::Decision out;
  for (auto _ : state) {
    std::uint64_t mask = 0;
    plan.bindSlots(bindings, slots, mask);
    benchmark::DoNotOptimize(cache.find(mask, slots, out));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_DecisionCacheHit);

void BM_ConcurrentDecide(benchmark::State& state) {
  // The decide hot path under contention: every thread hammers
  // TargetRuntime::decide over the same region (worst case — one shard, one
  // cache stripe). Scaling here is the ceiling a multi-region service sees;
  // see bench/micro_concurrent_decide for the open-loop latency view.
  static runtime::TargetRuntime* sharedRuntime = nullptr;
  if (state.thread_index() == 0) {
    const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
    const ir::TargetRegion& kernel =
        polybench::benchmarkByName("GEMM").kernels()[0];
    const std::array<ir::TargetRegion, 1> regions{kernel};
    runtime::RuntimeOptions options;
    sharedRuntime = new runtime::TargetRuntime(
        compiler::compileAll(regions, models), options);
    sharedRuntime->registerRegion(kernel);
  }
  const symbolic::Bindings bindings{{"n", 9600}};
  const std::string name = polybench::benchmarkByName("GEMM").kernels()[0].name;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sharedRuntime->decide(name, bindings));
  }
  if (state.thread_index() == 0) {
    state.SetItemsProcessed(state.iterations() * state.threads());
    delete sharedRuntime;
    sharedRuntime = nullptr;
  }
}
BENCHMARK(BM_ConcurrentDecide)->ThreadRange(1, 8)->UseRealTime();

runtime::TargetRuntime makeGemmRuntime() {
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const ir::TargetRegion& kernel =
      polybench::benchmarkByName("GEMM").kernels()[0];
  const std::array<ir::TargetRegion, 1> regions{kernel};
  runtime::TargetRuntime rt(compiler::compileAll(regions, models),
                            runtime::RuntimeOptions{});
  rt.registerRegion(kernel);
  return rt;
}

/// Steady-state traffic both batch benches replay: one region, four
/// recurring sizes, so after warm-up every decision is a cache hit — the
/// shape an iterative suite presents.
constexpr std::array<std::int64_t, 4> kBatchSizesCycle{512, 1024, 2048, 9600};

void BM_LoopedDecide(benchmark::State& state) {
  // Baseline for BM_BatchDecide: the same traffic answered one scalar
  // decide() call at a time — each paying its own snapshot acquire, cache
  // lock, clock reads, and span. Arg is decisions per iteration, matching
  // the batch sizes so items/sec compares directly.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  runtime::TargetRuntime rt = makeGemmRuntime();
  const std::string name =
      polybench::benchmarkByName("GEMM").kernels()[0].name;
  std::vector<symbolic::Bindings> bindings;
  for (const std::int64_t n : kBatchSizesCycle) {
    bindings.push_back(symbolic::Bindings{{"n", n}});
  }
  for (const symbolic::Bindings& b : bindings) {
    benchmark::DoNotOptimize(rt.decide(name, b));  // warm the cache
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      benchmark::DoNotOptimize(rt.decide(name, bindings[i % bindings.size()]));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_LoopedDecide)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_BatchDecide(benchmark::State& state) {
  // The batched path over identical traffic: one snapshot acquire, one
  // bulk cache probe, SoA evaluation for misses. The acceptance bar is
  // >= 3x lower amortized per-decision cost at batch=64 vs BM_LoopedDecide
  // (guarded by guard_batch_decide in the perf-smoke label).
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  runtime::TargetRuntime rt = makeGemmRuntime();
  const std::string name =
      polybench::benchmarkByName("GEMM").kernels()[0].name;
  std::vector<symbolic::Bindings> bindings;
  for (const std::int64_t n : kBatchSizesCycle) {
    bindings.push_back(symbolic::Bindings{{"n", n}});
  }
  std::vector<runtime::DecideRequest> requests(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    requests[i] = {name, &bindings[i % bindings.size()]};
  }
  std::vector<runtime::Decision> out(batch);
  rt.decideBatch(requests, out);  // warm the cache and the thread arena
  for (auto _ : state) {
    rt.decideBatch(requests, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchDecide)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

void BM_ServeDecide(benchmark::State& state) {
  // One scalar decide over the oseld wire (loopback Unix socket): client
  // framing, two syscalls, server decode/decide/encode/send. Arg 0 runs the
  // pre-trace-context feature set, arg 1 negotiates kFeatureTraceContext —
  // the pair pins that the observability wiring costs nothing when the
  // feature is off and only the 16-byte block + stage clocks when on.
  const bool traced = state.range(0) != 0;
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const ir::TargetRegion& kernel =
      polybench::benchmarkByName("GEMM").kernels()[0];
  const std::array<ir::TargetRegion, 1> regions{kernel};
  service::ServiceOptions options;
  options.socketPath = "/tmp/osel_bm_serve_" + std::to_string(::getpid()) +
                       (traced ? "_t.sock" : ".sock");
  options.workerThreads = 1;
  service::Server server(compiler::compileAll(regions, models),
                         runtime::RuntimeOptions{}, options);
  server.registerRegion(kernel);
  server.start();
  const std::uint32_t features =
      traced ? service::Client::kDefaultFeatureRequest
             : (service::kFeatureBatch | service::kFeatureStats |
                service::kFeaturePrometheus);
  service::Client client =
      service::Client::connect(options.socketPath, features);
  const symbolic::Bindings bindings{{"n", 9600}};
  (void)client.decide(kernel.name, bindings);  // warm the decision cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.decide(kernel.name, bindings));
  }
  state.SetLabel(traced ? "trace-context" : "feature-off");
  server.stop();
}
BENCHMARK(BM_ServeDecide)->Arg(0)->Arg(1);

void BM_CpuModelPredict(benchmark::State& state) {
  const symbolic::Bindings bindings{{"n", 9600}};
  const cpumodel::CpuCostModel model(cpumodel::CpuModelParams::power9(), 160);
  const cpumodel::CpuWorkload workload =
      selector().cpuWorkload(gemmAttributes(), bindings);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(workload));
  }
}
BENCHMARK(BM_CpuModelPredict);

void BM_GpuModelPredict(benchmark::State& state) {
  const symbolic::Bindings bindings{{"n", 9600}};
  const gpumodel::GpuCostModel model(gpumodel::GpuDeviceParams::teslaV100());
  const gpumodel::GpuWorkload workload =
      selector().gpuWorkload(gemmAttributes(), bindings);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(workload));
  }
}
BENCHMARK(BM_GpuModelPredict);

void BM_RuntimeStrideResolution(benchmark::State& state) {
  // Binding the stored symbolic strides with runtime values — the per-launch
  // cost of the hybrid IPDA path.
  const symbolic::Bindings bindings{{"n", 9600}};
  for (auto _ : state) {
    for (const pad::StrideAttribute& stride : gemmAttributes().strides) {
      benchmark::DoNotOptimize(
          stride.stride.substituteAll(bindings).tryConstant());
    }
  }
}
BENCHMARK(BM_RuntimeStrideResolution);

void BM_PadSerializeDeserialize(benchmark::State& state) {
  pad::AttributeDatabase db;
  db.insert(gemmAttributes());
  const std::string text = db.serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pad::AttributeDatabase::deserialize(text));
  }
}
BENCHMARK(BM_PadSerializeDeserialize);

void BM_RenderLogCsv(benchmark::State& state) {
  // CSV export of a realistic launch log (~512 records) — the renderer is
  // reserve+append rather than stringstream concatenation.
  const symbolic::Bindings bindings{{"n", 9600}};
  std::vector<runtime::LaunchRecord> log(512);
  const runtime::Decision decision =
      selector().decide(runtime::RegionHandle(gemmAttributes()), bindings);
  for (std::size_t i = 0; i < log.size(); ++i) {
    log[i].regionName = "gemm_k1";
    log[i].policy = runtime::Policy::ModelGuided;
    log[i].decision = decision;
    log[i].chosen = decision.device;
    log[i].actualSeconds = decision.gpu.totalSeconds;
    log[i].actualGpuSeconds = decision.gpu.totalSeconds;
    log[i].gpuMeasured = true;
    log[i].decisionCompiled = true;
    log[i].decisionCacheHit = i != 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::renderLogCsv(log));
  }
}
BENCHMARK(BM_RenderLogCsv);

void BM_CompileTimeAnalysis(benchmark::State& state) {
  // The *compile-time* half (loadout + IPDA + MCA) for context: expensive
  // relative to the launch-time decision, but paid once per program.
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const ir::TargetRegion& kernel = polybench::benchmarkByName("GEMM").kernels()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::analyzeRegion(kernel, models));
  }
}
BENCHMARK(BM_CompileTimeAnalysis);

}  // namespace

BENCHMARK_MAIN();

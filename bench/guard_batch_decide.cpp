// Regression guard for the batched decide path, run under the perf-smoke
// ctest label: TargetRuntime::decideBatch at batch=64 must beat a loop of
// scalar decide() calls over identical steady-state traffic, by at least
// --min-speedup (default 1.5x; the micro bench typically shows >= 3x, the
// guard threshold leaves headroom for CI noise). Exits nonzero on
// regression so `ctest -L perf-smoke` fails if someone pessimises the
// batch path back to per-request cost.
//
// Options:
//   --batch N         batch size for the batched pass (default 64)
//   --items N         decisions per timed pass (default 4096)
//   --repeats R       timed passes per path; the median is compared
//                     (default 5)
//   --min-speedup S   required looped/batched per-decision cost ratio
//                     (default 1.5)
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "polybench/polybench.h"
#include "runtime/target_runtime.h"
#include "support/cli.h"

namespace {

using namespace osel;
using Clock = std::chrono::steady_clock;

double medianOf(std::vector<double>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  const support::CommandLine cl = support::CommandLine::parse(argc, argv);
  const auto batch = static_cast<std::size_t>(cl.intOption("batch", 64));
  const auto items = static_cast<std::size_t>(cl.intOption("items", 4096));
  const auto repeats = static_cast<std::size_t>(cl.intOption("repeats", 5));
  const double minSpeedup = cl.doubleOption("min-speedup", 1.5);
  if (batch < 1 || items < batch || repeats < 1 || minSpeedup <= 0.0) {
    std::fprintf(stderr,
                 "guard_batch_decide: need --batch >= 1, --items >= --batch, "
                 "--repeats >= 1, --min-speedup > 0\n");
    return 2;
  }

  // Same steady-state traffic shape as BM_LoopedDecide/BM_BatchDecide: one
  // region, four recurring sizes, so after warm-up both paths are cache-hit
  // dominated and the comparison isolates per-call vs amortized overhead.
  const std::array<mca::MachineModel, 1> models{mca::MachineModel::power9()};
  const ir::TargetRegion& kernel =
      polybench::benchmarkByName("GEMM").kernels()[0];
  const std::array<ir::TargetRegion, 1> regions{kernel};
  runtime::TargetRuntime rt(compiler::compileAll(regions, models),
                            runtime::RuntimeOptions{});
  rt.registerRegion(kernel);
  const std::string name = kernel.name;

  constexpr std::array<std::int64_t, 4> kSizes{512, 1024, 2048, 9600};
  std::vector<symbolic::Bindings> bindings;
  for (const std::int64_t n : kSizes) {
    bindings.push_back(symbolic::Bindings{{"n", n}});
  }
  std::vector<runtime::DecideRequest> requests(batch);
  std::vector<runtime::Decision> out(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    requests[i] = {name, &bindings[i % bindings.size()]};
  }

  // Warm both paths: populate the decision cache and the thread arena.
  for (const symbolic::Bindings& b : bindings) (void)rt.decide(name, b);
  rt.decideBatch(requests, out);

  std::vector<double> loopedNs;
  std::vector<double> batchedNs;
  for (std::size_t rep = 0; rep < repeats; ++rep) {
    Clock::time_point start = Clock::now();
    for (std::size_t i = 0; i < items; ++i) {
      (void)rt.decide(name, bindings[i % bindings.size()]);
    }
    loopedNs.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count() /
        static_cast<double>(items));

    start = Clock::now();
    for (std::size_t done = 0; done + batch <= items; done += batch) {
      rt.decideBatch(requests, out);
    }
    const std::size_t batched = (items / batch) * batch;
    batchedNs.push_back(
        std::chrono::duration<double, std::nano>(Clock::now() - start)
            .count() /
        static_cast<double>(batched));
  }

  const double looped = medianOf(loopedNs);
  const double perDecision = medianOf(batchedNs);
  const double speedup = perDecision > 0.0 ? looped / perDecision : 0.0;
  std::printf(
      "guard_batch_decide: looped=%.1f ns/decision batch%zu=%.1f ns/decision "
      "speedup=%.2fx (floor %.2fx)\n",
      looped, batch, perDecision, speedup, minSpeedup);
  if (speedup < minSpeedup) {
    std::fprintf(stderr,
                 "guard_batch_decide: FAIL — batched decide no longer beats "
                 "looped scalar decide by %.2fx\n",
                 minSpeedup);
    return 1;
  }
  return 0;
}

// oseld — the osel decision service daemon.
//
// Compiles the built-in Polybench suite (plus any --file kernels) into a
// PAD, registers every kernel with a service::Server, and serves
// decide/decideBatch/stats over the versioned wire protocol on a
// Unix-domain socket until SIGINT/SIGTERM. docs/SERVICE.md has the wire
// spec and deployment notes; `oselctl ping|decide|stats --socket` and
// `loadgen_oseld` are the clients.
//
//   oseld [--socket /tmp/oseld.sock] [--workers 4] [--max-pending 64]
//         [--tcp PORT] [--metrics-port PORT]
//         [--slow-threshold SECONDS] [--slow-ring N]
//         [--threads 160] [--platform v100|k80] [--file path.osel]
//
// Port flags: omitted = endpoint disabled; 0 = pick a free port (printed
// on the ready line); >0 = bind that port. The ready line goes to stdout
// and is flushed before serving, so scripts can wait for it:
//
//   oseld: serving on /tmp/oseld.sock (workers=4, protocol v1)
#include <csignal>
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "polybench/polybench.h"
#include "service/server.h"
#include "support/cli.h"

namespace {

using namespace osel;

constexpr const char* kUsage =
    "usage: oseld [options]\n"
    "\n"
    "  --socket PATH        Unix-domain socket to serve (default\n"
    "                       /tmp/oseld.sock)\n"
    "  --workers N          connection worker threads (default 4)\n"
    "  --max-pending N      accepted connections queued beyond this are\n"
    "                       shed with Error{Shed} (default 64)\n"
    "  --tcp PORT           also serve on loopback TCP (0 = free port)\n"
    "  --metrics-port PORT  loopback HTTP `GET /metrics` Prometheus\n"
    "                       endpoint (0 = free port)\n"
    "  --slow-threshold S   capture decide requests slower than S seconds\n"
    "                       (server wall time) in the slow-request ring\n"
    "                       served by `oselctl slow` (default 0.05;\n"
    "                       <= 0 disables threshold capture)\n"
    "  --slow-ring N        slow-request ring capacity (default 256)\n"
    "  --threads T          CPU model thread count (default 160)\n"
    "  --platform v100|k80  device pairing (default v100)\n"
    "  --policy NAME        selection policy: model-compare (default),\n"
    "                       calibrated, hysteresis, or epsilon-greedy\n"
    "  --file path.osel     serve kernels from a kernel-language file in\n"
    "                       addition to the built-in Polybench suite\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  if (cl.hasFlag("help") || cl.hasFlag("h")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (!cl.positional().empty()) {
    std::fprintf(stderr, "oseld: unexpected argument %s\n\n",
                 cl.positional()[0].c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }

  service::ServiceOptions serviceOptions;
  serviceOptions.socketPath =
      cl.stringOption("socket").value_or("/tmp/oseld.sock");
  serviceOptions.workerThreads =
      static_cast<std::size_t>(cl.intOption("workers", 4));
  serviceOptions.maxPendingConnections =
      static_cast<std::size_t>(cl.intOption("max-pending", 64));
  serviceOptions.tcpPort = static_cast<int>(cl.intOption("tcp", -1));
  serviceOptions.metricsPort =
      static_cast<int>(cl.intOption("metrics-port", -1));
  serviceOptions.slowThresholdSeconds = cl.doubleOption(
      "slow-threshold", serviceOptions.slowThresholdSeconds);
  serviceOptions.slowRingCapacity = static_cast<std::size_t>(cl.intOption(
      "slow-ring", static_cast<std::int64_t>(serviceOptions.slowRingCapacity)));

  const bool k80 = cl.stringOption("platform").value_or("v100") == "k80";
  runtime::RuntimeOptions rtOptions;
  rtOptions.selector.cpuThreads =
      static_cast<int>(cl.intOption("threads", 160));
  if (k80) {
    rtOptions.selector.cpuParams = cpumodel::CpuModelParams::power8();
    rtOptions.selector.gpuParams = gpumodel::GpuDeviceParams::teslaK80();
    rtOptions.selector.mcaModelName = "POWER8";
    rtOptions.cpuSim = cpusim::CpuSimParams::power8();
    rtOptions.gpuSim = gpusim::GpuSimParams::teslaK80();
  }
  rtOptions.cpuSimThreads = rtOptions.selector.cpuThreads;

  if (const auto policyName = cl.stringOption("policy")) {
    const auto kind = runtime::policy::parsePolicyKind(*policyName);
    if (!kind.has_value()) {
      std::fprintf(stderr, "oseld: unknown --policy '%s' (expected %s)\n",
                   policyName->c_str(),
                   runtime::policy::policyKindNames().c_str());
      return 2;
    }
    runtime::policy::PolicyOptions policyOptions;
    policyOptions.kind = *kind;
    rtOptions.selector.policy = runtime::policy::makePolicy(policyOptions);
  }

  try {
    // The served fleet: every Polybench kernel plus any --file kernels.
    std::vector<ir::TargetRegion> regions;
    for (const polybench::Benchmark& benchmark : polybench::suite()) {
      for (const ir::TargetRegion& kernel : benchmark.kernels()) {
        regions.push_back(kernel);
      }
    }
    if (const auto file = cl.stringOption("file"); file && !file->empty()) {
      for (ir::TargetRegion& kernel : frontend::parseKernelFile(*file)) {
        regions.push_back(std::move(kernel));
      }
    }
    const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                                 mca::MachineModel::power8()};
    pad::AttributeDatabase database = compiler::compileAll(regions, hosts);

    // Block the shutdown signals before start() so every server thread
    // inherits the mask and sigwait() below is the only consumer.
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGINT);
    sigaddset(&signals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &signals, nullptr);

    service::Server server(std::move(database), rtOptions, serviceOptions);
    for (ir::TargetRegion& kernel : regions) {
      server.registerRegion(std::move(kernel));
    }
    server.start();

    std::printf("oseld: serving on %s (workers=%zu, protocol v%u)\n",
                serviceOptions.socketPath.c_str(),
                server.options().workerThreads,
                static_cast<unsigned>(service::kProtocolVersion));
    if (serviceOptions.tcpPort >= 0) {
      std::printf("oseld: tcp on 127.0.0.1:%u\n",
                  static_cast<unsigned>(server.tcpPort()));
    }
    if (serviceOptions.metricsPort >= 0) {
      std::printf("oseld: metrics on http://127.0.0.1:%u/metrics\n",
                  static_cast<unsigned>(server.metricsPort()));
    }
    if (rtOptions.selector.policy != nullptr) {
      std::printf("oseld: policy %s\n",
                  std::string(rtOptions.selector.policy->name()).c_str());
    }
    std::fflush(stdout);

    int signal = 0;
    sigwait(&signals, &signal);
    std::fprintf(stderr, "oseld: caught signal %d, draining\n", signal);
    server.stop();
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "oseld: %s\n", error.what());
    return 1;
  }
}

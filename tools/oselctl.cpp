// oselctl — command-line front end to the osel framework.
//
//   oselctl list                          all benchmarks and kernels
//   oselctl inspect  <kernel>             region IR, IPDA dump, loadout, MCA
//   oselctl decide   <kernel> [opts]      evaluate both models and choose
//   oselctl measure  <kernel> [opts]      ground-truth device simulations
//   oselctl pad      [<kernel>...]        print serialized PAD entries
//   oselctl emit     <kernel>             print a kernel as .osel source
//   oselctl trace    <benchmark> [opts]   run through the target runtime and
//                                         print a Chrome trace_event JSON
//   oselctl stats    <benchmark> [opts]   run and print metrics + per-region
//                                         prediction-accuracy summary
//                                         (--prom: Prometheus exposition)
//   oselctl explain  <kernel> [opts]      run and print the latest decision's
//                                         model-term breakdown (--json: all
//                                         buffered records as JSON)
//   oselctl drift    <benchmark> [opts]   run under the Oracle policy and
//                                         print the per-region drift report
//   oselctl ping --socket PATH            probe a live oseld daemon
//
// `decide` and `stats` accept --socket PATH to talk to a live oseld over
// its wire protocol instead of evaluating in-process (docs/SERVICE.md).
// Socket-mode exit codes: 0 ok, 2 usage, 3 could not connect.
//
// Common options: --n <size> (default: the kernel's test size),
// --threads <count> (default 160), --platform v100|k80 (default v100),
// --file <path.osel> (load kernels from a kernel-language file instead of
// the built-in Polybench suite; see examples/kernels/),
// --policy <name> (in-process selection policy; docs/POLICIES.md).
// trace/stats/explain/drift options: --repeat <R> launches per kernel
// (default 3, so the decision cache gets hits), --gpu-fault-rate <p> arms
// transient GPU launch faults to exercise retry/fallback spans,
// --out <file> (trace: write the JSON there instead of stdout).
#include <algorithm>
#include <array>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "frontend/printer.h"
#include "cpusim/cpu_simulator.h"
#include "gpusim/gpu_simulator.h"
#include "ipda/ipda.h"
#include "mca/lowering.h"
#include "mca/pipeline_sim.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "polybench/polybench.h"
#include "runtime/selector.h"
#include "runtime/target_runtime.h"
#include "service/client.h"
#include "support/cli.h"
#include "support/faultinject.h"
#include "support/format.h"

namespace {

using namespace osel;

struct KernelRef {
  const polybench::Benchmark* benchmark = nullptr;  // null for file kernels
  const ir::TargetRegion* region = nullptr;
};

/// Kernels loaded via --file live here for the process lifetime.
std::vector<ir::TargetRegion>& fileKernels() {
  static std::vector<ir::TargetRegion> kernels;
  return kernels;
}

KernelRef findKernel(const std::string& name) {
  for (const ir::TargetRegion& kernel : fileKernels()) {
    if (kernel.name == name) return {nullptr, &kernel};
  }
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      if (kernel.name == name) return {&benchmark, &kernel};
    }
  }
  return {};
}

struct Config {
  std::int64_t n = 0;  // 0 = kernel's test size
  int threads = 160;
  bool k80 = false;
  /// --policy: selection policy for the in-process commands (null =
  /// selector default, ModelCompare).
  std::shared_ptr<runtime::policy::SelectionPolicy> policy;

  [[nodiscard]] std::int64_t sizeFor(const polybench::Benchmark* b) const {
    if (n > 0) return n;
    return b != nullptr ? b->size(polybench::Mode::Test) : 1100;
  }
};

symbolic::Bindings bindingsFor(const KernelRef& ref, const Config& config) {
  const std::int64_t n = config.sizeFor(ref.benchmark);
  symbolic::Bindings bindings;
  for (const std::string& param : ref.region->params) bindings[param] = n;
  return bindings;
}

int cmdList() {
  for (const ir::TargetRegion& kernel : fileKernels())
    std::printf("(file)   %s\n", kernel.name.c_str());
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    std::printf("%-8s (test n=%lld, benchmark n=%lld)\n",
                benchmark.name().c_str(),
                static_cast<long long>(benchmark.size(polybench::Mode::Test)),
                static_cast<long long>(
                    benchmark.size(polybench::Mode::Benchmark)));
    for (const ir::TargetRegion& kernel : benchmark.kernels())
      std::printf("    %s\n", kernel.name.c_str());
  }
  return 0;
}

int cmdInspect(const KernelRef& ref, const Config& config) {
  const ir::TargetRegion& kernel = *ref.region;
  std::printf("%s\n", kernel.toString().c_str());
  const ipda::Analysis analysis = ipda::Analysis::analyze(kernel);
  std::printf("IPDA:\n%s\n", analysis.toString().c_str());

  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  const pad::RegionAttributes attr = compiler::analyzeRegion(kernel, hosts);
  std::printf("Instruction loadout (128-trip / 50%%-branch abstraction):\n"
              "  comp %.1f  special %.1f  loads %.1f  stores %.1f  per "
              "parallel iteration\n",
              attr.compInstsPerIter, attr.specialInstsPerIter,
              attr.loadInstsPerIter, attr.storeInstsPerIter);
  std::vector<std::string> models;
  for (const auto& [model, cycles] : attr.machineCyclesPerIter)
    models.push_back(model);
  std::sort(models.begin(), models.end());  // hash map: sort for stable output
  for (const auto& model : models)
    std::printf("  Machine_cycles_per_iter[%s] = %.1f\n", model.c_str(),
                attr.machineCyclesPerIter.at(model));

  const symbolic::Bindings bindings = bindingsFor(ref, config);
  const auto counts = analysis.classifySites(bindings);
  std::printf("\nCoalescing at n=%lld: %lld coalesced, %lld uniform, "
              "%lld strided, %lld irregular\n",
              static_cast<long long>(bindings.at("n")),
              static_cast<long long>(counts.coalesced),
              static_cast<long long>(counts.uniform),
              static_cast<long long>(counts.strided),
              static_cast<long long>(counts.irregular));
  return 0;
}

runtime::SelectorConfig selectorConfig(const Config& config) {
  runtime::SelectorConfig sc;
  if (config.k80) {
    sc.cpuParams = cpumodel::CpuModelParams::power8();
    sc.gpuParams = gpumodel::GpuDeviceParams::teslaK80();
    sc.mcaModelName = "POWER8";
  }
  sc.cpuThreads = config.threads;
  sc.policy = config.policy;
  return sc;
}

int cmdDecide(const KernelRef& ref, const Config& config) {
  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  const pad::RegionAttributes attr = compiler::analyzeRegion(*ref.region, hosts);
  const runtime::OffloadSelector selector(selectorConfig(config));
  const symbolic::Bindings bindings = bindingsFor(ref, config);
  const runtime::Decision decision =
      selector.decide(runtime::RegionHandle(attr), bindings);
  std::printf("%s\n%s\n", decision.cpu.toString().c_str(),
              decision.gpu.toString().c_str());
  std::printf("predicted offloading speedup: %s\n",
              support::formatSpeedup(decision.predictedSpeedup()).c_str());
  std::printf("decision: run on %s (decided in %s)\n",
              runtime::toString(decision.device).c_str(),
              support::formatSeconds(decision.overheadSeconds).c_str());
  return 0;
}

int cmdMeasure(const KernelRef& ref, const Config& config) {
  const symbolic::Bindings bindings = bindingsFor(ref, config);
  ir::ArrayStore store = ref.benchmark != nullptr
                             ? ref.benchmark->allocate(bindings)
                             : ir::allocateArrays(*ref.region, bindings);
  if (ref.benchmark != nullptr) {
    polybench::initializeInputs(*ref.benchmark, bindings, store);
  } else {
    // Deterministic non-zero inputs for file kernels.
    std::size_t salt = 1;
    for (auto& [name, data] : store) {
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<double>((i * salt + 7) % 512) / 512.0;
      ++salt;
    }
  }
  const cpusim::CpuSimulator cpuSim(config.k80 ? cpusim::CpuSimParams::power8()
                                               : cpusim::CpuSimParams::power9(),
                                    config.threads);
  const gpusim::GpuSimulator gpuSim(config.k80
                                        ? gpusim::GpuSimParams::teslaK80()
                                        : gpusim::GpuSimParams::teslaV100());
  const auto cpu = cpuSim.simulate(*ref.region, bindings, store);
  const auto gpu = gpuSim.simulate(*ref.region, bindings, store);
  std::printf("%s\n%s\n", cpu.toString().c_str(), gpu.toString().c_str());
  std::printf("true offloading speedup: %s\n",
              support::formatSpeedup(cpu.seconds / gpu.totalSeconds).c_str());
  return 0;
}

/// Which observe-family subcommand is running (they share the setup: run
/// one benchmark through a traced TargetRuntime, then render).
enum class ObserveMode { Trace, Stats, Explain, Drift };

const char* toString(ObserveMode mode) {
  switch (mode) {
    case ObserveMode::Trace:
      return "trace";
    case ObserveMode::Stats:
      return "stats";
    case ObserveMode::Explain:
      return "explain";
    case ObserveMode::Drift:
      return "drift";
  }
  return "?";
}

/// Runs one Polybench benchmark (every kernel, `--repeat` times) through a
/// TargetRuntime with an obs::TraceSession attached; shared by `trace`,
/// `stats`, `explain`, and `drift`. `name` may be a benchmark ("GEMM") or
/// one of its kernels ("gemm_k1" — the owning benchmark is run; `explain`
/// then reports just that kernel).
int cmdObserve(const std::string& name, const Config& config,
               const support::CommandLine& cl, ObserveMode mode) {
  const polybench::Benchmark* benchmark = nullptr;
  bool nameIsKernel = false;
  for (const polybench::Benchmark& candidate : polybench::suite()) {
    if (candidate.name() == name) benchmark = &candidate;
    for (const ir::TargetRegion& kernel : candidate.kernels())
      if (kernel.name == name) {
        benchmark = &candidate;
        nameIsKernel = true;
      }
  }
  if (benchmark == nullptr) {
    std::fprintf(stderr,
                 "oselctl %s: unknown benchmark or kernel %s (try `oselctl "
                 "list`)\n",
                 toString(mode), name.c_str());
    return 2;
  }

  const double faultRate = cl.doubleOption("gpu-fault-rate", 0.0);
  if (faultRate > 0.0) {
    support::faultInjector().arm(
        support::faultpoints::kGpuLaunch,
        {.kind = support::FaultKind::TransientLaunch,
         .probability = faultRate,
         .seed = static_cast<std::uint64_t>(cl.intOption("fault-seed", 2019))});
  }

  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  std::vector<ir::TargetRegion> regions(benchmark->kernels().begin(),
                                        benchmark->kernels().end());
  pad::AttributeDatabase db = compiler::compileAll(regions, hosts);

  obs::TraceSession session;
  session.observeFaultInjector();
  runtime::RuntimeOptions options;
  options.selector = selectorConfig(config);
  options.cpuSim = config.k80 ? cpusim::CpuSimParams::power8()
                              : cpusim::CpuSimParams::power9();
  options.gpuSim = config.k80 ? gpusim::GpuSimParams::teslaK80()
                              : gpusim::GpuSimParams::teslaV100();
  options.trace = &session;
  runtime::TargetRuntime rt(std::move(db), options);
  for (const ir::TargetRegion& kernel : benchmark->kernels())
    rt.registerRegion(kernel);

  const std::int64_t n = config.sizeFor(benchmark);
  const auto repeat = cl.intOption("repeat", 3);
  const symbolic::Bindings bindings = benchmark->bindings(n);
  ir::ArrayStore store = benchmark->allocate(bindings);
  polybench::initializeInputs(*benchmark, bindings, store);
  // Drift needs both devices measured so mispredictions are observable —
  // that is the Oracle policy's contract.
  const runtime::Policy policy = mode == ObserveMode::Drift
                                     ? runtime::Policy::Oracle
                                     : runtime::Policy::ModelGuided;
  for (std::int64_t r = 0; r < repeat; ++r) {
    for (const ir::TargetRegion& kernel : benchmark->kernels())
      (void)rt.launch(kernel.name, bindings, store, policy);
  }

  switch (mode) {
    case ObserveMode::Trace: {
      const std::string json = obs::renderChromeTrace(session);
      if (const auto out = cl.stringOption("out"); out && !out->empty()) {
        std::FILE* file = std::fopen(out->c_str(), "w");
        if (file == nullptr) {
          std::fprintf(stderr, "oselctl trace: cannot open %s for writing\n",
                       out->c_str());
          return 1;
        }
        std::fputs(json.c_str(), file);
        std::fclose(file);
        std::fprintf(stderr, "oselctl trace: wrote %llu events to %s\n",
                     static_cast<unsigned long long>(session.recorded()),
                     out->c_str());
      } else {
        std::fputs(json.c_str(), stdout);
      }
      return 0;
    }
    case ObserveMode::Stats:
      std::fputs(cl.hasFlag("prom")
                     ? obs::renderPrometheus(session).c_str()
                     : obs::renderStatsSummary(session).c_str(),
                 stdout);
      return 0;
    case ObserveMode::Drift:
      std::fputs(obs::renderDriftReport(session).c_str(), stdout);
      return 0;
    case ObserveMode::Explain: {
      if (cl.hasFlag("json")) {
        std::vector<obs::DecisionExplain> records =
            session.explainRing().snapshot();
        if (nameIsKernel) {
          std::erase_if(records, [&](const obs::DecisionExplain& r) {
            return r.regionView() != name;
          });
        }
        std::fputs(obs::renderExplainJson(records).c_str(), stdout);
        return 0;
      }
      // Text: the latest record per requested kernel.
      bool printedAny = false;
      for (const ir::TargetRegion& kernel : benchmark->kernels()) {
        if (nameIsKernel && kernel.name != name) continue;
        obs::DecisionExplain record;
        if (!session.explainRing().latestFor(kernel.name, record)) continue;
        if (printedAny) std::fputs("\n", stdout);
        std::fputs(obs::renderExplainText(record).c_str(), stdout);
        printedAny = true;
      }
      if (!printedAny) {
        std::fprintf(stderr,
                     "oselctl explain: no decision records for %s\n",
                     name.c_str());
        return 1;
      }
      return 0;
    }
  }
  return 2;
}

// --- Socket mode ----------------------------------------------------------
// `ping`, and `decide`/`stats` with --socket PATH, talk to a live oseld
// instead of evaluating in-process. Exit codes are unified across them:
// 0 ok, 2 usage, 3 could not connect (distinct so init scripts and probes
// can tell "daemon down" from "bad invocation").

int cmdPing(const std::string& socketPath) {
  service::Client client = service::Client::connect(socketPath);
  client.ping();
  std::printf("oseld at %s: ok (protocol v%u)\n", socketPath.c_str(),
              static_cast<unsigned>(client.version()));
  return 0;
}

int cmdSocketDecide(const KernelRef& ref, const Config& config,
                    const std::string& socketPath) {
  const symbolic::Bindings bindings = bindingsFor(ref, config);
  service::Client client = service::Client::connect(socketPath);
  const runtime::Decision decision =
      client.decide(ref.region->name, bindings);
  // Only the wire-stable Decision subset crosses the socket; print that.
  std::printf("cpu predicted:  %s\n",
              support::formatSeconds(decision.cpu.seconds).c_str());
  std::printf("gpu predicted:  %s\n",
              support::formatSeconds(decision.gpu.totalSeconds).c_str());
  std::printf("predicted offloading speedup: %s\n",
              support::formatSpeedup(decision.predictedSpeedup()).c_str());
  std::printf("decision: run on %s (server-side, decided in %s)\n",
              runtime::toString(decision.device).c_str(),
              support::formatSeconds(decision.overheadSeconds).c_str());
  if (!decision.valid) {
    std::printf("degraded: %s\n", decision.diagnostic.c_str());
  }
  return 0;
}

int cmdSocketStats(const std::string& socketPath, bool prometheus) {
  service::Client client = service::Client::connect(socketPath);
  const std::string text = client.stats(
      prometheus ? service::StatsFormat::Prometheus
                 : service::StatsFormat::Summary);
  std::fputs(text.c_str(), stdout);
  return 0;
}

/// Shared error envelope for the socket commands' exit-code contract.
template <typename Body>
int runSocketCommand(const char* command, Body&& body) {
  try {
    return body();
  } catch (const service::ConnectError& error) {
    std::fprintf(stderr, "oselctl %s: %s\n", command, error.what());
    return 3;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "oselctl %s: %s\n", command, error.what());
    return 1;
  }
}

int cmdPad(const std::vector<std::string>& names) {
  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  pad::AttributeDatabase db;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      const bool wanted =
          names.size() <= 1 ||
          std::find(names.begin() + 1, names.end(), kernel.name) != names.end();
      if (wanted) db.insert(compiler::analyzeRegion(kernel, hosts));
    }
  }
  std::fputs(db.serialize().c_str(), stdout);
  return 0;
}

constexpr const char* kUsage =
    "usage: oselctl <command> [kernel|benchmark] [options]\n"
    "\n"
    "commands:\n"
    "  list                      all benchmarks and kernels\n"
    "  inspect <kernel>          region IR, IPDA dump, loadout, MCA cycles\n"
    "  decide  <kernel>          evaluate both models and choose a device\n"
    "  measure <kernel>          ground-truth device simulations\n"
    "  pad     [<kernel>...]     print serialized PAD entries\n"
    "  emit    <kernel>          print a kernel as .osel source\n"
    "  trace   <benchmark>       run traced; print Chrome trace_event JSON\n"
    "  stats   <benchmark>       run traced; print metrics + prediction\n"
    "                            accuracy (--prom: Prometheus exposition)\n"
    "  explain <kernel>          run traced; print the latest decision's\n"
    "                            model-term breakdown (--json: all records)\n"
    "  drift   <benchmark>       run under Oracle; print the per-region\n"
    "                            drift report (EWMA/CUSUM, mispredictions)\n"
    "  ping    --socket PATH     probe a live oseld daemon\n"
    "\n"
    "socket mode (against a live oseld; see docs/SERVICE.md):\n"
    "  decide <kernel> --socket PATH   ask the daemon instead of deciding\n"
    "                                  in-process\n"
    "  stats --socket PATH [--prom]    the daemon's metrics summary or\n"
    "                                  Prometheus exposition\n"
    "  exit codes: 0 ok, 2 usage, 3 could not connect\n"
    "\n"
    "common options: --n N, --threads T, --platform v100|k80,\n"
    "  --file path.osel (load kernels from a kernel-language file),\n"
    "  --policy model-compare|calibrated|hysteresis|epsilon-greedy\n"
    "  (in-process selection policy; default model-compare)\n"
    "trace/stats/explain/drift: --repeat R, --gpu-fault-rate P,\n"
    "  --fault-seed S, --out FILE (trace only)\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto& positional = cl.positional();
  if (cl.hasFlag("help") || cl.hasFlag("h") ||
      (!positional.empty() && positional[0] == "help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (positional.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  Config config;
  if (const auto file = cl.stringOption("file"); file && !file->empty()) {
    // A missing/unreadable/malformed kernel file must be a clean non-zero
    // exit with the reason, not an uncaught-exception terminate.
    try {
      fileKernels() = frontend::parseKernelFile(*file);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "oselctl: cannot load --file %s: %s\n",
                   file->c_str(), error.what());
      return 2;
    }
  }
  config.n = cl.intOption("n", 0);
  config.threads = static_cast<int>(cl.intOption("threads", 160));
  config.k80 = cl.stringOption("platform").value_or("v100") == "k80";
  if (const auto policyName = cl.stringOption("policy")) {
    const auto kind = runtime::policy::parsePolicyKind(*policyName);
    if (!kind.has_value()) {
      std::fprintf(stderr, "oselctl: unknown --policy '%s' (expected %s)\n",
                   policyName->c_str(),
                   runtime::policy::policyKindNames().c_str());
      return 2;
    }
    runtime::policy::PolicyOptions policyOptions;
    policyOptions.kind = *kind;
    config.policy = runtime::policy::makePolicy(policyOptions);
  }

  const std::string& command = positional[0];
  if (command == "list") return cmdList();
  if (command == "pad") return cmdPad(positional);

  const auto socketPath = cl.stringOption("socket");
  if (command == "ping") {
    if (!socketPath || socketPath->empty()) {
      std::fprintf(stderr, "oselctl ping: --socket PATH is required\n");
      return 2;
    }
    return runSocketCommand("ping", [&] { return cmdPing(*socketPath); });
  }
  if (command == "stats" && socketPath && !socketPath->empty()) {
    return runSocketCommand("stats", [&] {
      return cmdSocketStats(*socketPath, cl.hasFlag("prom"));
    });
  }
  if (command == "decide" && socketPath && !socketPath->empty()) {
    if (positional.size() < 2) {
      std::fprintf(stderr,
                   "oselctl decide: missing kernel name (try `oselctl list`)\n");
      return 2;
    }
    const KernelRef ref = findKernel(positional[1]);
    if (ref.region == nullptr) {
      std::fprintf(stderr, "oselctl: unknown kernel %s (try `oselctl list`)\n",
                   positional[1].c_str());
      return 2;
    }
    return runSocketCommand(
        "decide", [&] { return cmdSocketDecide(ref, config, *socketPath); });
  }

  const bool isObserve = command == "trace" || command == "stats" ||
                         command == "explain" || command == "drift";
  const bool isKernelCommand = command == "emit" || command == "inspect" ||
                               command == "decide" || command == "measure";
  if (!isObserve && !isKernelCommand) {
    std::fprintf(stderr, "oselctl: unknown command %s\n\n", command.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (positional.size() < 2) {
    std::fprintf(stderr, "oselctl %s: missing kernel name (try `oselctl list`)\n",
                 command.c_str());
    return 2;
  }
  if (isObserve) {
    const ObserveMode mode = command == "trace"     ? ObserveMode::Trace
                             : command == "stats"   ? ObserveMode::Stats
                             : command == "explain" ? ObserveMode::Explain
                                                    : ObserveMode::Drift;
    return cmdObserve(positional[1], config, cl, mode);
  }
  const KernelRef ref = findKernel(positional[1]);
  if (ref.region == nullptr) {
    std::fprintf(stderr, "oselctl: unknown kernel %s (try `oselctl list`)\n",
                 positional[1].c_str());
    return 2;
  }
  if (command == "emit") {
    std::fputs(frontend::printKernel(*ref.region).c_str(), stdout);
    return 0;
  }
  if (command == "inspect") return cmdInspect(ref, config);
  if (command == "decide") return cmdDecide(ref, config);
  return cmdMeasure(ref, config);
}

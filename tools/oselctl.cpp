// oselctl — command-line front end to the osel framework.
//
//   oselctl list                          all benchmarks and kernels
//   oselctl inspect  <kernel>             region IR, IPDA dump, loadout, MCA
//   oselctl decide   <kernel> [opts]      evaluate both models and choose
//   oselctl measure  <kernel> [opts]      ground-truth device simulations
//   oselctl pad      [<kernel>...]        print serialized PAD entries
//   oselctl emit     <kernel>             print a kernel as .osel source
//   oselctl trace    <benchmark> [opts]   run through the target runtime and
//                                         print a Chrome trace_event JSON
//   oselctl stats    <benchmark> [opts]   run and print metrics + per-region
//                                         prediction-accuracy summary
//                                         (--prom: Prometheus exposition)
//   oselctl explain  <kernel> [opts]      run and print the latest decision's
//                                         model-term breakdown (--json: all
//                                         buffered records as JSON)
//   oselctl drift    <benchmark> [opts]   run under the Oracle policy and
//                                         print the per-region drift report
//   oselctl ping --socket PATH            probe a live oseld daemon
//   oselctl slow --socket PATH            the daemon's slow-request capture
//                                         as JSONL wide events
//   oselctl top  --socket PATH            live dashboard: decisions/sec,
//                                         per-stage latency quantiles,
//                                         cache hit ratio, shed/drift/refit
//                                         counters
//
// `decide` and `stats` accept --socket PATH to talk to a live oseld over
// its wire protocol instead of evaluating in-process (docs/SERVICE.md).
// Socket-mode exit codes: 0 ok, 2 usage, 3 could not connect.
//
// Common options: --n <size> (default: the kernel's test size),
// --threads <count> (default 160), --platform v100|k80 (default v100),
// --file <path.osel> (load kernels from a kernel-language file instead of
// the built-in Polybench suite; see examples/kernels/),
// --policy <name> (in-process selection policy; docs/POLICIES.md).
// trace/stats/explain/drift options: --repeat <R> launches per kernel
// (default 3, so the decision cache gets hits), --gpu-fault-rate <p> arms
// transient GPU launch faults to exercise retry/fallback spans,
// --out <file> (trace: write the JSON there instead of stdout).
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "compiler/compiler.h"
#include "frontend/parser.h"
#include "frontend/printer.h"
#include "cpusim/cpu_simulator.h"
#include "gpusim/gpu_simulator.h"
#include "ipda/ipda.h"
#include "mca/lowering.h"
#include "mca/pipeline_sim.h"
#include "obs/export.h"
#include "obs/quantile.h"
#include "obs/trace.h"
#include "polybench/polybench.h"
#include "runtime/selector.h"
#include "runtime/target_runtime.h"
#include "service/client.h"
#include "support/cli.h"
#include "support/faultinject.h"
#include "support/format.h"

namespace {

using namespace osel;

struct KernelRef {
  const polybench::Benchmark* benchmark = nullptr;  // null for file kernels
  const ir::TargetRegion* region = nullptr;
};

/// Kernels loaded via --file live here for the process lifetime.
std::vector<ir::TargetRegion>& fileKernels() {
  static std::vector<ir::TargetRegion> kernels;
  return kernels;
}

KernelRef findKernel(const std::string& name) {
  for (const ir::TargetRegion& kernel : fileKernels()) {
    if (kernel.name == name) return {nullptr, &kernel};
  }
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      if (kernel.name == name) return {&benchmark, &kernel};
    }
  }
  return {};
}

struct Config {
  std::int64_t n = 0;  // 0 = kernel's test size
  int threads = 160;
  bool k80 = false;
  /// --policy: selection policy for the in-process commands (null =
  /// selector default, ModelCompare).
  std::shared_ptr<runtime::policy::SelectionPolicy> policy;

  [[nodiscard]] std::int64_t sizeFor(const polybench::Benchmark* b) const {
    if (n > 0) return n;
    return b != nullptr ? b->size(polybench::Mode::Test) : 1100;
  }
};

symbolic::Bindings bindingsFor(const KernelRef& ref, const Config& config) {
  const std::int64_t n = config.sizeFor(ref.benchmark);
  symbolic::Bindings bindings;
  for (const std::string& param : ref.region->params) bindings[param] = n;
  return bindings;
}

int cmdList() {
  for (const ir::TargetRegion& kernel : fileKernels())
    std::printf("(file)   %s\n", kernel.name.c_str());
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    std::printf("%-8s (test n=%lld, benchmark n=%lld)\n",
                benchmark.name().c_str(),
                static_cast<long long>(benchmark.size(polybench::Mode::Test)),
                static_cast<long long>(
                    benchmark.size(polybench::Mode::Benchmark)));
    for (const ir::TargetRegion& kernel : benchmark.kernels())
      std::printf("    %s\n", kernel.name.c_str());
  }
  return 0;
}

int cmdInspect(const KernelRef& ref, const Config& config) {
  const ir::TargetRegion& kernel = *ref.region;
  std::printf("%s\n", kernel.toString().c_str());
  const ipda::Analysis analysis = ipda::Analysis::analyze(kernel);
  std::printf("IPDA:\n%s\n", analysis.toString().c_str());

  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  const pad::RegionAttributes attr = compiler::analyzeRegion(kernel, hosts);
  std::printf("Instruction loadout (128-trip / 50%%-branch abstraction):\n"
              "  comp %.1f  special %.1f  loads %.1f  stores %.1f  per "
              "parallel iteration\n",
              attr.compInstsPerIter, attr.specialInstsPerIter,
              attr.loadInstsPerIter, attr.storeInstsPerIter);
  std::vector<std::string> models;
  for (const auto& [model, cycles] : attr.machineCyclesPerIter)
    models.push_back(model);
  std::sort(models.begin(), models.end());  // hash map: sort for stable output
  for (const auto& model : models)
    std::printf("  Machine_cycles_per_iter[%s] = %.1f\n", model.c_str(),
                attr.machineCyclesPerIter.at(model));

  const symbolic::Bindings bindings = bindingsFor(ref, config);
  const auto counts = analysis.classifySites(bindings);
  std::printf("\nCoalescing at n=%lld: %lld coalesced, %lld uniform, "
              "%lld strided, %lld irregular\n",
              static_cast<long long>(bindings.at("n")),
              static_cast<long long>(counts.coalesced),
              static_cast<long long>(counts.uniform),
              static_cast<long long>(counts.strided),
              static_cast<long long>(counts.irregular));
  return 0;
}

runtime::SelectorConfig selectorConfig(const Config& config) {
  runtime::SelectorConfig sc;
  if (config.k80) {
    sc.cpuParams = cpumodel::CpuModelParams::power8();
    sc.gpuParams = gpumodel::GpuDeviceParams::teslaK80();
    sc.mcaModelName = "POWER8";
  }
  sc.cpuThreads = config.threads;
  sc.policy = config.policy;
  return sc;
}

int cmdDecide(const KernelRef& ref, const Config& config) {
  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  const pad::RegionAttributes attr = compiler::analyzeRegion(*ref.region, hosts);
  const runtime::OffloadSelector selector(selectorConfig(config));
  const symbolic::Bindings bindings = bindingsFor(ref, config);
  const runtime::Decision decision =
      selector.decide(runtime::RegionHandle(attr), bindings);
  std::printf("%s\n%s\n", decision.cpu.toString().c_str(),
              decision.gpu.toString().c_str());
  std::printf("predicted offloading speedup: %s\n",
              support::formatSpeedup(decision.predictedSpeedup()).c_str());
  std::printf("decision: run on %s (decided in %s)\n",
              runtime::toString(decision.device).c_str(),
              support::formatSeconds(decision.overheadSeconds).c_str());
  return 0;
}

int cmdMeasure(const KernelRef& ref, const Config& config) {
  const symbolic::Bindings bindings = bindingsFor(ref, config);
  ir::ArrayStore store = ref.benchmark != nullptr
                             ? ref.benchmark->allocate(bindings)
                             : ir::allocateArrays(*ref.region, bindings);
  if (ref.benchmark != nullptr) {
    polybench::initializeInputs(*ref.benchmark, bindings, store);
  } else {
    // Deterministic non-zero inputs for file kernels.
    std::size_t salt = 1;
    for (auto& [name, data] : store) {
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<double>((i * salt + 7) % 512) / 512.0;
      ++salt;
    }
  }
  const cpusim::CpuSimulator cpuSim(config.k80 ? cpusim::CpuSimParams::power8()
                                               : cpusim::CpuSimParams::power9(),
                                    config.threads);
  const gpusim::GpuSimulator gpuSim(config.k80
                                        ? gpusim::GpuSimParams::teslaK80()
                                        : gpusim::GpuSimParams::teslaV100());
  const auto cpu = cpuSim.simulate(*ref.region, bindings, store);
  const auto gpu = gpuSim.simulate(*ref.region, bindings, store);
  std::printf("%s\n%s\n", cpu.toString().c_str(), gpu.toString().c_str());
  std::printf("true offloading speedup: %s\n",
              support::formatSpeedup(cpu.seconds / gpu.totalSeconds).c_str());
  return 0;
}

/// Which observe-family subcommand is running (they share the setup: run
/// one benchmark through a traced TargetRuntime, then render).
enum class ObserveMode { Trace, Stats, Explain, Drift };

const char* toString(ObserveMode mode) {
  switch (mode) {
    case ObserveMode::Trace:
      return "trace";
    case ObserveMode::Stats:
      return "stats";
    case ObserveMode::Explain:
      return "explain";
    case ObserveMode::Drift:
      return "drift";
  }
  return "?";
}

/// Runs one Polybench benchmark (every kernel, `--repeat` times) through a
/// TargetRuntime with an obs::TraceSession attached; shared by `trace`,
/// `stats`, `explain`, and `drift`. `name` may be a benchmark ("GEMM") or
/// one of its kernels ("gemm_k1" — the owning benchmark is run; `explain`
/// then reports just that kernel).
int cmdObserve(const std::string& name, const Config& config,
               const support::CommandLine& cl, ObserveMode mode) {
  const polybench::Benchmark* benchmark = nullptr;
  bool nameIsKernel = false;
  for (const polybench::Benchmark& candidate : polybench::suite()) {
    if (candidate.name() == name) benchmark = &candidate;
    for (const ir::TargetRegion& kernel : candidate.kernels())
      if (kernel.name == name) {
        benchmark = &candidate;
        nameIsKernel = true;
      }
  }
  if (benchmark == nullptr) {
    std::fprintf(stderr,
                 "oselctl %s: unknown benchmark or kernel %s (try `oselctl "
                 "list`)\n",
                 toString(mode), name.c_str());
    return 2;
  }

  const double faultRate = cl.doubleOption("gpu-fault-rate", 0.0);
  if (faultRate > 0.0) {
    support::faultInjector().arm(
        support::faultpoints::kGpuLaunch,
        {.kind = support::FaultKind::TransientLaunch,
         .probability = faultRate,
         .seed = static_cast<std::uint64_t>(cl.intOption("fault-seed", 2019))});
  }

  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  std::vector<ir::TargetRegion> regions(benchmark->kernels().begin(),
                                        benchmark->kernels().end());
  pad::AttributeDatabase db = compiler::compileAll(regions, hosts);

  obs::TraceSession session;
  session.observeFaultInjector();
  runtime::RuntimeOptions options;
  options.selector = selectorConfig(config);
  options.cpuSim = config.k80 ? cpusim::CpuSimParams::power8()
                              : cpusim::CpuSimParams::power9();
  options.gpuSim = config.k80 ? gpusim::GpuSimParams::teslaK80()
                              : gpusim::GpuSimParams::teslaV100();
  options.trace = &session;
  runtime::TargetRuntime rt(std::move(db), options);
  for (const ir::TargetRegion& kernel : benchmark->kernels())
    rt.registerRegion(kernel);

  const std::int64_t n = config.sizeFor(benchmark);
  const auto repeat = cl.intOption("repeat", 3);
  const symbolic::Bindings bindings = benchmark->bindings(n);
  ir::ArrayStore store = benchmark->allocate(bindings);
  polybench::initializeInputs(*benchmark, bindings, store);
  // Drift needs both devices measured so mispredictions are observable —
  // that is the Oracle policy's contract.
  const runtime::Policy policy = mode == ObserveMode::Drift
                                     ? runtime::Policy::Oracle
                                     : runtime::Policy::ModelGuided;
  for (std::int64_t r = 0; r < repeat; ++r) {
    for (const ir::TargetRegion& kernel : benchmark->kernels())
      (void)rt.launch(kernel.name, bindings, store, policy);
  }

  switch (mode) {
    case ObserveMode::Trace: {
      const std::string json = obs::renderChromeTrace(session);
      if (const auto out = cl.stringOption("out"); out && !out->empty()) {
        std::FILE* file = std::fopen(out->c_str(), "w");
        if (file == nullptr) {
          std::fprintf(stderr, "oselctl trace: cannot open %s for writing\n",
                       out->c_str());
          return 1;
        }
        std::fputs(json.c_str(), file);
        std::fclose(file);
        std::fprintf(stderr, "oselctl trace: wrote %llu events to %s\n",
                     static_cast<unsigned long long>(session.recorded()),
                     out->c_str());
      } else {
        std::fputs(json.c_str(), stdout);
      }
      return 0;
    }
    case ObserveMode::Stats:
      std::fputs(cl.hasFlag("prom")
                     ? obs::renderPrometheus(session).c_str()
                     : obs::renderStatsSummary(session).c_str(),
                 stdout);
      return 0;
    case ObserveMode::Drift:
      std::fputs(obs::renderDriftReport(session).c_str(), stdout);
      return 0;
    case ObserveMode::Explain: {
      if (cl.hasFlag("json")) {
        std::vector<obs::DecisionExplain> records =
            session.explainRing().snapshot();
        if (nameIsKernel) {
          std::erase_if(records, [&](const obs::DecisionExplain& r) {
            return r.regionView() != name;
          });
        }
        std::fputs(obs::renderExplainJson(records).c_str(), stdout);
        return 0;
      }
      // Text: the latest record per requested kernel.
      bool printedAny = false;
      for (const ir::TargetRegion& kernel : benchmark->kernels()) {
        if (nameIsKernel && kernel.name != name) continue;
        obs::DecisionExplain record;
        if (!session.explainRing().latestFor(kernel.name, record)) continue;
        if (printedAny) std::fputs("\n", stdout);
        std::fputs(obs::renderExplainText(record).c_str(), stdout);
        printedAny = true;
      }
      if (!printedAny) {
        std::fprintf(stderr,
                     "oselctl explain: no decision records for %s\n",
                     name.c_str());
        return 1;
      }
      return 0;
    }
  }
  return 2;
}

// --- Socket mode ----------------------------------------------------------
// `ping`, and `decide`/`stats` with --socket PATH, talk to a live oseld
// instead of evaluating in-process. Exit codes are unified across them:
// 0 ok, 2 usage, 3 could not connect (distinct so init scripts and probes
// can tell "daemon down" from "bad invocation").

int cmdPing(const std::string& socketPath) {
  service::Client client = service::Client::connect(socketPath);
  client.ping();
  std::printf("oseld at %s: ok (protocol v%u)\n", socketPath.c_str(),
              static_cast<unsigned>(client.version()));
  return 0;
}

int cmdSocketDecide(const KernelRef& ref, const Config& config,
                    const std::string& socketPath) {
  const symbolic::Bindings bindings = bindingsFor(ref, config);
  service::Client client = service::Client::connect(socketPath);
  const runtime::Decision decision =
      client.decide(ref.region->name, bindings);
  // Only the wire-stable Decision subset crosses the socket; print that.
  std::printf("cpu predicted:  %s\n",
              support::formatSeconds(decision.cpu.seconds).c_str());
  std::printf("gpu predicted:  %s\n",
              support::formatSeconds(decision.gpu.totalSeconds).c_str());
  std::printf("predicted offloading speedup: %s\n",
              support::formatSpeedup(decision.predictedSpeedup()).c_str());
  std::printf("decision: run on %s (server-side, decided in %s)\n",
              runtime::toString(decision.device).c_str(),
              support::formatSeconds(decision.overheadSeconds).c_str());
  if (!decision.valid) {
    std::printf("degraded: %s\n", decision.diagnostic.c_str());
  }
  return 0;
}

int cmdSocketStats(const std::string& socketPath, bool prometheus) {
  service::Client client = service::Client::connect(socketPath);
  const std::string text = client.stats(
      prometheus ? service::StatsFormat::Prometheus
                 : service::StatsFormat::Summary);
  std::fputs(text.c_str(), stdout);
  return 0;
}

int cmdSocketSlow(const std::string& socketPath, std::uint32_t maxRecords) {
  service::Client client = service::Client::connect(socketPath);
  const std::string jsonl = client.slowLog(maxRecords);
  std::fputs(jsonl.c_str(), stdout);
  return 0;
}

// --- oselctl top ----------------------------------------------------------
// Polls the daemon's Prometheus exposition over the stats feature and
// renders interval deltas: decisions/sec, per-stage latency quantiles from
// bucket-count deltas (obs::quantileFromBuckets), cache hit ratio, and the
// shed/drift-alarm/refit counters. No new wire surface — anything shown
// here is scrapeable from `GET /metrics` too.

/// One parsed Prometheus histogram family (cumulative bucket counts in
/// exposition order, +Inf last; `upperBounds` excludes +Inf).
struct PromHistogram {
  std::vector<double> upperBounds;
  std::vector<double> cumulative;
};

struct PromSnapshot {
  /// name (labels included verbatim, e.g. `osel_foo_total{ring="slow"}`)
  /// → last value wins. Histogram `_bucket` series land in `histograms`.
  std::map<std::string, double> values;
  std::map<std::string, PromHistogram> histograms;

  [[nodiscard]] double value(const std::string& name) const {
    const auto it = values.find(name);
    return it == values.end() ? 0.0 : it->second;
  }
};

PromSnapshot parsePrometheus(const std::string& text) {
  PromSnapshot snap;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + pos, end - pos);
    pos = end + 1;
    if (line.empty() || line.front() == '#') continue;
    // `name{labels} value` or `name value`; labels never contain spaces in
    // our exposition (region names are C identifiers).
    const std::size_t space = line.find(' ');
    if (space == std::string_view::npos) continue;
    std::string name(line.substr(0, space));
    const double value = std::strtod(line.data() + space + 1, nullptr);
    const std::size_t brace = name.find('{');
    const std::string bare =
        brace == std::string::npos ? name : name.substr(0, brace);
    if (bare.size() > 7 && bare.ends_with("_bucket") &&
        brace != std::string::npos) {
      const std::string family = bare.substr(0, bare.size() - 7);
      const std::size_t le = name.find("le=\"", brace);
      if (le == std::string::npos) continue;
      const std::size_t leEnd = name.find('"', le + 4);
      if (leEnd == std::string::npos) continue;
      const std::string bound = name.substr(le + 4, leEnd - (le + 4));
      PromHistogram& hist = snap.histograms[family];
      if (bound == "+Inf") {
        hist.cumulative.push_back(value);
      } else {
        hist.upperBounds.push_back(std::strtod(bound.c_str(), nullptr));
        hist.cumulative.push_back(value);
      }
      continue;
    }
    snap.values[name] = value;
  }
  return snap;
}

/// Per-bucket count deltas between two snapshots of one histogram family
/// (all-zero when shapes mismatch, e.g. the family appeared mid-run).
/// Output shape matches obs::quantileFromBuckets: upperBounds.size() + 1
/// entries, overflow last.
std::vector<std::uint64_t> bucketDeltas(const PromHistogram& cur,
                                        const PromHistogram* prev) {
  std::vector<std::uint64_t> counts(cur.upperBounds.size() + 1, 0);
  if (cur.cumulative.size() != counts.size()) return counts;
  double before = 0.0;
  for (std::size_t i = 0; i < cur.cumulative.size(); ++i) {
    double cum = cur.cumulative[i];
    if (prev != nullptr && prev->cumulative.size() == cur.cumulative.size()) {
      cum -= prev->cumulative[i];
    }
    const double delta = cum - before;
    before = cum;
    counts[i] = delta > 0 ? static_cast<std::uint64_t>(delta + 0.5) : 0;
  }
  return counts;
}

constexpr struct {
  const char* label;
  const char* family;
} kTopStages[] = {
    {"decode", "osel_service_decode_s"},
    {"decide", "osel_service_decide_s"},
    {"encode", "osel_service_encode_s"},
    {"send", "osel_service_send_s"},
    {"request", "osel_service_request_s"},
};

void renderTop(const std::string& socketPath, const PromSnapshot& snap,
               const PromSnapshot* prev, double elapsedSeconds,
               long long sample) {
  const auto delta = [&](const char* name) {
    const double cur = snap.value(name);
    return prev != nullptr ? cur - prev->value(name) : cur;
  };
  std::printf("oseld top — %s   sample %lld   window %.1fs%s\n",
              socketPath.c_str(), sample,
              elapsedSeconds > 0 ? elapsedSeconds : 0.0,
              prev == nullptr ? " (since daemon start)" : "");
  const double decisions = delta("osel_service_decisions_total");
  if (elapsedSeconds > 0) {
    std::printf("decisions/sec %.1f   total %.0f   errors %.0f   frames "
                "%.0f\n",
                decisions / elapsedSeconds,
                snap.value("osel_service_decisions_total"),
                snap.value("osel_service_errors_total"),
                snap.value("osel_service_frames_total"));
  } else {
    std::printf("decisions %.0f   errors %.0f   frames %.0f\n",
                snap.value("osel_service_decisions_total"),
                snap.value("osel_service_errors_total"),
                snap.value("osel_service_frames_total"));
  }
  std::printf("%-8s %12s %12s %12s %10s\n", "stage", "p50", "p99", "p999",
              "count");
  for (const auto& stage : kTopStages) {
    const auto it = snap.histograms.find(stage.family);
    if (it == snap.histograms.end()) continue;
    const PromHistogram* prevHist = nullptr;
    if (prev != nullptr) {
      const auto pit = prev->histograms.find(stage.family);
      if (pit != prev->histograms.end()) prevHist = &pit->second;
    }
    const std::vector<std::uint64_t> counts =
        bucketDeltas(it->second, prevHist);
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    const auto quantile = [&](double q) -> std::string {
      if (total == 0) return "-";
      return support::formatSeconds(
          obs::quantileFromBuckets(it->second.upperBounds, counts, q));
    };
    std::printf("%-8s %12s %12s %12s %10llu\n", stage.label,
                quantile(0.5).c_str(), quantile(0.99).c_str(),
                quantile(0.999).c_str(),
                static_cast<unsigned long long>(total));
  }
  std::printf("cache hit ratio %.1f%%   sheds %.0f (+%.0f)   drift alarms "
              "%.0f (+%.0f)   refits %.0f (+%.0f)\n",
              snap.value("osel_decision_cache_hit_ratio") * 100.0,
              snap.value("osel_service_sheds_total"),
              delta("osel_service_sheds_total"),
              snap.value("osel_drift_alarms_total"),
              delta("osel_drift_alarms_total"),
              snap.value("osel_policy_refit_total"),
              delta("osel_policy_refit_total"));
  std::printf("slow captured %.0f (+%.0f)   slow dropped %.0f\n",
              snap.value("osel_slow_recorded_total"),
              delta("osel_slow_recorded_total"),
              snap.value(
                  "osel_trace_dropped_total{ring=\"slow\"}"));
}

int cmdSocketTop(const std::string& socketPath, long long intervalMs,
                 long long iterations) {
  service::Client client = service::Client::connect(socketPath);
  const bool tty = isatty(fileno(stdout)) != 0;
  PromSnapshot prev;
  bool havePrev = false;
  auto prevAt = std::chrono::steady_clock::now();
  for (long long sample = 0; iterations <= 0 || sample < iterations;
       ++sample) {
    if (sample > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
    }
    const auto now = std::chrono::steady_clock::now();
    PromSnapshot snap =
        parsePrometheus(client.stats(service::StatsFormat::Prometheus));
    const double elapsed =
        havePrev ? std::chrono::duration<double>(now - prevAt).count() : 0.0;
    if (tty) std::fputs("\x1b[H\x1b[2J", stdout);
    renderTop(socketPath, snap, havePrev ? &prev : nullptr, elapsed, sample);
    std::fflush(stdout);
    prev = std::move(snap);
    prevAt = now;
    havePrev = true;
  }
  return 0;
}

/// Shared error envelope for the socket commands' exit-code contract.
template <typename Body>
int runSocketCommand(const char* command, Body&& body) {
  try {
    return body();
  } catch (const service::ConnectError& error) {
    std::fprintf(stderr, "oselctl %s: %s\n", command, error.what());
    return 3;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "oselctl %s: %s\n", command, error.what());
    return 1;
  }
}

int cmdPad(const std::vector<std::string>& names) {
  const std::array<mca::MachineModel, 2> hosts{mca::MachineModel::power9(),
                                               mca::MachineModel::power8()};
  pad::AttributeDatabase db;
  for (const polybench::Benchmark& benchmark : polybench::suite()) {
    for (const ir::TargetRegion& kernel : benchmark.kernels()) {
      const bool wanted =
          names.size() <= 1 ||
          std::find(names.begin() + 1, names.end(), kernel.name) != names.end();
      if (wanted) db.insert(compiler::analyzeRegion(kernel, hosts));
    }
  }
  std::fputs(db.serialize().c_str(), stdout);
  return 0;
}

constexpr const char* kUsage =
    "usage: oselctl <command> [kernel|benchmark] [options]\n"
    "\n"
    "commands:\n"
    "  list                      all benchmarks and kernels\n"
    "  inspect <kernel>          region IR, IPDA dump, loadout, MCA cycles\n"
    "  decide  <kernel>          evaluate both models and choose a device\n"
    "  measure <kernel>          ground-truth device simulations\n"
    "  pad     [<kernel>...]     print serialized PAD entries\n"
    "  emit    <kernel>          print a kernel as .osel source\n"
    "  trace   <benchmark>       run traced; print Chrome trace_event JSON\n"
    "  stats   <benchmark>       run traced; print metrics + prediction\n"
    "                            accuracy (--prom: Prometheus exposition)\n"
    "  explain <kernel>          run traced; print the latest decision's\n"
    "                            model-term breakdown (--json: all records)\n"
    "  drift   <benchmark>       run under Oracle; print the per-region\n"
    "                            drift report (EWMA/CUSUM, mispredictions)\n"
    "  ping    --socket PATH     probe a live oseld daemon\n"
    "  slow    --socket PATH     the daemon's slow-request capture (JSONL)\n"
    "  top     --socket PATH     live service dashboard (polls stats)\n"
    "\n"
    "socket mode (against a live oseld; see docs/SERVICE.md):\n"
    "  decide <kernel> --socket PATH   ask the daemon instead of deciding\n"
    "                                  in-process\n"
    "  stats --socket PATH [--prom]    the daemon's metrics summary or\n"
    "                                  Prometheus exposition\n"
    "  slow --socket PATH [--max N]    newest N slow-request wide events as\n"
    "                                  JSONL (default: everything buffered)\n"
    "  top --socket PATH [--interval-ms M] [--iterations K]\n"
    "                                  decisions/sec, per-stage p50/p99/p999,\n"
    "                                  cache hit ratio, shed/drift/refit\n"
    "                                  counters; K <= 0 polls forever\n"
    "  exit codes: 0 ok, 2 usage, 3 could not connect\n"
    "\n"
    "common options: --n N, --threads T, --platform v100|k80,\n"
    "  --file path.osel (load kernels from a kernel-language file),\n"
    "  --policy model-compare|calibrated|hysteresis|epsilon-greedy\n"
    "  (in-process selection policy; default model-compare)\n"
    "trace/stats/explain/drift: --repeat R, --gpu-fault-rate P,\n"
    "  --fault-seed S, --out FILE (trace only)\n";

}  // namespace

int main(int argc, char** argv) {
  const auto cl = support::CommandLine::parse(argc, argv);
  const auto& positional = cl.positional();
  if (cl.hasFlag("help") || cl.hasFlag("h") ||
      (!positional.empty() && positional[0] == "help")) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (positional.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }
  Config config;
  if (const auto file = cl.stringOption("file"); file && !file->empty()) {
    // A missing/unreadable/malformed kernel file must be a clean non-zero
    // exit with the reason, not an uncaught-exception terminate.
    try {
      fileKernels() = frontend::parseKernelFile(*file);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "oselctl: cannot load --file %s: %s\n",
                   file->c_str(), error.what());
      return 2;
    }
  }
  config.n = cl.intOption("n", 0);
  config.threads = static_cast<int>(cl.intOption("threads", 160));
  config.k80 = cl.stringOption("platform").value_or("v100") == "k80";
  if (const auto policyName = cl.stringOption("policy")) {
    const auto kind = runtime::policy::parsePolicyKind(*policyName);
    if (!kind.has_value()) {
      std::fprintf(stderr, "oselctl: unknown --policy '%s' (expected %s)\n",
                   policyName->c_str(),
                   runtime::policy::policyKindNames().c_str());
      return 2;
    }
    runtime::policy::PolicyOptions policyOptions;
    policyOptions.kind = *kind;
    config.policy = runtime::policy::makePolicy(policyOptions);
  }

  const std::string& command = positional[0];
  if (command == "list") return cmdList();
  if (command == "pad") return cmdPad(positional);

  const auto socketPath = cl.stringOption("socket");
  if (command == "ping") {
    if (!socketPath || socketPath->empty()) {
      std::fprintf(stderr, "oselctl ping: --socket PATH is required\n");
      return 2;
    }
    return runSocketCommand("ping", [&] { return cmdPing(*socketPath); });
  }
  if (command == "stats" && socketPath && !socketPath->empty()) {
    return runSocketCommand("stats", [&] {
      return cmdSocketStats(*socketPath, cl.hasFlag("prom"));
    });
  }
  if (command == "slow") {
    if (!socketPath || socketPath->empty()) {
      std::fprintf(stderr, "oselctl slow: --socket PATH is required\n");
      return 2;
    }
    return runSocketCommand("slow", [&] {
      return cmdSocketSlow(*socketPath,
                           static_cast<std::uint32_t>(cl.intOption("max", 0)));
    });
  }
  if (command == "top") {
    if (!socketPath || socketPath->empty()) {
      std::fprintf(stderr, "oselctl top: --socket PATH is required\n");
      return 2;
    }
    return runSocketCommand("top", [&] {
      return cmdSocketTop(*socketPath, cl.intOption("interval-ms", 1000),
                          cl.intOption("iterations", 0));
    });
  }
  if (command == "decide" && socketPath && !socketPath->empty()) {
    if (positional.size() < 2) {
      std::fprintf(stderr,
                   "oselctl decide: missing kernel name (try `oselctl list`)\n");
      return 2;
    }
    const KernelRef ref = findKernel(positional[1]);
    if (ref.region == nullptr) {
      std::fprintf(stderr, "oselctl: unknown kernel %s (try `oselctl list`)\n",
                   positional[1].c_str());
      return 2;
    }
    return runSocketCommand(
        "decide", [&] { return cmdSocketDecide(ref, config, *socketPath); });
  }

  const bool isObserve = command == "trace" || command == "stats" ||
                         command == "explain" || command == "drift";
  const bool isKernelCommand = command == "emit" || command == "inspect" ||
                               command == "decide" || command == "measure";
  if (!isObserve && !isKernelCommand) {
    std::fprintf(stderr, "oselctl: unknown command %s\n\n", command.c_str());
    std::fputs(kUsage, stderr);
    return 2;
  }
  if (positional.size() < 2) {
    std::fprintf(stderr, "oselctl %s: missing kernel name (try `oselctl list`)\n",
                 command.c_str());
    return 2;
  }
  if (isObserve) {
    const ObserveMode mode = command == "trace"     ? ObserveMode::Trace
                             : command == "stats"   ? ObserveMode::Stats
                             : command == "explain" ? ObserveMode::Explain
                                                    : ObserveMode::Drift;
    return cmdObserve(positional[1], config, cl, mode);
  }
  const KernelRef ref = findKernel(positional[1]);
  if (ref.region == nullptr) {
    std::fprintf(stderr, "oselctl: unknown kernel %s (try `oselctl list`)\n",
                 positional[1].c_str());
    return 2;
  }
  if (command == "emit") {
    std::fputs(frontend::printKernel(*ref.region).c_str(), stdout);
    return 0;
  }
  if (command == "inspect") return cmdInspect(ref, config);
  if (command == "decide") return cmdDecide(ref, config);
  return cmdMeasure(ref, config);
}

// osel/service/osel_abi.h — the oseld wire protocol, version 1.
//
// The project's first *stable* public API: a small length-prefixed binary
// protocol that serves decide()/decideBatch() over a Unix-domain socket
// (TCP optional behind a daemon flag). Everything on the wire is built from
// the versioned POD frames below; their layouts are pinned by
// static_asserts so an accidental field reorder or padding change breaks
// the build, not a deployed fleet.
//
// Wire grammar — every message is one frame:
//
//   FrameHeader (8 bytes) | payload (FrameHeader::length bytes)
//
// The payload starts with the frame type's fixed POD struct; variable-length
// tails (region names, symbol tables, value columns, diagnostics) follow in
// the order each struct documents. All integers and doubles are
// little-endian; payloads carry no alignment guarantees, so implementations
// must memcpy fields in and out (service/codec.h does).
//
// Versioning and compatibility rules (docs/SERVICE.md spells these out):
//   * A connection opens with Hello/HelloAck. The server picks
//     min(client versionMax, kProtocolVersion); if that falls below the
//     client's versionMin (or the client's range excludes every server
//     version) the server answers Error{UnsupportedVersion} and closes.
//   * Additive evolution uses feature bits: a capability both sides set in
//     Hello/HelloAck is on, anything else is off. Bits are never reused.
//   * Any layout change to an existing frame bumps kProtocolVersion.
//   * Unknown frame types are answered with Error{UnknownType}; the
//     connection stays usable (forward compatibility for new RPCs).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace osel::service {

// The codec memcpys little-endian values directly; porting to a big-endian
// host would need byte-swapping loads/stores in service/codec.cpp.
static_assert(std::endian::native == std::endian::little,
              "oseld wire codec assumes a little-endian host");

/// Protocol version this build speaks (the only one, today).
inline constexpr std::uint16_t kProtocolVersion = 1;

/// First payload field of Hello/HelloAck: "OSEL" in ASCII, little-endian.
inline constexpr std::uint32_t kMagic = 0x4C45534Fu;

/// Hard ceiling every implementation enforces before trusting a length
/// prefix; the negotiated per-connection limit (HelloAck::maxFrameBytes)
/// can only be smaller.
inline constexpr std::uint32_t kAbsoluteMaxFrameBytes = 64u << 20;

/// Default per-connection frame limit a server advertises.
inline constexpr std::uint32_t kDefaultMaxFrameBytes = 4u << 20;

// --- Feature bits (Hello::featureBits / HelloAck::featureBits) ------------
inline constexpr std::uint32_t kFeatureBatch = 1u << 0;  ///< DecideBatch
inline constexpr std::uint32_t kFeatureStats = 1u << 1;  ///< StatsRequest
/// StatsRequest::format == Prometheus supported.
inline constexpr std::uint32_t kFeaturePrometheus = 1u << 2;
/// Request-scoped tracing: when granted, DecideRequest/DecideBatch carry a
/// TraceContextBlock between the fixed struct and the variable tail, and the
/// server echoes the same block on Decision/DecisionBatch/Error replies.
/// Never granted means never on the wire — old peers see today's layouts.
inline constexpr std::uint32_t kFeatureTraceContext = 1u << 3;
/// SlowLogRequest/SlowLog RPC (the slow-request capture ring) supported.
inline constexpr std::uint32_t kFeatureSlowLog = 1u << 4;

/// Frame discriminator (FrameHeader::type). Values are wire-stable; new
/// types append, retired values are never reused.
enum class FrameType : std::uint16_t {
  Hello = 1,
  HelloAck = 2,
  Ping = 3,
  Pong = 4,
  DecideRequest = 5,
  Decision = 6,
  DecideBatch = 7,
  DecisionBatch = 8,
  StatsRequest = 9,
  Stats = 10,
  SlowLogRequest = 11,
  SlowLog = 12,
  Error = 15,
};

/// Stable wire error codes (ErrorFrame::wireCode). 1..99 mirror the
/// osel::ErrorCode taxonomy (support/error.h) one-to-one; 100+ are
/// service-layer conditions with no in-process counterpart.
enum class WireCode : std::uint32_t {
  Unknown = 1,
  Precondition = 2,
  Invariant = 3,
  TransientLaunch = 4,
  DeviceMemory = 5,
  DeviceLost = 6,
  PadLookup = 7,

  BadFrame = 100,            ///< malformed payload (truncated, bad counts)
  UnsupportedVersion = 101,  ///< Hello version negotiation failed
  FrameTooLarge = 102,       ///< length prefix over the negotiated limit
  UnknownType = 103,         ///< unrecognised FrameType
  Shed = 104,                ///< admission control refused the connection
  ExpectedHello = 105,       ///< first frame was not Hello
};

/// Every wire message starts with this. `length` counts payload bytes after
/// the header (0 is legal: Ping/Pong have empty payloads).
struct FrameHeader {
  std::uint32_t length = 0;
  std::uint16_t type = 0;  ///< FrameType
  std::uint16_t reserved = 0;
};
static_assert(sizeof(FrameHeader) == 8);
static_assert(offsetof(FrameHeader, length) == 0);
static_assert(offsetof(FrameHeader, type) == 4);
static_assert(offsetof(FrameHeader, reserved) == 6);

/// Client's opening frame. The version *range* lets an old client talk to a
/// new server and vice versa without a flag day.
struct HelloFrame {
  std::uint32_t magic = kMagic;
  std::uint16_t versionMin = kProtocolVersion;
  std::uint16_t versionMax = kProtocolVersion;
  std::uint32_t featureBits = 0;  ///< capabilities the client wants
  std::uint32_t reserved = 0;
};
static_assert(sizeof(HelloFrame) == 16);
static_assert(offsetof(HelloFrame, magic) == 0);
static_assert(offsetof(HelloFrame, versionMin) == 4);
static_assert(offsetof(HelloFrame, versionMax) == 6);
static_assert(offsetof(HelloFrame, featureBits) == 8);
static_assert(offsetof(HelloFrame, reserved) == 12);

/// Server's answer to Hello: the negotiated version, the accepted feature
/// subset, and the per-connection frame ceiling the client must respect.
/// `maxFrameBytes` bounds the client-to-server direction only — it is the
/// server's admission limit on untrusted requests. Replies can legally
/// outgrow the request that produced them (a DecisionBatch carries 40+
/// bytes per 8-byte request row), so clients bound received frames by
/// kAbsoluteMaxFrameBytes alone.
struct HelloAckFrame {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t reserved = 0;
  std::uint32_t featureBits = 0;  ///< granted = requested ∩ supported
  std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
};
static_assert(sizeof(HelloAckFrame) == 16);
static_assert(offsetof(HelloAckFrame, magic) == 0);
static_assert(offsetof(HelloAckFrame, version) == 4);
static_assert(offsetof(HelloAckFrame, featureBits) == 8);
static_assert(offsetof(HelloAckFrame, maxFrameBytes) == 12);

// --- Trace context (kFeatureTraceContext) ---------------------------------

/// TraceContextBlock::flags: this request is trace-sampled — the server
/// records spans / wide events for it regardless of its own tail sampling.
inline constexpr std::uint32_t kTraceFlagSampled = 1u << 0;

/// Request-scoped trace identity. Present on the wire only when
/// kFeatureTraceContext was granted in HelloAck; then it sits immediately
/// after the fixed POD struct (before the variable tail) of DecideRequest
/// and DecideBatch, and the server echoes the request's block in the same
/// position on Decision, DecisionBatch, and post-handshake Error replies
/// (pre-handshake errors predate negotiation and never carry one).
struct TraceContextBlock {
  std::uint64_t traceId = 0;  ///< caller-chosen 64-bit trace id (0 = none)
  std::uint32_t flags = 0;    ///< kTraceFlagSampled | reserved zeros
  std::uint32_t reserved = 0;
};
static_assert(sizeof(TraceContextBlock) == 16);
static_assert(offsetof(TraceContextBlock, traceId) == 0);
static_assert(offsetof(TraceContextBlock, flags) == 8);
static_assert(offsetof(TraceContextBlock, reserved) == 12);

/// One scalar decide(). Tail, in order:
///   [TraceContextBlock          only when kFeatureTraceContext granted]
///   regionNameBytes bytes   UTF-8 region name (no NUL)
///   bindingCount ×  { u32 symbolBytes | i64 value | symbol bytes }
struct DecideRequestFrame {
  std::uint64_t requestId = 0;  ///< echoed in the DecisionRecord
  std::uint32_t regionNameBytes = 0;
  std::uint32_t bindingCount = 0;
};
static_assert(sizeof(DecideRequestFrame) == 16);
static_assert(offsetof(DecideRequestFrame, requestId) == 0);
static_assert(offsetof(DecideRequestFrame, regionNameBytes) == 8);
static_assert(offsetof(DecideRequestFrame, bindingCount) == 12);

/// One region group of batched decides, carrying its bound values as
/// slot-major columns — the layout TargetRuntime's SoA batch evaluator
/// (CompiledExpr::evaluateColumns) consumes, so a server never transposes.
/// Tail, in order:
///   regionNameBytes bytes                region name
///   slotCount ×  { u32 symbolBytes | symbol bytes }   slot symbol table
///   slotCount*rowCount × i64             values[slot*rowCount + row]
/// Row r binds symbol[k] = values[k*rowCount + r] for every k.
/// A frame with rowCount > 0 must name at least one slot: with zero slots
/// the value matrix is empty whatever rowCount claims, so a receiver could
/// not bound the count against the payload. Binding-free rows travel as
/// scalar DecideRequest frames (bindingCount == 0).
struct DecideBatchFrame {
  std::uint64_t requestId = 0;  ///< id of row 0; row r echoes requestId + r
  std::uint32_t regionNameBytes = 0;
  std::uint32_t slotCount = 0;
  std::uint32_t rowCount = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(DecideBatchFrame) == 24);
static_assert(offsetof(DecideBatchFrame, requestId) == 0);
static_assert(offsetof(DecideBatchFrame, regionNameBytes) == 8);
static_assert(offsetof(DecideBatchFrame, slotCount) == 12);
static_assert(offsetof(DecideBatchFrame, rowCount) == 16);

/// One decision's wire form — the stable subset of runtime::Decision the
/// equivalence tests pin bit-identical across the socket: device, validity,
/// and the two model predictions (bit-exact doubles). `overheadSeconds` is
/// wall time and excluded from the equivalence contract, like decideBatch's.
struct DecisionRecord {
  std::uint64_t requestId = 0;
  double cpuSeconds = 0.0;       ///< Decision::cpu.seconds
  double gpuSeconds = 0.0;       ///< Decision::gpu.totalSeconds
  double overheadSeconds = 0.0;  ///< server-side decide cost
  std::uint8_t device = 0;       ///< 0 = CPU, 1 = GPU
  std::uint8_t valid = 0;
  std::uint16_t flags = 0;           ///< reserved, 0
  std::uint32_t diagnosticBytes = 0;  ///< this record's slice of the tail
};
static_assert(sizeof(DecisionRecord) == 40);
static_assert(offsetof(DecisionRecord, requestId) == 0);
static_assert(offsetof(DecisionRecord, cpuSeconds) == 8);
static_assert(offsetof(DecisionRecord, gpuSeconds) == 16);
static_assert(offsetof(DecisionRecord, overheadSeconds) == 24);
static_assert(offsetof(DecisionRecord, device) == 32);
static_assert(offsetof(DecisionRecord, valid) == 33);
static_assert(offsetof(DecisionRecord, diagnosticBytes) == 36);

/// Decision (type 6) payload: one DecisionRecord + diagnostic bytes.
/// DecisionBatch (type 8) payload: this header, then `count` DecisionRecords
/// (row order = request row order), then every record's diagnostic bytes
/// concatenated in the same order.
struct DecisionBatchFrame {
  std::uint32_t count = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(DecisionBatchFrame) == 8);

/// Stats formats (StatsRequestFrame::format).
enum class StatsFormat : std::uint32_t { Summary = 0, Prometheus = 1 };

/// Asks the server to render its obs session. Answered with a Stats frame
/// whose payload is the rendered text (no fixed struct, just bytes).
struct StatsRequestFrame {
  std::uint32_t format = 0;  ///< StatsFormat
  std::uint32_t reserved = 0;
};
static_assert(sizeof(StatsRequestFrame) == 8);

/// Asks the server to drain its slow-request capture ring (newest last).
/// Requires kFeatureSlowLog. Answered with a SlowLog frame whose payload is
/// JSONL text — one wide-event object per line (no fixed struct, just
/// bytes). `maxRecords == 0` means "all buffered records".
struct SlowLogRequestFrame {
  std::uint32_t maxRecords = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(SlowLogRequestFrame) == 8);

/// Error payload: stable code + human-readable message bytes in the tail.
struct ErrorFrame {
  std::uint32_t wireCode = 0;  ///< WireCode
  std::uint32_t messageBytes = 0;
};
static_assert(sizeof(ErrorFrame) == 8);
static_assert(offsetof(ErrorFrame, wireCode) == 0);
static_assert(offsetof(ErrorFrame, messageBytes) == 4);

}  // namespace osel::service

#include "service/codec.h"

#include <cstring>

#include "support/check.h"

namespace osel::service {

namespace {

// --- Raw little-endian plumbing (host asserted LE in osel_abi.h) ----------

template <typename T>
void appendPod(std::string& out, const T& value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Reserves a frame header in `out`, returning the offset to patch once the
/// payload is appended.
std::size_t beginFrame(std::string& out, FrameType type) {
  const std::size_t headerAt = out.size();
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type);
  appendPod(out, header);
  return headerAt;
}

void endFrame(std::string& out, std::size_t headerAt) {
  const std::size_t payload = out.size() - headerAt - sizeof(FrameHeader);
  support::ensure(payload <= kAbsoluteMaxFrameBytes,
                  "service codec: frame payload exceeds the absolute limit");
  const auto length = static_cast<std::uint32_t>(payload);
  std::memcpy(out.data() + headerAt + offsetof(FrameHeader, length), &length,
              sizeof(length));
}

/// Bounds-checked reader over one payload. Every take/read throws BadFrame
/// on under-run, so no parser can walk past the extent.
class Cursor {
 public:
  explicit Cursor(std::string_view payload) : data_(payload) {}

  template <typename T>
  [[nodiscard]] T read() {
    T value;
    std::memcpy(&value, take(sizeof(T)).data(), sizeof(T));
    return value;
  }

  [[nodiscard]] std::string_view take(std::size_t size) {
    if (size > data_.size() - at_) {
      throw CodecError(WireCode::BadFrame,
                       "service codec: truncated payload (need " +
                           std::to_string(size) + " bytes, " +
                           std::to_string(data_.size() - at_) + " left)");
    }
    const std::string_view view = data_.substr(at_, size);
    at_ += size;
    return view;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - at_; }

  /// Trailing junk after a fully-parsed payload is a malformed frame too —
  /// a peer whose encoder disagrees about the layout must not half-work.
  void finish() const {
    if (at_ != data_.size()) {
      throw CodecError(WireCode::BadFrame,
                       "service codec: " + std::to_string(data_.size() - at_) +
                           " unexpected trailing payload bytes");
    }
  }

 private:
  std::string_view data_;
  std::size_t at_ = 0;
};

/// A length-prefixed string whose claimed size must fit the remainder.
std::string_view takeString(Cursor& cursor, std::uint32_t bytes) {
  return cursor.take(bytes);
}

/// Consumes the negotiation-dependent TraceContextBlock. With the feature
/// off this reads nothing (a block's bytes would then fail the parser's
/// trailing-junk check); with it on, a missing block is a truncated frame.
TraceContextBlock takeTrace(Cursor& cursor, bool traceContext,
                            bool& hasTrace) {
  hasTrace = traceContext;
  if (!traceContext) return {};
  return cursor.read<TraceContextBlock>();
}

DecisionRecord recordFor(std::uint64_t requestId,
                         const runtime::Decision& decision) {
  DecisionRecord record;
  record.requestId = requestId;
  record.cpuSeconds = decision.cpu.seconds;
  record.gpuSeconds = decision.gpu.totalSeconds;
  record.overheadSeconds = decision.overheadSeconds;
  record.device = decision.device == runtime::Device::Gpu ? 1 : 0;
  record.valid = decision.valid ? 1 : 0;
  record.diagnosticBytes =
      static_cast<std::uint32_t>(decision.diagnostic.size());
  return record;
}

void fillDecision(const DecisionRecord& record, std::string_view diagnostic,
                  DecisionView& view) {
  if (record.device > 1) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: DecisionRecord.device out of range");
  }
  view.requestId = record.requestId;
  runtime::Decision& decision = view.decision;
  decision = runtime::Decision{};
  decision.device =
      record.device == 1 ? runtime::Device::Gpu : runtime::Device::Cpu;
  decision.valid = record.valid != 0;
  decision.diagnostic.assign(diagnostic);
  decision.cpu.seconds = record.cpuSeconds;
  decision.gpu.totalSeconds = record.gpuSeconds;
  decision.overheadSeconds = record.overheadSeconds;
}

}  // namespace

std::string toString(WireCode code) {
  switch (code) {
    case WireCode::Unknown: return "unknown";
    case WireCode::Precondition: return "precondition";
    case WireCode::Invariant: return "invariant";
    case WireCode::TransientLaunch: return "transient-launch";
    case WireCode::DeviceMemory: return "device-memory";
    case WireCode::DeviceLost: return "device-lost";
    case WireCode::PadLookup: return "pad-lookup";
    case WireCode::BadFrame: return "bad-frame";
    case WireCode::UnsupportedVersion: return "unsupported-version";
    case WireCode::FrameTooLarge: return "frame-too-large";
    case WireCode::UnknownType: return "unknown-type";
    case WireCode::Shed: return "shed";
    case WireCode::ExpectedHello: return "expected-hello";
  }
  return "?";
}

WireCode wireCodeFor(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::Unknown: return WireCode::Unknown;
    case ErrorCode::Precondition: return WireCode::Precondition;
    case ErrorCode::Invariant: return WireCode::Invariant;
    case ErrorCode::TransientLaunch: return WireCode::TransientLaunch;
    case ErrorCode::DeviceMemory: return WireCode::DeviceMemory;
    case ErrorCode::DeviceLost: return WireCode::DeviceLost;
    case ErrorCode::PadLookup: return WireCode::PadLookup;
  }
  return WireCode::Unknown;
}

ErrorCode errorCodeFor(WireCode code) noexcept {
  switch (code) {
    case WireCode::Unknown: return ErrorCode::Unknown;
    case WireCode::Precondition: return ErrorCode::Precondition;
    case WireCode::Invariant: return ErrorCode::Invariant;
    case WireCode::TransientLaunch: return ErrorCode::TransientLaunch;
    case WireCode::DeviceMemory: return ErrorCode::DeviceMemory;
    case WireCode::DeviceLost: return ErrorCode::DeviceLost;
    case WireCode::PadLookup: return ErrorCode::PadLookup;
    // The service-layer conditions are all wire-contract violations.
    case WireCode::BadFrame:
    case WireCode::UnsupportedVersion:
    case WireCode::FrameTooLarge:
    case WireCode::UnknownType:
    case WireCode::Shed:
    case WireCode::ExpectedHello:
      return ErrorCode::Precondition;
  }
  return ErrorCode::Unknown;
}

// --- Encoders -------------------------------------------------------------

void encodeHello(std::string& out, const HelloFrame& hello) {
  const std::size_t at = beginFrame(out, FrameType::Hello);
  appendPod(out, hello);
  endFrame(out, at);
}

void encodeHelloAck(std::string& out, const HelloAckFrame& ack) {
  const std::size_t at = beginFrame(out, FrameType::HelloAck);
  appendPod(out, ack);
  endFrame(out, at);
}

void encodePing(std::string& out) {
  endFrame(out, beginFrame(out, FrameType::Ping));
}

void encodePong(std::string& out) {
  endFrame(out, beginFrame(out, FrameType::Pong));
}

void encodeDecideRequest(std::string& out, std::uint64_t requestId,
                         std::string_view region,
                         const symbolic::Bindings& bindings,
                         const TraceContextBlock* trace) {
  const std::size_t at = beginFrame(out, FrameType::DecideRequest);
  DecideRequestFrame frame;
  frame.requestId = requestId;
  frame.regionNameBytes = static_cast<std::uint32_t>(region.size());
  frame.bindingCount = static_cast<std::uint32_t>(bindings.size());
  appendPod(out, frame);
  if (trace != nullptr) appendPod(out, *trace);
  out.append(region);
  for (const auto& [symbol, value] : bindings) {
    appendPod(out, static_cast<std::uint32_t>(symbol.size()));
    appendPod(out, static_cast<std::int64_t>(value));
    out.append(symbol);
  }
  endFrame(out, at);
}

void encodeDecideBatch(std::string& out, std::uint64_t requestId,
                       std::string_view region,
                       std::span<const std::string_view> slots,
                       std::uint32_t rows,
                       std::span<const std::int64_t> values,
                       const TraceContextBlock* trace) {
  support::require(values.size() ==
                       static_cast<std::size_t>(slots.size()) * rows,
                   "encodeDecideBatch: values must hold slots * rows entries "
                   "(slot-major)");
  support::require(!slots.empty() || rows == 0,
                   "encodeDecideBatch: a row-carrying batch must name at "
                   "least one slot (send binding-free rows as scalar "
                   "DecideRequest frames)");
  const std::size_t at = beginFrame(out, FrameType::DecideBatch);
  DecideBatchFrame frame;
  frame.requestId = requestId;
  frame.regionNameBytes = static_cast<std::uint32_t>(region.size());
  frame.slotCount = static_cast<std::uint32_t>(slots.size());
  frame.rowCount = rows;
  appendPod(out, frame);
  if (trace != nullptr) appendPod(out, *trace);
  out.append(region);
  for (const std::string_view slot : slots) {
    appendPod(out, static_cast<std::uint32_t>(slot.size()));
    out.append(slot);
  }
  out.append(reinterpret_cast<const char*>(values.data()),
             values.size() * sizeof(std::int64_t));
  endFrame(out, at);
}

void encodeDecision(std::string& out, std::uint64_t requestId,
                    const runtime::Decision& decision,
                    const TraceContextBlock* trace) {
  const std::size_t at = beginFrame(out, FrameType::Decision);
  appendPod(out, recordFor(requestId, decision));
  if (trace != nullptr) appendPod(out, *trace);
  out.append(decision.diagnostic);
  endFrame(out, at);
}

void encodeDecisionBatch(std::string& out, std::uint64_t requestId,
                         std::span<const runtime::Decision> decisions,
                         const TraceContextBlock* trace) {
  const std::size_t at = beginFrame(out, FrameType::DecisionBatch);
  DecisionBatchFrame frame;
  frame.count = static_cast<std::uint32_t>(decisions.size());
  appendPod(out, frame);
  if (trace != nullptr) appendPod(out, *trace);
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    appendPod(out, recordFor(requestId + i, decisions[i]));
  }
  for (const runtime::Decision& decision : decisions) {
    out.append(decision.diagnostic);
  }
  endFrame(out, at);
}

void encodeStatsRequest(std::string& out, StatsFormat format) {
  const std::size_t at = beginFrame(out, FrameType::StatsRequest);
  StatsRequestFrame frame;
  frame.format = static_cast<std::uint32_t>(format);
  appendPod(out, frame);
  endFrame(out, at);
}

void encodeStats(std::string& out, std::string_view text) {
  const std::size_t at = beginFrame(out, FrameType::Stats);
  out.append(text);
  endFrame(out, at);
}

void encodeSlowLogRequest(std::string& out, std::uint32_t maxRecords) {
  const std::size_t at = beginFrame(out, FrameType::SlowLogRequest);
  SlowLogRequestFrame frame;
  frame.maxRecords = maxRecords;
  appendPod(out, frame);
  endFrame(out, at);
}

void encodeSlowLog(std::string& out, std::string_view jsonl) {
  const std::size_t at = beginFrame(out, FrameType::SlowLog);
  out.append(jsonl);
  endFrame(out, at);
}

void encodeError(std::string& out, WireCode code, std::string_view message,
                 const TraceContextBlock* trace) {
  const std::size_t at = beginFrame(out, FrameType::Error);
  ErrorFrame frame;
  frame.wireCode = static_cast<std::uint32_t>(code);
  frame.messageBytes = static_cast<std::uint32_t>(message.size());
  appendPod(out, frame);
  if (trace != nullptr) appendPod(out, *trace);
  out.append(message);
  endFrame(out, at);
}

// --- FrameDecoder ---------------------------------------------------------

FrameDecoder::FrameDecoder(std::uint32_t maxFrameBytes)
    : maxFrameBytes_(std::min(maxFrameBytes, kAbsoluteMaxFrameBytes)) {}

void FrameDecoder::setMaxFrameBytes(std::uint32_t maxFrameBytes) {
  maxFrameBytes_ = std::min(maxFrameBytes, kAbsoluteMaxFrameBytes);
}

void FrameDecoder::append(const void* data, std::size_t size) {
  buffer_.append(static_cast<const char*>(data), size);
}

bool FrameDecoder::next(FrameHeader& header, std::string& payload) {
  if (pending() < sizeof(FrameHeader)) return false;
  std::memcpy(&header, buffer_.data() + start_, sizeof(FrameHeader));
  // Reject a hostile length prefix before buffering toward it: a peer
  // claiming a 4 GiB payload must not make the decoder allocate 4 GiB.
  if (header.length > maxFrameBytes_) {
    throw CodecError(WireCode::FrameTooLarge,
                     "service codec: frame length " +
                         std::to_string(header.length) +
                         " exceeds the negotiated limit " +
                         std::to_string(maxFrameBytes_));
  }
  const std::size_t total = sizeof(FrameHeader) + header.length;
  if (pending() < total) return false;
  payload.assign(buffer_, start_ + sizeof(FrameHeader), header.length);
  start_ += total;
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its receive buffer without bound.
  if (start_ > 4096 && start_ * 2 > buffer_.size()) {
    buffer_.erase(0, start_);
    start_ = 0;
  }
  return true;
}

// --- Typed parsers --------------------------------------------------------

HelloFrame parseHello(std::string_view payload) {
  Cursor cursor(payload);
  const auto hello = cursor.read<HelloFrame>();
  cursor.finish();
  if (hello.magic != kMagic) {
    throw CodecError(WireCode::BadFrame, "service codec: Hello magic mismatch");
  }
  if (hello.versionMin > hello.versionMax) {
    throw CodecError(WireCode::UnsupportedVersion,
                     "service codec: Hello version range is inverted");
  }
  return hello;
}

HelloAckFrame parseHelloAck(std::string_view payload) {
  Cursor cursor(payload);
  const auto ack = cursor.read<HelloAckFrame>();
  cursor.finish();
  if (ack.magic != kMagic) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: HelloAck magic mismatch");
  }
  return ack;
}

void parseDecideRequest(std::string_view payload, DecideRequestView& view,
                        bool traceContext) {
  Cursor cursor(payload);
  const auto frame = cursor.read<DecideRequestFrame>();
  view.requestId = frame.requestId;
  view.trace = takeTrace(cursor, traceContext, view.hasTrace);
  view.region = takeString(cursor, frame.regionNameBytes);
  view.bindings.clear();
  // Each binding is at least 12 fixed bytes, so a hostile bindingCount that
  // cannot fit the remaining payload fails here instead of reserving.
  if (static_cast<std::uint64_t>(frame.bindingCount) * 12 >
      cursor.remaining()) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: DecideRequest bindingCount exceeds "
                     "payload");
  }
  view.bindings.reserve(frame.bindingCount);
  for (std::uint32_t i = 0; i < frame.bindingCount; ++i) {
    const auto symbolBytes = cursor.read<std::uint32_t>();
    const auto value = cursor.read<std::int64_t>();
    view.bindings.push_back({takeString(cursor, symbolBytes), value});
  }
  cursor.finish();
}

void parseDecideBatch(std::string_view payload, DecideBatchView& view,
                      bool traceContext) {
  Cursor cursor(payload);
  const auto frame = cursor.read<DecideBatchFrame>();
  view.requestId = frame.requestId;
  view.trace = takeTrace(cursor, traceContext, view.hasTrace);
  view.region = takeString(cursor, frame.regionNameBytes);
  view.slots.clear();
  if (static_cast<std::uint64_t>(frame.slotCount) * 4 > cursor.remaining()) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: DecideBatch slotCount exceeds payload");
  }
  view.slots.reserve(frame.slotCount);
  for (std::uint32_t i = 0; i < frame.slotCount; ++i) {
    const auto symbolBytes = cursor.read<std::uint32_t>();
    view.slots.push_back(takeString(cursor, symbolBytes));
  }
  // With zero slots the value matrix is empty no matter what rowCount
  // claims, so the size cross-check below cannot bound it — and the server
  // sizes per-row buffers from rowCount. Wire rule: a row-carrying batch
  // names at least one slot (binding-free rows travel as scalar
  // DecideRequest frames).
  if (frame.slotCount == 0 && frame.rowCount != 0) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: DecideBatch carries rows but no slots");
  }
  view.rows = frame.rowCount;
  const std::uint64_t valueBytes = static_cast<std::uint64_t>(frame.slotCount) *
                                   frame.rowCount * sizeof(std::int64_t);
  if (valueBytes != cursor.remaining()) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: DecideBatch value matrix size mismatch "
                     "(expected " +
                         std::to_string(valueBytes) + " bytes, have " +
                         std::to_string(cursor.remaining()) + ")");
  }
  view.values = cursor.take(static_cast<std::size_t>(valueBytes)).data();
  cursor.finish();
}

std::int64_t DecideBatchView::value(std::size_t slot, std::size_t row) const {
  std::int64_t out;
  std::memcpy(&out, values + (slot * rows + row) * sizeof(std::int64_t),
              sizeof(out));
  return out;
}

void parseDecision(std::string_view payload, DecisionView& view,
                   bool traceContext) {
  Cursor cursor(payload);
  const auto record = cursor.read<DecisionRecord>();
  view.trace = takeTrace(cursor, traceContext, view.hasTrace);
  const std::string_view diagnostic =
      takeString(cursor, record.diagnosticBytes);
  cursor.finish();
  fillDecision(record, diagnostic, view);
}

void parseDecisionBatch(std::string_view payload,
                        std::vector<DecisionView>& views, bool traceContext) {
  Cursor cursor(payload);
  const auto frame = cursor.read<DecisionBatchFrame>();
  bool hasTrace = false;
  const TraceContextBlock trace = takeTrace(cursor, traceContext, hasTrace);
  if (static_cast<std::uint64_t>(frame.count) * sizeof(DecisionRecord) >
      cursor.remaining()) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: DecisionBatch count exceeds payload");
  }
  std::vector<DecisionRecord> records(frame.count);
  for (DecisionRecord& record : records) {
    record = cursor.read<DecisionRecord>();
  }
  views.resize(frame.count);
  for (std::uint32_t i = 0; i < frame.count; ++i) {
    fillDecision(records[i], takeString(cursor, records[i].diagnosticBytes),
                 views[i]);
    views[i].hasTrace = hasTrace;
    views[i].trace = trace;
  }
  cursor.finish();
}

StatsRequestFrame parseStatsRequest(std::string_view payload) {
  Cursor cursor(payload);
  const auto frame = cursor.read<StatsRequestFrame>();
  cursor.finish();
  if (frame.format > static_cast<std::uint32_t>(StatsFormat::Prometheus)) {
    throw CodecError(WireCode::BadFrame,
                     "service codec: unknown StatsRequest format");
  }
  return frame;
}

SlowLogRequestFrame parseSlowLogRequest(std::string_view payload) {
  Cursor cursor(payload);
  const auto frame = cursor.read<SlowLogRequestFrame>();
  cursor.finish();
  return frame;
}

ErrorView parseError(std::string_view payload, bool traceContext) {
  Cursor cursor(payload);
  const auto frame = cursor.read<ErrorFrame>();
  ErrorView view;
  view.code = static_cast<WireCode>(frame.wireCode);
  view.trace = takeTrace(cursor, traceContext, view.hasTrace);
  view.message = takeString(cursor, frame.messageBytes);
  cursor.finish();
  return view;
}

std::string_view parseStats(std::string_view payload) { return payload; }

std::string_view parseSlowLog(std::string_view payload) { return payload; }

}  // namespace osel::service

#include "service/server.h"

#include <algorithm>
#include <cstdio>
#include <sys/socket.h>
#include <unistd.h>
#include <utility>

#include "obs/export.h"
#include "service/codec.h"
#include "support/check.h"

namespace osel::service {

namespace {

constexpr std::uint32_t kSupportedFeatures =
    kFeatureBatch | kFeatureStats | kFeaturePrometheus | kFeatureTraceContext |
    kFeatureSlowLog;

/// One decide-carrying frame's stage times, parked until the reply flush
/// closes its wall clock (send happens per flush, not per frame).
struct PendingCapture {
  obs::SlowRequestRecord record;  ///< stages filled, send/wall pending
  std::int64_t startNs = 0;       ///< decode start (wall origin)
  std::int64_t encodeEndNs = 0;   ///< encode end (send stage origin)
  bool sampled = false;           ///< client set kTraceFlagSampled
};

/// Best-effort single-frame reply on a connection we are about to drop
/// (shed notices, pre-handshake protocol errors). Failures are ignored —
/// the peer may already be gone.
void trySendError(const Socket& socket, WireCode code,
                  std::string_view message) {
  try {
    std::string out;
    encodeError(out, code, message);
    sendAll(socket, out);
  } catch (const SocketError&) {
  }
}

runtime::RuntimeOptions withTrace(runtime::RuntimeOptions options,
                                  obs::TraceSession* session) {
  options.trace = session;
  return options;
}

}  // namespace

Server::Server(pad::AttributeDatabase database,
               runtime::RuntimeOptions rtOptions, ServiceOptions options)
    : options_(std::move(options)),
      session_(obs::TraceOptions{
          .slowCapacity = std::max<std::size_t>(1, options_.slowRingCapacity)}),
      runtime_(std::move(database), withTrace(std::move(rtOptions), &session_)) {
  support::require(!options_.socketPath.empty(),
                   "service::Server: socketPath must be set");
  options_.workerThreads = std::max<std::size_t>(1, options_.workerThreads);
  options_.maxFrameBytes =
      std::min(options_.maxFrameBytes, kAbsoluteMaxFrameBytes);
  // 0 would mean "no timeout" to SO_RCVTIMEO, reopening the stalled-scraper
  // hang this option exists to prevent.
  options_.metricsRecvTimeoutMillis =
      std::max(1, options_.metricsRecvTimeoutMillis);
  options_.slowRingCapacity =
      std::max<std::size_t>(1, options_.slowRingCapacity);
  obs::MetricsRegistry& metrics = session_.metrics();
  instruments_.connections = &metrics.counter("service.connections");
  instruments_.sheds = &metrics.counter("service.sheds");
  instruments_.frames = &metrics.counter("service.frames");
  instruments_.decisions = &metrics.counter("service.decisions");
  instruments_.errors = &metrics.counter("service.errors");
  instruments_.bytesIn = &metrics.counter("service.bytes_in");
  instruments_.bytesOut = &metrics.counter("service.bytes_out");
  instruments_.batchRows = &metrics.histogram(
      "service.batch_rows", {1.0, 8.0, 32.0, 64.0, 256.0, 1024.0, 4096.0});
  // Stage latency buckets: ~3x steps from 1 us to 1 s so p50/p99/p999 stay
  // resolvable from the cumulative counts (obs::quantileFromBuckets).
  const std::vector<double> stageBounds = {1e-6, 3e-6, 1e-5, 3e-5, 1e-4,
                                           3e-4, 1e-3, 3e-3, 1e-2, 3e-2,
                                           1e-1, 3e-1, 1.0};
  instruments_.decodeSeconds =
      &metrics.histogram("service.decode_s", stageBounds);
  instruments_.decideSeconds =
      &metrics.histogram("service.decide_s", stageBounds);
  instruments_.encodeSeconds =
      &metrics.histogram("service.encode_s", stageBounds);
  instruments_.sendSeconds = &metrics.histogram("service.send_s", stageBounds);
  instruments_.requestSeconds =
      &metrics.histogram("service.request_s", stageBounds);
}

Server::~Server() { stop(); }

void Server::registerRegion(ir::TargetRegion region) {
  runtime_.registerRegion(std::move(region));
}

std::uint64_t Server::connectionsAccepted() const {
  return accepted_.load(std::memory_order_relaxed);
}

std::uint64_t Server::connectionsShed() const {
  return shed_.load(std::memory_order_relaxed);
}

void Server::start() {
  if (running()) return;
  stopping_.store(false, std::memory_order_release);
  unixListener_ = listenUnix(options_.socketPath, options_.listenBacklog);
  if (options_.tcpPort >= 0) {
    tcpListener_ = listenTcp(static_cast<std::uint16_t>(options_.tcpPort),
                             options_.listenBacklog);
    tcpPort_ = boundPort(tcpListener_);
  }
  if (options_.metricsPort >= 0) {
    metricsListener_ = listenTcp(
        static_cast<std::uint16_t>(options_.metricsPort), options_.listenBacklog);
    metricsPort_ = boundPort(metricsListener_);
  }
  threads_.emplace_back([this] { acceptLoop(unixListener_); });
  if (tcpListener_.valid()) {
    threads_.emplace_back([this] { acceptLoop(tcpListener_); });
  }
  if (metricsListener_.valid()) {
    threads_.emplace_back([this] { metricsLoop(); });
  }
  for (std::size_t i = 0; i < options_.workerThreads; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
  running_.store(true, std::memory_order_release);
}

void Server::stop() {
  if (!running() && threads_.empty()) return;
  stopping_.store(true, std::memory_order_release);
  // Wake the accept loops (shutdown, not close: the fds must stay reserved
  // until those threads observed the wakeup, or a racing open could reuse
  // the number under them).
  unixListener_.shutdownBoth();
  tcpListener_.shutdownBoth();
  metricsListener_.shutdownBoth();
  // Unblock workers parked in recv() on live connections.
  {
    std::lock_guard<std::mutex> lock(activeMutex_);
    for (const int fd : activeFds_) ::shutdown(fd, SHUT_RDWR);
  }
  queueCv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  threads_.clear();
  // Queued-but-unserved connections are dropped on the floor; nobody will
  // ever read their frames.
  {
    std::lock_guard<std::mutex> lock(queueMutex_);
    pending_.clear();
  }
  unixListener_.close();
  tcpListener_.close();
  metricsListener_.close();
  ::unlink(options_.socketPath.c_str());
  running_.store(false, std::memory_order_release);
}

void Server::acceptLoop(Socket& listener) {
  for (;;) {
    Socket connection = acceptOn(listener);
    if (!connection.valid() || stopping_.load(std::memory_order_acquire)) {
      return;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    instruments_.connections->add();
    std::unique_lock<std::mutex> lock(queueMutex_);
    if (pending_.size() >= options_.maxPendingConnections) {
      lock.unlock();
      // Shed, don't queue: tell the client why before hanging up, mirroring
      // the runtime's admission controller.
      shed_.fetch_add(1, std::memory_order_relaxed);
      instruments_.sheds->add();
      trySendError(connection, WireCode::Shed,
                   "oseld: connection queue full, try again");
      continue;  // connection closes here
    }
    pending_.push_back(std::move(connection));
    lock.unlock();
    queueCv_.notify_one();
  }
}

void Server::workerLoop() {
  for (;;) {
    Socket connection;
    std::uint64_t clientId = 0;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) || !pending_.empty();
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      connection = std::move(pending_.front());
      pending_.pop_front();
      clientId = nextClientId_++;
    }
    serveConnection(std::move(connection), clientId);
  }
}

void Server::serveConnection(Socket socket, std::uint64_t clientId) {
  {
    std::lock_guard<std::mutex> lock(activeMutex_);
    activeFds_.insert(socket.fd());
  }
  // Capped per-client series: aggregate counters always update; named
  // per-client ones only for the first maxClientMetricSeries connections so
  // churn cannot grow the registry without bound.
  obs::Counter* clientFrames = nullptr;
  obs::Counter* clientDecisions = nullptr;
  if (clientId < options_.maxClientMetricSeries) {
    const std::string prefix = "service.client." + std::to_string(clientId);
    clientFrames = &session_.metrics().counter(prefix + ".frames");
    clientDecisions = &session_.metrics().counter(prefix + ".decisions");
  }

  FrameDecoder decoder(options_.maxFrameBytes);
  std::string payload;
  std::string out;
  bool helloDone = false;
  bool closing = false;
  // Negotiated per-connection wire state (set once at HelloAck).
  bool traceWire = false;  ///< kFeatureTraceContext granted
  // Per-connection scratch, reused across frames.
  std::string regionName;
  symbolic::Bindings bindings;
  DecideRequestView requestView;
  DecideBatchView batchView;
  std::vector<symbolic::Bindings> rowBindings;
  std::vector<runtime::DecideRequest> requests;
  std::vector<runtime::Decision> decisions;
  std::vector<PendingCapture> pendingCaptures;
  char buffer[64 * 1024];

  const std::int64_t slowThresholdNs =
      options_.slowThresholdSeconds > 0.0
          ? static_cast<std::int64_t>(options_.slowThresholdSeconds * 1e9)
          : -1;
  // Folds one decide-carrying frame's decode/decide/encode stage times into
  // the histograms and parks its wide-event record until the flush closes
  // the send stage and the wall clock.
  const auto stageDone = [&](std::uint64_t requestId, std::uint64_t traceId,
                             bool sampled, std::uint32_t rows,
                             std::int64_t t0, std::int64_t t1, std::int64_t t2,
                             std::int64_t t3) {
    instruments_.decodeSeconds->record(static_cast<double>(t1 - t0) * 1e-9);
    instruments_.decideSeconds->record(static_cast<double>(t2 - t1) * 1e-9);
    instruments_.encodeSeconds->record(static_cast<double>(t3 - t2) * 1e-9);
    if (sampled) {
      const auto client = static_cast<double>(clientId);
      const auto trace = static_cast<double>(traceId);
      session_.recordSpan("service.decode", "service", regionName, t0, t1 - t0,
                          {"client", client}, {"trace_id", trace});
      session_.recordSpan("service.decide", "service", regionName, t1, t2 - t1,
                          {"client", client}, {"trace_id", trace});
      session_.recordSpan("service.encode", "service", regionName, t2, t3 - t2,
                          {"client", client}, {"trace_id", trace});
    }
    PendingCapture capture;
    capture.startNs = t0;
    capture.encodeEndNs = t3;
    capture.sampled = sampled;
    obs::SlowRequestRecord& record = capture.record;
    record.setRegion(regionName);
    record.traceId = traceId;
    record.clientId = clientId;
    record.requestId = requestId;
    record.rows = rows;
    record.stateEpoch = runtime_.selector().policy().stateEpoch();
    record.decodeNs = t1 - t0;
    record.decideNs = t2 - t1;
    record.encodeNs = t3 - t2;
    for (std::uint32_t row = 0; row < rows; ++row) {
      const runtime::Decision& decision = decisions[row];
      if (decision.device == runtime::Device::Gpu) record.gpuDecisions += 1;
      if (!decision.valid) record.invalidDecisions += 1;
    }
    pendingCaptures.push_back(capture);
  };

  try {
    while (!closing && !stopping_.load(std::memory_order_acquire)) {
      const std::size_t got = recvSome(socket, buffer, sizeof(buffer));
      if (got == 0) break;  // orderly peer close
      instruments_.bytesIn->add(got);
      decoder.append(buffer, got);

      FrameHeader header;
      for (;;) {
        try {
          if (!decoder.next(header, payload)) break;
        } catch (const CodecError& error) {
          // A bad length prefix desynchronizes the stream; answer and drop.
          encodeError(out, error.wireCode(), error.what());
          instruments_.errors->add();
          closing = true;
          break;
        }
        instruments_.frames->add();
        if (clientFrames != nullptr) clientFrames->add();
        const auto type = static_cast<FrameType>(header.type);

        if (!helloDone) {
          if (type != FrameType::Hello) {
            encodeError(out, WireCode::ExpectedHello,
                        "oseld: first frame must be Hello");
            instruments_.errors->add();
            closing = true;
            break;
          }
          try {
            const HelloFrame hello = parseHello(payload);
            const std::uint16_t version =
                std::min(hello.versionMax, kProtocolVersion);
            if (version < hello.versionMin || version == 0) {
              encodeError(out, WireCode::UnsupportedVersion,
                          "oseld: no common protocol version (server speaks v" +
                              std::to_string(kProtocolVersion) + ")");
              instruments_.errors->add();
              closing = true;
              break;
            }
            HelloAckFrame ack;
            ack.version = version;
            ack.featureBits = hello.featureBits & kSupportedFeatures;
            ack.maxFrameBytes = options_.maxFrameBytes;
            encodeHelloAck(out, ack);
            helloDone = true;
            traceWire = (ack.featureBits & kFeatureTraceContext) != 0;
          } catch (const CodecError& error) {
            encodeError(out, error.wireCode(), error.what());
            instruments_.errors->add();
            closing = true;
            break;
          }
          continue;
        }

        // Post-handshake dispatch. Frame boundaries survive payload-level
        // errors (the decoder already consumed the frame), so BadFrame
        // answers keep the connection usable. `outMark` lets the catch
        // blocks discard a partially encoded reply (e.g. a batch whose
        // encoding tripped the absolute frame ceiling) — sending half a
        // frame followed by an Error frame would desync the peer.
        // On a trace-context connection every post-handshake reply carries
        // a TraceContextBlock; `frameTrace` holds the current frame's (a
        // zeroed block until its request parsed far enough to know it).
        const std::size_t outMark = out.size();
        TraceContextBlock frameTrace;
        const TraceContextBlock* echo = traceWire ? &frameTrace : nullptr;
        try {
          switch (type) {
            case FrameType::Ping:
              encodePong(out);
              break;
            case FrameType::DecideRequest: {
              const std::int64_t t0 = session_.nowNs();
              parseDecideRequest(payload, requestView, traceWire);
              if (requestView.hasTrace) frameTrace = requestView.trace;
              regionName.assign(requestView.region);
              bindings.clear();
              for (const auto& binding : requestView.bindings) {
                bindings[std::string(binding.symbol)] = binding.value;
              }
              const std::int64_t t1 = session_.nowNs();
              decisions.assign(1, runtime::Decision{});
              decisions[0] = runtime_.decide(regionName, bindings);
              const std::int64_t t2 = session_.nowNs();
              encodeDecision(out, requestView.requestId, decisions[0], echo);
              const std::int64_t t3 = session_.nowNs();
              instruments_.decisions->add();
              if (clientDecisions != nullptr) clientDecisions->add();
              stageDone(requestView.requestId, frameTrace.traceId,
                        (frameTrace.flags & kTraceFlagSampled) != 0, 1, t0, t1,
                        t2, t3);
              break;
            }
            case FrameType::DecideBatch: {
              const std::int64_t t0 = session_.nowNs();
              parseDecideBatch(payload, batchView, traceWire);
              if (batchView.hasTrace) frameTrace = batchView.trace;
              const std::size_t rows = batchView.rows;
              regionName.assign(batchView.region);
              if (rowBindings.size() < rows) rowBindings.resize(rows);
              requests.resize(rows);
              decisions.assign(rows, runtime::Decision{});
              for (std::size_t row = 0; row < rows; ++row) {
                symbolic::Bindings& rowBound = rowBindings[row];
                rowBound.clear();
                for (std::size_t slot = 0; slot < batchView.slots.size();
                     ++slot) {
                  rowBound[std::string(batchView.slots[slot])] =
                      batchView.value(slot, row);
                }
                requests[row] = {regionName, &rowBound};
              }
              const std::int64_t t1 = session_.nowNs();
              runtime_.decideBatch(requests, decisions);
              const std::int64_t t2 = session_.nowNs();
              encodeDecisionBatch(out, batchView.requestId,
                                  std::span(decisions.data(), rows), echo);
              const std::int64_t t3 = session_.nowNs();
              instruments_.batchRows->record(static_cast<double>(rows));
              instruments_.decisions->add(rows);
              if (clientDecisions != nullptr) clientDecisions->add(rows);
              stageDone(batchView.requestId, frameTrace.traceId,
                        (frameTrace.flags & kTraceFlagSampled) != 0,
                        static_cast<std::uint32_t>(rows), t0, t1, t2, t3);
              break;
            }
            case FrameType::StatsRequest: {
              const StatsRequestFrame stats = parseStatsRequest(payload);
              const std::string text =
                  static_cast<StatsFormat>(stats.format) ==
                          StatsFormat::Prometheus
                      ? obs::renderPrometheus(session_)
                      : obs::renderStatsSummary(session_);
              encodeStats(out, text);
              break;
            }
            case FrameType::SlowLogRequest: {
              const SlowLogRequestFrame slow = parseSlowLogRequest(payload);
              std::vector<obs::SlowRequestRecord> records =
                  session_.slowRing().snapshot();
              if (slow.maxRecords != 0 && records.size() > slow.maxRecords) {
                records.erase(
                    records.begin(),
                    records.end() -
                        static_cast<std::ptrdiff_t>(slow.maxRecords));
              }
              encodeSlowLog(out, obs::renderSlowJson(records));
              break;
            }
            case FrameType::Hello:
            case FrameType::HelloAck:
            case FrameType::Decision:
            case FrameType::DecisionBatch:
            case FrameType::Stats:
            case FrameType::SlowLog:
            case FrameType::Pong:
            case FrameType::Error:
              encodeError(out, WireCode::BadFrame,
                          "oseld: unexpected frame type " +
                              std::to_string(header.type),
                          echo);
              instruments_.errors->add();
              break;
            default:
              encodeError(out, WireCode::UnknownType,
                          "oseld: unknown frame type " +
                              std::to_string(header.type),
                          echo);
              instruments_.errors->add();
              break;
          }
        } catch (const CodecError& error) {
          out.resize(outMark);
          encodeError(out, error.wireCode(), error.what(), echo);
          instruments_.errors->add();
        } catch (const osel::Error& error) {
          out.resize(outMark);
          encodeError(out, wireCodeFor(error.code()), error.what(), echo);
          instruments_.errors->add();
        } catch (const std::exception& error) {
          out.resize(outMark);
          encodeError(out, WireCode::Unknown, error.what(), echo);
          instruments_.errors->add();
        }
      }

      if (!out.empty()) {
        const std::int64_t sendStart = session_.nowNs();
        sendAll(socket, out);
        const std::int64_t sendEnd = session_.nowNs();
        instruments_.bytesOut->add(out.size());
        out.clear();
        if (!pendingCaptures.empty()) {
          // One send(2) flushes every reply buffered this round. A frame's
          // send stage runs from its own encode end to the point the next
          // frame's decode began (the flush, for the last frame) plus an
          // even share of the write itself — so decode/decide/encode/send
          // tile the request wall exactly for request-reply clients (the
          // stage histograms must account for >= 99% of request_s), and
          // pipelined frames still split the write cost evenly.
          const auto sendShare = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(sendEnd - sendStart) /
              pendingCaptures.size());
          bool sendSpanRecorded = false;
          for (std::size_t i = 0; i < pendingCaptures.size(); ++i) {
            PendingCapture& capture = pendingCaptures[i];
            const std::int64_t stageEnd = i + 1 < pendingCaptures.size()
                                              ? pendingCaptures[i + 1].startNs
                                              : sendStart;
            obs::SlowRequestRecord& record = capture.record;
            record.sendNs = (stageEnd - capture.encodeEndNs) + sendShare;
            record.wallNs = sendEnd - capture.startNs;
            instruments_.sendSeconds->record(
                static_cast<double>(record.sendNs) * 1e-9);
            instruments_.requestSeconds->record(
                static_cast<double>(record.wallNs) * 1e-9);
            const bool overThreshold =
                slowThresholdNs >= 0 && record.wallNs > slowThresholdNs;
            if (capture.sampled && !sendSpanRecorded) {
              session_.recordSpan("service.send", "service",
                                  record.regionView(), sendStart,
                                  sendEnd - sendStart,
                                  {"client", static_cast<double>(clientId)},
                                  {"trace_id",
                                   static_cast<double>(record.traceId)});
              sendSpanRecorded = true;
            }
            if (overThreshold || capture.sampled) {
              record.cause = overThreshold ? obs::SlowCause::Threshold
                                           : obs::SlowCause::Sampled;
              record.atNs = sendEnd;
              session_.recordSlow(record);
            }
          }
        }
        pendingCaptures.clear();
      }
    }
  } catch (const SocketError&) {
    // Peer vanished mid-conversation; nothing to answer.
  }

  {
    std::lock_guard<std::mutex> lock(activeMutex_);
    activeFds_.erase(socket.fd());
  }
}

void Server::metricsLoop() {
  // Serial request handling is plenty for a scraper that polls every few
  // seconds; the decision path never waits on this thread. Each accepted
  // connection is registered in activeFds_ (so stop() can shutdown(2) a
  // scraper this thread is blocked reading) and recv-bounded (so a scraper
  // that connects and then stalls cannot pin the loop past the timeout).
  for (;;) {
    Socket connection = acceptOn(metricsListener_);
    if (!connection.valid() || stopping_.load(std::memory_order_acquire)) {
      return;
    }
    {
      std::lock_guard<std::mutex> lock(activeMutex_);
      activeFds_.insert(connection.fd());
    }
    // Re-check after registering: stop() sets stopping_ before sweeping
    // activeFds_, so either it sees this fd or we see the flag.
    if (!stopping_.load(std::memory_order_acquire)) {
      try {
        setRecvTimeout(connection, options_.metricsRecvTimeoutMillis);
        serveMetricsConnection(connection);
      } catch (const SocketError&) {
        // Scraper hung up early or stalled past the timeout; serve the
        // next one.
      }
    }
    {
      std::lock_guard<std::mutex> lock(activeMutex_);
      activeFds_.erase(connection.fd());
    }
  }
}

void Server::serveMetricsConnection(const Socket& connection) {
  std::string request;
  char buffer[4096];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    const std::size_t got = recvSome(connection, buffer, sizeof(buffer));
    if (got == 0) break;
    request.append(buffer, got);
  }
  std::string body;
  const char* status = "200 OK";
  if (request.rfind("GET /metrics", 0) == 0) {
    body = obs::renderPrometheus(session_);
  } else if (request.rfind("GET / ", 0) == 0 ||
             request.rfind("GET /\r", 0) == 0) {
    body = "oseld metrics endpoint; scrape GET /metrics\n";
  } else {
    status = "404 Not Found";
    body = "only GET /metrics is served here\n";
  }
  std::string response = "HTTP/1.0 ";
  response += status;
  response +=
      "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
      "Content-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  response += body;
  sendAll(connection, response);
}

}  // namespace osel::service

// osel/service/server.h — the oseld decision service.
//
// The thin driver-over-library split: everything the daemon serves already
// exists in-process (sharded TargetRuntime, compiled plans, decision
// caches, batched deciding, obs metrics); this class adds the socket front
// end. One accept loop per transport (Unix-domain socket always; loopback
// TCP behind an option) feeds a bounded hand-off queue drained by N worker
// threads, each serving one connection at a time over the versioned wire
// protocol (service/osel_abi.h). Admission control follows the runtime's
// shed-don't-queue doctrine: when the hand-off queue is full a new
// connection is answered Error{Shed} and closed instead of waiting.
//
// Observability: the server owns an obs::TraceSession, attaches it to the
// runtime, and adds its own service.* counters (connections, sheds, frames,
// decisions, errors, bytes in/out, a batch-rows histogram) plus capped
// per-client series. The session's Prometheus exposition is served on an
// optional loopback HTTP endpoint (`GET /metrics`) so the renderPrometheus
// text is scraped for real. docs/SERVICE.md covers deployment.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "obs/trace.h"
#include "pad/attribute_db.h"
#include "runtime/target_runtime.h"
#include "service/osel_abi.h"
#include "service/socket.h"

namespace osel::service {

/// Everything configurable about an oseld server.
struct ServiceOptions {
  /// Unix-domain socket path to serve on (required; a stale file from a
  /// crashed daemon is unlinked at start).
  std::string socketPath;
  /// Loopback TCP transport: < 0 disabled (the default), 0 picks a free
  /// port (see tcpPort() after start), > 0 binds that port.
  int tcpPort = -1;
  /// Loopback HTTP metrics endpoint serving `GET /metrics` (Prometheus
  /// text): < 0 disabled, 0 picks a free port, > 0 binds that port.
  int metricsPort = -1;
  /// Worker threads draining the connection queue; each serves one
  /// connection at a time. Clamped to >= 1.
  std::size_t workerThreads = 4;
  /// Accepted connections waiting for a worker beyond this are shed
  /// (Error{Shed} + close) rather than queued without bound.
  std::size_t maxPendingConnections = 64;
  /// Per-connection frame ceiling advertised in HelloAck and enforced by
  /// the decoder. Clamped to kAbsoluteMaxFrameBytes.
  std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes;
  /// listen(2) backlog for both transports.
  int listenBacklog = 128;
  /// Per-client counter series (service.client.<id>.*) are only created
  /// for the first this-many connections, bounding metric cardinality
  /// under connection churn; the aggregate series always update.
  std::size_t maxClientMetricSeries = 64;
  /// recv(2) timeout applied to accepted metrics-endpoint connections, so
  /// a scraper that connects and then sends nothing (or stalls mid-request)
  /// cannot pin the serial metrics thread. Clamped to >= 1.
  int metricsRecvTimeoutMillis = 2000;
  /// Decide requests whose server wall time (decode start to send end)
  /// exceeds this are captured as wide events in the slow ring (served via
  /// the kFeatureSlowLog RPC / `oselctl slow`). <= 0 disables threshold
  /// capture; client-sampled requests (kTraceFlagSampled) are always
  /// captured.
  double slowThresholdSeconds = 0.050;
  /// Slow-request ring capacity (oldest records overwritten beyond it).
  /// Clamped to >= 1.
  std::size_t slowRingCapacity = 256;
};

/// The daemon core, embeddable for tests and the loopback load generator:
/// construct, registerRegion() the fleet's kernels, start(), and the
/// object serves until stop() (or destruction). start()/stop() cycles are
/// safe to repeat on one instance.
class Server {
 public:
  /// The server owns its TraceSession and overrides `rtOptions.trace` with
  /// it so wire traffic, runtime instrumentation, and the Prometheus
  /// exposition share one registry.
  Server(pad::AttributeDatabase database, runtime::RuntimeOptions rtOptions,
         ServiceOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the transports and spawns the accept/worker/metrics threads.
  /// Throws SocketError when a bind fails; no-op when already running.
  void start();
  /// Stops accepting, sheds queued connections, shuts down in-flight ones,
  /// joins every thread, and unlinks the socket path. Idempotent.
  void stop();
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

  /// Forwarded to the runtime; safe while serving (the registry is RCU).
  void registerRegion(ir::TargetRegion region);

  [[nodiscard]] runtime::TargetRuntime& runtime() { return runtime_; }
  [[nodiscard]] obs::TraceSession& session() { return session_; }
  [[nodiscard]] const ServiceOptions& options() const { return options_; }

  /// Ports actually bound (resolves option value 0); only valid while
  /// running with the respective endpoint enabled.
  [[nodiscard]] std::uint16_t tcpPort() const { return tcpPort_; }
  [[nodiscard]] std::uint16_t metricsPort() const { return metricsPort_; }

  /// Connections accepted / shed since construction (monotonic).
  [[nodiscard]] std::uint64_t connectionsAccepted() const;
  [[nodiscard]] std::uint64_t connectionsShed() const;

 private:
  struct Instruments {
    obs::Counter* connections = nullptr;
    obs::Counter* sheds = nullptr;
    obs::Counter* frames = nullptr;
    obs::Counter* decisions = nullptr;
    obs::Counter* errors = nullptr;
    obs::Counter* bytesIn = nullptr;
    obs::Counter* bytesOut = nullptr;
    obs::Histogram* batchRows = nullptr;
    // Per-stage service latency (seconds) for decide-carrying frames, plus
    // the end-to-end wall histogram the stages must account for.
    obs::Histogram* decodeSeconds = nullptr;
    obs::Histogram* decideSeconds = nullptr;
    obs::Histogram* encodeSeconds = nullptr;
    obs::Histogram* sendSeconds = nullptr;
    obs::Histogram* requestSeconds = nullptr;
  };

  void acceptLoop(Socket& listener);
  void metricsLoop();
  /// Reads one HTTP request and answers it (GET /metrics → Prometheus
  /// text). Throws SocketError on a vanished or stalled-past-timeout peer.
  void serveMetricsConnection(const Socket& connection);
  void workerLoop();
  /// Serves one connection until the peer closes, a fatal wire error, or
  /// stop(). `clientId` keys the per-client metric series.
  void serveConnection(Socket socket, std::uint64_t clientId);

  ServiceOptions options_;
  obs::TraceSession session_;
  runtime::TargetRuntime runtime_;
  Instruments instruments_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  Socket unixListener_;
  Socket tcpListener_;
  Socket metricsListener_;
  std::uint16_t tcpPort_ = 0;
  std::uint16_t metricsPort_ = 0;
  std::vector<std::thread> threads_;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<Socket> pending_;
  std::uint64_t nextClientId_ = 0;

  /// fds of connections currently inside serveConnection, so stop() can
  /// shutdown(2) them and unblock workers parked in recv().
  std::mutex activeMutex_;
  std::unordered_set<int> activeFds_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace osel::service

#include "service/client.h"

#include "support/check.h"

namespace osel::service {

Client Client::connect(const std::string& path,
                       std::uint32_t featureRequest) {
  Client client(connectUnix(path));
  client.handshake(featureRequest);
  return client;
}

Client Client::connectPort(std::uint16_t port, std::uint32_t featureRequest) {
  Client client(connectTcp(port));
  client.handshake(featureRequest);
  return client;
}

Client::Client(Socket socket) : socket_(std::move(socket)) {}

void Client::handshake(std::uint32_t featureRequest) {
  HelloFrame hello;
  hello.versionMin = 1;
  hello.versionMax = kProtocolVersion;
  hello.featureBits = featureRequest;
  encodeHello(outBuffer_, hello);
  std::string payload;
  const FrameHeader header = exchange(payload);
  expectType(header, payload, FrameType::HelloAck);
  const HelloAckFrame ack = parseHelloAck(payload);
  version_ = ack.version;
  featureBits_ = ack.featureBits;
  // The negotiated limit bounds frames *we send*; replies may legally be
  // larger (a DecisionBatch is ~5x its request), so the receive decoder
  // keeps the absolute ceiling it was constructed with (see osel_abi.h).
  maxFrameBytes_ = ack.maxFrameBytes;
}

void Client::ping() {
  encodePing(outBuffer_);
  std::string payload;
  const FrameHeader header = exchange(payload);
  expectType(header, payload, FrameType::Pong);
}

runtime::Decision Client::decide(std::string_view region,
                                 const symbolic::Bindings& bindings,
                                 const TraceContextBlock* trace) {
  const std::uint64_t id = nextRequestId_++;
  // On a trace-granted connection every decide frame carries a block (the
  // layouts are negotiation-dependent, not per-frame optional), so a caller
  // without a trace id still sends a zeroed one.
  TraceContextBlock block;
  const TraceContextBlock* wire = nullptr;
  if (traceContextGranted()) {
    if (trace != nullptr) block = *trace;
    wire = &block;
  }
  encodeDecideRequest(outBuffer_, id, region, bindings, wire);
  std::string payload;
  const FrameHeader header = exchange(payload);
  expectType(header, payload, FrameType::Decision);
  DecisionView view;
  parseDecision(payload, view, traceContextGranted());
  if (view.requestId != id) {
    throw CodecError(WireCode::BadFrame,
                     "client: Decision answered request " +
                         std::to_string(view.requestId) + ", expected " +
                         std::to_string(id));
  }
  if (wire != nullptr && view.hasTrace && view.trace.traceId != wire->traceId) {
    throw CodecError(WireCode::BadFrame,
                     "client: Decision echoed trace id " +
                         std::to_string(view.trace.traceId) + ", expected " +
                         std::to_string(wire->traceId));
  }
  return view.decision;
}

void Client::decideBatch(std::string_view region,
                         std::span<const std::string_view> slots,
                         std::uint32_t rows,
                         std::span<const std::int64_t> values,
                         std::vector<runtime::Decision>& out,
                         const TraceContextBlock* trace) {
  if (slots.empty() && rows > 0) {
    // Wire rule: a row-carrying DecideBatch names at least one slot — with
    // zero slots the server could not bound the claimed rowCount. Rows for
    // binding-free regions go as scalar frames instead.
    const symbolic::Bindings none;
    out.resize(rows);
    for (std::uint32_t row = 0; row < rows; ++row) {
      out[row] = decide(region, none, trace);
    }
    return;
  }
  TraceContextBlock block;
  const TraceContextBlock* wire = nullptr;
  if (traceContextGranted()) {
    if (trace != nullptr) block = *trace;
    wire = &block;
  }
  const std::uint64_t id = nextRequestId_;
  nextRequestId_ += rows == 0 ? 1 : rows;  // rows echo id..id+rows-1
  encodeDecideBatch(outBuffer_, id, region, slots, rows, values, wire);
  std::string payload;
  const FrameHeader header = exchange(payload);
  expectType(header, payload, FrameType::DecisionBatch);
  std::vector<DecisionView> views;
  parseDecisionBatch(payload, views, traceContextGranted());
  if (views.size() != rows) {
    throw CodecError(WireCode::BadFrame,
                     "client: DecisionBatch carried " +
                         std::to_string(views.size()) + " rows, expected " +
                         std::to_string(rows));
  }
  if (wire != nullptr && !views.empty() && views.front().hasTrace &&
      views.front().trace.traceId != wire->traceId) {
    throw CodecError(WireCode::BadFrame,
                     "client: DecisionBatch echoed trace id " +
                         std::to_string(views.front().trace.traceId) +
                         ", expected " + std::to_string(wire->traceId));
  }
  out.resize(views.size());
  for (std::size_t row = 0; row < views.size(); ++row) {
    if (views[row].requestId != id + row) {
      throw CodecError(WireCode::BadFrame,
                       "client: DecisionBatch row " + std::to_string(row) +
                           " echoed request " +
                           std::to_string(views[row].requestId));
    }
    out[row] = views[row].decision;
  }
}

std::string Client::stats(StatsFormat format) {
  encodeStatsRequest(outBuffer_, format);
  std::string payload;
  const FrameHeader header = exchange(payload);
  expectType(header, payload, FrameType::Stats);
  return std::string(parseStats(payload));
}

std::string Client::slowLog(std::uint32_t maxRecords) {
  encodeSlowLogRequest(outBuffer_, maxRecords);
  std::string payload;
  const FrameHeader header = exchange(payload);
  expectType(header, payload, FrameType::SlowLog);
  return std::string(parseSlowLog(payload));
}

FrameHeader Client::exchange(std::string& payload) {
  // Enforce the server's negotiated request ceiling before sending: a
  // frame it would refuse must fail here with a clear error, not desync
  // the connection. Discarding it keeps the client usable.
  if (outBuffer_.size() > sizeof(FrameHeader) + maxFrameBytes_) {
    const std::size_t bytes = outBuffer_.size() - sizeof(FrameHeader);
    outBuffer_.clear();
    throw CodecError(WireCode::FrameTooLarge,
                     "client: request frame of " + std::to_string(bytes) +
                         " payload bytes exceeds the server's negotiated "
                         "limit " +
                         std::to_string(maxFrameBytes_));
  }
  sendAll(socket_, outBuffer_);
  outBuffer_.clear();
  return readFrame(payload);
}

FrameHeader Client::readFrame(std::string& payload) {
  FrameHeader header;
  char buffer[64 * 1024];
  for (;;) {
    if (decoder_.next(header, payload)) return header;
    const std::size_t got = recvSome(socket_, buffer, sizeof(buffer));
    if (got == 0) {
      throw SocketError("client: server closed the connection mid-exchange");
    }
    decoder_.append(buffer, got);
  }
}

void Client::expectType(const FrameHeader& header, std::string_view payload,
                        FrameType expected) {
  const auto type = static_cast<FrameType>(header.type);
  if (type == expected) return;
  if (type == FrameType::Error) {
    // Pre-handshake featureBits_ is 0, so handshake-time errors correctly
    // parse without a trace block; post-handshake errors on trace-granted
    // connections always carry one (zeroed when the context is unknown).
    const ErrorView error = parseError(payload, traceContextGranted());
    throw ServiceError(error.code, std::string(error.message));
  }
  throw CodecError(WireCode::BadFrame,
                   "client: expected frame type " +
                       std::to_string(static_cast<int>(expected)) + ", got " +
                       std::to_string(header.type));
}

}  // namespace osel::service

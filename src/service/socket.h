// osel/service/socket.h — thin RAII wrappers over POSIX sockets.
//
// Just enough plumbing for oseld and its clients: Unix-domain listen and
// connect, loopback TCP listen (the optional transport and the metrics
// endpoint), full-buffer send, and chunked receive. Errors surface as
// SocketError carrying errno text; connect failures are a distinct subtype
// so CLI callers can map them to the dedicated exit code.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "support/error.h"

namespace osel::service {

/// A socket-layer failure (bind/listen/accept/send/recv) with errno detail.
class SocketError : public std::runtime_error, public osel::Error {
 public:
  explicit SocketError(const std::string& message)
      : std::runtime_error(message) {}

  [[nodiscard]] ErrorCode code() const noexcept override {
    return ErrorCode::Unknown;
  }
  [[nodiscard]] const char* what() const noexcept override {
    return std::runtime_error::what();
  }
};

/// Failure to reach a server at all (no daemon, bad path, refused). Split
/// from SocketError so `oselctl` can exit 3 on exactly this condition.
class ConnectError final : public SocketError {
 public:
  using SocketError::SocketError;
};

/// Owning file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();
  /// shutdown(SHUT_RDWR): unblocks a peer (or our own thread) parked in
  /// recv() without racing the fd number the way close() would.
  void shutdownBoth();

 private:
  int fd_ = -1;
};

/// Binds + listens on a Unix-domain socket path, unlinking any stale file
/// first. Throws SocketError.
[[nodiscard]] Socket listenUnix(const std::string& path, int backlog);

/// Binds + listens on 127.0.0.1:`port` (port 0 picks a free one). Throws
/// SocketError.
[[nodiscard]] Socket listenTcp(std::uint16_t port, int backlog);

/// The port a listenTcp socket actually bound (resolves port 0).
[[nodiscard]] std::uint16_t boundPort(const Socket& socket);

/// accept(); an invalid Socket when the listener was shut down.
[[nodiscard]] Socket acceptOn(const Socket& listener);

/// Connects to a Unix-domain socket path. Throws ConnectError.
[[nodiscard]] Socket connectUnix(const std::string& path);

/// Connects to 127.0.0.1:`port`. Throws ConnectError.
[[nodiscard]] Socket connectTcp(std::uint16_t port);

/// SO_RCVTIMEO: recv(2) on `socket` fails (EAGAIN → SocketError) after
/// `millis` without data instead of blocking forever. Throws SocketError
/// when the option cannot be set.
void setRecvTimeout(const Socket& socket, int millis);

/// Sends the whole buffer (looping over partial sends). Throws SocketError
/// on a broken connection.
void sendAll(const Socket& socket, std::string_view bytes);

/// One recv() of at most `size` bytes into `buffer`; returns the byte count,
/// 0 on orderly peer close. Throws SocketError on failure.
[[nodiscard]] std::size_t recvSome(const Socket& socket, void* buffer,
                                   std::size_t size);

}  // namespace osel::service

#include "service/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace osel::service {

namespace {

std::string withErrno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket listenUnix(const std::string& path, int backlog) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw SocketError("listenUnix: socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);

  Socket socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!socket.valid()) throw SocketError(withErrno("listenUnix: socket"));
  // A stale socket file from a crashed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; unlink unconditionally —
  // a *live* daemon on the path is an operator error either way.
  ::unlink(path.c_str());
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw SocketError(withErrno("listenUnix: bind " + path));
  }
  if (::listen(socket.fd(), backlog) != 0) {
    throw SocketError(withErrno("listenUnix: listen " + path));
  }
  return socket;
}

Socket listenTcp(std::uint16_t port, int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw SocketError(withErrno("listenTcp: socket"));
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw SocketError(withErrno("listenTcp: bind 127.0.0.1:" +
                                std::to_string(port)));
  }
  if (::listen(socket.fd(), backlog) != 0) {
    throw SocketError(withErrno("listenTcp: listen"));
  }
  return socket;
}

std::uint16_t boundPort(const Socket& socket) {
  sockaddr_in address{};
  socklen_t size = sizeof(address);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&address),
                    &size) != 0) {
    throw SocketError(withErrno("boundPort: getsockname"));
  }
  return ntohs(address.sin_port);
}

Socket acceptOn(const Socket& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL after the listener was shut down is the orderly stop
    // path, not an error worth throwing on.
    return Socket();
  }
}

Socket connectUnix(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.size() >= sizeof(address.sun_path)) {
    throw ConnectError("connectUnix: socket path too long: " + path);
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  Socket socket(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!socket.valid()) throw ConnectError(withErrno("connectUnix: socket"));
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw ConnectError(withErrno("connectUnix: connect " + path));
  }
  return socket;
}

Socket connectTcp(std::uint16_t port) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) throw ConnectError(withErrno("connectTcp: socket"));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    throw ConnectError(withErrno("connectTcp: connect 127.0.0.1:" +
                                 std::to_string(port)));
  }
  return socket;
}

void setRecvTimeout(const Socket& socket, int millis) {
  timeval timeout{};
  timeout.tv_sec = millis / 1000;
  timeout.tv_usec = static_cast<suseconds_t>(millis % 1000) * 1000;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_RCVTIMEO, &timeout,
                   sizeof(timeout)) != 0) {
    throw SocketError(withErrno("setRecvTimeout: setsockopt"));
  }
}

void sendAll(const Socket& socket, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as an error on this
    // connection's thread, not SIGPIPE the whole daemon.
    const ssize_t n = ::send(socket.fd(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SocketError(withErrno("sendAll: send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t recvSome(const Socket& socket, void* buffer, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(socket.fd(), buffer, size, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    throw SocketError(withErrno("recvSome: recv"));
  }
}

}  // namespace osel::service

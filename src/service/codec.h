// osel/service/codec.h — encode/decode between osel_abi.h wire frames and
// in-process types.
//
// The decode side is the trust boundary of `oseld`: every byte it consumes
// may come from a hostile or broken peer, so all parsing is bounds-checked
// memcpy against the payload extent — truncated tails, counts that do not
// add up, oversized length prefixes, and bad magic/version all raise a
// typed CodecError (never UB, pinned by the hostile-frame fuzz test).
// Parse functions fill caller-owned view structs whose string_views point
// into the payload buffer; the views are valid only while that buffer is.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/selector.h"
#include "service/osel_abi.h"
#include "support/error.h"
#include "symbolic/expr.h"

namespace osel::service {

[[nodiscard]] std::string toString(WireCode code);

/// The stable wire code for an in-process error classification (and back).
[[nodiscard]] WireCode wireCodeFor(ErrorCode code) noexcept;
[[nodiscard]] ErrorCode errorCodeFor(WireCode code) noexcept;

/// Raised by every parse path on malformed wire data. A server catches it
/// and answers ErrorFrame{wireCode()}; a client surfaces it to the caller.
class CodecError : public std::runtime_error, public osel::Error {
 public:
  CodecError(WireCode wireCode, const std::string& message)
      : std::runtime_error(message), wireCode_(wireCode) {}

  [[nodiscard]] WireCode wireCode() const noexcept { return wireCode_; }
  [[nodiscard]] ErrorCode code() const noexcept override {
    return errorCodeFor(wireCode_);
  }
  [[nodiscard]] const char* what() const noexcept override {
    return std::runtime_error::what();
  }

 private:
  WireCode wireCode_;
};

// --- Encoding -------------------------------------------------------------
// Every encoder appends one complete frame (header + payload) to `out`,
// which accumulates bytes ready for send(). Appending to one string lets a
// caller coalesce many frames into a single write.

// The `trace` parameter on the decide/decision/error encoders is the
// kFeatureTraceContext block: nullptr (the default) leaves the frame
// byte-identical to the pre-trace-context layout; non-null inserts the
// block immediately after the fixed POD struct. Callers pass it only on
// connections where the feature was granted — the layouts are
// negotiation-dependent, never mixed.

void encodeHello(std::string& out, const HelloFrame& hello);
void encodeHelloAck(std::string& out, const HelloAckFrame& ack);
void encodePing(std::string& out);
void encodePong(std::string& out);
void encodeDecideRequest(std::string& out, std::uint64_t requestId,
                         std::string_view region,
                         const symbolic::Bindings& bindings,
                         const TraceContextBlock* trace = nullptr);
/// `values` is slot-major, values[slot * rows + row], slots.size() * rows
/// entries (support::PreconditionError otherwise).
void encodeDecideBatch(std::string& out, std::uint64_t requestId,
                       std::string_view region,
                       std::span<const std::string_view> slots,
                       std::uint32_t rows,
                       std::span<const std::int64_t> values,
                       const TraceContextBlock* trace = nullptr);
void encodeDecision(std::string& out, std::uint64_t requestId,
                    const runtime::Decision& decision,
                    const TraceContextBlock* trace = nullptr);
/// Row r is encoded with requestId + r.
void encodeDecisionBatch(std::string& out, std::uint64_t requestId,
                         std::span<const runtime::Decision> decisions,
                         const TraceContextBlock* trace = nullptr);
void encodeStatsRequest(std::string& out, StatsFormat format);
void encodeStats(std::string& out, std::string_view text);
void encodeSlowLogRequest(std::string& out, std::uint32_t maxRecords = 0);
void encodeSlowLog(std::string& out, std::string_view jsonl);
void encodeError(std::string& out, WireCode code, std::string_view message,
                 const TraceContextBlock* trace = nullptr);

// --- Decoding -------------------------------------------------------------

/// Incremental frame splitter over a byte stream. Feed received bytes with
/// append(); next() pops one complete frame at a time. The only validation
/// here is the length prefix (against the connection's negotiated limit);
/// payload structure is the typed parsers' job.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t maxFrameBytes = kDefaultMaxFrameBytes);

  /// Tightens/loosens the length ceiling (post-Hello negotiation). Clamped
  /// to kAbsoluteMaxFrameBytes.
  void setMaxFrameBytes(std::uint32_t maxFrameBytes);

  void append(const void* data, std::size_t size);

  /// Pops the next complete frame into (header, payload); false when the
  /// buffered bytes do not yet hold one. Throws CodecError{FrameTooLarge}
  /// as soon as a header's length prefix exceeds the limit — before waiting
  /// for (or allocating) the oversized payload.
  [[nodiscard]] bool next(FrameHeader& header, std::string& payload);

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t pending() const { return buffer_.size() - start_; }

 private:
  std::uint32_t maxFrameBytes_;
  std::string buffer_;
  std::size_t start_ = 0;  ///< consumed prefix, compacted periodically
};

/// Decoded DecideRequest; `region`/`symbol` views point into the payload.
struct DecideRequestView {
  std::uint64_t requestId = 0;
  std::string_view region;
  struct Binding {
    std::string_view symbol;
    std::int64_t value = 0;
  };
  std::vector<Binding> bindings;
  bool hasTrace = false;  ///< a TraceContextBlock was parsed
  TraceContextBlock trace;
};

/// Decoded DecideBatch. `values` stays in wire order (slot-major); use
/// value(slot, row) — the payload carries no alignment guarantee, so the
/// accessor memcpys.
struct DecideBatchView {
  std::uint64_t requestId = 0;
  std::string_view region;
  std::vector<std::string_view> slots;
  std::uint32_t rows = 0;
  const char* values = nullptr;  ///< slots.size() * rows little-endian i64s
  bool hasTrace = false;         ///< a TraceContextBlock was parsed
  TraceContextBlock trace;

  [[nodiscard]] std::int64_t value(std::size_t slot, std::size_t row) const;
};

/// One decoded decision; only the wire-stable Decision subset is filled
/// (device, valid, diagnostic, cpu.seconds, gpu.totalSeconds,
/// overheadSeconds) — the model-term breakdowns stay server-side.
struct DecisionView {
  std::uint64_t requestId = 0;
  runtime::Decision decision;
  bool hasTrace = false;  ///< a TraceContextBlock was parsed (echoed)
  TraceContextBlock trace;
};

struct ErrorView {
  WireCode code = WireCode::Unknown;
  std::string_view message;
  bool hasTrace = false;  ///< a TraceContextBlock was parsed (echoed)
  TraceContextBlock trace;
};

// All parsers throw CodecError{BadFrame} on truncated/oversized/ill-formed
// payloads (and {UnsupportedVersion} where magic/version checks apply).
// `traceContext` is per-connection negotiation state: true means the frame
// MUST carry a TraceContextBlock (its absence is a truncated payload), false
// means it must not (extra bytes are trailing junk) — a peer cannot half-
// speak the feature.
[[nodiscard]] HelloFrame parseHello(std::string_view payload);
[[nodiscard]] HelloAckFrame parseHelloAck(std::string_view payload);
void parseDecideRequest(std::string_view payload, DecideRequestView& view,
                        bool traceContext = false);
void parseDecideBatch(std::string_view payload, DecideBatchView& view,
                      bool traceContext = false);
void parseDecision(std::string_view payload, DecisionView& view,
                   bool traceContext = false);
/// With traceContext, the frame-level block is echoed into every view
/// (row order carries one shared block on the wire).
void parseDecisionBatch(std::string_view payload,
                        std::vector<DecisionView>& views,
                        bool traceContext = false);
[[nodiscard]] StatsRequestFrame parseStatsRequest(std::string_view payload);
[[nodiscard]] SlowLogRequestFrame parseSlowLogRequest(
    std::string_view payload);
[[nodiscard]] ErrorView parseError(std::string_view payload,
                                   bool traceContext = false);
[[nodiscard]] std::string_view parseStats(std::string_view payload);
[[nodiscard]] std::string_view parseSlowLog(std::string_view payload);

}  // namespace osel::service

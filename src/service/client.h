// osel/service/client.h — blocking client for the oseld wire protocol.
//
// One Client wraps one connection: connect() performs the Hello/HelloAck
// version negotiation, after which decide()/decideBatch()/ping()/stats()
// are synchronous request/response exchanges. An ErrorFrame answer raises
// ServiceError carrying the wire code, so callers see the server's error
// taxonomy as typed exceptions rather than sentinel decisions. Used by
// `oselctl`, `loadgen_oseld`, and the service tests; not thread-safe —
// open one Client per thread.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/selector.h"
#include "service/codec.h"
#include "service/socket.h"
#include "symbolic/expr.h"

namespace osel::service {

/// The server answered ErrorFrame{code}; message is the server's text.
class ServiceError : public std::runtime_error, public osel::Error {
 public:
  ServiceError(WireCode wireCode, const std::string& message)
      : std::runtime_error(message), wireCode_(wireCode) {}

  [[nodiscard]] WireCode wireCode() const noexcept { return wireCode_; }
  [[nodiscard]] ErrorCode code() const noexcept override {
    return errorCodeFor(wireCode_);
  }
  [[nodiscard]] const char* what() const noexcept override {
    return std::runtime_error::what();
  }

 private:
  WireCode wireCode_;
};

class Client {
 public:
  /// Feature bits a Client requests by default: everything it implements.
  /// The server grants the intersection with what *it* supports; a request
  /// without a bit (e.g. an old client, or the trace-off benchmark) keeps
  /// the corresponding wire layouts byte-identical to the pre-feature ones.
  static constexpr std::uint32_t kDefaultFeatureRequest =
      kFeatureBatch | kFeatureStats | kFeaturePrometheus |
      kFeatureTraceContext | kFeatureSlowLog;

  /// Connects to a Unix-domain socket and completes the handshake. Throws
  /// ConnectError when nothing listens on `path`, ServiceError when the
  /// server refuses (version mismatch, shed), CodecError on wire garbage.
  [[nodiscard]] static Client connect(
      const std::string& path,
      std::uint32_t featureRequest = kDefaultFeatureRequest);
  /// Same over loopback TCP (the optional transport).
  [[nodiscard]] static Client connectPort(
      std::uint16_t port,
      std::uint32_t featureRequest = kDefaultFeatureRequest);

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Negotiated protocol version / granted feature bits / the server's
  /// frame-size ceiling for *requests*, all from HelloAck.
  [[nodiscard]] std::uint16_t version() const { return version_; }
  [[nodiscard]] std::uint32_t featureBits() const { return featureBits_; }
  [[nodiscard]] std::uint32_t maxFrameBytes() const { return maxFrameBytes_; }

  /// True when the server granted kFeatureTraceContext: every decide frame
  /// on this connection carries a TraceContextBlock (attached automatically,
  /// zeroed unless the caller passes one) and every reply echoes it back.
  [[nodiscard]] bool traceContextGranted() const {
    return (featureBits_ & kFeatureTraceContext) != 0;
  }

  /// Ping → Pong round trip (liveness probe for `oselctl ping`).
  void ping();

  /// One decision over the wire. Only the wire-stable Decision subset is
  /// populated (device, valid, diagnostic, cpu.seconds, gpu.totalSeconds,
  /// overheadSeconds). `trace` is the request's trace context (used only
  /// when the feature was granted); the reply's echoed block must carry the
  /// same traceId or the client throws CodecError{BadFrame}.
  [[nodiscard]] runtime::Decision decide(std::string_view region,
                                         const symbolic::Bindings& bindings,
                                         const TraceContextBlock* trace =
                                             nullptr);

  /// Batched decisions for `rows` rows sharing one region and slot set;
  /// `values` is slot-major (values[slot * rows + row]). Decisions land in
  /// `out` (resized to `rows`), row order preserved. An empty slot set
  /// (binding-free region) is sent as scalar DecideRequest frames — the
  /// wire forbids row-carrying zero-slot batches. `trace` as for decide().
  void decideBatch(std::string_view region,
                   std::span<const std::string_view> slots, std::uint32_t rows,
                   std::span<const std::int64_t> values,
                   std::vector<runtime::Decision>& out,
                   const TraceContextBlock* trace = nullptr);

  /// Server-side stats text: the obs summary or the Prometheus exposition.
  [[nodiscard]] std::string stats(StatsFormat format);

  /// The server's slow-request capture as JSONL text (one wide event per
  /// line, oldest first). maxRecords == 0 asks for everything buffered.
  [[nodiscard]] std::string slowLog(std::uint32_t maxRecords = 0);

 private:
  explicit Client(Socket socket);

  void handshake(std::uint32_t featureRequest);
  /// Sends `outBuffer_` and blocks until one complete frame arrives.
  FrameHeader exchange(std::string& payload);
  /// Blocks until one complete frame arrives (no send).
  FrameHeader readFrame(std::string& payload);
  /// Throws ServiceError if the frame is an ErrorFrame; CodecError if its
  /// type is not `expected`.
  void expectType(const FrameHeader& header, std::string_view payload,
                  FrameType expected);

  Socket socket_;
  /// Receive-side decoder. HelloAck::maxFrameBytes bounds what we *send*;
  /// server replies are bounded only by the absolute ceiling.
  FrameDecoder decoder_{kAbsoluteMaxFrameBytes};
  std::string outBuffer_;
  std::uint64_t nextRequestId_ = 1;
  std::uint16_t version_ = 0;
  std::uint32_t featureBits_ = 0;
  std::uint32_t maxFrameBytes_ = kDefaultMaxFrameBytes;
};

}  // namespace osel::service

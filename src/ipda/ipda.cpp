#include "ipda/ipda.h"

#include <cstdlib>
#include <sstream>

#include "support/check.h"

namespace osel::ipda {

using support::require;

std::string toString(CoalescingClass value) {
  switch (value) {
    case CoalescingClass::Coalesced:
      return "coalesced";
    case CoalescingClass::Uniform:
      return "uniform";
    case CoalescingClass::Strided:
      return "strided";
    case CoalescingClass::Irregular:
      return "irregular";
  }
  return "?";
}

Classification StrideRecord::classify(const symbolic::Bindings& bindings) const {
  if (!affineInThreadVar) return Classification{};
  const symbolic::Expr bound = stride.substituteAll(bindings);
  const auto constant = bound.tryConstant();
  if (!constant.has_value()) {
    // Unresolved symbols remain: either runtime values the caller failed to
    // bind, or loop/thread variables — the stride changes from iteration to
    // iteration, which the models must treat as uncoalesced.
    return Classification{};
  }
  Classification result;
  const std::int64_t s = *constant;
  result.strideElements = std::abs(s);
  if (s == 0) {
    result.kind = CoalescingClass::Uniform;
  } else if (s == 1 || s == -1) {
    result.kind = CoalescingClass::Coalesced;
  } else {
    result.kind = CoalescingClass::Strided;
  }
  return result;
}

Analysis Analysis::analyze(const ir::TargetRegion& region) {
  region.verify();
  Analysis analysis;
  analysis.threadVar_ = region.parallelDims.back().var;
  const std::string& threadVar = analysis.threadVar_;

  for (ir::AccessSite& site : collectAccesses(region)) {
    StrideRecord record;
    const ir::ArrayDecl& decl = region.array(site.array);
    record.linearIndex = decl.linearize(site.indices);
    record.elementBytes = ir::sizeOf(decl.elementType);
    record.affineInThreadVar = record.linearIndex.isAffineIn({threadVar});
    if (record.affineInThreadVar) {
      // For affine addresses differenceIn(threadVar) == coefficientOf
      // (threadVar); using the difference keeps the definition uniform.
      record.stride = record.linearIndex.differenceIn(threadVar);
    }
    record.site = std::move(site);
    analysis.records_.push_back(std::move(record));
  }
  return analysis;
}

Analysis::SiteCounts Analysis::classifySites(const symbolic::Bindings& bindings) const {
  SiteCounts counts;
  for (const StrideRecord& record : records_) {
    switch (record.classify(bindings).kind) {
      case CoalescingClass::Coalesced:
        ++counts.coalesced;
        break;
      case CoalescingClass::Uniform:
        ++counts.uniform;
        break;
      case CoalescingClass::Strided:
        ++counts.strided;
        break;
      case CoalescingClass::Irregular:
        ++counts.irregular;
        break;
    }
  }
  return counts;
}

bool Analysis::falseSharingRisk(const symbolic::Bindings& bindings,
                                std::int64_t cacheLineBytes) const {
  require(cacheLineBytes > 0, "falseSharingRisk: non-positive cache line");
  for (const StrideRecord& record : records_) {
    if (!record.site.isStore) continue;
    const Classification c = record.classify(bindings);
    if (!c.strideElements.has_value() || *c.strideElements == 0) continue;
    const std::int64_t strideBytes =
        *c.strideElements * static_cast<std::int64_t>(record.elementBytes);
    if (strideBytes < cacheLineBytes) return true;
  }
  return false;
}

std::string Analysis::toString() const {
  std::ostringstream out;
  for (const StrideRecord& record : records_) {
    out << "IPD_" << threadVar_ << "(" << record.site.array;
    for (const auto& index : record.site.indices)
      out << "[" << index.toString() << "]";
    out << ") = ";
    if (record.affineInThreadVar) {
      out << record.stride.toString();
    } else {
      out << "<non-affine in " << threadVar_ << ">";
    }
    if (record.site.isStore) out << "  (store)";
    out << "\n";
  }
  return out.str();
}

}  // namespace osel::ipda

// osel/ipda/ipda.h — Iteration Point Difference Analysis.
//
// Implements the inter-thread stride analysis of Chikin et al. used by the
// paper (§II.C, §IV.C): for every static memory access in an OpenMP parallel
// loop, build the symbolic difference between the flattened addressing
// expressions of adjacent GPU threads. The difference is the *inter-thread
// stride*, the quantity that decides whether the generated GPU code is
// memory-coalesced. Strides may stay symbolic at compile time ("[max]") and
// be resolved by the runtime just before launch — the hybrid
// static/dynamic split at the heart of the paper.
//
// Thread model: the OpenMP-to-GPU lowering flattens the (possibly collapsed)
// parallel dims row-major and assigns consecutive flattened iterations to
// consecutive threads, so "adjacent threads" differ by +1 in the innermost
// parallel variable. (Warp wrap-around at dimension boundaries is ignored —
// a documented abstraction shared with the paper's prototype.)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/region.h"
#include "ir/traversal.h"
#include "symbolic/expr.h"

namespace osel::ipda {

/// Coalescing classes an access resolves to once runtime values are bound.
enum class CoalescingClass {
  Coalesced,  ///< |stride| == 1 element: adjacent threads, adjacent elements
  Uniform,    ///< stride == 0: all threads in a warp read one address
  Strided,    ///< constant |stride| > 1 elements: partially/fully serialized
  Irregular,  ///< stride varies across iterations/threads or is non-affine
};

[[nodiscard]] std::string toString(CoalescingClass value);

/// The resolved classification of one access under concrete bindings.
struct Classification {
  CoalescingClass kind = CoalescingClass::Irregular;
  /// Absolute stride in *elements*; present unless Irregular.
  std::optional<std::int64_t> strideElements;

  /// The paper's binary summary used by the Hong-Kim model inputs: an
  /// access counts as coalesced iff adjacent threads fall into one memory
  /// transaction (Coalesced or Uniform).
  [[nodiscard]] bool countsAsCoalesced() const {
    return kind == CoalescingClass::Coalesced || kind == CoalescingClass::Uniform;
  }
};

/// Per-access-site result of the static half of the analysis.
struct StrideRecord {
  /// The access site (array, indices, store flag, loop context).
  ir::AccessSite site;
  /// Flattened (row-major) element-index expression of the access.
  symbolic::Expr linearIndex;
  /// Symbolic inter-thread stride: linearIndex differenced in the thread
  /// variable. Meaningful only when `affineInThreadVar`.
  symbolic::Expr stride;
  /// True when the address is affine in the thread (innermost parallel)
  /// variable, i.e. the difference is independent of the thread's position.
  bool affineInThreadVar = false;
  /// Element size in bytes (from the array declaration).
  std::size_t elementBytes = 8;

  /// Resolves the symbolic stride with runtime values. Unresolvable or
  /// position-dependent strides classify as Irregular.
  [[nodiscard]] Classification classify(const symbolic::Bindings& bindings) const;

  /// Compile-time classification attempt: succeeds only when the stride is
  /// already constant (case 1 of the paper's §IV.C example).
  [[nodiscard]] std::optional<Classification> classifyStatic() const {
    if (!affineInThreadVar) return Classification{};  // Irregular, known now
    if (const auto constant = stride.tryConstant()) {
      return classify({});
    }
    return std::nullopt;
  }
};

/// Whole-region IPDA result.
class Analysis {
 public:
  /// Runs the analysis over every static access of `region`.
  static Analysis analyze(const ir::TargetRegion& region);

  [[nodiscard]] const std::vector<StrideRecord>& records() const {
    return records_;
  }

  /// The thread variable the strides were differenced in (innermost
  /// parallel dim).
  [[nodiscard]] const std::string& threadVar() const { return threadVar_; }

  /// Counts of loads/stores per coalescing class under `bindings`, each
  /// site weighted by its *static* multiplicity only (one per site). Trip
  /// weighting is the model's business, not the analysis's.
  struct SiteCounts {
    std::int64_t coalesced = 0;
    std::int64_t uniform = 0;
    std::int64_t strided = 0;
    std::int64_t irregular = 0;
  };
  [[nodiscard]] SiteCounts classifySites(const symbolic::Bindings& bindings) const;

  /// True when any *store* has a resolved stride whose byte distance between
  /// adjacent parallel iterations is positive and below the cache-line size:
  /// adjacent CPU threads working on neighbouring chunk boundaries would
  /// then dirty the same line (§II.C: the same result informs CPU
  /// false-sharing).
  [[nodiscard]] bool falseSharingRisk(const symbolic::Bindings& bindings,
                                      std::int64_t cacheLineBytes) const;

  /// Human-readable dump of every record ("IPD_th(A[...]) = [max]").
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<StrideRecord> records_;
  std::string threadVar_;
};

}  // namespace osel::ipda

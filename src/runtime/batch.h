// osel/runtime/batch.h — batched-decide request/scratch types.
//
// The ROADMAP's `oseld` pivot puts *batched decision requests* on the wire:
// realistic target-offloading traffic arrives as streams of many small
// decisions, and the per-call overhead scalar decide() pays (registry
// snapshot acquire, cache lock, trace span, clock reads) dwarfs the
// closed-form model evaluation itself. TargetRuntime::decideBatch amortizes
// those costs across a batch; the types here are its request unit and the
// preallocated per-thread scratch that keeps the steady-state path free of
// per-request allocation.
#pragma once

#include <cstdint>
#include <numeric>
#include <string_view>
#include <vector>

#include "cpumodel/cpu_model.h"
#include "gpumodel/gpu_model.h"
#include "runtime/selector.h"
#include "symbolic/expr.h"

namespace osel::runtime {

/// One request of a TargetRuntime::decideBatch() call: which region to
/// decide for and the runtime bindings. Both fields are non-owning views —
/// the caller keeps the name and bindings alive across the call.
struct DecideRequest {
  std::string_view region;
  const symbolic::Bindings* bindings = nullptr;
};

/// Per-batch tallies decideBatch() accumulates locally and publishes once
/// per batch (one atomic add per counter) instead of once per request.
struct BatchCounters {
  std::uint64_t compiled = 0;
  std::uint64_t interpreted = 0;
  std::uint64_t degenerate = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheLookups = 0;
  std::uint64_t probes = 0;  ///< policy probe decisions (Decision::probe)
};

/// Preallocated scratch for one decideBatch() call. The runtime keeps one
/// arena per thread (thread_local); every container is resized — never
/// shrunk — so after a warm-up batch of each (rows, slots) shape the batch
/// path performs no heap allocation (pinned by the batch allocation test).
///
/// `columns` is the SoA heart of the batch path: the current region group's
/// bound slot values laid out slot-major, `columns[slot * rows + row]`, so
/// each compiled-expression op streams over contiguous per-slot columns
/// instead of re-dispatching the op walk once per request.
struct BatchArena {
  /// Request indices sorted by region name — the per-region groups.
  std::vector<std::uint32_t> order;
  /// Request indices served from the decision cache (whole batch); their
  /// Decision::overheadSeconds is stamped with the amortized batch cost.
  std::vector<std::uint32_t> hitRequests;

  // --- Per-group state (row r is the r-th request of the group) -----------
  std::vector<std::int64_t> columns;        ///< slot-major bound values
  std::vector<std::uint64_t> masks;         ///< bound-slot mask per row
  std::vector<std::uint8_t> bindOk;         ///< bindSlots verdict per row
  std::vector<std::uint8_t> hits;           ///< findMany verdict per row
  std::vector<std::int64_t> exprOut;        ///< CompiledExpr column output
  std::vector<std::int64_t> exprScratch;    ///< CompiledExpr column scratch
  std::vector<cpumodel::CpuWorkload> cpuWorkloads;
  std::vector<gpumodel::GpuWorkload> gpuWorkloads;
  std::vector<std::uint32_t> missRows;      ///< rows needing evaluation
  std::vector<Decision*> targets;           ///< row -> &out[request]

  /// Starts a batch of `requests` requests: order becomes the identity
  /// permutation (sorted by the caller), hit bookkeeping resets. The hit
  /// and miss row lists are reserved up front — they are push_back'd on
  /// data-dependent paths, so growing them lazily would allocate on the
  /// first batch whose hit/miss mix differs from the warm-up's.
  void begin(std::size_t requests) {
    order.resize(requests);
    std::iota(order.begin(), order.end(), 0U);
    hitRequests.clear();
    hitRequests.reserve(requests);
    missRows.reserve(requests);
  }

  /// Sizes the per-group state for `rows` requests over `slots` slots.
  void beginGroup(std::size_t rows, std::size_t slots) {
    columns.resize(slots * rows);
    masks.resize(rows);
    bindOk.resize(rows);
    hits.resize(rows);
    exprOut.resize(rows);
    exprScratch.resize(rows);
    cpuWorkloads.resize(rows);
    gpuWorkloads.resize(rows);
    targets.resize(rows);
    missRows.clear();
  }
};

}  // namespace osel::runtime

// osel/runtime/admission.h — overload protection for concurrent launches.
//
// The paper's runtime framing assumes one caller; a shared selector service
// (the ROADMAP's `oseld` pivot) has many, and with no overload story a
// burst of launches queues unboundedly behind the device models. The
// admission controller bounds the damage with a classic shed-don't-queue
// policy:
//   * a bounded in-flight launch budget — launches over budget are *shed*:
//     the runtime skips model evaluation and degrades the decision to
//     SelectorConfig::safeDefaultDevice (the always-available host path),
//     marking the LaunchRecord so the shed traffic is visible in telemetry;
//   * per-launch deadline accounting folded into the simulated-time ledger
//     (osel's device world is simulated time, so deadlines are *accounted*,
//     not enforced with wall-clock timers);
//   * a drain()/quiesce() API so a runtime can stop accepting new work
//     while letting in-flight launches finish — the shutdown half of the
//     overload story.
//
// Thread-safety: enter()/exit() are lock-free CAS transitions on one
// atomic in-flight count; drain()/resume() flip one atomic flag; only
// quiesce() blocks (condition variable, woken by the last exit()). All
// counters are monotone atomics, safe to read mid-traffic.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace osel::runtime {

/// Overload policy knobs. Zero means "disabled" for both: the default
/// controller admits everything and accounts no deadlines.
struct AdmissionPolicy {
  /// Launches allowed in flight at once; 0 = unbounded (never shed).
  std::size_t maxInFlight = 0;
  /// Simulated-seconds budget per launch; 0 = no deadline accounting.
  double launchDeadlineSeconds = 0.0;
};

/// What admission decided for one launch.
enum class AdmissionOutcome {
  Admitted,  ///< within budget — full decide/launch path
  Shed,      ///< over budget — degrade to the safe default device
  Refused,   ///< draining — the runtime is not accepting new work
};

[[nodiscard]] const char* toString(AdmissionOutcome value);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionPolicy policy = {});

  /// Ticket for one launch. Admitted and Shed launches hold an in-flight
  /// slot until exit(); Refused launches never entered.
  [[nodiscard]] AdmissionOutcome enter();

  /// Releases the slot taken by an Admitted/Shed enter(). Wakes quiesce().
  void exit();

  /// Folds one launch's simulated cost into the ledger; returns true iff
  /// the launch missed its deadline (and counts the miss).
  bool charge(double simSeconds);

  /// Stop admitting new launches (they are Refused); in-flight launches
  /// finish normally.
  void drain();
  /// Accept launches again after drain().
  void resume();
  /// Blocks until every in-flight launch has exited. Does not itself stop
  /// new arrivals — call drain() first for a full shutdown barrier.
  void quiesce();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t inFlight() const {
    return inFlight_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shed() const {
    return shed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t refused() const {
    return refused_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t deadlineMisses() const {
    return deadlineMisses_.load(std::memory_order_relaxed);
  }
  /// Total simulated seconds charged across all launches.
  [[nodiscard]] double chargedSeconds() const;

  [[nodiscard]] const AdmissionPolicy& policy() const { return policy_; }

 private:
  AdmissionPolicy policy_;
  std::atomic<std::size_t> inFlight_{0};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> deadlineMisses_{0};
  std::atomic<double> chargedSeconds_{0.0};
  std::mutex quiesceMutex_;
  std::condition_variable quiesceCv_;
};

}  // namespace osel::runtime

// osel/runtime/compiled_plan.h — compiled decision plans.
//
// The paper's §IV.D pitch is that launch-time model evaluation is
// "equivalent to solving an equation", yet the interpreted
// OffloadSelector path re-resolves symbolic expressions through
// string-keyed maps on every decide(): Expr::substituteAll heap-allocates
// fresh polynomials per stride per launch and both workload structs are
// rebuilt from the PAD each time. A CompiledRegionPlan moves all of that to
// region-registration time (the Kerncraft / OpenMP-Advisor split: expensive
// analysis once, a cheap closed-form completion at launch):
//
//   * flatTripCount / bytesToDevice / bytesFromDevice and every affine
//     stride are lowered to slot-based symbolic::CompiledExprs over one
//     shared SlotMap, so launch-time evaluation is integer multiplies over
//     a flat array — no string hashing, no allocation;
//   * strides that are already constant are pre-classified (coalesced /
//     uncoalesced, false-sharing risk), and the leading run of constant
//     strides is folded into the workload templates so the launch path
//     skips them entirely;
//   * the binding-independent parts of CpuWorkload / GpuWorkload
//     (MCA cycles, instruction loadout, footprint) are precomputed.
//
// Launch-time completion fills a fixed-size slot vector from the bindings
// (merge-join against the sorted slot names — string comparisons only) and
// evaluates; the result is bit-identical to the interpreted path, which is
// retained behind SelectorConfig::useCompiledPlans as the correctness
// oracle. Degenerate inputs (unbound required symbols, a missing MCA host
// entry, more symbols than kMaxSlots) make the plan report itself unusable
// for the fast path and the selector falls back to the interpreted walk, so
// diagnostics stay byte-identical too.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cpumodel/cpu_model.h"
#include "gpumodel/gpu_model.h"
#include "pad/attribute_db.h"
#include "symbolic/compiled_expr.h"

namespace osel::runtime {

/// Issue-slot weight of one special math instruction (rsqrt/exp/...) in the
/// GPU model's compute stream. Shared by the interpreted and compiled
/// workload builders so the two paths agree exactly.
inline constexpr double kSpecialInstIssueWeight = 8.0;

/// A PAD region lowered for allocation-free launch-time completion.
/// Compiled once (OffloadSelector::compile or TargetRuntime::registerRegion)
/// and then read-only: concurrent decide() calls over one plan are safe.
class CompiledRegionPlan {
 public:
  /// Slot-vector capacity of the fast path; regions with more distinct
  /// runtime symbols (none in practice — Polybench kernels bind one or two)
  /// fall back to the interpreted walk.
  static constexpr std::size_t kMaxSlots = 64;

  /// Lowers `attr`. `mcaModelName` selects the Machine_cycles_per_iter host
  /// entry (missing entry => fastPathUsable() is false); `cacheLineBytes`
  /// is the host line size the false-sharing pre-classification uses.
  CompiledRegionPlan(pad::RegionAttributes attr, const std::string& mcaModelName,
                     std::int64_t cacheLineBytes);

  /// The PAD entry the plan was compiled from (kept for the interpreted
  /// fallback path and diagnostics).
  [[nodiscard]] const pad::RegionAttributes& attributes() const {
    return attributes_;
  }

  /// Number of distinct runtime symbols across all compiled expressions.
  [[nodiscard]] std::size_t slotCount() const { return slotNames_.size(); }

  /// True when launch-time completion can run on the compiled fast path.
  [[nodiscard]] bool fastPathUsable() const { return fastPathUsable_; }

  /// Fills `values` (size >= slotCount()) from `bindings` and sets bit i of
  /// `boundMask` for every bound slot i; unbound slots read 0. Returns true
  /// iff every *required* symbol (trip count / transfer expressions) is
  /// bound — optional stride-only symbols may stay unbound, matching the
  /// interpreted path's "unresolved stride => uncoalesced" semantics.
  /// Performs no heap allocation.
  bool bindSlots(const symbolic::Bindings& bindings,
                 std::span<std::int64_t> values, std::uint64_t& boundMask) const;

  /// Completes both model workloads from bound slot values. Preconditions:
  /// fastPathUsable() and a bindSlots() call that returned true produced
  /// `values`/`boundMask`. Performs no heap allocation.
  void completeWorkloads(std::span<const std::int64_t> values,
                         std::uint64_t boundMask, cpumodel::CpuWorkload& cpu,
                         gpumodel::GpuWorkload& gpu) const;

  /// SoA row of bindSlots(): fills row `row` of a slot-major column block
  /// (`columns[slot * rows + row]`) instead of a contiguous value vector.
  /// Same contract otherwise: unbound slots read 0, bit i of `boundMask`
  /// set per bound slot, true iff every required symbol is bound. No heap
  /// allocation.
  bool bindSlotsColumn(const symbolic::Bindings& bindings,
                       std::int64_t* columns, std::size_t rows,
                       std::size_t row, std::uint64_t& boundMask) const;

  /// SoA batch form of completeWorkloads(): completes `rows` workload pairs
  /// from a slot-major column block in one pass, evaluating each compiled
  /// expression op over all rows (CompiledExpr::evaluateColumns) instead of
  /// re-dispatching the op stream per request. `exprOut`/`scratch` are
  /// caller-provided workspaces of >= rows entries. Each row's result is
  /// bit-identical to completeWorkloads() on that row's values/mask: the
  /// stride steps are walked in the same order per row, so floating-point
  /// accumulation order matches exactly. Precondition: fastPathUsable().
  /// Rows whose bindSlotsColumn() returned false are completed too (their
  /// unresolved dynamic strides classify uncoalesced, like the scalar
  /// path); callers route such rows to the interpreted walk for decisions.
  /// No heap allocation.
  void completeWorkloadsColumns(const std::int64_t* columns,
                                const std::uint64_t* masks, std::size_t rows,
                                std::int64_t* exprOut, std::int64_t* scratch,
                                cpumodel::CpuWorkload* cpu,
                                gpumodel::GpuWorkload* gpu) const;

  /// Strides fully resolved and classified at compile time (folded into the
  /// workload templates or kept as constant steps). Exposed for tests.
  [[nodiscard]] std::size_t preResolvedStrideCount() const {
    return preResolvedStrides_;
  }

 private:
  /// One not-prefix-foldable stride in original PAD order. Constant kinds
  /// were classified at compile time; Dynamic evaluates its CompiledExpr.
  struct StrideStep {
    enum class Kind : std::uint8_t { ConstCoalesced, ConstUncoalesced, Dynamic };
    Kind kind = Kind::Dynamic;
    bool isStore = false;
    /// Pre-classified false-sharing verdict (constant kinds only).
    bool constFalseSharing = false;
    double countPerIteration = 1.0;
    std::int64_t elementBytes = 4;
    symbolic::CompiledExpr stride;   // Kind::Dynamic only
    std::uint64_t slotsNeeded = 0;   // Kind::Dynamic only
  };

  /// Sorted (symbol name, slot) pairs for the bindings merge-join.
  struct SlotBinding {
    std::string name;
    std::size_t slot = 0;
  };

  pad::RegionAttributes attributes_;
  bool fastPathUsable_ = false;
  std::int64_t cacheLineBytes_ = 128;

  std::vector<SlotBinding> slotNames_;  // sorted by name
  std::uint64_t requiredMask_ = 0;      // slots the main expressions need

  symbolic::CompiledExpr flatTripCount_;
  symbolic::CompiledExpr bytesToDevice_;
  symbolic::CompiledExpr bytesFromDevice_;

  /// Binding-independent workload templates (includes the folded prefix of
  /// constant strides).
  cpumodel::CpuWorkload cpuTemplate_;
  gpumodel::GpuWorkload gpuTemplate_;

  /// Strides after the folded constant prefix, in original order (keeps
  /// floating-point accumulation order identical to the interpreted path).
  std::vector<StrideStep> steps_;
  std::size_t preResolvedStrides_ = 0;
};

}  // namespace osel::runtime

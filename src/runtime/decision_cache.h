// osel/runtime/decision_cache.h — bounded per-region decision memoization.
//
// Suites relaunch the same region with identical bindings (iterative
// solvers, epoch loops); the models are pure functions of the PAD entry and
// the bound slot values, so the Decision can be memoized. The cache key is
// the plan's completed slot vector plus its bound-slot mask — everything
// launch-time evaluation depends on — hashed for the fast compare, with the
// full key stored to rule out collisions. Capacity-bounded with
// least-recently-used replacement; hit/miss/eviction counters feed the
// LaunchRecord / CSV observability columns.
//
// Thread-safety: one cache lives next to one region's plan inside a
// TargetRuntime shard, and concurrent decide() calls hit it from many
// threads. Entry storage is guarded by one per-cache mutex (the runtime's
// per-region caches form the lock stripes — contention only happens between
// launches of the *same* region), while the Stats counters are relaxed
// atomics so stats() reads observed mid-traffic are never torn: after the
// caller quiesces, hits + misses == lookups holds exactly.
//
// Invalidation is epoch-based so TargetRuntime::invalidateDecisionCaches()
// is one atomic bump instead of a walk over every shard: find()/insert()
// take the runtime's current epoch, and a cache lazily drops its entries
// the first time it observes a newer epoch than the one it stored under.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/selector.h"

namespace osel::runtime {

class DecisionCache {
 public:
  /// Plain snapshot of the atomic counters; hits + misses == lookups once
  /// the cache is quiesced (each lookup counts exactly one of the two).
  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  /// Capacity 0 disables storage (every lookup misses, inserts are dropped).
  explicit DecisionCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Mixes the bound mask and slot values into the lookup hash.
  [[nodiscard]] static std::uint64_t hashKey(
      std::uint64_t boundMask, std::span<const std::int64_t> values);

  /// Copies the memoized decision for this exact key into `out` and returns
  /// true; false on a miss (out is untouched). Counts a hit or a miss.
  /// `epoch` is the owner's invalidation epoch: when it advanced past the
  /// epoch the entries were stored under, the stale entries are dropped
  /// first (a lazy, O(1)-to-signal invalidation). Copying a cached Decision
  /// whose diagnostic is empty (every valid decision) does not allocate.
  [[nodiscard]] bool find(std::uint64_t boundMask,
                          std::span<const std::int64_t> values, Decision& out,
                          std::uint64_t epoch = 0);

  /// Memoizes `decision` under `epoch`, evicting the least-recently-used
  /// entry at capacity. Inserting an already-present key refreshes its
  /// decision.
  void insert(std::uint64_t boundMask, std::span<const std::int64_t> values,
              const Decision& decision, std::uint64_t epoch = 0);

  /// Column-major (slot-major) key block for the bulk interface: row r of a
  /// region group reads `values[slot * rows + r]` with bound mask
  /// `masks[r]`. This is exactly the SoA layout the batched decide path
  /// evaluates from, so bulk probes do no per-row gather; the per-row hash
  /// and compare walk the strided column view and match hashKey()/find()
  /// on the equivalent contiguous row bit-for-bit.
  struct KeyBlock {
    const std::int64_t* values = nullptr;
    const std::uint64_t* masks = nullptr;
    std::size_t slots = 0;
    std::size_t rows = 0;
  };

  /// Bulk find: probes every row of `keys` under ONE mutex acquisition
  /// (the per-region caches are the runtime's lock stripes, so a batch
  /// group pays its stripe once instead of once per request). On a hit for
  /// row r the memoized decision is copied into `*out[r]` and `hit[r]` is
  /// set to 1; otherwise `hit[r]` is 0 and `*out[r]` is untouched. Stats
  /// count per entry — `rows` lookups and exactly one hit or miss each —
  /// so hits + misses == lookups is indistinguishable from `rows` scalar
  /// find() calls. Returns the number of hits.
  std::size_t findMany(const KeyBlock& keys, Decision* const* out,
                       std::uint8_t* hit, std::uint64_t epoch = 0);

  /// Bulk insert of the listed rows under one mutex acquisition;
  /// `decisions[r]` supplies row r's decision. Duplicate keys inside one
  /// call refresh the earlier insert, exactly as repeated scalar insert()
  /// calls would. Stats (insertions/evictions) count per inserted entry.
  void insertMany(const KeyBlock& keys, std::span<const std::uint32_t> rows,
                  const Decision* const* decisions, std::uint64_t epoch = 0);

  /// Drops every entry (plan invalidation); counters survive.
  void clear();

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t boundMask = 0;
    std::vector<std::int64_t> values;
    Decision decision;
    std::uint64_t lastUse = 0;
  };

  /// Callers hold mutex_.
  [[nodiscard]] Entry* locate(std::uint64_t hash, std::uint64_t boundMask,
                              std::span<const std::int64_t> values);
  /// hashKey() over the strided column view of one KeyBlock row; identical
  /// mixing sequence, so block and contiguous keys hash alike.
  [[nodiscard]] static std::uint64_t hashKeyAt(const KeyBlock& keys,
                                               std::size_t row);
  /// locate() against one KeyBlock row; callers hold mutex_.
  [[nodiscard]] Entry* locateAt(std::uint64_t hash, const KeyBlock& keys,
                                std::size_t row);
  /// insert() guts against one KeyBlock row; callers hold mutex_ and have
  /// synced the epoch.
  void insertRowLocked(const KeyBlock& keys, std::size_t row,
                       const Decision& decision);
  /// Drops stale entries when `epoch` advanced; callers hold mutex_.
  void syncEpoch(std::uint64_t epoch);

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  std::uint64_t epoch_ = 0;

  /// Relaxed atomics: counts are exact (no lost increments), ordering
  /// between counters is only guaranteed once the caller quiesces.
  std::atomic<std::uint64_t> lookups_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> insertions_{0};
};

}  // namespace osel::runtime

// osel/runtime/decision_cache.h — bounded per-region decision memoization.
//
// Suites relaunch the same region with identical bindings (iterative
// solvers, epoch loops); the models are pure functions of the PAD entry and
// the bound slot values, so the Decision can be memoized. The cache key is
// the plan's completed slot vector plus its bound-slot mask — everything
// launch-time evaluation depends on — hashed for the fast compare, with the
// full key stored to rule out collisions. Capacity-bounded with
// least-recently-used replacement; hit/miss/eviction counters feed the
// LaunchRecord / CSV observability columns.
//
// Not thread-safe: one cache lives next to one region's plan inside a
// TargetRuntime, which is single-threaded by contract.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/selector.h"

namespace osel::runtime {

class DecisionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t insertions = 0;
  };

  /// Capacity 0 disables storage (every lookup misses, inserts are dropped).
  explicit DecisionCache(std::size_t capacity = 64) : capacity_(capacity) {}

  /// Mixes the bound mask and slot values into the lookup hash.
  [[nodiscard]] static std::uint64_t hashKey(
      std::uint64_t boundMask, std::span<const std::int64_t> values);

  /// Returns the memoized decision for this exact key, or nullptr. Counts a
  /// hit or a miss; performs no heap allocation.
  [[nodiscard]] const Decision* find(std::uint64_t boundMask,
                                     std::span<const std::int64_t> values);

  /// Memoizes `decision`, evicting the least-recently-used entry at
  /// capacity. Inserting an already-present key refreshes its decision.
  void insert(std::uint64_t boundMask, std::span<const std::int64_t> values,
              const Decision& decision);

  /// Drops every entry (plan invalidation); counters survive.
  void clear() { entries_.clear(); }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::uint64_t boundMask = 0;
    std::vector<std::int64_t> values;
    Decision decision;
    std::uint64_t lastUse = 0;
  };

  [[nodiscard]] Entry* locate(std::uint64_t hash, std::uint64_t boundMask,
                              std::span<const std::int64_t> values);

  std::size_t capacity_;
  std::vector<Entry> entries_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace osel::runtime

// osel/runtime/selector.h — launch-time device selection (paper §IV.D).
//
// At a target region's launch point the runtime pulls the region's static
// features from the Program Attribute Database, binds the runtime values
// (array extents, trip counts), evaluates both analytical models, and picks
// the device with the lower predicted time. Because both models are closed
// formulas, the decision is "equivalent to solving an equation" — the
// measured overhead is exposed so the negligible-overhead claim can be
// checked (bench/micro_decision_overhead).
#pragma once

#include <cmath>
#include <limits>
#include <string>

#include "cpumodel/cpu_model.h"
#include "gpumodel/gpu_model.h"
#include "pad/attribute_db.h"
#include "runtime/compiled_plan.h"

namespace osel::runtime {

/// Execution targets the selector chooses between.
enum class Device { Cpu, Gpu };

[[nodiscard]] std::string toString(Device device);

/// Host/device configuration the selector evaluates against.
struct SelectorConfig {
  cpumodel::CpuModelParams cpuParams = cpumodel::CpuModelParams::power9();
  int cpuThreads = 160;
  gpumodel::GpuDeviceParams gpuParams = gpumodel::GpuDeviceParams::teslaV100();
  /// Which MCA host-model entry of the PAD supplies Machine_cycles_per_iter.
  std::string mcaModelName = "POWER9";
  /// Device a degraded decision resolves to when the models cannot be
  /// trusted (missing PAD attributes, non-finite predictions, evaluation
  /// exceptions). The CPU is the OpenMP host-fallback contract's
  /// always-available path, so it is the default.
  Device safeDefaultDevice = Device::Cpu;
  /// When true (default), TargetRuntime lowers PAD entries into
  /// CompiledRegionPlans at registration and decides on the allocation-free
  /// compiled path. False keeps the original interpreted expression walk —
  /// the correctness oracle the equivalence tests diff against.
  bool useCompiledPlans = true;
};

/// The outcome of one selection.
struct Decision {
  Device device = Device::Cpu;
  /// False when the models could not produce a trustworthy comparison
  /// (missing PAD attributes, NaN/non-finite/non-positive predicted times,
  /// model-evaluation exception); `device` then holds the configured safe
  /// default and `diagnostic` says why.
  bool valid = true;
  std::string diagnostic;
  cpumodel::CpuPrediction cpu;
  gpumodel::GpuPrediction gpu;
  /// Wall time spent evaluating both models and comparing.
  double overheadSeconds = 0.0;

  /// Predicted GPU-offloading speedup (cpu time / gpu time). NaN when the
  /// predictions are not comparable (non-finite or non-positive GPU time) —
  /// callers must not treat a degraded prediction as "speedup 0".
  [[nodiscard]] double predictedSpeedup() const {
    if (!std::isfinite(cpu.seconds) || !std::isfinite(gpu.totalSeconds) ||
        gpu.totalSeconds <= 0.0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return cpu.seconds / gpu.totalSeconds;
  }
};

/// Stateless selector bound to one machine configuration.
class OffloadSelector {
 public:
  explicit OffloadSelector(SelectorConfig config);

  /// Builds the CPU model inputs from PAD attributes + runtime values.
  [[nodiscard]] cpumodel::CpuWorkload cpuWorkload(
      const pad::RegionAttributes& attr, const symbolic::Bindings& bindings) const;

  /// Builds the GPU model inputs; the coalesced/uncoalesced split comes from
  /// resolving each stored symbolic stride with the runtime bindings
  /// (paper §IV.C, case 2).
  [[nodiscard]] gpumodel::GpuWorkload gpuWorkload(
      const pad::RegionAttributes& attr, const symbolic::Bindings& bindings) const;

  /// Evaluates both models and picks the faster device. Guardrailed: model
  /// or workload-construction failures and degenerate (NaN/non-finite/
  /// non-positive) predictions never escape — the decision degrades to the
  /// configured safe default device with `valid == false` and a diagnostic,
  /// so ModelGuided launches behave like AlwaysCpu instead of crashing.
  [[nodiscard]] Decision decide(const pad::RegionAttributes& attr,
                                const symbolic::Bindings& bindings) const;

  /// Lowers a PAD entry into a compiled decision plan bound to this
  /// selector's configuration (MCA host entry, cache-line size). Pay this
  /// once at region registration; decide(plan, ...) then runs
  /// allocation-free.
  [[nodiscard]] CompiledRegionPlan compile(pad::RegionAttributes attr) const;

  /// The compiled fast path: fills the plan's slot vector from `bindings`
  /// (no string hashing, no heap allocation) and evaluates both models.
  /// Produces a Decision bit-identical to the interpreted overload —
  /// degenerate inputs (unbound required symbols, unusable plan) are
  /// delegated to the interpreted walk so even diagnostics match.
  [[nodiscard]] Decision decide(const CompiledRegionPlan& plan,
                                const symbolic::Bindings& bindings) const;

  [[nodiscard]] const SelectorConfig& config() const { return config_; }

 private:
  /// Shared tail of both decide paths: validates the predictions and picks
  /// the device (or degrades to the configured safe default).
  void resolveChoice(Decision& decision, const std::string& regionName) const;

  SelectorConfig config_;
  cpumodel::CpuCostModel cpuModel_;
  gpumodel::GpuCostModel gpuModel_;
};

}  // namespace osel::runtime

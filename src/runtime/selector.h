// osel/runtime/selector.h — launch-time device selection (paper §IV.D).
//
// At a target region's launch point the runtime pulls the region's static
// features from the Program Attribute Database, binds the runtime values
// (array extents, trip counts), evaluates both analytical models, and picks
// the device with the lower predicted time. Because both models are closed
// formulas, the decision is "equivalent to solving an equation" — the
// measured overhead is exposed so the negligible-overhead claim can be
// checked (bench/micro_decision_overhead).
#pragma once

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <string_view>

#include "cpumodel/cpu_model.h"
#include "gpumodel/gpu_model.h"
#include "obs/explain.h"
#include "pad/attribute_db.h"
#include "runtime/compiled_plan.h"
#include "runtime/device.h"
#include "runtime/policy/policy.h"

namespace osel::runtime {

/// Host/device configuration the selector evaluates against.
struct SelectorConfig {
  cpumodel::CpuModelParams cpuParams = cpumodel::CpuModelParams::power9();
  int cpuThreads = 160;
  gpumodel::GpuDeviceParams gpuParams = gpumodel::GpuDeviceParams::teslaV100();
  /// Which MCA host-model entry of the PAD supplies Machine_cycles_per_iter.
  std::string mcaModelName = "POWER9";
  /// Device a degraded decision resolves to when the models cannot be
  /// trusted (missing PAD attributes, non-finite predictions, evaluation
  /// exceptions). The CPU is the OpenMP host-fallback contract's
  /// always-available path, so it is the default.
  Device safeDefaultDevice = Device::Cpu;
  /// When true (default), TargetRuntime lowers PAD entries into
  /// CompiledRegionPlans at registration and decides on the allocation-free
  /// compiled path. False keeps the original interpreted expression walk —
  /// the correctness oracle the equivalence tests diff against.
  bool useCompiledPlans = true;
  /// The selection policy resolving healthy prediction pairs into a device
  /// (runtime/policy/policy.h). nullptr (the default) means ModelCompare —
  /// the paper's rule, devirtualized on the choice tail so the default
  /// configuration pays nothing for the policy seam. Shared: copies of this
  /// config (and the selector/runtime built from them) share one policy
  /// instance, so calibration learned on the launch path steers every
  /// decide path.
  std::shared_ptr<policy::SelectionPolicy> policy;
};

/// The outcome of one selection.
struct Decision {
  Device device = Device::Cpu;
  /// False when the models could not produce a trustworthy comparison
  /// (missing PAD attributes, NaN/non-finite/non-positive predicted times,
  /// model-evaluation exception); `device` then holds the configured safe
  /// default and `diagnostic` says why.
  bool valid = true;
  std::string diagnostic;
  cpumodel::CpuPrediction cpu;
  gpumodel::GpuPrediction gpu;
  /// Wall time spent evaluating both models and comparing.
  double overheadSeconds = 0.0;
  /// True when the policy deliberately picked the predicted-slower device to
  /// keep the feedback channel informed about it (EpsilonGreedy). Excluded
  /// from the wire DecisionRecord and the path-equivalence contracts.
  bool probe = false;

  /// Predicted GPU-offloading speedup (cpu time / gpu time). NaN when the
  /// predictions are not comparable (non-finite or non-positive GPU time) —
  /// callers must not treat a degraded prediction as "speedup 0".
  [[nodiscard]] double predictedSpeedup() const {
    if (!std::isfinite(cpu.seconds) || !std::isfinite(gpu.totalSeconds) ||
        gpu.totalSeconds <= 0.0) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return cpu.seconds / gpu.totalSeconds;
  }
};

/// A lightweight, non-owning view naming the region a decide() call is
/// about. One handle type spans the three launch-time situations:
///   * a CompiledRegionPlan — the registration-time lowered fast path,
///   * raw PAD RegionAttributes — the interpreted oracle walk,
///   * a missing region — no PAD entry; decide() degrades to the safe
///     default device with a PadLookupError diagnostic.
/// Handles are views: the referenced plan/attributes (and, for missing(),
/// the name/suggestion storage) must outlive the decide() call.
class RegionHandle {
 public:
  /*implicit*/ RegionHandle(const CompiledRegionPlan& plan)
      : plan_(&plan),
        attributes_(&plan.attributes()),
        name_(plan.attributes().regionName) {}

  /*implicit*/ RegionHandle(const pad::RegionAttributes& attributes)
      : attributes_(&attributes), name_(attributes.regionName) {}

  /// Handle for a region absent from the PAD. `suggestion` is the nearest
  /// known region name (may be empty); it feeds the diagnostic.
  [[nodiscard]] static RegionHandle missing(std::string_view regionName,
                                            std::string_view suggestion = {}) {
    RegionHandle handle;
    handle.name_ = regionName;
    handle.suggestion_ = suggestion;
    return handle;
  }

  /// Compiled plan; nullptr when the handle wraps raw attributes or a
  /// missing region.
  [[nodiscard]] const CompiledRegionPlan* plan() const { return plan_; }
  /// PAD attributes; nullptr only for a missing region.
  [[nodiscard]] const pad::RegionAttributes* attributes() const {
    return attributes_;
  }
  [[nodiscard]] bool resolved() const { return attributes_ != nullptr; }
  [[nodiscard]] std::string_view name() const { return name_; }
  [[nodiscard]] std::string_view suggestion() const { return suggestion_; }

 private:
  RegionHandle() = default;

  const CompiledRegionPlan* plan_ = nullptr;
  const pad::RegionAttributes* attributes_ = nullptr;
  std::string_view name_;
  std::string_view suggestion_;
};

/// Stateless selector bound to one machine configuration.
class OffloadSelector {
 public:
  explicit OffloadSelector(SelectorConfig config);

  /// Builds the CPU model inputs from PAD attributes + runtime values.
  [[nodiscard]] cpumodel::CpuWorkload cpuWorkload(
      const pad::RegionAttributes& attr, const symbolic::Bindings& bindings) const;

  /// Builds the GPU model inputs; the coalesced/uncoalesced split comes from
  /// resolving each stored symbolic stride with the runtime bindings
  /// (paper §IV.C, case 2).
  [[nodiscard]] gpumodel::GpuWorkload gpuWorkload(
      const pad::RegionAttributes& attr, const symbolic::Bindings& bindings) const;

  /// THE selection entry point: evaluates both models for the region the
  /// handle names and picks the faster device.
  ///   * handle wraps a CompiledRegionPlan: the allocation-free compiled
  ///     fast path (slot binding, no string hashing); degenerate inputs
  ///     (unbound required symbols, unusable plan) re-run the interpreted
  ///     walk so even diagnostics match the oracle path bit-for-bit,
  ///   * handle wraps RegionAttributes: the interpreted expression walk,
  ///   * handle is missing(): degrades to the configured safe default
  ///     device, valid == false, with a PadLookupError diagnostic.
  /// Guardrailed: model/workload-construction failures and degenerate
  /// (NaN/non-finite/non-positive) predictions never escape — the decision
  /// degrades to the safe default with a diagnostic, so ModelGuided
  /// launches behave like AlwaysCpu instead of crashing.
  ///
  /// `explain`, when non-null, is the forensics sink: the call fills it
  /// with the full model-term breakdown (obs/explain.h) of this decision.
  /// Both decide paths fill term-identical records — pinned by the
  /// compiled-plan equivalence suite; only DecisionExplain::path records
  /// which evaluation strategy actually ran. Filling never allocates.
  [[nodiscard]] Decision decide(const RegionHandle& region,
                                const symbolic::Bindings& bindings,
                                obs::DecisionExplain* explain = nullptr) const;

  /// Batch tail of the compiled fast path: the per-request epilogue
  /// decideCompiled runs after completeWorkloads — the decide fault point,
  /// both model predictions, explain fill, choice resolution, degradation
  /// to the safe default on exception — applied to a workload pair the SoA
  /// batch evaluator (CompiledRegionPlan::completeWorkloadsColumns) already
  /// completed. Given workloads equal to what scalar decide(plan, bindings)
  /// would build, the returned Decision is bit-identical except
  /// overheadSeconds (wall time, excluded from the equivalence contract);
  /// the batch equivalence suite pins this. Precondition: the workloads
  /// came from a bindSlots() row that returned true on a fastPathUsable()
  /// plan — unbindable rows must use decide() so diagnostics match the
  /// interpreted oracle byte-for-byte.
  [[nodiscard]] Decision decideFromWorkloads(
      const CompiledRegionPlan& plan, const cpumodel::CpuWorkload& cpu,
      const gpumodel::GpuWorkload& gpu,
      obs::DecisionExplain* explain = nullptr) const;

  /// Lowers a PAD entry into a compiled decision plan bound to this
  /// selector's configuration (MCA host entry, cache-line size). Pay this
  /// once at region registration; decide(RegionHandle(plan), ...) then
  /// runs allocation-free.
  [[nodiscard]] CompiledRegionPlan compile(pad::RegionAttributes attr) const;

  [[nodiscard]] const SelectorConfig& config() const { return config_; }

  /// The live selection policy (never null — the constructor installs
  /// ModelCompare when the config left it unset). TargetRuntime feeds the
  /// launch path's measured times back through this reference.
  [[nodiscard]] policy::SelectionPolicy& policy() const {
    return *config_.policy;
  }

 private:
  /// The interpreted expression walk (the correctness oracle).
  [[nodiscard]] Decision decideInterpreted(const pad::RegionAttributes& attr,
                                           const symbolic::Bindings& bindings,
                                           obs::DecisionExplain* explain) const;
  /// The compiled slot-based fast path.
  [[nodiscard]] Decision decideCompiled(const CompiledRegionPlan& plan,
                                        const symbolic::Bindings& bindings,
                                        obs::DecisionExplain* explain) const;
  /// Stamps the record header (region, path, choice, speedup, overhead)
  /// once a decide path has finished.
  static void finishExplain(obs::DecisionExplain& explain,
                            std::string_view regionName,
                            obs::DecisionPath path,
                            const Decision& decision) noexcept;
  /// Shared tail of both decide paths: validates the predictions and picks
  /// the device (or degrades to the configured safe default).
  void resolveChoice(Decision& decision, const std::string& regionName) const;

  SelectorConfig config_;
  cpumodel::CpuCostModel cpuModel_;
  gpumodel::GpuCostModel gpuModel_;
  /// Devirtualization flag: under ModelCompare (the default) the choice tail
  /// inlines the seed compare instead of the virtual dispatch, keeping the
  /// refactored tail at zero overhead (pinned by BM_PolicyChoice).
  bool modelComparePolicy_ = true;
};

}  // namespace osel::runtime

#include "runtime/decision_cache.h"

#include <algorithm>

namespace osel::runtime {

namespace {

/// SplitMix64 finalizer — a fast, well-mixed 64-bit hash step.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t DecisionCache::hashKey(std::uint64_t boundMask,
                                     std::span<const std::int64_t> values) {
  std::uint64_t hash = mix(boundMask ^ (values.size() * 0x9E3779B97F4A7C15ULL));
  for (const std::int64_t value : values) {
    hash = mix(hash ^ static_cast<std::uint64_t>(value));
  }
  return hash;
}

DecisionCache::Entry* DecisionCache::locate(
    std::uint64_t hash, std::uint64_t boundMask,
    std::span<const std::int64_t> values) {
  for (Entry& entry : entries_) {
    if (entry.hash != hash || entry.boundMask != boundMask ||
        entry.values.size() != values.size()) {
      continue;
    }
    if (std::equal(entry.values.begin(), entry.values.end(), values.begin())) {
      return &entry;
    }
  }
  return nullptr;
}

void DecisionCache::syncEpoch(std::uint64_t epoch) {
  if (epoch != epoch_) {
    entries_.clear();
    epoch_ = epoch;
  }
}

bool DecisionCache::find(std::uint64_t boundMask,
                         std::span<const std::int64_t> values, Decision& out,
                         std::uint64_t epoch) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    syncEpoch(epoch);
    if (Entry* entry = locate(hashKey(boundMask, values), boundMask, values)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      entry->lastUse = ++tick_;
      out = entry->decision;
      return true;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void DecisionCache::insert(std::uint64_t boundMask,
                           std::span<const std::int64_t> values,
                           const Decision& decision, std::uint64_t epoch) {
  if (capacity_ == 0) return;
  const std::uint64_t hash = hashKey(boundMask, values);
  std::lock_guard<std::mutex> lock(mutex_);
  syncEpoch(epoch);
  if (Entry* existing = locate(hash, boundMask, values)) {
    existing->decision = decision;
    existing->lastUse = ++tick_;
    return;
  }
  Entry entry;
  entry.hash = hash;
  entry.boundMask = boundMask;
  entry.values.assign(values.begin(), values.end());
  entry.decision = decision;
  entry.lastUse = ++tick_;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  // Replace the least-recently-used entry.
  auto victim = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.lastUse < b.lastUse; });
  *victim = std::move(entry);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t DecisionCache::hashKeyAt(const KeyBlock& keys, std::size_t row) {
  std::uint64_t hash =
      mix(keys.masks[row] ^ (keys.slots * 0x9E3779B97F4A7C15ULL));
  for (std::size_t slot = 0; slot < keys.slots; ++slot) {
    hash = mix(hash ^
               static_cast<std::uint64_t>(keys.values[slot * keys.rows + row]));
  }
  return hash;
}

DecisionCache::Entry* DecisionCache::locateAt(std::uint64_t hash,
                                              const KeyBlock& keys,
                                              std::size_t row) {
  for (Entry& entry : entries_) {
    if (entry.hash != hash || entry.boundMask != keys.masks[row] ||
        entry.values.size() != keys.slots) {
      continue;
    }
    bool equal = true;
    for (std::size_t slot = 0; slot < keys.slots; ++slot) {
      if (entry.values[slot] != keys.values[slot * keys.rows + row]) {
        equal = false;
        break;
      }
    }
    if (equal) return &entry;
  }
  return nullptr;
}

std::size_t DecisionCache::findMany(const KeyBlock& keys, Decision* const* out,
                                    std::uint8_t* hit, std::uint64_t epoch) {
  lookups_.fetch_add(keys.rows, std::memory_order_relaxed);
  std::size_t found = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    syncEpoch(epoch);
    for (std::size_t row = 0; row < keys.rows; ++row) {
      hit[row] = 0;
      if (Entry* entry = locateAt(hashKeyAt(keys, row), keys, row)) {
        entry->lastUse = ++tick_;
        *out[row] = entry->decision;
        hit[row] = 1;
        ++found;
      }
    }
  }
  hits_.fetch_add(found, std::memory_order_relaxed);
  misses_.fetch_add(keys.rows - found, std::memory_order_relaxed);
  return found;
}

void DecisionCache::insertRowLocked(const KeyBlock& keys, std::size_t row,
                                    const Decision& decision) {
  const std::uint64_t hash = hashKeyAt(keys, row);
  if (Entry* existing = locateAt(hash, keys, row)) {
    existing->decision = decision;
    existing->lastUse = ++tick_;
    return;
  }
  Entry entry;
  entry.hash = hash;
  entry.boundMask = keys.masks[row];
  entry.values.resize(keys.slots);
  for (std::size_t slot = 0; slot < keys.slots; ++slot) {
    entry.values[slot] = keys.values[slot * keys.rows + row];
  }
  entry.decision = decision;
  entry.lastUse = ++tick_;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  auto victim = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.lastUse < b.lastUse; });
  *victim = std::move(entry);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void DecisionCache::insertMany(const KeyBlock& keys,
                               std::span<const std::uint32_t> rows,
                               const Decision* const* decisions,
                               std::uint64_t epoch) {
  if (capacity_ == 0 || rows.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  syncEpoch(epoch);
  for (const std::uint32_t row : rows) {
    insertRowLocked(keys, row, *decisions[row]);
  }
}

void DecisionCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

DecisionCache::Stats DecisionCache::stats() const {
  Stats out;
  out.lookups = lookups_.load(std::memory_order_relaxed);
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  return out;
}

std::size_t DecisionCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace osel::runtime

#include "runtime/decision_cache.h"

#include <algorithm>

namespace osel::runtime {

namespace {

/// SplitMix64 finalizer — a fast, well-mixed 64-bit hash step.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t DecisionCache::hashKey(std::uint64_t boundMask,
                                     std::span<const std::int64_t> values) {
  std::uint64_t hash = mix(boundMask ^ (values.size() * 0x9E3779B97F4A7C15ULL));
  for (const std::int64_t value : values) {
    hash = mix(hash ^ static_cast<std::uint64_t>(value));
  }
  return hash;
}

DecisionCache::Entry* DecisionCache::locate(
    std::uint64_t hash, std::uint64_t boundMask,
    std::span<const std::int64_t> values) {
  for (Entry& entry : entries_) {
    if (entry.hash != hash || entry.boundMask != boundMask ||
        entry.values.size() != values.size()) {
      continue;
    }
    if (std::equal(entry.values.begin(), entry.values.end(), values.begin())) {
      return &entry;
    }
  }
  return nullptr;
}

const Decision* DecisionCache::find(std::uint64_t boundMask,
                                    std::span<const std::int64_t> values) {
  Entry* entry = locate(hashKey(boundMask, values), boundMask, values);
  if (entry == nullptr) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  entry->lastUse = ++tick_;
  return &entry->decision;
}

void DecisionCache::insert(std::uint64_t boundMask,
                           std::span<const std::int64_t> values,
                           const Decision& decision) {
  if (capacity_ == 0) return;
  const std::uint64_t hash = hashKey(boundMask, values);
  if (Entry* existing = locate(hash, boundMask, values)) {
    existing->decision = decision;
    existing->lastUse = ++tick_;
    return;
  }
  Entry entry;
  entry.hash = hash;
  entry.boundMask = boundMask;
  entry.values.assign(values.begin(), values.end());
  entry.decision = decision;
  entry.lastUse = ++tick_;
  ++stats_.insertions;
  if (entries_.size() < capacity_) {
    entries_.push_back(std::move(entry));
    return;
  }
  // Replace the least-recently-used entry.
  auto victim = std::min_element(
      entries_.begin(), entries_.end(),
      [](const Entry& a, const Entry& b) { return a.lastUse < b.lastUse; });
  *victim = std::move(entry);
  ++stats_.evictions;
}

}  // namespace osel::runtime

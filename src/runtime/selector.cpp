#include "runtime/selector.h"

#include <array>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <span>
#include <utility>

#include "support/check.h"
#include "support/faultinject.h"

namespace osel::runtime {

using support::require;

std::string toString(Device device) {
  return device == Device::Cpu ? "CPU" : "GPU";
}

OffloadSelector::OffloadSelector(SelectorConfig config)
    : config_(std::move(config)),
      cpuModel_(config_.cpuParams, config_.cpuThreads),
      gpuModel_(config_.gpuParams) {
  if (config_.policy == nullptr) {
    config_.policy = policy::makePolicy({});
  }
  modelComparePolicy_ =
      config_.policy->kind() == policy::PolicyKind::ModelCompare;
}

cpumodel::CpuWorkload OffloadSelector::cpuWorkload(
    const pad::RegionAttributes& attr, const symbolic::Bindings& bindings) const {
  const auto cyclesIt = attr.machineCyclesPerIter.find(config_.mcaModelName);
  require(cyclesIt != attr.machineCyclesPerIter.end(),
          "OffloadSelector: PAD entry " + attr.regionName +
              " has no MCA cycles for host model " + config_.mcaModelName);
  cpumodel::CpuWorkload workload;
  workload.machineCyclesPerIter = cyclesIt->second;
  workload.parallelTripCount = attr.flatTripCount.evaluate(bindings);
  workload.bytesTouchedPerIteration = attr.bytesTouchedPerIteration;
  // False-sharing flag: a resolved store stride below one cache line.
  for (const pad::StrideAttribute& stride : attr.strides) {
    if (!stride.isStore || !stride.affine) continue;
    const auto resolved = stride.stride.substituteAll(bindings).tryConstant();
    if (!resolved.has_value() || *resolved == 0) continue;
    if (std::abs(*resolved) * stride.elementBytes <
        config_.cpuParams.cacheLineBytes) {
      workload.falseSharingRisk = true;
      break;
    }
  }
  return workload;
}

gpumodel::GpuWorkload OffloadSelector::gpuWorkload(
    const pad::RegionAttributes& attr, const symbolic::Bindings& bindings) const {
  gpumodel::GpuWorkload workload;
  // Special math instructions weigh as several issue slots.
  workload.compInstsPerThread =
      attr.compInstsPerIter + kSpecialInstIssueWeight * attr.specialInstsPerIter;
  workload.fp64Fraction = attr.fp64Fraction;
  for (const pad::StrideAttribute& stride : attr.strides) {
    bool coalesced = false;
    if (stride.affine) {
      const auto resolved = stride.stride.substituteAll(bindings).tryConstant();
      coalesced = resolved.has_value() && std::abs(*resolved) <= 1;
    }
    if (coalesced) {
      workload.coalMemInstsPerThread += stride.countPerIteration;
    } else {
      workload.uncoalMemInstsPerThread += stride.countPerIteration;
    }
  }
  workload.parallelTripCount = attr.flatTripCount.evaluate(bindings);
  workload.bytesToDevice = attr.bytesToDevice.evaluate(bindings);
  workload.bytesFromDevice = attr.bytesFromDevice.evaluate(bindings);
  return workload;
}

namespace {

/// A predicted time the selector may compare: finite and strictly positive
/// (every model includes constant launch/fork overheads, so a zero or
/// negative estimate is degenerate, not a fast kernel).
bool usablePrediction(double seconds) {
  return std::isfinite(seconds) && seconds > 0.0;
}

}  // namespace

void OffloadSelector::resolveChoice(Decision& decision,
                                    const std::string& regionName) const {
  const bool cpuOk = usablePrediction(decision.cpu.seconds);
  const bool gpuOk = usablePrediction(decision.gpu.totalSeconds);
  if (cpuOk && gpuOk) {
    // Policies govern only this healthy branch; the degenerate branches
    // below are safety plumbing no policy may override. ModelCompare is
    // devirtualized to the seed compare so the default config's choice
    // tail costs exactly what it did before the policy seam existed.
    if (modelComparePolicy_) {
      decision.device = decision.gpu.totalSeconds < decision.cpu.seconds
                            ? Device::Gpu
                            : Device::Cpu;
    } else {
      const policy::PolicyChoice choice = config_.policy->choose(
          {regionName, decision.cpu.seconds, decision.gpu.totalSeconds});
      decision.device = choice.device;
      decision.probe = choice.probe;
    }
  } else if (cpuOk) {
    // Only the always-available host path predicted sanely: run there.
    decision.device = Device::Cpu;
    decision.valid = false;
    decision.diagnostic = "degenerate GPU prediction for " + regionName;
  } else {
    decision.device = config_.safeDefaultDevice;
    decision.valid = false;
    decision.diagnostic = gpuOk ? "degenerate CPU prediction for "
                                : "degenerate CPU and GPU predictions for ";
    decision.diagnostic += regionName;
  }
}

void OffloadSelector::finishExplain(obs::DecisionExplain& explain,
                                    std::string_view regionName,
                                    obs::DecisionPath path,
                                    const Decision& decision) noexcept {
  explain.setRegion(regionName);
  explain.path = path;
  explain.valid = decision.valid;
  explain.chosenGpu = decision.device == Device::Gpu;
  explain.predictedSpeedup = decision.predictedSpeedup();
  explain.overheadSeconds = decision.overheadSeconds;
}

Decision OffloadSelector::decide(const RegionHandle& region,
                                 const symbolic::Bindings& bindings,
                                 obs::DecisionExplain* explain) const {
  if (const CompiledRegionPlan* plan = region.plan()) {
    return decideCompiled(*plan, bindings, explain);
  }
  if (const pad::RegionAttributes* attr = region.attributes()) {
    return decideInterpreted(*attr, bindings, explain);
  }
  // Missing PAD entry: ModelGuided must degrade, not crash. The diagnostic
  // is the same PadLookupError text at() would have thrown.
  Decision decision;
  decision.valid = false;
  decision.device = config_.safeDefaultDevice;
  decision.diagnostic = pad::PadLookupError(std::string(region.name()),
                                            std::string(region.suggestion()))
                            .what();
  if (explain != nullptr) {
    *explain = obs::DecisionExplain{};
    finishExplain(*explain, region.name(), obs::DecisionPath::Degenerate,
                  decision);
  }
  return decision;
}

Decision OffloadSelector::decideInterpreted(
    const pad::RegionAttributes& attr, const symbolic::Bindings& bindings,
    obs::DecisionExplain* explain) const {
  const auto start = std::chrono::steady_clock::now();
  Decision decision;
  obs::DecisionPath path = obs::DecisionPath::Interpreted;
  if (explain != nullptr) *explain = obs::DecisionExplain{};
  try {
    (void)support::faultInjector().hit(support::faultpoints::kSelectorDecide,
                                       "selector");
    const cpumodel::CpuWorkload cpu = cpuWorkload(attr, bindings);
    const gpumodel::GpuWorkload gpu = gpuWorkload(attr, bindings);
    decision.cpu = cpuModel_.predict(cpu);
    decision.gpu = gpuModel_.predict(gpu);
    if (explain != nullptr) {
      cpumodel::explainInto(cpu, decision.cpu, explain->cpu);
      gpumodel::explainInto(gpu, decision.gpu, explain->gpu);
    }
    resolveChoice(decision, attr.regionName);
  } catch (const std::exception& error) {
    decision.device = config_.safeDefaultDevice;
    decision.valid = false;
    decision.diagnostic = error.what();
    path = obs::DecisionPath::Degenerate;
  }
  const auto end = std::chrono::steady_clock::now();
  decision.overheadSeconds =
      std::chrono::duration<double>(end - start).count();
  if (explain != nullptr) {
    finishExplain(*explain, attr.regionName, path, decision);
  }
  return decision;
}

Decision OffloadSelector::decideFromWorkloads(
    const CompiledRegionPlan& plan, const cpumodel::CpuWorkload& cpu,
    const gpumodel::GpuWorkload& gpu, obs::DecisionExplain* explain) const {
  const auto start = std::chrono::steady_clock::now();
  Decision decision;
  obs::DecisionPath path = obs::DecisionPath::Compiled;
  if (explain != nullptr) *explain = obs::DecisionExplain{};
  try {
    (void)support::faultInjector().hit(support::faultpoints::kSelectorDecide,
                                       "selector");
    decision.cpu = cpuModel_.predict(cpu);
    decision.gpu = gpuModel_.predict(gpu);
    if (explain != nullptr) {
      cpumodel::explainInto(cpu, decision.cpu, explain->cpu);
      gpumodel::explainInto(gpu, decision.gpu, explain->gpu);
    }
    resolveChoice(decision, plan.attributes().regionName);
  } catch (const std::exception& error) {
    decision.device = config_.safeDefaultDevice;
    decision.valid = false;
    decision.diagnostic = error.what();
    path = obs::DecisionPath::Degenerate;
  }
  const auto end = std::chrono::steady_clock::now();
  decision.overheadSeconds =
      std::chrono::duration<double>(end - start).count();
  if (explain != nullptr) {
    finishExplain(*explain, plan.attributes().regionName, path, decision);
  }
  return decision;
}

CompiledRegionPlan OffloadSelector::compile(pad::RegionAttributes attr) const {
  return CompiledRegionPlan(std::move(attr), config_.mcaModelName,
                            config_.cpuParams.cacheLineBytes);
}

Decision OffloadSelector::decideCompiled(
    const CompiledRegionPlan& plan, const symbolic::Bindings& bindings,
    obs::DecisionExplain* explain) const {
  const auto start = std::chrono::steady_clock::now();
  Decision decision;
  obs::DecisionPath path = obs::DecisionPath::Compiled;
  if (explain != nullptr) *explain = obs::DecisionExplain{};
  try {
    (void)support::faultInjector().hit(support::faultpoints::kSelectorDecide,
                                       "selector");
    std::array<std::int64_t, CompiledRegionPlan::kMaxSlots> slotValues{};
    std::uint64_t boundMask = 0;
    const std::span<std::int64_t> values(slotValues.data(), plan.slotCount());
    cpumodel::CpuWorkload cpu;
    gpumodel::GpuWorkload gpu;
    if (plan.fastPathUsable() && plan.bindSlots(bindings, values, boundMask)) {
      plan.completeWorkloads(values, boundMask, cpu, gpu);
    } else {
      // Degenerate plan or bindings: re-run the interpreted walk so the
      // failure diagnostics are byte-identical to the oracle path.
      path = obs::DecisionPath::Interpreted;
      cpu = cpuWorkload(plan.attributes(), bindings);
      gpu = gpuWorkload(plan.attributes(), bindings);
    }
    decision.cpu = cpuModel_.predict(cpu);
    decision.gpu = gpuModel_.predict(gpu);
    if (explain != nullptr) {
      cpumodel::explainInto(cpu, decision.cpu, explain->cpu);
      gpumodel::explainInto(gpu, decision.gpu, explain->gpu);
    }
    resolveChoice(decision, plan.attributes().regionName);
  } catch (const std::exception& error) {
    decision.device = config_.safeDefaultDevice;
    decision.valid = false;
    decision.diagnostic = error.what();
    path = obs::DecisionPath::Degenerate;
  }
  const auto end = std::chrono::steady_clock::now();
  decision.overheadSeconds =
      std::chrono::duration<double>(end - start).count();
  if (explain != nullptr) {
    finishExplain(*explain, plan.attributes().regionName, path, decision);
  }
  return decision;
}

}  // namespace osel::runtime

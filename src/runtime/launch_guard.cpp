#include "runtime/launch_guard.h"

#include <algorithm>

#include "support/check.h"
#include "support/error.h"
#include "support/faultinject.h"

namespace osel::runtime {

using support::require;

std::string toString(ErrorClass value) {
  switch (value) {
    case ErrorClass::None:
      return "none";
    case ErrorClass::Transient:
      return "transient";
    case ErrorClass::Fatal:
      return "fatal";
    case ErrorClass::ModelInput:
      return "model-input";
  }
  return "?";
}

std::string toString(FallbackReason value) {
  switch (value) {
    case FallbackReason::None:
      return "none";
    case FallbackReason::TransientExhausted:
      return "transient-exhausted";
    case FallbackReason::FatalError:
      return "fatal-error";
    case FallbackReason::Quarantined:
      return "quarantined";
    case FallbackReason::InvalidDecision:
      return "invalid-decision";
    case FallbackReason::Shed:
      return "shed";
  }
  return "?";
}

ErrorClass classifyLaunchError(const std::exception& error) {
  // Typed osel errors classify by machine-readable code — classification
  // stays stable if the class hierarchy gains intermediate layers.
  if (const auto* typed = dynamic_cast<const osel::Error*>(&error)) {
    switch (typed->code()) {
      case ErrorCode::TransientLaunch:
        return ErrorClass::Transient;
      case ErrorCode::DeviceMemory:
      case ErrorCode::DeviceLost:
        return ErrorClass::Fatal;
      case ErrorCode::Precondition:
      case ErrorCode::PadLookup:
        return ErrorClass::ModelInput;
      case ErrorCode::Invariant:
      case ErrorCode::Unknown:
        return ErrorClass::Fatal;
    }
  }
  if (dynamic_cast<const support::PreconditionError*>(&error) != nullptr) {
    // Untyped precondition failures: bad model/PAD input.
    return ErrorClass::ModelInput;
  }
  return ErrorClass::Fatal;
}

double RetryPolicy::backoffBeforeAttempt(int attempt) const {
  if (attempt <= 1) return 0.0;
  double backoff = backoffBaseSeconds;
  for (int i = 2; i < attempt; ++i) backoff *= backoffMultiplier;
  return std::min(backoff, backoffCapSeconds);
}

LaunchGuard::LaunchGuard(RetryPolicy policy) : policy_(policy) {
  require(policy_.maxAttempts >= 1, "LaunchGuard: maxAttempts must be >= 1");
  require(policy_.backoffBaseSeconds >= 0.0 && policy_.backoffCapSeconds >= 0.0,
          "LaunchGuard: backoff times must be >= 0");
  require(policy_.backoffMultiplier >= 1.0,
          "LaunchGuard: backoffMultiplier must be >= 1");
}

bool LaunchGuard::runDevice(Device device, const Measure& measure,
                            GuardedExecution& out) const {
  for (int attempt = 1; attempt <= policy_.maxAttempts; ++attempt) {
    LaunchAttempt record;
    record.device = device;
    record.attempt = attempt;
    record.backoffSeconds = policy_.backoffBeforeAttempt(attempt);
    out.totalBackoffSeconds += record.backoffSeconds;
    try {
      record.seconds = measure(device);
      record.succeeded = true;
      out.attempts.push_back(std::move(record));
      out.succeeded = true;
      out.executed = device;
      out.seconds = out.attempts.back().seconds;
      return true;
    } catch (const std::exception& error) {
      record.errorClass = classifyLaunchError(error);
      record.error = error.what();
      const bool retryable = record.errorClass == ErrorClass::Transient;
      out.attempts.push_back(std::move(record));
      if (!retryable) break;
    }
  }
  return false;
}

GuardedExecution LaunchGuard::execute(Device preferred, const Measure& measure,
                                      bool allowFallback) const {
  GuardedExecution out;
  if (runDevice(preferred, measure, out)) return out;

  // Copy, not reference: the CPU fallback below appends to out.attempts.
  const ErrorClass lastClass = out.attempts.back().errorClass;
  const std::string lastError = out.attempts.back().error;
  const FallbackReason reason = lastClass == ErrorClass::Transient
                                    ? FallbackReason::TransientExhausted
                                    : FallbackReason::FatalError;
  if (preferred == Device::Gpu) {
    out.gpuFatal = lastClass != ErrorClass::Transient;
    if (allowFallback) {
      out.fallback = reason;
      out.fallbackDetail = lastError;
      if (runDevice(Device::Cpu, measure, out)) return out;
    }
  }
  // Preferred CPU failed, fallback disabled, or the CPU fallback itself
  // failed: report the failed execution; the caller owns the final throw.
  if (out.fallback == FallbackReason::None) {
    out.fallback = reason;
    out.fallbackDetail = lastError;
  }
  return out;
}

DeviceHealthTracker::DeviceHealthTracker(HealthPolicy policy)
    : policy_(policy) {
  require(policy_.quarantineThreshold >= 1,
          "DeviceHealthTracker: quarantineThreshold must be >= 1");
  require(policy_.quarantineLaunches >= 1,
          "DeviceHealthTracker: quarantineLaunches must be >= 1");
}

bool DeviceHealthTracker::admitGpu() {
  std::uint64_t state = state_.load(std::memory_order_acquire);
  for (;;) {
    const int remaining = unpackRemaining(state);
    if (remaining <= 0) return true;
    // Consume exactly one quarantined launch; racing admits each consume
    // their own (the CAS retries on interference).
    const std::uint64_t next = pack(unpackFatals(state), remaining - 1);
    if (state_.compare_exchange_weak(state, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      return false;
    }
  }
}

void DeviceHealthTracker::recordGpuSuccess() {
  std::uint64_t state = state_.load(std::memory_order_acquire);
  for (;;) {
    if (unpackFatals(state) == 0) return;
    const std::uint64_t next = pack(0, unpackRemaining(state));
    if (state_.compare_exchange_weak(state, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      return;
    }
  }
}

bool DeviceHealthTracker::recordGpuFatal() {
  totalFatals_.fetch_add(1, std::memory_order_acq_rel);
  std::uint64_t state = state_.load(std::memory_order_acquire);
  for (;;) {
    const int fatals = unpackFatals(state) + 1;
    const bool opens = fatals >= policy_.quarantineThreshold;
    // The streak resets when the breaker opens, so the threshold counts
    // fatals per quarantine window; the CAS winner that crosses it is the
    // unique opener.
    const std::uint64_t next =
        opens ? pack(0, policy_.quarantineLaunches)
              : pack(fatals, unpackRemaining(state));
    if (state_.compare_exchange_weak(state, next, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
      if (opens) quarantinesOpened_.fetch_add(1, std::memory_order_acq_rel);
      return opens;
    }
  }
}

}  // namespace osel::runtime

#include "runtime/target_runtime.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/check.h"
#include "support/faultinject.h"

namespace osel::runtime {

using support::require;

std::string toString(Policy policy) {
  switch (policy) {
    case Policy::AlwaysCpu:
      return "always-cpu";
    case Policy::AlwaysGpu:
      return "always-gpu";
    case Policy::ModelGuided:
      return "model-guided";
    case Policy::Oracle:
      return "oracle";
  }
  return "?";
}

TargetRuntime::TargetRuntime(pad::AttributeDatabase database,
                             SelectorConfig selectorConfig,
                             cpusim::CpuSimParams cpuSim, int cpuThreads,
                             gpusim::GpuSimParams gpuSim, RuntimeOptions options)
    : database_(std::move(database)),
      selector_(std::move(selectorConfig)),
      cpuSim_(std::move(cpuSim), cpuThreads),
      gpuSim_(std::move(gpuSim)),
      guard_(options.retry),
      health_(options.health) {}

void TargetRuntime::registerRegion(ir::TargetRegion region) {
  region.verify();
  const std::string name = region.name;
  regions_.insert_or_assign(name, std::move(region));
}

bool TargetRuntime::hasRegion(const std::string& name) const {
  return regions_.contains(name);
}

double TargetRuntime::measure(const std::string& regionName,
                              const symbolic::Bindings& bindings,
                              ir::ArrayStore& store, Device device) const {
  const auto it = regions_.find(regionName);
  require(it != regions_.end(),
          "TargetRuntime::measure: unregistered region " + regionName);
  if (device == Device::Cpu) {
    return cpuSim_.simulate(it->second, bindings, store).seconds;
  }
  return gpuSim_.simulate(it->second, bindings, store).totalSeconds;
}

Decision TargetRuntime::guardedDecision(const std::string& regionName,
                                        const symbolic::Bindings& bindings) const {
  const pad::RegionAttributes* attr = database_.find(regionName);
  if (attr == nullptr) {
    // Missing/corrupt PAD entry: ModelGuided must degrade, not crash.
    Decision decision;
    decision.valid = false;
    decision.device = selector_.config().safeDefaultDevice;
    decision.diagnostic =
        pad::PadLookupError(regionName, database_.nearestRegionName(regionName))
            .what();
    return decision;
  }
  return selector_.decide(*attr, bindings);
}

void TargetRuntime::recordExecution(LaunchRecord& record,
                                    const GuardedExecution& execution) {
  record.attemptLog.insert(record.attemptLog.end(), execution.attempts.begin(),
                           execution.attempts.end());
  record.attempts = static_cast<int>(record.attemptLog.size());
  record.backoffSeconds += execution.totalBackoffSeconds;
  if (record.fallbackReason == FallbackReason::None) {
    record.fallbackReason = execution.fallback;
    record.fallbackDetail = execution.fallbackDetail;
  }
  // Feed the circuit breaker: a fatal GPU outcome advances the streak, a
  // GPU success clears it; transient exhaustion leaves it unchanged (the
  // device neither failed hard nor proved healthy).
  if (execution.gpuFatal) {
    health_.recordGpuFatal();
  } else if (execution.succeeded && execution.executed == Device::Gpu) {
    health_.recordGpuSuccess();
  }
}

LaunchRecord TargetRuntime::launch(const std::string& regionName,
                                   const symbolic::Bindings& bindings,
                                   ir::ArrayStore& store, Policy policy) {
  require(hasRegion(regionName),
          "TargetRuntime::launch: unregistered region " + regionName);
  LaunchRecord record;
  record.regionName = regionName;
  record.policy = policy;
  record.decision = guardedDecision(regionName, bindings);
  record.gpuQuarantined = health_.quarantined();

  const auto measureOn = [&](Device device) {
    return measure(regionName, bindings, store, device);
  };

  if (policy == Policy::Oracle) {
    record.preferred = Device::Gpu;
    const GuardedExecution cpuExec =
        guard_.execute(Device::Cpu, measureOn, /*allowFallback=*/false);
    recordExecution(record, cpuExec);
    if (cpuExec.succeeded) {
      record.actualCpuSeconds = cpuExec.seconds;
      record.cpuMeasured = true;
    }
    if (health_.admitGpu()) {
      const GuardedExecution gpuExec =
          guard_.execute(Device::Gpu, measureOn, /*allowFallback=*/false);
      recordExecution(record, gpuExec);
      if (gpuExec.succeeded) {
        record.actualGpuSeconds = gpuExec.seconds;
        record.gpuMeasured = true;
      }
    } else if (record.fallbackReason == FallbackReason::None) {
      record.fallbackReason = FallbackReason::Quarantined;
      record.fallbackDetail = "GPU quarantined by circuit breaker";
    }
    if (record.cpuMeasured && record.gpuMeasured) {
      record.chosen = record.actualGpuSeconds < record.actualCpuSeconds
                          ? Device::Gpu
                          : Device::Cpu;
      record.actualSeconds = record.chosen == Device::Gpu
                                 ? record.actualGpuSeconds
                                 : record.actualCpuSeconds;
    } else if (record.cpuMeasured) {
      record.chosen = Device::Cpu;
      record.actualSeconds = record.actualCpuSeconds;
    } else if (record.gpuMeasured) {
      record.chosen = Device::Gpu;
      record.actualSeconds = record.actualGpuSeconds;
    } else {
      log_.push_back(record);
      throw support::DeviceError(
          "CPU", "oracle launch of " + regionName +
                     " failed on every device: " + record.fallbackDetail);
    }
    log_.push_back(record);
    return record;
  }

  Device preferred = Device::Cpu;
  switch (policy) {
    case Policy::AlwaysCpu:
      preferred = Device::Cpu;
      break;
    case Policy::AlwaysGpu:
      preferred = Device::Gpu;
      break;
    case Policy::ModelGuided:
      preferred = record.decision.device;
      if (!record.decision.valid) {
        record.fallbackReason = FallbackReason::InvalidDecision;
        record.fallbackDetail = record.decision.diagnostic;
      }
      break;
    case Policy::Oracle:
      break;  // handled above
  }
  record.preferred = preferred;

  if (preferred == Device::Gpu && !health_.admitGpu()) {
    preferred = Device::Cpu;
    record.fallbackReason = FallbackReason::Quarantined;
    record.fallbackDetail = "GPU quarantined by circuit breaker";
  }

  const GuardedExecution execution =
      guard_.execute(preferred, measureOn, /*allowFallback=*/true);
  recordExecution(record, execution);
  if (!execution.succeeded) {
    log_.push_back(record);
    throw support::DeviceError(
        "CPU", "launch of " + regionName +
                   " failed on every available path: " + record.fallbackDetail);
  }

  record.chosen = execution.executed;
  record.actualSeconds = execution.seconds;
  if (record.chosen == Device::Cpu) {
    record.actualCpuSeconds = record.actualSeconds;
    record.cpuMeasured = true;
  } else {
    record.actualGpuSeconds = record.actualSeconds;
    record.gpuMeasured = true;
  }
  log_.push_back(record);
  return record;
}

std::string renderLogCsv(std::span<const LaunchRecord> log) {
  std::ostringstream out;
  out << std::setprecision(9);
  out << "region,policy,chosen,predicted_cpu_s,predicted_gpu_s,actual_s,"
         "actual_cpu_s,actual_gpu_s,decision_overhead_s,decision_valid,"
         "attempts,fallback,backoff_s,quarantined\n";
  for (const LaunchRecord& record : log) {
    out << record.regionName << ',' << toString(record.policy) << ','
        << toString(record.chosen) << ',' << record.decision.cpu.seconds << ','
        << record.decision.gpu.totalSeconds << ',' << record.actualSeconds
        << ',';
    if (record.cpuMeasured) out << record.actualCpuSeconds;
    out << ',';
    if (record.gpuMeasured) out << record.actualGpuSeconds;
    out << ',' << record.decision.overheadSeconds << ','
        << (record.decision.valid ? 1 : 0) << ',' << record.attempts << ','
        << toString(record.fallbackReason) << ',' << record.backoffSeconds
        << ',' << (record.gpuQuarantined ? 1 : 0) << '\n';
  }
  return out.str();
}

}  // namespace osel::runtime

#include "runtime/target_runtime.h"

#include <iomanip>
#include <sstream>

#include "support/check.h"

namespace osel::runtime {

using support::require;

std::string toString(Policy policy) {
  switch (policy) {
    case Policy::AlwaysCpu:
      return "always-cpu";
    case Policy::AlwaysGpu:
      return "always-gpu";
    case Policy::ModelGuided:
      return "model-guided";
    case Policy::Oracle:
      return "oracle";
  }
  return "?";
}

TargetRuntime::TargetRuntime(pad::AttributeDatabase database,
                             SelectorConfig selectorConfig,
                             cpusim::CpuSimParams cpuSim, int cpuThreads,
                             gpusim::GpuSimParams gpuSim)
    : database_(std::move(database)),
      selector_(std::move(selectorConfig)),
      cpuSim_(std::move(cpuSim), cpuThreads),
      gpuSim_(std::move(gpuSim)) {}

void TargetRuntime::registerRegion(ir::TargetRegion region) {
  region.verify();
  const std::string name = region.name;
  regions_.insert_or_assign(name, std::move(region));
}

bool TargetRuntime::hasRegion(const std::string& name) const {
  return regions_.contains(name);
}

double TargetRuntime::measure(const std::string& regionName,
                              const symbolic::Bindings& bindings,
                              ir::ArrayStore& store, Device device) const {
  const auto it = regions_.find(regionName);
  require(it != regions_.end(),
          "TargetRuntime::measure: unregistered region " + regionName);
  if (device == Device::Cpu) {
    return cpuSim_.simulate(it->second, bindings, store).seconds;
  }
  return gpuSim_.simulate(it->second, bindings, store).totalSeconds;
}

LaunchRecord TargetRuntime::launch(const std::string& regionName,
                                   const symbolic::Bindings& bindings,
                                   ir::ArrayStore& store, Policy policy) {
  require(hasRegion(regionName),
          "TargetRuntime::launch: unregistered region " + regionName);
  LaunchRecord record;
  record.regionName = regionName;
  record.policy = policy;
  record.decision = selector_.decide(database_.at(regionName), bindings);

  switch (policy) {
    case Policy::AlwaysCpu:
      record.chosen = Device::Cpu;
      break;
    case Policy::AlwaysGpu:
      record.chosen = Device::Gpu;
      break;
    case Policy::ModelGuided:
      record.chosen = record.decision.device;
      break;
    case Policy::Oracle: {
      record.actualCpuSeconds = measure(regionName, bindings, store, Device::Cpu);
      record.cpuMeasured = true;
      record.actualGpuSeconds = measure(regionName, bindings, store, Device::Gpu);
      record.gpuMeasured = true;
      record.chosen = record.actualGpuSeconds < record.actualCpuSeconds
                          ? Device::Gpu
                          : Device::Cpu;
      record.actualSeconds = record.chosen == Device::Gpu
                                 ? record.actualGpuSeconds
                                 : record.actualCpuSeconds;
      log_.push_back(record);
      return record;
    }
  }

  record.actualSeconds = measure(regionName, bindings, store, record.chosen);
  if (record.chosen == Device::Cpu) {
    record.actualCpuSeconds = record.actualSeconds;
    record.cpuMeasured = true;
  } else {
    record.actualGpuSeconds = record.actualSeconds;
    record.gpuMeasured = true;
  }
  log_.push_back(record);
  return record;
}

std::string renderLogCsv(std::span<const LaunchRecord> log) {
  std::ostringstream out;
  out << std::setprecision(9);
  out << "region,policy,chosen,predicted_cpu_s,predicted_gpu_s,actual_s,"
         "actual_cpu_s,actual_gpu_s,decision_overhead_s\n";
  for (const LaunchRecord& record : log) {
    out << record.regionName << ',' << toString(record.policy) << ','
        << toString(record.chosen) << ',' << record.decision.cpu.seconds << ','
        << record.decision.gpu.totalSeconds << ',' << record.actualSeconds
        << ',';
    if (record.cpuMeasured) out << record.actualCpuSeconds;
    out << ',';
    if (record.gpuMeasured) out << record.actualGpuSeconds;
    out << ',' << record.decision.overheadSeconds << '\n';
  }
  return out.str();
}

}  // namespace osel::runtime
